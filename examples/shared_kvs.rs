//! A working key-value store on transparent disaggregated shared memory.
//!
//! This is the paper's motivating scenario end-to-end: an application
//! written against plain shared memory (here, an open-addressing hash
//! table) runs its threads on *different compute blades* with zero
//! distribution logic — MIND's in-network coherence keeps every blade's
//! view consistent.
//!
//! ```text
//! cargo run -p mind-core --example shared_kvs
//! ```

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::controller::Pid;
use mind_sim::SimTime;

const SLOTS: u64 = 4_096;
const KEY_LEN: usize = 16;
const VAL_LEN: usize = 32;
const SLOT_LEN: u64 = 1 + KEY_LEN as u64 + VAL_LEN as u64; // used|key|value

/// A fixed-capacity open-addressing hash table in MIND shared memory.
struct SharedKvs {
    base: u64,
    pid: Pid,
}

impl SharedKvs {
    fn create(rack: &mut MindCluster, pid: Pid) -> Self {
        let base = rack.mmap(pid, SLOTS * SLOT_LEN).expect("mmap table");
        SharedKvs { base, pid }
    }

    fn hash(key: &[u8]) -> u64 {
        // FNV-1a.
        let mut h = 0xcbf29ce484222325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    fn slot_addr(&self, slot: u64) -> u64 {
        self.base + slot * SLOT_LEN
    }

    fn pad(key: &str) -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        let bytes = key.as_bytes();
        k[..bytes.len().min(KEY_LEN)].copy_from_slice(&bytes[..bytes.len().min(KEY_LEN)]);
        k
    }

    /// Inserts or updates `key` from a thread on `blade`.
    fn put(&self, rack: &mut MindCluster, now: SimTime, blade: u16, key: &str, val: &str) {
        let k = Self::pad(key);
        let mut v = [0u8; VAL_LEN];
        let vb = val.as_bytes();
        v[..vb.len().min(VAL_LEN)].copy_from_slice(&vb[..vb.len().min(VAL_LEN)]);
        let mut slot = Self::hash(&k) % SLOTS;
        loop {
            let addr = self.slot_addr(slot);
            let hdr = rack
                .read_bytes(now, blade, self.pid, addr, 1 + KEY_LEN)
                .expect("read slot");
            let empty = hdr[0] == 0;
            if empty || hdr[1..] == k {
                let mut record = vec![1u8];
                record.extend_from_slice(&k);
                record.extend_from_slice(&v);
                rack.write_bytes(now, blade, self.pid, addr, &record)
                    .expect("write slot");
                return;
            }
            slot = (slot + 1) % SLOTS; // Linear probing.
        }
    }

    /// Looks up `key` from a thread on `blade`.
    fn get(&self, rack: &mut MindCluster, now: SimTime, blade: u16, key: &str) -> Option<String> {
        let k = Self::pad(key);
        let mut slot = Self::hash(&k) % SLOTS;
        loop {
            let addr = self.slot_addr(slot);
            let rec = rack
                .read_bytes(now, blade, self.pid, addr, SLOT_LEN as usize)
                .expect("read slot");
            if rec[0] == 0 {
                return None;
            }
            if rec[1..1 + KEY_LEN] == k {
                let val = &rec[1 + KEY_LEN..];
                let end = val.iter().position(|&b| b == 0).unwrap_or(VAL_LEN);
                return Some(String::from_utf8_lossy(&val[..end]).into_owned());
            }
            slot = (slot + 1) % SLOTS;
        }
    }
}

fn main() {
    let mut rack = MindCluster::new(MindConfig::small());
    let pid = rack.exec().expect("exec");
    let kvs = SharedKvs::create(&mut rack, pid);

    // Writers on blade 0, readers on blade 1 — one address space, no RPCs.
    let mut t = SimTime::ZERO;
    let step = SimTime::from_millis(1);
    for i in 0..64 {
        kvs.put(&mut rack, t, 0, &format!("user:{i}"), &format!("value-{i}"));
        t += step;
    }
    println!("blade 0 inserted 64 records");

    let mut hits = 0;
    for i in 0..64 {
        let got = kvs.get(&mut rack, t, 1, &format!("user:{i}"));
        assert_eq!(got.as_deref(), Some(format!("value-{i}").as_str()));
        hits += 1;
        t += step;
    }
    println!("blade 1 read back {hits}/64 records coherently");

    // Updates ping-pong ownership between blades; reads always see the
    // latest value (MIND is TSO).
    kvs.put(&mut rack, t, 1, "user:7", "updated-on-blade-1");
    t += step;
    let got = kvs.get(&mut rack, t, 0, "user:7");
    println!("blade 0 sees update from blade 1: {got:?}");
    assert_eq!(got.as_deref(), Some("updated-on-blade-1"));
    assert_eq!(kvs.get(&mut rack, t + step, 0, "user:999"), None);

    let m = rack.metrics_snapshot();
    println!(
        "\ncoherence work: {} invalidation rounds, {} pages flushed, {} remote fetches",
        m.get("invalidation_rounds"),
        m.get("flushed_pages"),
        m.get("remote_accesses"),
    );
}
