//! Transparent compute elasticity — the property prior disaggregation
//! designs give up (paper §2.2).
//!
//! The same unmodified workload (a read-mostly analytics scan, TF-like) is
//! replayed on racks with 1, 2, 4 and 8 compute blades. Nothing about the
//! workload changes; threads are simply placed on more blades, and MIND's
//! in-network coherence keeps the shared address space consistent. A
//! swap-based design like FastSwap cannot run the >1-blade rows at all.
//!
//! ```text
//! cargo run --release -p mind-core --example elastic_compute
//! ```

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};
use mind_workloads::tf::{TfConfig, TfWorkload};
use mind_workloads::trace::Workload;

const THREADS_PER_BLADE: u16 = 10;
const TOTAL_OPS: u64 = 400_000;

fn main() {
    println!("workload: TF-like training job, {TOTAL_OPS} memory accesses total\n");
    println!(
        "{:>7} {:>9} {:>12} {:>10} {:>12} {:>14}",
        "blades", "threads", "runtime", "speedup", "remote/op", "inval rounds"
    );
    let mut baseline = None;
    for blades in [1u16, 2, 4, 8] {
        let n_threads = blades * THREADS_PER_BLADE;
        let mut wl = TfWorkload::new(TfConfig {
            n_threads,
            ..Default::default()
        });
        let regions = wl.regions();
        let pages: u64 = regions.iter().map(|l| l.div_ceil(4096)).sum();
        let mut cfg = MindConfig {
            n_compute: blades,
            cache_pages: (pages / 4) as u32,
            dir_capacity: (pages / 16) as usize,
            ..Default::default()
        }
        .consistency(ConsistencyModel::Tso);
        cfg.split.epoch_len = SimTime::from_millis(2);
        let mut rack = MindCluster::new(cfg);
        let ops_per_thread = TOTAL_OPS / n_threads as u64;
        let report = run(
            &mut rack,
            &mut wl,
            RunConfig {
                ops_per_thread,
                warmup_ops_per_thread: ops_per_thread / 2,
                threads_per_blade: THREADS_PER_BLADE,
                think_time: SimTime::from_nanos(100),
                interleave: false,
                batch_ops: 1,
                window: 1,
                ..Default::default()
            },
        );
        let base = *baseline.get_or_insert(report.runtime);
        println!(
            "{:>7} {:>9} {:>12} {:>9.2}x {:>12.4} {:>14}",
            blades,
            n_threads,
            format!("{}", report.runtime),
            base.as_nanos() as f64 / report.runtime.as_nanos() as f64,
            report.remote_per_op,
            report.window_metrics.get("invalidation_rounds"),
        );
    }
    println!(
        "\nThe job scaled across blades without a single line of application\n\
         change — the elasticity/performance tradeoff §2.2 describes is\n\
         broken by putting the MMU in the network."
    );
}
