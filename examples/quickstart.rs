//! Quickstart: boot a simulated MIND rack and share memory across compute
//! blades, transparently and coherently.
//!
//! ```text
//! cargo run -p mind-core --example quickstart
//! ```

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::AccessKind;
use mind_sim::SimTime;

fn main() {
    // A small functional rack: 2 compute blades + 2 memory blades behind
    // one programmable switch, carrying real page data.
    let mut rack = MindCluster::new(MindConfig::small());

    // Start a process (the switch control plane assigns the PID, which
    // doubles as the protection domain) and map 1 MB of disaggregated
    // memory. The allocation lands on the least-loaded memory blade.
    let pid = rack.exec().expect("exec");
    let buf = rack.mmap(pid, 1 << 20).expect("mmap");
    println!("mapped 1 MB at {buf:#x} (pid {pid})");

    // A thread on compute blade 0 writes...
    rack.write_bytes(SimTime::ZERO, 0, pid, buf, b"hello from blade 0")
        .expect("write");

    // ...and a thread of the same process on compute blade 1 reads it
    // back. The switch's in-network MSI directory downgrades blade 0's
    // modified copy (flushing it to the memory blade) and serves blade 1.
    let msg = rack
        .read_bytes(SimTime::from_millis(1), 1, pid, buf, 18)
        .expect("read");
    println!("blade 1 sees: {:?}", String::from_utf8_lossy(&msg));
    assert_eq!(&msg, b"hello from blade 0");

    // Latency anatomy of single accesses:
    let hit = rack
        .access_as(SimTime::from_millis(2), 1, pid, buf, AccessKind::Read)
        .expect("hit");
    println!(
        "cached read on blade 1: {} (local DRAM)",
        hit.latency.total()
    );
    let miss = rack
        .access_as(
            SimTime::from_millis(3),
            0,
            pid,
            buf + (1 << 16),
            AccessKind::Read,
        )
        .expect("miss");
    println!(
        "cold read on blade 0:   {} (one-sided RDMA through the switch)",
        miss.latency.total()
    );

    // What the rack did, in the switch's own terms:
    let m = rack.metrics_snapshot();
    println!("\nswitch counters:");
    for key in [
        "accesses",
        "local_hits",
        "remote_accesses",
        "invalidation_rounds",
        "flushed_pages",
        "directory_entries",
        "match_action_rules",
        "syscalls",
    ] {
        println!("  {key:>20} = {}", m.get(key));
    }
}
