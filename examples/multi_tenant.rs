//! Multi-tenant serving on a disaggregated rack (`mind_service`).
//!
//! Tenants arrive and depart Poisson-style, each sealed in its own
//! protection domain (§4.2) on the shared rack. A QoS-weighted dispatcher
//! (Gold/Silver/BestEffort) drains their request queues, admission
//! control turns arrivals away under memory pressure, and an elasticity
//! driver grows busy tenants across compute blades. The run ends with the
//! numbers an operator owes each class: p50/p99/p99.9, throughput, and
//! rejects.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use mind_service::{MemoryService, ServiceConfig};
use mind_sim::SimTime;

fn main() {
    let cfg = ServiceConfig {
        duration: SimTime::from_millis(150),
        ..Default::default()
    }
    .load_scaled(2.0); // 2x the dispatcher's capacity: QoS classes separate.

    println!(
        "serving {} ms of simulated rack time at 2x dispatch capacity...\n",
        cfg.duration.as_millis_f64()
    );
    let report = MemoryService::new(cfg).run();

    println!(
        "tenants: {} admitted, {} refused by admission control, {} departed, {} live (peak {})",
        report.tenants_admitted,
        report.tenants_rejected,
        report.tenants_departed,
        report.tenants_live,
        report.peak_live_tenants,
    );
    println!(
        "requests: {} served, {} rejected; final memory utilization {:.1}%, {} match-action rules\n",
        report.total_ops,
        report.rejected_requests,
        report.memory_utilization * 100.0,
        report.match_action_rules,
    );

    println!(
        "{:>11} {:>8} {:>8} {:>9} {:>10} {:>10} {:>11} {:>9}",
        "class", "tenants", "ops", "MOPS", "p50(us)", "p99(us)", "p99.9(us)", "rejected"
    );
    for c in report.classes {
        println!(
            "{:>11} {:>8} {:>8} {:>9.3} {:>10.1} {:>10.1} {:>11.1} {:>9}",
            c.qos.label(),
            c.tenants_admitted,
            c.ops,
            c.mops,
            c.p50_ns as f64 / 1e3,
            c.p99_ns as f64 / 1e3,
            c.p999_ns as f64 / 1e3,
            c.rejected_requests,
        );
    }

    // The busiest tenants, to show elasticity at work.
    let mut tenants = report.tenants.clone();
    tenants.sort_by_key(|t| std::cmp::Reverse(t.ops));
    println!(
        "\nbusiest tenants:\n{:>7} {:>11} {:>7} {:>8} {:>12} {:>11}",
        "tenant", "class", "pages", "ops", "p99.9(us)", "peak blades"
    );
    for t in tenants.iter().take(5) {
        println!(
            "{:>7} {:>11} {:>7} {:>8} {:>12.1} {:>11}",
            t.tenant,
            t.qos.label(),
            t.pages,
            t.ops,
            t.p999_ns as f64 / 1e3,
            t.blades_peak,
        );
    }

    println!(
        "\nEvery tenant ran inside its own protection domain on one shared\n\
         address space; departures reclaimed their TCAM entries and memory.\n\
         Weighted round-robin kept Gold's tail short while BestEffort\n\
         absorbed the overload — isolation and QoS from the switch, not\n\
         from per-tenant machines."
    );
}
