//! Fine-grained, flexible memory protection with domains and permission
//! classes (paper §4.2) — richer than per-process page permissions.
//!
//! Scenario from the paper: a database server handles multiple client
//! sessions and gives each a separate protection domain over its own
//! buffer, so a compromised session cannot read another session's data —
//! enforced *in the switch*, on the natural RDMA path, at line rate.
//!
//! ```text
//! cargo run -p mind-core --example protection_domains
//! ```

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::protect::PermClass;
use mind_core::system::AccessKind;
use mind_sim::SimTime;

fn main() {
    let mut rack = MindCluster::new(MindConfig::small());

    // Two client sessions of a database process — modelled as two
    // protection domains (MIND lets applications mint domains; for
    // unmodified apps PDID = PID).
    let session_a = rack.exec().expect("exec session A");
    let session_b = rack.exec().expect("exec session B");

    let buf_a = rack.mmap(session_a, 64 << 10).expect("A's buffer");
    let buf_b = rack.mmap(session_b, 64 << 10).expect("B's buffer");
    println!("session A buffer at {buf_a:#x}, session B buffer at {buf_b:#x}");

    // Each session works in its own buffer...
    rack.write_bytes(SimTime::ZERO, 0, session_a, buf_a, b"A's secret")
        .expect("A writes");
    rack.write_bytes(SimTime::ZERO, 1, session_b, buf_b, b"B's ledger")
        .expect("B writes");

    // ...and the switch rejects cross-session access outright: the
    // <PDID, vma> TCAM match fails before any memory blade is touched.
    let stolen = rack.access_as(
        SimTime::from_millis(1),
        1,
        session_b,
        buf_a,
        AccessKind::Read,
    );
    println!("session B reading A's buffer: {stolen:?}");
    assert!(stolen.is_err());

    // Permission classes go beyond all-or-nothing: publish A's buffer to
    // everyone as read-only via an mprotect-style downgrade of A's own
    // write access.
    rack.mprotect(
        SimTime::from_millis(2),
        session_a,
        buf_a,
        PermClass::ReadOnly,
    )
    .expect("downgrade");
    let reread = rack.access_as(
        SimTime::from_millis(2),
        0,
        session_a,
        buf_a,
        AccessKind::Read,
    );
    let rewrite = rack.access_as(
        SimTime::from_millis(2),
        0,
        session_a,
        buf_a,
        AccessKind::Write,
    );
    println!("A re-reads own buffer:  ok = {}", reread.is_ok());
    println!(
        "A re-writes own buffer: ok = {} (now read-only)",
        rewrite.is_ok()
    );
    assert!(reread.is_ok() && rewrite.is_err());

    // Teardown revokes everything at the switch.
    rack.exit(SimTime::from_millis(3), session_a)
        .expect("exit A");
    let gone = rack.access_as(
        SimTime::from_millis(4),
        0,
        session_a,
        buf_a,
        AccessKind::Read,
    );
    println!("A's buffer after exit:  {gone:?}");
    assert!(gone.is_err());

    let m = rack.metrics_snapshot();
    println!(
        "\nprotection checks at the switch: {} (denied: {}), TCAM rules now: {}",
        m.get("accesses"),
        m.get("denials"),
        m.get("match_action_rules"),
    );
}
