//! Ingress/egress pipeline with recirculation accounting.
//!
//! Models Figure 4 of the paper: a directory state transition enters the
//! ingress pipeline, traverses the lookup MAU and the state-transition-table
//! MAU, then *recirculates* so the first MAU can apply the entry update the
//! second MAU decided. Invalidations are generated in the egress pipeline
//! via multicast. The pipeline charges time per traversal and per
//! recirculation and keeps counters for reporting.

use mind_sim::SimTime;

use crate::mau::{MauStage, OpBudgetExceeded};

/// The switch data-plane pipeline.
#[derive(Debug, Clone)]
pub struct Pipeline {
    traversal_time: SimTime,
    recirculation_time: SimTime,
    lookup_mau: MauStage,
    stt_mau: MauStage,
    traversals: u64,
    recirculations: u64,
}

impl Pipeline {
    /// Creates a pipeline with the given per-traversal and per-recirculation
    /// costs (from `mind_net::LatencyConfig`).
    pub fn new(traversal_time: SimTime, recirculation_time: SimTime) -> Self {
        Pipeline {
            traversal_time,
            recirculation_time,
            lookup_mau: MauStage::new("directory-lookup", MauStage::DEFAULT_OP_BUDGET),
            stt_mau: MauStage::new("state-transition", MauStage::DEFAULT_OP_BUDGET),
            traversals: 0,
            recirculations: 0,
        }
    }

    /// A plain forwarding traversal (translation + protection only, no
    /// directory update). Returns the pipeline delay.
    pub fn forward(&mut self) -> SimTime {
        self.traversals += 1;
        self.traversal_time
    }

    /// A directory state transition: lookup MAU, STT MAU, then one
    /// recirculation back to the lookup MAU to apply the update (paper
    /// Figure 4, steps 1–3). Returns the total data-plane delay.
    ///
    /// # Errors
    ///
    /// Propagates [`OpBudgetExceeded`] if a per-stage program would not fit
    /// (indicates a mis-designed pipeline program, not a runtime condition).
    pub fn directory_transition(&mut self) -> Result<SimTime, OpBudgetExceeded> {
        // Pass 1: lookup the directory entry (1 op) and match the STT row
        // (3 ops: key compose, match, action select).
        self.lookup_mau.execute(1)?;
        self.stt_mau.execute(3)?;
        // Recirculate; pass 2 applies the update in the lookup MAU (2 ops:
        // state write + sharer-list update).
        self.lookup_mau.execute(2)?;
        self.traversals += 1;
        self.recirculations += 1;
        Ok(self.traversal_time + self.recirculation_time)
    }

    /// Total pipeline traversals.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Total recirculations.
    pub fn recirculations(&self) -> u64 {
        self.recirculations
    }

    /// Packets seen by the directory-lookup MAU (includes recirculations).
    pub fn lookup_mau_packets(&self) -> u64 {
        self.lookup_mau.packets()
    }

    /// Packets seen by the state-transition MAU.
    pub fn stt_mau_packets(&self) -> u64 {
        self.stt_mau.packets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> Pipeline {
        Pipeline::new(SimTime::from_nanos(400), SimTime::from_nanos(600))
    }

    #[test]
    fn forward_charges_one_traversal() {
        let mut p = pipeline();
        assert_eq!(p.forward(), SimTime::from_nanos(400));
        assert_eq!(p.traversals(), 1);
        assert_eq!(p.recirculations(), 0);
    }

    #[test]
    fn transition_charges_recirculation() {
        let mut p = pipeline();
        let t = p.directory_transition().unwrap();
        assert_eq!(t, SimTime::from_nanos(1_000));
        assert_eq!(p.traversals(), 1);
        assert_eq!(p.recirculations(), 1);
        // Lookup MAU sees the packet twice (initial + recirculated).
        assert_eq!(p.lookup_mau_packets(), 2);
        assert_eq!(p.stt_mau_packets(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut p = pipeline();
        for _ in 0..10 {
            p.forward();
        }
        for _ in 0..5 {
            p.directory_transition().unwrap();
        }
        assert_eq!(p.traversals(), 15);
        assert_eq!(p.recirculations(), 5);
        assert_eq!(p.lookup_mau_packets(), 10);
    }
}
