//! SRAM slot store for cache-directory entries.
//!
//! MIND reserves a fixed amount of switch SRAM for directory entries,
//! partitions it into fixed-size slots, keeps a free list of available
//! slots, and a `used` map from the base virtual address of each
//! (dynamically sized) region to the slot storing its entry (paper §6.3,
//! "Cache directory management"). The 30 k-entry capacity is the resource
//! bound Figure 8 (left) plots against.

use mind_sim::hash::FastMap;

/// Error returned when no SRAM slots remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramFull;

impl std::fmt::Display for SramFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "directory SRAM capacity exhausted")
    }
}

impl std::error::Error for SramFull {}

/// A fixed-capacity slot store keyed by region base address.
///
/// Slot storage grows lazily up to `capacity`, so modelling an effectively
/// unbounded SRAM (the paper's MIND-PSO+ simulation) costs no memory up
/// front.
#[derive(Debug, Clone)]
pub struct SlotStore<T> {
    slots: Vec<Option<T>>,
    free_list: Vec<usize>,
    used_map: FastMap<u64, usize>,
    capacity: usize,
    high_watermark: usize,
}

impl<T> SlotStore<T> {
    /// Creates a store with `capacity` slots, all initially free.
    pub fn new(capacity: usize) -> Self {
        SlotStore {
            slots: Vec::new(),
            free_list: Vec::new(),
            used_map: FastMap::default(),
            capacity,
            high_watermark: 0,
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots in use.
    pub fn used(&self) -> usize {
        self.used_map.len()
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.used()
    }

    /// Largest simultaneous occupancy observed.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Occupancy as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used() as f64 / self.capacity as f64
        }
    }

    /// Allocates a slot for region `base` and stores `value`.
    ///
    /// Returns [`SramFull`] when no slots remain.
    ///
    /// # Panics
    ///
    /// Panics if `base` already has a slot — directory entries must be
    /// removed before being re-created.
    pub fn insert(&mut self, base: u64, value: T) -> Result<(), SramFull> {
        assert!(
            !self.used_map.contains_key(&base),
            "slot already allocated for region {base:#x}"
        );
        if self.used() >= self.capacity {
            return Err(SramFull);
        }
        let slot = match self.free_list.pop() {
            Some(s) => {
                self.slots[s] = Some(value);
                s
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        };
        self.used_map.insert(base, slot);
        self.high_watermark = self.high_watermark.max(self.used());
        Ok(())
    }

    /// Looks up the entry for region `base`.
    pub fn get(&self, base: u64) -> Option<&T> {
        self.used_map
            .get(&base)
            .map(|&slot| self.slots[slot].as_ref().expect("used slot is populated"))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, base: u64) -> Option<&mut T> {
        let slot = *self.used_map.get(&base)?;
        self.slots[slot].as_mut()
    }

    /// Removes the entry for region `base`, returning the slot to the free
    /// list.
    pub fn remove(&mut self, base: u64) -> Option<T> {
        let slot = self.used_map.remove(&base)?;
        let value = self.slots[slot].take().expect("used slot is populated");
        self.free_list.push(slot);
        Some(value)
    }

    /// Whether a region has a slot.
    pub fn contains(&self, base: u64) -> bool {
        self.used_map.contains_key(&base)
    }

    /// Iterates `(base, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.used_map
            .iter()
            .map(|(&base, &slot)| (base, self.slots[slot].as_ref().expect("populated")))
    }

    /// Region bases currently stored, sorted (for deterministic iteration).
    pub fn bases_sorted(&self) -> Vec<u64> {
        let mut bases: Vec<u64> = self.used_map.keys().copied().collect();
        bases.sort_unstable();
        bases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = SlotStore::new(4);
        s.insert(0x1000, "a").unwrap();
        s.insert(0x2000, "b").unwrap();
        assert_eq!(s.get(0x1000), Some(&"a"));
        assert_eq!(s.get(0x2000), Some(&"b"));
        assert_eq!(s.used(), 2);
        assert_eq!(s.remove(0x1000), Some("a"));
        assert_eq!(s.get(0x1000), None);
        assert_eq!(s.free(), 3);
    }

    #[test]
    fn capacity_exhaustion() {
        let mut s = SlotStore::new(2);
        s.insert(1, ()).unwrap();
        s.insert(2, ()).unwrap();
        assert_eq!(s.insert(3, ()), Err(SramFull));
        // Freeing a slot makes room again.
        s.remove(1);
        assert!(s.insert(3, ()).is_ok());
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_insert_panics() {
        let mut s = SlotStore::new(2);
        s.insert(1, ()).unwrap();
        let _ = s.insert(1, ());
    }

    #[test]
    fn slots_are_recycled() {
        let mut s = SlotStore::new(1);
        for i in 0..100u64 {
            s.insert(i, i).unwrap();
            assert_eq!(s.remove(i), Some(i));
        }
        assert_eq!(s.capacity(), 1);
        assert_eq!(s.free(), 1);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = SlotStore::new(2);
        s.insert(7, 10u32).unwrap();
        *s.get_mut(7).unwrap() += 5;
        assert_eq!(s.get(7), Some(&15));
        assert!(s.get_mut(99).is_none());
    }

    #[test]
    fn watermark_and_utilization() {
        let mut s = SlotStore::new(4);
        s.insert(1, ()).unwrap();
        s.insert(2, ()).unwrap();
        s.insert(3, ()).unwrap();
        s.remove(2);
        assert_eq!(s.high_watermark(), 3);
        assert_eq!(s.used(), 2);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iteration_and_sorted_bases() {
        let mut s = SlotStore::new(4);
        s.insert(0x3000, 3).unwrap();
        s.insert(0x1000, 1).unwrap();
        s.insert(0x2000, 2).unwrap();
        assert_eq!(s.bases_sorted(), vec![0x1000, 0x2000, 0x3000]);
        let mut pairs: Vec<(u64, i32)> = s.iter().map(|(b, &v)| (b, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0x1000, 1), (0x2000, 2), (0x3000, 3)]);
    }

    #[test]
    fn zero_capacity_store() {
        let mut s: SlotStore<()> = SlotStore::new(0);
        assert_eq!(s.insert(1, ()), Err(SramFull));
        assert_eq!(s.utilization(), 0.0);
    }
}
