//! Match-action units with limited per-packet compute.
//!
//! A single MAU in today's switch ASICs cannot (i) look up a directory
//! entry, (ii) determine the transition from the current state and the
//! request, and (iii) update the entry, all in one pass (paper §6.3). MIND
//! therefore splits (i)–(ii) across two MAUs — the second holding a
//! *materialized state-transition table* — and performs (iii) by
//! recirculating the packet back to the first MAU. This module models the
//! MAU op budget and the exact-match table container used for the STT.

use std::collections::HashMap;

/// Error: a packet program exceeded the MAU's per-packet op budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpBudgetExceeded {
    /// Ops the program needed.
    pub needed: u32,
    /// Ops the MAU offers per packet.
    pub budget: u32,
}

impl std::fmt::Display for OpBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MAU op budget exceeded: needed {} of {}",
            self.needed, self.budget
        )
    }
}

impl std::error::Error for OpBudgetExceeded {}

/// One match-action stage.
///
/// The op budget is deliberately small (RMT stages execute a handful of ALU
/// ops per packet); MIND's per-stage programs must fit or the pipeline
/// design is invalid. [`MauStage::execute`] enforces this at "compile time"
/// of the simulated program.
#[derive(Debug, Clone)]
pub struct MauStage {
    name: &'static str,
    op_budget: u32,
    packets: u64,
}

impl MauStage {
    /// Default per-packet ALU op budget of an RMT stage.
    pub const DEFAULT_OP_BUDGET: u32 = 4;

    /// Creates a stage.
    pub fn new(name: &'static str, op_budget: u32) -> Self {
        MauStage {
            name,
            op_budget,
            packets: 0,
        }
    }

    /// Stage name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Runs a packet program consuming `ops` ALU operations.
    pub fn execute(&mut self, ops: u32) -> Result<(), OpBudgetExceeded> {
        if ops > self.op_budget {
            return Err(OpBudgetExceeded {
                needed: ops,
                budget: self.op_budget,
            });
        }
        self.packets += 1;
        Ok(())
    }

    /// Packets processed by this stage.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

/// A capacity-limited exact-match table (SRAM-backed), e.g. MIND's
/// materialized state-transition table.
///
/// Explicitly storing all `(state, request) → (actions, next state)` rows
/// trades data-plane memory for the compute an MAU lacks (§6.3).
#[derive(Debug, Clone)]
pub struct ExactTable<K, V> {
    name: &'static str,
    entries: HashMap<K, V>,
    capacity: usize,
}

/// Error: the exact-match table is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

impl std::fmt::Display for TableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exact-match table capacity exhausted")
    }
}

impl std::error::Error for TableFull {}

impl<K: std::hash::Hash + Eq, V> ExactTable<K, V> {
    /// Creates a table with the given capacity.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        ExactTable {
            name,
            entries: HashMap::new(),
            capacity,
        }
    }

    /// Table name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Installs a row; replaces an existing row for the same key.
    pub fn insert(&mut self, key: K, value: V) -> Result<Option<V>, TableFull> {
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            return Err(TableFull);
        }
        Ok(self.entries.insert(key, value))
    }

    /// Looks up a row.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key)
    }

    /// Removes a row.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key)
    }

    /// Rows installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_enforces_op_budget() {
        let mut mau = MauStage::new("dir-lookup", MauStage::DEFAULT_OP_BUDGET);
        assert!(mau.execute(3).is_ok());
        assert!(mau.execute(4).is_ok());
        let err = mau.execute(5).unwrap_err();
        assert_eq!(err.needed, 5);
        assert_eq!(err.budget, 4);
        assert_eq!(mau.packets(), 2, "failed programs do not count");
    }

    #[test]
    fn single_mau_cannot_do_full_transition() {
        // Lookup (1 op) + state-transition decision (3 ops) + entry update
        // (2 ops) = 6 ops: more than one RMT stage offers. This is the
        // hardware fact that forces MIND's two-MAU + recirculation design.
        let mut mau = MauStage::new("combined", MauStage::DEFAULT_OP_BUDGET);
        assert!(mau.execute(6).is_err());
        // Split across two stages + recirculated update, each fits.
        let mut lookup = MauStage::new("lookup", MauStage::DEFAULT_OP_BUDGET);
        let mut stt = MauStage::new("stt", MauStage::DEFAULT_OP_BUDGET);
        assert!(lookup.execute(1).is_ok());
        assert!(stt.execute(3).is_ok());
        assert!(lookup.execute(2).is_ok()); // Recirculated update pass.
    }

    #[test]
    fn exact_table_insert_get_remove() {
        let mut t: ExactTable<(u8, u8), &str> = ExactTable::new("stt", 8);
        t.insert((0, 1), "I+read->S").unwrap();
        assert_eq!(t.get(&(0, 1)), Some(&"I+read->S"));
        assert_eq!(t.remove(&(0, 1)), Some("I+read->S"));
        assert!(t.is_empty());
    }

    #[test]
    fn exact_table_capacity() {
        let mut t: ExactTable<u32, ()> = ExactTable::new("t", 2);
        t.insert(1, ()).unwrap();
        t.insert(2, ()).unwrap();
        assert_eq!(t.insert(3, ()), Err(TableFull));
        // Overwrite of an existing key is allowed at capacity.
        assert!(t.insert(1, ()).is_ok());
        assert_eq!(t.len(), 2);
        assert_eq!(t.capacity(), 2);
        assert_eq!(t.name(), "t");
    }
}
