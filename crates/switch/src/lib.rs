//! Programmable switch ASIC model.
//!
//! Models the resource-constrained substrate that MIND's in-network memory
//! management must fit into (paper §2.1, §6.3): a TCAM supporting
//! longest-prefix-match over power-of-two ranges with a hard entry capacity
//! ([`tcam`]), SRAM partitioned into fixed-size directory slots with a free
//! list ([`sram`]), match-action stages with limited per-packet compute that
//! force directory transitions to be split across two MAUs plus a
//! recirculation ([`mau`], [`pipeline`]), and a control-plane CPU that
//! installs rules and can replicate its state to a backup switch
//! ([`control`]).
//!
//! The crate deliberately contains *mechanism only*; MIND's policies
//! (translation layout, protection classes, the MSI protocol, bounded
//! splitting) live in `mind-core` and are expressed against these containers
//! so that every entry they consume is counted against realistic capacities
//! (30 k directory slots, 45 k match-action rules — Figure 8).

pub mod control;
pub mod mau;
pub mod pipeline;
pub mod sram;
pub mod tcam;

pub use control::ControlPlane;
pub use mau::{ExactTable, MauStage};
pub use pipeline::Pipeline;
pub use sram::SlotStore;
pub use tcam::{pow2_cover, Tcam, TcamEntry};
