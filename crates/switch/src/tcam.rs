//! TCAM model: longest-prefix matching over power-of-two address ranges.
//!
//! Switch TCAMs match a key against `(value, mask)` pairs in parallel; a
//! power-of-two aligned address range `[base, base + 2^k)` is exactly one
//! TCAM entry (mask the low `k` bits). MIND uses this for both address
//! translation outliers (§4.1) and `<PDID, vma>` protection entries (§4.2),
//! relying on longest-prefix-match priority so the most specific entry wins.
//!
//! Arbitrary ranges are first decomposed into power-of-two aligned pieces by
//! [`pow2_cover`]; MIND's control plane keeps that decomposition small by
//! allocating power-of-two aligned vmas and coalescing buddies.

use mind_sim::hash::FastMap;

/// Number of virtual-address bits the TCAM matches (48-bit canonical VAs).
pub const VA_BITS: u8 = 48;

/// One TCAM entry: an exact-match context plus a power-of-two address range.
///
/// The `ctx` field models the packet-header fields matched exactly alongside
/// the address (protection uses the protection-domain id; translation uses
/// 0). `size_log2` is the log2 of the range length in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcamEntry {
    /// Exact-match context (e.g. PDID); 0 when unused.
    pub ctx: u64,
    /// Range base; must be aligned to `1 << size_log2`.
    pub base: u64,
    /// log2 of the range size in bytes.
    pub size_log2: u8,
}

impl TcamEntry {
    /// Creates an entry, checking alignment.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not aligned to the range size or `size_log2`
    /// exceeds [`VA_BITS`].
    pub fn new(ctx: u64, base: u64, size_log2: u8) -> Self {
        assert!(size_log2 <= VA_BITS, "range wider than address space");
        assert_eq!(
            base & ((1u64 << size_log2) - 1),
            0,
            "TCAM range base must be aligned to its size"
        );
        TcamEntry {
            ctx,
            base,
            size_log2,
        }
    }

    /// Whether `addr` falls inside this entry's range.
    pub fn matches(&self, addr: u64) -> bool {
        addr >> self.size_log2 == self.base >> self.size_log2
    }

    /// The buddy range that, together with this one, forms the next larger
    /// power-of-two range (used for coalescing).
    pub fn buddy(&self) -> TcamEntry {
        TcamEntry {
            ctx: self.ctx,
            base: self.base ^ (1u64 << self.size_log2),
            size_log2: self.size_log2,
        }
    }

    /// The enclosing range one size up (the merge result of this + buddy).
    pub fn parent(&self) -> TcamEntry {
        TcamEntry {
            ctx: self.ctx,
            base: self.base & !(1u64 << self.size_log2),
            size_log2: self.size_log2 + 1,
        }
    }
}

/// A capacity-limited TCAM with longest-prefix-match lookup.
///
/// Internally indexed per `(ctx, size_log2)` so a lookup probes at most
/// `VA_BITS` hash buckets from most- to least-specific, returning the first
/// hit — exactly LPM priority.
#[derive(Debug, Clone)]
pub struct Tcam<V> {
    /// `levels[k]` maps `(ctx, base >> k)` to the value for that range.
    levels: Vec<FastMap<(u64, u64), V>>,
    capacity: usize,
    used: usize,
    lookups: u64,
}

/// Error returned when the TCAM is out of entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamFull;

impl std::fmt::Display for TcamFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TCAM capacity exhausted")
    }
}

impl std::error::Error for TcamFull {}

impl<V> Tcam<V> {
    /// Creates a TCAM holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Tcam {
            levels: (0..=VA_BITS).map(|_| FastMap::default()).collect(),
            capacity,
            used: 0,
            lookups: 0,
        }
    }

    /// Entries currently installed.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free entries.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Total lookups performed (for reporting).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Installs an entry, replacing any existing entry for the same range.
    ///
    /// Returns [`TcamFull`] if a new entry would exceed capacity.
    pub fn insert(&mut self, entry: TcamEntry, value: V) -> Result<Option<V>, TcamFull> {
        let key = (entry.ctx, entry.base >> entry.size_log2);
        let level = &mut self.levels[entry.size_log2 as usize];
        if !level.contains_key(&key) {
            if self.used >= self.capacity {
                return Err(TcamFull);
            }
            self.used += 1;
        }
        Ok(level.insert(key, value))
    }

    /// Removes an entry, returning its value if present.
    pub fn remove(&mut self, entry: &TcamEntry) -> Option<V> {
        let key = (entry.ctx, entry.base >> entry.size_log2);
        let removed = self.levels[entry.size_log2 as usize].remove(&key);
        if removed.is_some() {
            self.used -= 1;
        }
        removed
    }

    /// Longest-prefix-match lookup: returns the most specific (smallest)
    /// range containing `addr` under context `ctx`.
    pub fn lookup(&mut self, ctx: u64, addr: u64) -> Option<(TcamEntry, &V)> {
        self.lookups += 1;
        self.peek_lookup(ctx, addr)
    }

    /// Counter-free longest-prefix-match lookup: the result of
    /// [`Tcam::lookup`] without bumping the lookup statistics. Batched
    /// datapaths use it to pre-resolve entries a batch will reuse (the
    /// per-op accounting happens at use time, not resolve time).
    pub fn peek_lookup(&self, ctx: u64, addr: u64) -> Option<(TcamEntry, &V)> {
        for k in 0..=VA_BITS {
            if let Some(v) = self.levels[k as usize].get(&(ctx, addr >> k)) {
                let entry = TcamEntry {
                    ctx,
                    base: (addr >> k) << k,
                    size_log2: k,
                };
                return Some((entry, v));
            }
        }
        None
    }

    /// Peeks at an exact entry without LPM.
    pub fn get(&self, entry: &TcamEntry) -> Option<&V> {
        self.levels[entry.size_log2 as usize].get(&(entry.ctx, entry.base >> entry.size_log2))
    }

    /// Iterates all installed entries (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (TcamEntry, &V)> {
        self.levels.iter().enumerate().flat_map(|(k, level)| {
            level.iter().map(move |(&(ctx, shifted), v)| {
                (
                    TcamEntry {
                        ctx,
                        base: shifted << k,
                        size_log2: k as u8,
                    },
                    v,
                )
            })
        })
    }
}

/// Decomposes `[base, base + len)` into the minimal set of power-of-two
/// aligned ranges, returned as `(base, size_log2)` pairs in address order.
///
/// For a power-of-two aligned allocation (MIND's control plane only makes
/// those, §4.2) this returns exactly one range; for arbitrary ranges the
/// count is bounded by `2 · log2(len)`.
///
/// # Panics
///
/// Panics if `len == 0` or the range overflows the address space.
pub fn pow2_cover(base: u64, len: u64) -> Vec<(u64, u8)> {
    assert!(len > 0, "empty range");
    assert!(base.checked_add(len).is_some(), "range overflows");
    let mut out = Vec::new();
    let mut cur = base;
    let mut remaining = len;
    while remaining > 0 {
        // Largest size that is aligned at `cur` and fits in `remaining`.
        let align = if cur == 0 { 63 } else { cur.trailing_zeros() };
        let fit = 63 - remaining.leading_zeros();
        let k = align.min(fit) as u8;
        out.push((cur, k));
        cur += 1u64 << k;
        remaining -= 1u64 << k;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_alignment_enforced() {
        TcamEntry::new(0, 0x4000, 14); // OK: 16 KB aligned.
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_entry_panics() {
        TcamEntry::new(0, 0x4100, 14);
    }

    #[test]
    fn entry_match_and_buddy() {
        let e = TcamEntry::new(0, 0x4000, 12);
        assert!(e.matches(0x4000));
        assert!(e.matches(0x4FFF));
        assert!(!e.matches(0x5000));
        assert_eq!(e.buddy().base, 0x5000);
        assert_eq!(e.buddy().buddy(), e);
        assert_eq!(e.parent().base, 0x4000);
        assert_eq!(e.parent().size_log2, 13);
        assert_eq!(e.buddy().parent(), e.parent());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut tcam = Tcam::new(16);
        tcam.insert(TcamEntry::new(0, 0x0, 20), "outer").unwrap();
        tcam.insert(TcamEntry::new(0, 0x4000, 12), "inner").unwrap();
        // Inside the nested 4 KB range: inner wins.
        let (e, v) = tcam.lookup(0, 0x4010).unwrap();
        assert_eq!(*v, "inner");
        assert_eq!(e.size_log2, 12);
        // Elsewhere in the 1 MB range: outer.
        assert_eq!(*tcam.lookup(0, 0x9000).unwrap().1, "outer");
        // Outside both: miss.
        assert!(tcam.lookup(0, 0x200000).is_none());
    }

    #[test]
    fn context_isolates_lookups() {
        let mut tcam = Tcam::new(16);
        tcam.insert(TcamEntry::new(1, 0x1000, 12), "pd1").unwrap();
        tcam.insert(TcamEntry::new(2, 0x1000, 12), "pd2").unwrap();
        assert_eq!(*tcam.lookup(1, 0x1000).unwrap().1, "pd1");
        assert_eq!(*tcam.lookup(2, 0x1000).unwrap().1, "pd2");
        assert!(tcam.lookup(3, 0x1000).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut tcam = Tcam::new(2);
        tcam.insert(TcamEntry::new(0, 0x1000, 12), 1).unwrap();
        tcam.insert(TcamEntry::new(0, 0x2000, 12), 2).unwrap();
        assert_eq!(tcam.insert(TcamEntry::new(0, 0x3000, 12), 3), Err(TcamFull));
        assert_eq!(tcam.used(), 2);
        assert_eq!(tcam.free(), 0);
        // Replacing an existing range does not consume capacity.
        assert_eq!(
            tcam.insert(TcamEntry::new(0, 0x1000, 12), 9).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn remove_frees_capacity() {
        let mut tcam = Tcam::new(1);
        let e = TcamEntry::new(0, 0x1000, 12);
        tcam.insert(e, 7).unwrap();
        assert_eq!(tcam.remove(&e), Some(7));
        assert_eq!(tcam.used(), 0);
        assert!(tcam.lookup(0, 0x1000).is_none());
        assert_eq!(tcam.remove(&e), None);
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut tcam = Tcam::new(8);
        tcam.insert(TcamEntry::new(0, 0x1000, 12), 1).unwrap();
        tcam.insert(TcamEntry::new(5, 0x0, 20), 2).unwrap();
        let mut entries: Vec<(u64, u64, u8)> = tcam
            .iter()
            .map(|(e, _)| (e.ctx, e.base, e.size_log2))
            .collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(0, 0x1000, 12), (5, 0x0, 20)]);
    }

    #[test]
    fn pow2_cover_power_of_two_is_single_entry() {
        assert_eq!(pow2_cover(0x4000, 0x4000), vec![(0x4000, 14)]);
        assert_eq!(pow2_cover(0, 1 << 30), vec![(0, 30)]);
    }

    #[test]
    fn pow2_cover_unaligned_range() {
        // [0x1000, 0x1000 + 0x3000) = 4K + 8K pieces.
        let cover = pow2_cover(0x1000, 0x3000);
        assert_eq!(cover, vec![(0x1000, 12), (0x2000, 13)]);
        // Pieces tile the range exactly.
        let total: u64 = cover.iter().map(|&(_, k)| 1u64 << k).sum();
        assert_eq!(total, 0x3000);
    }

    #[test]
    fn pow2_cover_count_bounded_by_2log() {
        for (base, len) in [
            (0x1234_5000u64, 0x6_7000u64),
            (0x1000, 0xF000),
            (4096, 12288),
        ] {
            let cover = pow2_cover(base, len);
            let bound = 2 * (64 - len.leading_zeros()) as usize;
            assert!(
                cover.len() <= bound,
                "{} pieces for len {len:#x}",
                cover.len()
            );
            // Contiguity check.
            let mut cur = base;
            for &(b, k) in &cover {
                assert_eq!(b, cur);
                assert_eq!(b & ((1 << k) - 1), 0, "piece aligned");
                cur += 1u64 << k;
            }
            assert_eq!(cur, base + len);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn pow2_cover_rejects_empty() {
        pow2_cover(0x1000, 0);
    }

    #[test]
    fn lookup_counter_increments() {
        let mut tcam: Tcam<()> = Tcam::new(4);
        tcam.lookup(0, 0);
        tcam.lookup(0, 1);
        assert_eq!(tcam.lookups(), 2);
    }

    #[test]
    fn peek_lookup_matches_lookup_without_counting() {
        let mut tcam = Tcam::new(16);
        tcam.insert(TcamEntry::new(0, 0x0, 20), "outer").unwrap();
        tcam.insert(TcamEntry::new(0, 0x4000, 12), "inner").unwrap();
        let peeked = tcam.peek_lookup(0, 0x4010).map(|(e, &v)| (e, v));
        assert_eq!(tcam.lookups(), 0, "peek is counter-free");
        let looked = tcam.lookup(0, 0x4010).map(|(e, &v)| (e, v));
        assert_eq!(peeked, looked);
        assert!(tcam.peek_lookup(0, 0x20_0000).is_none());
    }
}
