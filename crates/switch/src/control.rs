//! Switch control-plane CPU model.
//!
//! The general-purpose CPU on the switch hosts MIND's control program:
//! process/memory management, permission assignment, directory-entry
//! allocation, and the bounded-splitting epoch driver (paper Figure 2). It
//! also replicates its state to a backup switch for fault tolerance (§4.4);
//! since control-plane state only changes on metadata operations, the
//! replication overhead is small. This module accounts for control-plane
//! work and models the primary/backup version handshake.

use mind_sim::SimTime;

/// The switch control plane (general-purpose CPU + DRAM).
#[derive(Debug, Clone)]
pub struct ControlPlane {
    syscall_cost: SimTime,
    rule_install_cost: SimTime,
    syscalls_handled: u64,
    rules_installed: u64,
    rules_removed: u64,
    /// Monotone version of control-plane state; bumped on every mutation.
    version: u64,
    /// Version most recently replicated to the backup switch.
    replicated_version: u64,
    replications: u64,
}

impl ControlPlane {
    /// Creates a control plane with the given operation costs.
    pub fn new(syscall_cost: SimTime, rule_install_cost: SimTime) -> Self {
        ControlPlane {
            syscall_cost,
            rule_install_cost,
            syscalls_handled: 0,
            rules_installed: 0,
            rules_removed: 0,
            version: 0,
            replicated_version: 0,
            replications: 0,
        }
    }

    /// Handles one intercepted system call; returns the CPU time consumed.
    pub fn handle_syscall(&mut self) -> SimTime {
        self.syscalls_handled += 1;
        self.version += 1;
        self.syscall_cost
    }

    /// Accounts for installing one data-plane rule (match-action entry or
    /// directory slot) over PCIe; returns the cost.
    pub fn install_rule(&mut self) -> SimTime {
        self.rules_installed += 1;
        self.version += 1;
        self.rule_install_cost
    }

    /// Accounts for removing one data-plane rule.
    pub fn remove_rule(&mut self) -> SimTime {
        self.rules_removed += 1;
        self.version += 1;
        self.rule_install_cost
    }

    /// Replicates state to the backup switch; returns the number of
    /// mutations shipped (0 means the backup was already current).
    pub fn replicate_to_backup(&mut self) -> u64 {
        let delta = self.version - self.replicated_version;
        self.replicated_version = self.version;
        if delta > 0 {
            self.replications += 1;
        }
        delta
    }

    /// Whether a backup promoted now would observe the latest state.
    pub fn backup_is_current(&self) -> bool {
        self.replicated_version == self.version
    }

    /// Reconstructs data-plane state at the backup after a switch failure:
    /// in the model this is just a check that replication was current,
    /// returning the replayable version.
    pub fn failover(&self) -> u64 {
        self.replicated_version
    }

    /// System calls handled.
    pub fn syscalls_handled(&self) -> u64 {
        self.syscalls_handled
    }

    /// Rules installed into the data plane.
    pub fn rules_installed(&self) -> u64 {
        self.rules_installed
    }

    /// Rules removed from the data plane.
    pub fn rules_removed(&self) -> u64 {
        self.rules_removed
    }

    /// Current state version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Replication rounds that shipped at least one mutation.
    pub fn replications(&self) -> u64 {
        self.replications
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp() -> ControlPlane {
        ControlPlane::new(SimTime::from_micros(15), SimTime::from_micros(2))
    }

    #[test]
    fn syscalls_cost_time_and_bump_version() {
        let mut c = cp();
        assert_eq!(c.handle_syscall(), SimTime::from_micros(15));
        assert_eq!(c.syscalls_handled(), 1);
        assert_eq!(c.version(), 1);
    }

    #[test]
    fn rule_lifecycle_counted() {
        let mut c = cp();
        c.install_rule();
        c.install_rule();
        c.remove_rule();
        assert_eq!(c.rules_installed(), 2);
        assert_eq!(c.rules_removed(), 1);
        assert_eq!(c.version(), 3);
    }

    #[test]
    fn replication_ships_deltas_once() {
        let mut c = cp();
        c.handle_syscall();
        c.install_rule();
        assert!(!c.backup_is_current());
        assert_eq!(c.replicate_to_backup(), 2);
        assert!(c.backup_is_current());
        assert_eq!(c.replicate_to_backup(), 0, "no new mutations");
        assert_eq!(c.replications(), 1);
    }

    #[test]
    fn failover_returns_replicated_version() {
        let mut c = cp();
        c.handle_syscall();
        c.replicate_to_backup();
        c.install_rule(); // Not yet replicated.
        assert_eq!(c.failover(), 1, "backup lags by the unreplicated rule");
    }
}
