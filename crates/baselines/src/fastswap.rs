//! FastSwap-like swap-based disaggregated memory (paper §7, [12]).
//!
//! FastSwap exposes far memory through the kernel swap path: a page fault
//! fetches the page from a memory blade over RDMA, evictions write dirty
//! victims back. It is fast and scales nearly linearly *within* one compute
//! blade — but processes cannot share memory across blades, so compute
//! elasticity stops at a single blade (§2.2 "Non-transparent designs").
//!
//! In the model, each compute blade runs an *independent* swap domain: no
//! coherence, no cross-blade visibility. The evaluation harness only ever
//! runs FastSwap on one blade, matching the paper.

use mind_blade::{page_base, DramCache, MemoryBlade, PAGE_SIZE};
use mind_core::addr::VA_BASE;
use mind_core::system::{AccessKind, AccessOutcome, LatencyBreakdown, MemorySystem};
use mind_net::fabric::Fabric;
use mind_net::link::LatencyConfig;
use mind_net::node::NodeId;
use mind_net::packet::{Packet, PacketKind};
use mind_sim::stats::Metrics;
use mind_sim::SimTime;

/// FastSwap configuration.
#[derive(Debug, Clone, Copy)]
pub struct FastSwapConfig {
    /// Compute blades (only blade 0 is meaningful; others fault
    /// independently with no shared state).
    pub n_compute: u16,
    /// Memory blades backing the swap device.
    pub n_memory: u16,
    /// Local DRAM cache per blade, in pages.
    pub cache_pages: u32,
    /// Virtual address span per memory blade.
    pub blade_span: u64,
    /// Physical bytes per memory blade.
    pub memory_blade_bytes: u64,
    /// Calibrated latencies (shared with MIND for a fair comparison).
    pub latency: LatencyConfig,
}

impl Default for FastSwapConfig {
    fn default() -> Self {
        FastSwapConfig {
            n_compute: 1,
            n_memory: 8,
            cache_pages: 131_072,
            blade_span: 1 << 34,
            memory_blade_bytes: 1 << 34,
            latency: LatencyConfig::default(),
        }
    }
}

impl FastSwapConfig {
    /// A FastSwap system scaled for a workload of `footprint_pages`
    /// (single compute blade — FastSwap cannot share across blades), with
    /// the same cache ratio as
    /// [`mind_core::cluster::MindConfig::scaled_to`].
    pub fn scaled_to(footprint_pages: u64) -> Self {
        FastSwapConfig {
            n_compute: 1,
            cache_pages: mind_core::cluster::scaled_cache_pages(footprint_pages),
            ..Default::default()
        }
    }
}

/// The FastSwap system model.
#[derive(Debug)]
pub struct FastSwapSystem {
    cfg: FastSwapConfig,
    fabric: Fabric,
    caches: Vec<DramCache>,
    memory: Vec<MemoryBlade>,
    next_alloc: u64,
    accesses: u64,
    local_hits: u64,
    remote_accesses: u64,
}

impl FastSwapSystem {
    /// Builds the system.
    pub fn new(cfg: FastSwapConfig) -> Self {
        FastSwapSystem {
            fabric: Fabric::new(cfg.n_compute, cfg.n_memory, cfg.latency),
            caches: (0..cfg.n_compute)
                .map(|_| DramCache::new(cfg.cache_pages))
                .collect(),
            memory: (0..cfg.n_memory)
                .map(|_| MemoryBlade::new(cfg.memory_blade_bytes))
                .collect(),
            next_alloc: VA_BASE,
            cfg,
            accesses: 0,
            local_hits: 0,
            remote_accesses: 0,
        }
    }

    fn memory_blade_of(&self, vaddr: u64) -> u16 {
        (((vaddr - VA_BASE) / self.cfg.blade_span) % self.cfg.n_memory as u64) as u16
    }

    fn swap_in(&mut self, now: SimTime, blade: u16, page: u64) -> SimTime {
        let mb = self.memory_blade_of(page);
        let req = Packet::new(
            NodeId::Compute(blade),
            NodeId::Memory(mb),
            PacketKind::RdmaReadReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let t = self.fabric.send(now, &req) + self.cfg.latency.memory_service;
        let _ = self.memory[mb as usize].read_page_nodata((page - VA_BASE) >> 12);
        let resp = Packet::new(
            NodeId::Memory(mb),
            NodeId::Compute(blade),
            PacketKind::RdmaReadResp {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        self.fabric.send(t, &resp)
    }

    fn swap_out(&mut self, now: SimTime, blade: u16, page: u64) {
        let mb = self.memory_blade_of(page);
        let pkt = Packet::new(
            NodeId::Compute(blade),
            NodeId::Memory(mb),
            PacketKind::RdmaWriteReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let _ = self.fabric.send(now, &pkt);
        let _ = self.memory[mb as usize].write_page_nodata((page - VA_BASE) >> 12);
    }
}

impl MemorySystem for FastSwapSystem {
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome {
        self.accesses += 1;
        let page = page_base(vaddr);
        let cache = &mut self.caches[blade as usize];
        match cache.access(page, kind.is_write()) {
            mind_blade::CacheLookup::Hit => {
                self.local_hits += 1;
                AccessOutcome {
                    latency: LatencyBreakdown::local(self.cfg.latency.local_dram),
                    ..Default::default()
                }
            }
            // Swap PTEs are writable; the first store to a page swapped in
            // by a read fault just sets the dirty bit — no fault, no
            // coherence, local DRAM cost.
            mind_blade::CacheLookup::NeedUpgrade => {
                self.caches[blade as usize].grant_write(page);
                self.local_hits += 1;
                AccessOutcome {
                    latency: LatencyBreakdown::local(self.cfg.latency.local_dram),
                    ..Default::default()
                }
            }
            mind_blade::CacheLookup::Miss => {
                self.remote_accesses += 1;
                let t0 = now + self.cfg.latency.fault_handler;
                let done = self.swap_in(t0, blade, page);
                // The swap path maps pages writable; a clean page is still
                // only swapped out if later dirtied (the cache tracks a
                // writable insert as dirty, matching a faulting store; for
                // read faults keep it clean by inserting read-write via
                // grant-on-first-write semantics).
                let evicted = self.caches[blade as usize].insert(page, kind.is_write(), None);
                if let Some(ev) = evicted {
                    if ev.dirty {
                        // Victim selected and written back at fault entry;
                        // the DMA overlaps the swap-in.
                        self.swap_out(t0, blade, ev.page);
                    }
                }
                AccessOutcome {
                    latency: LatencyBreakdown {
                        fault: self.cfg.latency.fault_handler,
                        network: done.saturating_sub(t0),
                        ..Default::default()
                    },
                    remote: true,
                    ..Default::default()
                }
            }
        }
    }

    fn n_compute(&self) -> u16 {
        self.cfg.n_compute
    }

    fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.add("accesses", self.accesses);
        m.add("local_hits", self.local_hits);
        m.add("remote_accesses", self.remote_accesses);
        let evictions: u64 = self.caches.iter().map(|c| c.evictions()).sum();
        m.add("evictions", evictions);
        m
    }

    fn alloc(&mut self, len: u64) -> u64 {
        // Bump allocation over the same VA layout as MIND's partition so
        // traces address the same bytes.
        let size = len.max(PAGE_SIZE).next_power_of_two();
        let base = self.next_alloc.next_multiple_of(size);
        self.next_alloc = base + size;
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> FastSwapSystem {
        FastSwapSystem::new(FastSwapConfig {
            cache_pages: 4,
            ..Default::default()
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut s = system();
        let base = s.alloc(1 << 20);
        let out = s.access(SimTime::ZERO, 0, base, AccessKind::Read);
        assert!(out.remote);
        let us = out.latency.total().as_micros_f64();
        assert!((8.0..11.0).contains(&us), "swap-in = {us:.1}us");
        let out = s.access(SimTime::from_micros(20), 0, base, AccessKind::Read);
        assert!(!out.remote);
        assert_eq!(out.latency.total(), SimTime::from_nanos(80));
    }

    #[test]
    fn never_any_invalidations() {
        let mut s = system();
        let base = s.alloc(1 << 20);
        // Two blades write the same page: no coherence — swap domains are
        // independent (this is exactly FastSwap's non-transparency).
        s.access(SimTime::ZERO, 0, base, AccessKind::Write);
        let out = s.access(SimTime::ZERO, 0, base + 4096, AccessKind::Write);
        assert_eq!(out.invalidations, 0);
        assert_eq!(s.metrics().get("remote_accesses"), 2);
    }

    #[test]
    fn eviction_swaps_out_dirty_pages() {
        let mut s = system();
        let base = s.alloc(1 << 20);
        // Fill the 4-page cache with dirty pages, then overflow it.
        for i in 0..5u64 {
            s.access(SimTime::ZERO, 0, base + i * PAGE_SIZE, AccessKind::Write);
        }
        assert_eq!(s.metrics().get("evictions"), 1);
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut s = system();
        let a = s.alloc(10_000);
        let b = s.alloc(10_000);
        assert_eq!(a % 16384, 0);
        assert!(b >= a + 16384);
    }
}
