//! Baseline systems MIND is compared against (paper §7, "Compared
//! systems").
//!
//! - [`gam`]: GAM adapted to the disaggregated setting — a *software* DSM
//!   whose cache directory lives at compute blades (home-node partitioned),
//!   with the weaker PSO consistency model and per-access user-level
//!   library overhead. Its local accesses are ~10× slower than MIND's
//!   hardware-MMU path, but its weaker consistency lets writes overlap.
//! - [`fastswap`]: FastSwap, a state-of-the-art swap-based disaggregated
//!   memory system. Page-fault driven like MIND, but with **no sharing
//!   across compute blades** — it cannot transparently scale a process
//!   beyond one blade (the non-transparent end of the design space, §2.2).
//!
//! Both implement [`mind_core::system::MemorySystem`] so the trace runner
//! replays identical workloads against all three systems.

pub mod fastswap;
pub mod gam;

pub use fastswap::{FastSwapConfig, FastSwapSystem};
pub use gam::{GamConfig, GamSystem};
