//! GAM-like software DSM adapted to disaggregation (paper §7, [35]).
//!
//! GAM is a *compute-centric* transparent design (§2.2): the cache
//! directory is partitioned across compute blades by home node, coherence
//! runs in a user-level library, and the consistency model is the weaker
//! PSO (writes propagate asynchronously). The performance-relevant traits
//! the paper calls out, all modelled here:
//!
//! - **Software access checks**: every load/store goes through the library
//!   (permission check under a lock), making *local* accesses ~10× slower
//!   than MIND's hardware-MMU path — and contended beyond a few threads per
//!   blade (GAM turns sub-linear past 4 threads, Figure 5 left).
//! - **Home-node indirection**: a miss consults the page's home compute
//!   blade before (or in parallel with) the data fetch; invalidations are
//!   unicast from the home, one message per sharer (no switch multicast).
//! - **PSO writes**: write misses return after buffering locally; the
//!   protocol completes in the background, and only later *reads* of a busy
//!   page stall. This is why GAM keeps scaling on write-heavy workloads
//!   where MIND's TSO page faults serialize (Figure 5 center).

use std::collections::HashMap;

use mind_blade::{page_base, DramCache, InvalidationQueue, MemoryBlade, PAGE_SIZE};
use mind_core::addr::VA_BASE;
use mind_core::system::{AccessKind, AccessOutcome, LatencyBreakdown, MemorySystem};
use mind_net::fabric::Fabric;
use mind_net::link::LatencyConfig;
use mind_net::node::{BladeSet, NodeId};
use mind_net::packet::{Packet, PacketKind};
use mind_sim::stats::Metrics;
use mind_sim::SimTime;

/// GAM configuration.
#[derive(Debug, Clone, Copy)]
pub struct GamConfig {
    /// Compute blades (directory homes are partitioned across these).
    pub n_compute: u16,
    /// Memory blades.
    pub n_memory: u16,
    /// Local cache per blade, in pages.
    pub cache_pages: u32,
    /// Virtual address span per memory blade.
    pub blade_span: u64,
    /// Physical bytes per memory blade.
    pub memory_blade_bytes: u64,
    /// Shared latency calibration.
    pub latency: LatencyConfig,
    /// User-level library overhead per access (lock + permission check).
    /// 800 ns makes GAM's local accesses 10× MIND's 80 ns DRAM hit (§7.1).
    pub software_overhead: SimTime,
    /// Home-node software service time per directory request.
    pub home_service: SimTime,
    /// Threads co-located per blade (drives software-lock contention).
    pub threads_per_blade: u16,
    /// Threads beyond which the software path contends (GAM is linear to 4
    /// threads in Figure 5 left).
    pub contention_knee: u16,
}

impl Default for GamConfig {
    fn default() -> Self {
        GamConfig {
            n_compute: 1,
            n_memory: 8,
            cache_pages: 131_072,
            blade_span: 1 << 34,
            memory_blade_bytes: 1 << 34,
            latency: LatencyConfig::default(),
            software_overhead: SimTime::from_nanos(800),
            home_service: SimTime::from_nanos(1_000),
            threads_per_blade: 1,
            contention_knee: 4,
        }
    }
}

impl GamConfig {
    /// A GAM system scaled for a workload of `footprint_pages`, with the
    /// same cache ratio as [`mind_core::cluster::MindConfig::scaled_to`]
    /// so cross-system comparisons stay fair.
    pub fn scaled_to(footprint_pages: u64, n_compute: u16, threads_per_blade: u16) -> Self {
        GamConfig {
            n_compute,
            cache_pages: mind_core::cluster::scaled_cache_pages(footprint_pages),
            threads_per_blade,
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Invalid,
    Shared,
    Modified,
}

#[derive(Debug, Clone)]
struct PageEntry {
    state: PageState,
    sharers: BladeSet,
    busy_until: SimTime,
}

/// The GAM system model.
#[derive(Debug)]
pub struct GamSystem {
    cfg: GamConfig,
    fabric: Fabric,
    caches: Vec<DramCache>,
    /// Software directory-service queue per home blade.
    home_queues: Vec<InvalidationQueue>,
    memory: Vec<MemoryBlade>,
    /// Page-granularity directory (software: effectively unbounded).
    directory: HashMap<u64, PageEntry>,
    next_alloc: u64,
    accesses: u64,
    local_hits: u64,
    remote_accesses: u64,
    invalidations: u64,
    flushed_pages: u64,
    async_writes: u64,
}

impl GamSystem {
    /// Builds the system.
    pub fn new(cfg: GamConfig) -> Self {
        GamSystem {
            fabric: Fabric::new(cfg.n_compute, cfg.n_memory, cfg.latency),
            caches: (0..cfg.n_compute)
                .map(|_| DramCache::new(cfg.cache_pages))
                .collect(),
            home_queues: (0..cfg.n_compute)
                .map(|_| InvalidationQueue::new())
                .collect(),
            memory: (0..cfg.n_memory)
                .map(|_| MemoryBlade::new(cfg.memory_blade_bytes))
                .collect(),
            directory: HashMap::new(),
            next_alloc: VA_BASE,
            cfg,
            accesses: 0,
            local_hits: 0,
            remote_accesses: 0,
            invalidations: 0,
            flushed_pages: 0,
            async_writes: 0,
        }
    }

    /// Effective software overhead under thread contention on one blade.
    fn software_cost(&self) -> SimTime {
        let t = self.cfg.threads_per_blade;
        let knee = self.cfg.contention_knee;
        if t <= knee {
            self.cfg.software_overhead
        } else {
            // Each extra thread adds lock contention to the shared library
            // path.
            let factor = 1.0 + 0.25 * (t - knee) as f64;
            self.cfg.software_overhead.scale(factor)
        }
    }

    fn home_of(&self, page: u64) -> u16 {
        ((page >> 12) % self.cfg.n_compute as u64) as u16
    }

    fn memory_blade_of(&self, vaddr: u64) -> u16 {
        (((vaddr - VA_BASE) / self.cfg.blade_span) % self.cfg.n_memory as u64) as u16
    }

    /// Requester → home directory request; returns service completion time.
    fn home_leg(&mut self, t: SimTime, blade: u16, home: u16) -> SimTime {
        let arrive = if home == blade {
            t
        } else {
            let req = Packet::new(
                NodeId::Compute(blade),
                NodeId::Compute(home),
                PacketKind::CtrlSyscall { call: 0 },
            );
            self.fabric.send(t, &req)
        };
        self.home_queues[home as usize]
            .enqueue(arrive, self.cfg.home_service)
            .done
    }

    /// Home → requester reply.
    fn reply_leg(&mut self, t: SimTime, home: u16, blade: u16) -> SimTime {
        if home == blade {
            t
        } else {
            let resp = Packet::new(
                NodeId::Compute(home),
                NodeId::Compute(blade),
                PacketKind::CtrlResp { ret: 0 },
            );
            self.fabric.send(t, &resp)
        }
    }

    /// Data fetch from the memory blade to the requester.
    fn fetch(&mut self, t: SimTime, blade: u16, page: u64) -> SimTime {
        let mb = self.memory_blade_of(page);
        let req = Packet::new(
            NodeId::Compute(blade),
            NodeId::Memory(mb),
            PacketKind::RdmaReadReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let t = self.fabric.send(t, &req) + self.cfg.latency.memory_service;
        let _ = self.memory[mb as usize].read_page_nodata((page - VA_BASE) >> 12);
        let resp = Packet::new(
            NodeId::Memory(mb),
            NodeId::Compute(blade),
            PacketKind::RdmaReadResp {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        self.fabric.send(t, &resp)
    }

    /// Dirty page write-back from a blade to its memory blade.
    fn writeback(&mut self, t: SimTime, blade: u16, page: u64) -> SimTime {
        let mb = self.memory_blade_of(page);
        let pkt = Packet::new(
            NodeId::Compute(blade),
            NodeId::Memory(mb),
            PacketKind::RdmaWriteReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let done = self.fabric.send(t, &pkt) + self.cfg.latency.memory_service;
        let _ = self.memory[mb as usize].write_page_nodata((page - VA_BASE) >> 12);
        done
    }

    /// Home-driven unicast invalidation of `victims` for one page.
    /// Returns when the last ACK reached the home.
    fn invalidate(
        &mut self,
        t_home: SimTime,
        home: u16,
        page: u64,
        victims: BladeSet,
        downgrade: bool,
    ) -> SimTime {
        let mut done = t_home;
        for victim in victims.iter() {
            self.invalidations += 1;
            // Unicast request (software loop at the home — one message per
            // sharer; no switch multicast for GAM).
            let req = Packet::new(
                NodeId::Compute(home),
                NodeId::Compute(victim),
                PacketKind::CtrlSyscall { call: 1 },
            );
            let arrive = if victim == home {
                t_home
            } else {
                self.fabric.send(t_home, &req)
            };
            let out = self.caches[victim as usize].invalidate_region(page, 12, downgrade);
            let mut t = arrive + self.cfg.home_service;
            for (p, _) in out.flushed {
                t = self.writeback(t, victim, p);
                self.flushed_pages += 1;
            }
            let ack_at = self.reply_leg(t, victim, home);
            done = done.max(ack_at);
        }
        done
    }
}

impl MemorySystem for GamSystem {
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome {
        self.accesses += 1;
        let sw = self.software_cost();
        let page = page_base(vaddr);
        let probe = self.caches[blade as usize].access(page, kind.is_write());
        if probe == mind_blade::CacheLookup::Hit {
            self.local_hits += 1;
            return AccessOutcome {
                latency: LatencyBreakdown {
                    software: sw,
                    dram: self.cfg.latency.local_dram,
                    ..Default::default()
                },
                ..Default::default()
            };
        }

        // Library-level "fault": consult the home node.
        self.remote_accesses += 1;
        let home = self.home_of(page);
        let t0 = now + sw;
        let entry = self
            .directory
            .entry(page)
            .or_insert(PageEntry {
                state: PageState::Invalid,
                sharers: BladeSet::EMPTY,
                busy_until: SimTime::ZERO,
            })
            .clone();
        let t_start = t0.max(entry.busy_until);
        let t_home = self.home_leg(t_start, blade, home);

        let need_data = probe == mind_blade::CacheLookup::Miss;
        let mut invalidations = 0u32;
        let flushed_before = self.flushed_pages;
        let done;
        match (entry.state, kind) {
            (PageState::Invalid, _) => {
                // Grant + fetch in parallel (GAM overlaps the directory
                // round with the speculative data fetch).
                let grant = self.reply_leg(t_home, home, blade);
                let fetch = if need_data {
                    self.fetch(t_start, blade, page)
                } else {
                    t_start
                };
                done = grant.max(fetch);
            }
            (PageState::Shared, AccessKind::Read) => {
                let grant = self.reply_leg(t_home, home, blade);
                let fetch = if need_data {
                    self.fetch(t_start, blade, page)
                } else {
                    t_start
                };
                done = grant.max(fetch);
            }
            (PageState::Shared, AccessKind::Write) => {
                let mut victims = entry.sharers;
                victims.remove(blade);
                invalidations = victims.len();
                let inv_done = if victims.is_empty() {
                    t_home
                } else {
                    self.invalidate(t_home, home, page, victims, false)
                };
                let grant = self.reply_leg(inv_done, home, blade);
                let fetch = if need_data {
                    self.fetch(t_start, blade, page)
                } else {
                    t_start
                };
                done = grant.max(fetch);
            }
            (PageState::Modified, _) => {
                let owner = entry.sharers;
                if owner.sole_member() == Some(blade) {
                    // Re-fetch of our own (previously evicted) page.
                    let grant = self.reply_leg(t_home, home, blade);
                    let fetch = if need_data {
                        self.fetch(t_start, blade, page)
                    } else {
                        t_start
                    };
                    done = grant.max(fetch);
                } else {
                    invalidations = owner.len();
                    let downgrade = kind == AccessKind::Read;
                    let inv_done = self.invalidate(t_home, home, page, owner, downgrade);
                    // Data is valid at the memory blade only after the
                    // owner's flush: fetch follows sequentially.
                    let fetch = if need_data {
                        self.fetch(inv_done, blade, page)
                    } else {
                        self.reply_leg(inv_done, home, blade)
                    };
                    done = fetch;
                }
            }
        }

        // Directory update at the home.
        let e = self.directory.get_mut(&page).expect("inserted above");
        match kind {
            AccessKind::Read => {
                if e.state == PageState::Modified && e.sharers.sole_member() == Some(blade) {
                    // Owner re-read keeps M.
                } else {
                    e.state = PageState::Shared;
                    e.sharers.insert(blade);
                }
            }
            AccessKind::Write => {
                e.state = PageState::Modified;
                e.sharers = BladeSet::singleton(blade);
            }
        }
        e.busy_until = done;

        // Install locally.
        if need_data {
            let evicted = self.caches[blade as usize].insert(page, kind.is_write(), None);
            if let Some(ev) = evicted {
                if ev.dirty {
                    // Victim write-back issued at fault entry, overlapping
                    // the protocol.
                    self.writeback(t0, blade, ev.page);
                }
            }
        } else if kind.is_write() {
            self.caches[blade as usize].grant_write(page);
        }

        let flushed = (self.flushed_pages - flushed_before) as u32;
        // PSO: writes buffer locally and complete asynchronously.
        if kind.is_write() {
            self.async_writes += 1;
            return AccessOutcome {
                latency: LatencyBreakdown {
                    software: sw,
                    dram: self.cfg.latency.local_dram,
                    ..Default::default()
                },
                remote: true,
                invalidations,
                flushed_pages: flushed,
                ..Default::default()
            };
        }
        AccessOutcome {
            latency: LatencyBreakdown {
                software: sw,
                network: done.saturating_sub(t0),
                ..Default::default()
            },
            remote: true,
            invalidations,
            flushed_pages: flushed,
            ..Default::default()
        }
    }

    fn n_compute(&self) -> u16 {
        self.cfg.n_compute
    }

    fn metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        m.add("accesses", self.accesses);
        m.add("local_hits", self.local_hits);
        m.add("remote_accesses", self.remote_accesses);
        m.add("invalidation_requests", self.invalidations);
        m.add("flushed_pages", self.flushed_pages);
        m.add("async_writes", self.async_writes);
        m.add("directory_entries", self.directory.len() as u64);
        let evictions: u64 = self.caches.iter().map(|c| c.evictions()).sum();
        m.add("evictions", evictions);
        m
    }

    fn alloc(&mut self, len: u64) -> u64 {
        let size = len.max(PAGE_SIZE).next_power_of_two();
        let base = self.next_alloc.next_multiple_of(size);
        self.next_alloc = base + size;
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n_compute: u16, threads: u16) -> GamSystem {
        GamSystem::new(GamConfig {
            n_compute,
            threads_per_blade: threads,
            cache_pages: 1024,
            ..Default::default()
        })
    }

    #[test]
    fn local_hits_pay_software_tax() {
        let mut s = system(1, 1);
        let base = s.alloc(1 << 20);
        s.access(SimTime::ZERO, 0, base, AccessKind::Read);
        let out = s.access(SimTime::from_micros(50), 0, base, AccessKind::Read);
        // 800 ns software + 80 ns DRAM = 10x+ MIND's 80 ns local hit.
        assert_eq!(out.latency.total(), SimTime::from_nanos(880));
        assert_eq!(out.latency.software, SimTime::from_nanos(800));
    }

    #[test]
    fn software_contention_beyond_knee() {
        let uncontended = system(1, 4).software_cost();
        let contended = system(1, 10).software_cost();
        assert_eq!(uncontended, SimTime::from_nanos(800));
        assert!(contended > uncontended * 2, "10 threads: {contended}");
    }

    #[test]
    fn read_miss_latency_comparable_to_mind() {
        let mut s = system(2, 1);
        let base = s.alloc(1 << 20);
        let out = s.access(SimTime::ZERO, 0, base, AccessKind::Read);
        let us = out.latency.total().as_micros_f64();
        assert!((8.0..13.0).contains(&us), "read miss = {us:.1}us");
    }

    #[test]
    fn pso_write_miss_returns_fast() {
        let mut s = system(2, 1);
        let base = s.alloc(1 << 20);
        let out = s.access(SimTime::ZERO, 0, base, AccessKind::Write);
        assert!(out.remote);
        // Thread sees only software + buffer, not the full protocol.
        assert!(out.latency.total() < SimTime::from_micros(2));
    }

    #[test]
    fn subsequent_read_blocks_behind_async_write() {
        let mut s = system(2, 1);
        let base = s.alloc(1 << 20);
        // Blade 0 writes (async); blade 1 reads immediately after: it must
        // wait for the protocol via the page's busy_until.
        s.access(SimTime::ZERO, 0, base, AccessKind::Write);
        let out = s.access(SimTime::from_nanos(100), 1, base, AccessKind::Read);
        let us = out.latency.total().as_micros_f64();
        assert!(us > 9.0, "read blocked behind write completion: {us:.1}us");
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut s = system(2, 1);
        let base = s.alloc(1 << 20);
        s.access(SimTime::ZERO, 0, base, AccessKind::Read);
        s.access(SimTime::ZERO, 1, base, AccessKind::Read);
        let out = s.access(SimTime::from_micros(50), 0, base, AccessKind::Write);
        assert_eq!(out.invalidations, 1, "blade 1 invalidated");
        // Blade 1's copy is gone.
        let again = s.access(SimTime::from_micros(100), 1, base, AccessKind::Read);
        assert!(again.remote);
    }

    #[test]
    fn modified_read_flushes_owner() {
        let mut s = system(2, 1);
        let base = s.alloc(1 << 20);
        s.access(SimTime::ZERO, 0, base, AccessKind::Write);
        let out = s.access(SimTime::from_micros(100), 1, base, AccessKind::Read);
        assert_eq!(out.flushed_pages, 1, "owner's dirty page flushed");
        assert!(out.latency.total() > SimTime::from_micros(10));
    }

    #[test]
    fn page_granularity_directory_no_false_invalidations() {
        let mut s = system(2, 1);
        let base = s.alloc(1 << 20);
        // Dirty two adjacent pages on blade 0.
        s.access(SimTime::ZERO, 0, base, AccessKind::Write);
        s.access(SimTime::ZERO, 0, base + PAGE_SIZE, AccessKind::Write);
        // Blade 1 reads page 0: only page 0 flushes (no region coupling).
        let out = s.access(SimTime::from_micros(100), 1, base, AccessKind::Read);
        assert_eq!(out.flushed_pages, 1);
        assert_eq!(out.false_invalidations, 0);
    }

    #[test]
    fn alloc_matches_mind_layout() {
        let mut s = system(1, 1);
        assert_eq!(s.alloc(4096), VA_BASE);
    }
}
