//! Pure-data descriptions of the systems and workloads a scenario runs.
//!
//! A spec is everything needed to *build* a system or workload, but holds
//! no simulation state itself — specs are `Copy`, `Send`, and cheap, so a
//! scenario table is plain data that can be fanned out across threads and
//! rebuilt identically in any order (the engine's determinism rests on
//! this: construction happens inside the worker, from the spec alone).

use mind_baselines::{FastSwapConfig, FastSwapSystem, GamConfig, GamSystem};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::{ConsistencyModel, MemorySystem};
use mind_service::{MemoryService, ServiceConfig, ServiceReport};
use mind_workloads::gc::{GcConfig, GcWorkload};
use mind_workloads::kvs::{KvsConfig, KvsWorkload};
use mind_workloads::memcached::{MemcachedConfig, MemcachedWorkload};
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::tf::{TfConfig, TfWorkload};
use mind_workloads::trace::Workload;

/// The four real-world workloads of the paper's §7.1, by paper name.
pub const REAL_WORKLOADS: [&str; 4] = ["TF", "GC", "MA", "MC"];

/// Footprint in pages of a workload's region list.
pub fn footprint_pages(regions: &[u64]) -> u64 {
    regions.iter().map(|len| len.div_ceil(4096)).sum()
}

/// Which system a scenario replays against, as configuration data.
#[derive(Debug, Clone, Copy)]
pub enum SystemSpec {
    /// A MIND rack.
    Mind(MindConfig),
    /// The GAM software-DSM baseline.
    Gam(GamConfig),
    /// The FastSwap swap-based baseline.
    FastSwap(FastSwapConfig),
}

impl SystemSpec {
    /// A MIND rack scaled for `regions` (see [`MindConfig::scaled_to`])
    /// under the given consistency model.
    pub fn mind_scaled(regions: &[u64], n_compute: u16, model: ConsistencyModel) -> Self {
        SystemSpec::Mind(MindConfig::scaled_to(footprint_pages(regions), n_compute).consistency(model))
    }

    /// A GAM system scaled for `regions`.
    pub fn gam_scaled(regions: &[u64], n_compute: u16, threads_per_blade: u16) -> Self {
        SystemSpec::Gam(GamConfig::scaled_to(
            footprint_pages(regions),
            n_compute,
            threads_per_blade,
        ))
    }

    /// A FastSwap system scaled for `regions` (single blade).
    pub fn fastswap_scaled(regions: &[u64]) -> Self {
        SystemSpec::FastSwap(FastSwapConfig::scaled_to(footprint_pages(regions)))
    }

    /// Display label: "MIND" / "MIND-PSO" / "MIND-PSO+" / "GAM" /
    /// "FastSwap".
    pub fn label(&self) -> &'static str {
        match self {
            SystemSpec::Mind(cfg) => match cfg.coherence.consistency {
                ConsistencyModel::Tso => "MIND",
                ConsistencyModel::Pso => "MIND-PSO",
                ConsistencyModel::PsoPlus => "MIND-PSO+",
            },
            SystemSpec::Gam(_) => "GAM",
            SystemSpec::FastSwap(_) => "FastSwap",
        }
    }

    /// This spec with a run's trace configuration applied: a pinned mode
    /// (`Off`/`On`/`Full`) overrides the system's own trace config, while
    /// the default `Env` mode leaves the spec untouched. Baselines don't
    /// trace, so only MIND configs change.
    pub fn with_trace(self, trace: mind_obs::TraceConfig) -> Self {
        match (self, trace.mode) {
            (spec, mind_obs::TraceMode::Env) => spec,
            (SystemSpec::Mind(mut cfg), _) => {
                cfg.trace = trace;
                SystemSpec::Mind(cfg)
            }
            (spec, _) => spec,
        }
    }

    /// Builds the system. Called inside engine workers.
    pub fn build(&self) -> Box<dyn MemorySystem> {
        match *self {
            SystemSpec::Mind(cfg) => Box::new(MindCluster::new(cfg)),
            SystemSpec::Gam(cfg) => Box::new(GamSystem::new(cfg)),
            SystemSpec::FastSwap(cfg) => Box::new(FastSwapSystem::new(cfg)),
        }
    }
}

/// A multi-tenant serving scenario, as configuration data: the whole
/// churn × QoS × elasticity axis of `mind_service`, fanned out by the
/// engine like any other scenario (a service run is a pure function of
/// its config, so workers rebuild it identically).
#[derive(Debug, Clone, Copy)]
pub struct ServiceSpec {
    /// Full service configuration (rack + churn + QoS + load model).
    pub cfg: ServiceConfig,
}

impl ServiceSpec {
    /// Wraps a service configuration.
    pub fn new(cfg: ServiceConfig) -> Self {
        ServiceSpec { cfg }
    }

    /// Builds and runs the service. Called inside engine workers.
    pub fn run(&self) -> ServiceReport {
        MemoryService::new(self.cfg).run()
    }
}

/// Which workload a scenario replays, as configuration data.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSpec {
    /// TensorFlow/ResNet-50 ("TF").
    Tf(TfConfig),
    /// GraphChi/PageRank ("GC").
    Gc(GcConfig),
    /// Memcached under YCSB ("MA"/"MC").
    Memcached(MemcachedConfig),
    /// The partitioned Native-KVS store.
    Kvs(KvsConfig),
    /// The §7.2 microbenchmark.
    Micro(MicroConfig),
}

impl WorkloadSpec {
    /// A real-world workload by paper name ("TF", "GC", "MA", "MC") for
    /// `n_threads`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn real(name: &str, n_threads: u16) -> Self {
        match name {
            "TF" => WorkloadSpec::Tf(TfConfig {
                n_threads,
                ..Default::default()
            }),
            "GC" => WorkloadSpec::Gc(GcConfig {
                n_threads,
                ..Default::default()
            }),
            "MA" => WorkloadSpec::Memcached(MemcachedConfig {
                n_threads,
                ..MemcachedConfig::workload_a()
            }),
            "MC" => WorkloadSpec::Memcached(MemcachedConfig {
                n_threads,
                ..MemcachedConfig::workload_c()
            }),
            other => panic!("unknown workload {other}"),
        }
    }

    /// Builds the workload generator. Called inside engine workers.
    pub fn build(&self) -> Box<dyn Workload> {
        match *self {
            WorkloadSpec::Tf(cfg) => Box::new(TfWorkload::new(cfg)),
            WorkloadSpec::Gc(cfg) => Box::new(GcWorkload::new(cfg)),
            WorkloadSpec::Memcached(cfg) => Box::new(MemcachedWorkload::new(cfg)),
            WorkloadSpec::Kvs(cfg) => Box::new(KvsWorkload::new(cfg)),
            WorkloadSpec::Micro(cfg) => Box::new(MicroWorkload::new(cfg)),
        }
    }

    /// Region sizes of the described workload (builds a throwaway
    /// generator; generators are cheap to construct).
    pub fn regions(&self) -> Vec<u64> {
        self.build().regions()
    }

    /// Thread count of the described workload.
    pub fn n_threads(&self) -> u16 {
        match *self {
            WorkloadSpec::Tf(cfg) => cfg.n_threads,
            WorkloadSpec::Gc(cfg) => cfg.n_threads,
            WorkloadSpec::Memcached(cfg) => cfg.n_threads,
            WorkloadSpec::Kvs(cfg) => cfg.n_threads,
            WorkloadSpec::Micro(cfg) => cfg.n_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_sums_page_counts() {
        assert_eq!(footprint_pages(&[4096 * 100, 4096 * 300]), 400);
        assert_eq!(footprint_pages(&[1, 4097]), 3, "partial pages round up");
    }

    #[test]
    fn real_workload_specs_build() {
        for name in REAL_WORKLOADS {
            let spec = WorkloadSpec::real(name, 4);
            assert_eq!(spec.n_threads(), 4);
            assert!(!spec.regions().is_empty());
            let mut wl = spec.build();
            let op = wl.next_op(0);
            assert!((op.region as usize) < spec.regions().len());
        }
    }

    #[test]
    fn service_spec_runs_deterministically() {
        let cfg = ServiceConfig {
            duration: mind_sim::SimTime::from_millis(10),
            ..Default::default()
        };
        let a = ServiceSpec::new(cfg).run();
        let b = ServiceSpec::new(cfg).run();
        assert!(a.tenants_admitted > 0);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn system_specs_build_and_label() {
        let regions = vec![1 << 24];
        let mind = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
        assert_eq!(mind.label(), "MIND");
        assert_eq!(mind.build().n_compute(), 2);
        let pso = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Pso);
        assert_eq!(pso.label(), "MIND-PSO");
        let gam = SystemSpec::gam_scaled(&regions, 2, 10);
        assert_eq!(gam.label(), "GAM");
        assert_eq!(gam.build().n_compute(), 2);
        let fs = SystemSpec::fastswap_scaled(&regions);
        assert_eq!(fs.label(), "FastSwap");
        assert_eq!(fs.build().n_compute(), 1);
    }
}
