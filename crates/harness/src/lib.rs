//! `mind_harness` — the declarative experiment engine behind the
//! evaluation stack.
//!
//! The paper's evaluation (§7–§8) replays identical traces against
//! MIND/GAM/FastSwap while sweeping blades, threads, directory sizes, and
//! protocols. This crate turns each such experiment point into *data*:
//!
//! - [`spec`]: [`SystemSpec`]/[`WorkloadSpec`] — `Copy` factory
//!   descriptions of what to build (system kind + config, workload +
//!   config);
//! - [`scenario`]: a [`Scenario`] is a named spec triple (system,
//!   workload, [`RunConfig`]) or a custom deterministic measurement; a
//!   `Vec<Scenario>` is a scenario table;
//! - [`engine`]: the [`Engine`] fans a table across `std::thread` workers
//!   (default `available_parallelism`, override with `MIND_THREADS`),
//!   collecting results by scenario index so parallel output is
//!   byte-identical to a serial run;
//! - [`json`]/[`report`]: a hand-rolled JSON writer emitting per-scenario
//!   metrics and latency breakdowns to `BENCH_<suite>.json`.
//!
//! ```
//! use mind_core::system::ConsistencyModel;
//! use mind_harness::{Engine, Scenario, SystemSpec, WorkloadSpec};
//! use mind_workloads::runner::RunConfig;
//!
//! let workload = WorkloadSpec::real("TF", 4);
//! let regions = workload.regions();
//! let table = vec![Scenario::replay(
//!     "demo/TF/MIND",
//!     SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso),
//!     workload,
//!     RunConfig { ops_per_thread: 500, threads_per_blade: 2, ..Default::default() },
//! )];
//! let results = Engine::from_env().run(table);
//! assert!(results[0].report().total_ops > 0);
//! ```
//!
//! [`RunConfig`]: mind_workloads::runner::RunConfig

pub mod engine;
pub mod json;
pub mod report;
pub mod scenario;
pub mod spec;

pub use engine::Engine;
pub use json::Json;
pub use scenario::{ReplaySpec, Scenario, ScenarioKind, ScenarioOutput, ScenarioResult};
pub use spec::{footprint_pages, ServiceSpec, SystemSpec, WorkloadSpec, REAL_WORKLOADS};
