//! The experiment engine: executes a scenario table across worker threads
//! with results collected by scenario index, so parallel output is
//! byte-identical to a serial run.
//!
//! Determinism argument: each scenario builds its own system and workload
//! from pure-data specs *inside* the worker, shares no state with other
//! scenarios, and the simulation itself is a pure function of its
//! configuration and seeds. Threads only decide *when* a scenario runs,
//! never *what* it computes; reassembling results by index erases the
//! scheduling order. `MIND_THREADS=1` forces a serial run (the reference
//! ordering the determinism tests compare against).
//!
//! While a table runs, the engine claims its extra workers from the
//! process-wide [`mind_sim::threads`] budget. The worker count itself is
//! an explicit override (`MIND_THREADS` or [`Engine::new`]) and is
//! honoured verbatim; the claim exists so *nested* polite consumers —
//! a scenario calling `mind_workloads::shard::run_sharded` inside a
//! worker — see no headroom and degrade to their sequential path instead
//! of multiplying the two thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mind_sim::threads;

use crate::scenario::{Scenario, ScenarioResult};

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = mind_sim::env::THREADS_ENV;

/// Executes scenario tables.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// An engine with an explicit worker count (min 1).
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// An engine sized from the environment: `MIND_THREADS` if set and
    /// parseable, otherwise `std::thread::available_parallelism`
    /// (the [`mind_sim::env::threads`] policy).
    pub fn from_env() -> Self {
        Engine::new(mind_sim::env::threads())
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every scenario and returns results in table order. With
    /// `MIND_PROFILE` set, per-scenario and whole-table wall times
    /// accumulate under `engine.scenario` / `engine.table` and are
    /// printed to stderr when the table completes.
    pub fn run(&self, scenarios: Vec<Scenario>) -> Vec<ScenarioResult> {
        let results = self.run_inner(scenarios);
        mind_obs::profile::report_stderr("engine");
        results
    }

    fn run_inner(&self, scenarios: Vec<Scenario>) -> Vec<ScenarioResult> {
        let _table_timer = mind_obs::profile::scope("engine.table");
        let n = scenarios.len();
        if self.threads == 1 || n <= 1 {
            return scenarios
                .iter()
                .map(|s| {
                    let _t = mind_obs::profile::scope("engine.scenario");
                    s.execute()
                })
                .collect();
        }

        // Work-stealing by index: a shared cursor hands out scenarios, and
        // each worker writes its result into the slot of the scenario's
        // index — output order is the table order, not completion order.
        let jobs: Vec<Mutex<Option<Scenario>>> =
            scenarios.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        // Account the extra workers in the process-wide ledger for the
        // duration of the table (released on drop).
        let workers = self.threads.min(n);
        let _claim = threads::budget().claim(workers - 1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i].lock().unwrap().take().expect("job taken once");
                    let _t = mind_obs::profile::scope("engine.scenario");
                    let result = job.execute();
                    drop(_t);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every scenario executed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOutput;

    fn table(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                Scenario::custom(format!("s{i}"), move || {
                    // Uneven work so completion order differs from table
                    // order under parallel execution.
                    let spin = (n - i) * 10_000;
                    let mut acc = 0u64;
                    for k in 0..spin as u64 {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    ScenarioOutput::default().value("i", i as f64)
                })
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_table_order() {
        for threads in [1, 2, 8] {
            let results = Engine::new(threads).run(table(16));
            for (i, r) in results.iter().enumerate() {
                assert_eq!(r.name, format!("s{i}"));
                assert_eq!(r.value("i"), i as f64);
            }
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Engine::new(0).threads(), 1);
    }

    #[test]
    fn empty_table_is_fine() {
        assert!(Engine::new(4).run(Vec::new()).is_empty());
    }

    #[test]
    fn env_policy_parses_mind_threads() {
        // The parse policy itself lives (and is unit-tested) in
        // `mind_sim::env`; this pins the engine to it.
        assert_eq!(mind_sim::env::parse_threads(Some("3")), 3);
        assert!(mind_sim::env::parse_threads(None) >= 1);
    }
}
