//! A minimal hand-rolled JSON document model and writer (no crates.io
//! dependencies, offline-friendly).
//!
//! Objects preserve insertion order and all rendering is deterministic —
//! the property the engine's byte-identical-output guarantee depends on.
//! Floats render via Rust's shortest-roundtrip `Display` (never `NaN`/
//! `inf`, which have no JSON spelling; they render as `null`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON numbers are not limited to f64 range).
    Int(i128),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the document, pretty-printed with two-space indentation and
    /// a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-7).render(), "-7\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::str("hi").render(), "\"hi\"\n");
    }

    #[test]
    fn strings_escape_specials() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn containers_nest_and_keep_order() {
        let doc = Json::obj([
            ("z", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = doc.render();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap(), "insertion order kept");
        assert!(text.contains("\"empty\": {}"));
        let expected = "{\n  \"z\": 1,\n  \"a\": [\n    1,\n    2\n  ],\n  \"empty\": {}\n}\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn integers_stay_exact_beyond_f64() {
        let big = (1i128 << 63) + 1;
        assert_eq!(Json::Int(big).render().trim(), big.to_string());
    }
}
