//! Serializing scenario results into `BENCH_<suite>.json` perf reports.
//!
//! Schema (stable, hand-rolled — see `crates/harness/src/json.rs`):
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "generator": "v0.1.0-12-gabc1234",   // git describe (or MIND_GIT_DESCRIBE)
//!   "suite": "fig5_intra",
//!   "scenarios": [
//!     {
//!       "name": "fig5_intra/TF/MIND/t1",
//!       "workload": "TF",            // replay scenarios only
//!       "runtime_ns": 123,
//!       "total_ops": 400000,
//!       "mops": 1.5,
//!       "remote_per_op": 0.01,
//!       "invalidations_per_op": 0.0,
//!       "flushed_per_op": 0.0,
//!       "mean_remote_ns": 9100.0,
//!       "latency_ns": { "fault": 1, "network": 2, "inv_queue": 3,
//!                        "inv_tlb": 4, "software": 5, "overlapped": 6 },
//!       "latency_percentiles_ns": { "p50": 1, "p99": 2, "p999": 3 },
//!       "window_metrics": { "...": 0 },
//!       "metrics": { "...": 0 },
//!       "timeseries": { "interval_ns": 1000000, "buckets": [ { "...": 0 } ] },
//!                                    // replay scenarios when tracing is on
//!       "service": { "...": 0 },     // service scenarios: churn totals,
//!                                    // per-class and per-tenant SLOs
//!       "values": { "...": 0.0 },    // custom scenarios
//!       "series": { "name": [[x, y], ...] }
//!     }
//!   ],
//!   "aggregate": {                    // Metrics::merge over all replays
//!     "replayed_scenarios": 3,
//!     "total_ops": 1200000,
//!     "runtime_ns_sum": 456,
//!     "window_metrics": { "...": 0 }
//!   }
//! }
//! ```

use std::path::PathBuf;
use std::sync::OnceLock;

use mind_obs::{chrome_process_name, TraceData, WindowSeries};
use mind_service::{ServiceReport, TenantSlo};
use mind_sim::stats::{Histogram, Metrics};

use crate::json::Json;
use crate::scenario::ScenarioResult;

/// BENCH JSON schema version. Bump when the document shape changes so
/// downstream consumers can tell versions apart instead of sniffing keys.
/// Version 2 added this field, `generator`, and the optional `timeseries`
/// sections.
pub const SCHEMA_VERSION: i128 = 2;

/// The generator string stamped into every suite document:
/// `MIND_GIT_DESCRIBE` when set (CI pins it), otherwise `git describe
/// --always --dirty` resolved once per process, otherwise `"unknown"`.
pub fn generator() -> &'static str {
    static GEN: OnceLock<String> = OnceLock::new();
    GEN.get_or_init(|| {
        if let Ok(s) = std::env::var("MIND_GIT_DESCRIBE") {
            if !s.is_empty() {
                return s;
            }
        }
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// Windowed telemetry as JSON: the bucket width plus one object per
/// virtual-time bucket (including empty gap buckets, so the time axis is
/// contiguous). `mops` is the bucket's throughput in million ops/sec.
fn series_json(s: &WindowSeries) -> Json {
    let interval_ns = s.interval().as_nanos();
    Json::obj([
        ("interval_ns", Json::Int(interval_ns as i128)),
        (
            "buckets",
            Json::Arr(
                s.buckets()
                    .iter()
                    .enumerate()
                    .map(|(i, b)| {
                        Json::obj([
                            ("t_ns", Json::Int((i as u64 * interval_ns) as i128)),
                            ("ops", Json::Int(b.ops as i128)),
                            (
                                "mops",
                                Json::Num(b.ops as f64 * 1000.0 / interval_ns as f64),
                            ),
                            ("remote", Json::Int(b.remote as i128)),
                            ("invalidations", Json::Int(b.invalidations as i128)),
                            ("stall_ns", Json::Int(b.stall_ns as i128)),
                            ("nic_stall_ns", Json::Int(b.nic_stall_ns as i128)),
                            ("p50_ns", Json::Int(b.lat.quantile(0.5) as i128)),
                            ("p99_ns", Json::Int(b.lat.quantile(0.99) as i128)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn metrics_json(m: &Metrics) -> Json {
    Json::Obj(
        m.iter()
            .map(|(k, v)| (k.to_string(), Json::Int(v as i128)))
            .collect(),
    )
}

/// The latency-percentile block: p50, p99, and the deep-tail p99.9 that
/// per-tenant SLOs are written against.
fn percentiles_json(h: &Histogram) -> Json {
    Json::obj([
        ("p50", Json::Int(h.quantile(0.5) as i128)),
        ("p99", Json::Int(h.quantile(0.99) as i128)),
        ("p999", Json::Int(h.quantile(0.999) as i128)),
    ])
}

fn tenant_json(t: &TenantSlo) -> Json {
    Json::obj([
        ("tenant", Json::Int(t.tenant as i128)),
        ("class", Json::str(t.qos.label())),
        ("pages", Json::Int(t.pages as i128)),
        ("arrived_at_ns", Json::Int(t.arrived_at.as_nanos() as i128)),
        ("departed", Json::Bool(t.departed)),
        ("ops", Json::Int(t.ops as i128)),
        ("rejected", Json::Int(t.rejected as i128)),
        ("mops", Json::Num(t.mops)),
        ("p50_ns", Json::Int(t.p50_ns as i128)),
        ("p99_ns", Json::Int(t.p99_ns as i128)),
        ("p999_ns", Json::Int(t.p999_ns as i128)),
        ("mean_ns", Json::Num(t.mean_ns)),
        ("blades_peak", Json::Int(t.blades_peak as i128)),
    ])
}

/// A service scenario's report as JSON: churn totals, per-class SLO
/// aggregates, and the per-tenant records.
pub fn service_json(s: &ServiceReport) -> Json {
    let mut pairs: Vec<(String, Json)> = obj_pairs([
        ("duration_ns", Json::Int(s.duration.as_nanos() as i128)),
        ("tenants_admitted", Json::Int(s.tenants_admitted as i128)),
        ("tenants_rejected", Json::Int(s.tenants_rejected as i128)),
        ("tenants_departed", Json::Int(s.tenants_departed as i128)),
        ("tenants_live", Json::Int(s.tenants_live as i128)),
        ("peak_live_tenants", Json::Int(s.peak_live_tenants as i128)),
        ("total_ops", Json::Int(s.total_ops as i128)),
        ("rejected_requests", Json::Int(s.rejected_requests as i128)),
        ("memory_utilization", Json::Num(s.memory_utilization)),
        ("match_action_rules", Json::Int(s.match_action_rules as i128)),
        (
            "classes",
            Json::Arr(
                s.classes
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("class", Json::str(c.qos.label())),
                            ("tenants_admitted", Json::Int(c.tenants_admitted as i128)),
                            ("tenants_rejected", Json::Int(c.tenants_rejected as i128)),
                            ("ops", Json::Int(c.ops as i128)),
                            ("rejected_requests", Json::Int(c.rejected_requests as i128)),
                            ("mops", Json::Num(c.mops)),
                            ("p50_ns", Json::Int(c.p50_ns as i128)),
                            ("p99_ns", Json::Int(c.p99_ns as i128)),
                            ("p999_ns", Json::Int(c.p999_ns as i128)),
                            ("mean_ns", Json::Num(c.mean_ns)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("tenants", Json::Arr(s.tenants.iter().map(tenant_json).collect())),
        ("metrics", metrics_json(&s.metrics)),
    ]);
    if let Some(series) = &s.timeseries {
        // Per-class windowed telemetry, keyed by class label
        // (`QosClass::ALL` order matches the array).
        pairs.push((
            "timeseries".into(),
            Json::Obj(
                mind_service::QosClass::ALL
                    .iter()
                    .zip(series.iter())
                    .map(|(qos, s)| (qos.label().to_string(), series_json(s)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

/// Converts a `Json::obj`-style pair list into the owned form used when a
/// document needs optional trailing sections.
fn obj_pairs<const N: usize>(pairs: [(&str, Json); N]) -> Vec<(String, Json)> {
    pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
}

/// One scenario result as JSON.
pub fn result_json(result: &ScenarioResult) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("name".into(), Json::str(&result.name))];
    if let Some(report) = &result.output.report {
        pairs.push(("workload".into(), Json::str(&report.name)));
        pairs.push(("runtime_ns".into(), Json::Int(report.runtime.as_nanos() as i128)));
        pairs.push(("total_ops".into(), Json::Int(report.total_ops as i128)));
        pairs.push(("mops".into(), Json::Num(report.mops)));
        pairs.push(("remote_per_op".into(), Json::Num(report.remote_per_op)));
        pairs.push((
            "invalidations_per_op".into(),
            Json::Num(report.invalidations_per_op),
        ));
        pairs.push(("flushed_per_op".into(), Json::Num(report.flushed_per_op)));
        pairs.push(("mean_remote_ns".into(), Json::Num(report.mean_remote_ns)));
        pairs.push((
            "latency_percentiles_ns".into(),
            percentiles_json(&report.latency),
        ));
        pairs.push((
            "latency_ns".into(),
            Json::obj([
                ("fault", Json::Int(report.sum_fault_ns as i128)),
                ("network", Json::Int(report.sum_network_ns as i128)),
                ("inv_queue", Json::Int(report.sum_inv_queue_ns as i128)),
                ("inv_tlb", Json::Int(report.sum_inv_tlb_ns as i128)),
                ("software", Json::Int(report.sum_software_ns as i128)),
                ("overlapped", Json::Int(report.sum_overlapped_ns as i128)),
            ]),
        ));
        pairs.push(("window_metrics".into(), metrics_json(&report.window_metrics)));
        pairs.push(("metrics".into(), metrics_json(&report.metrics)));
        if let Some(series) = &report.timeseries {
            pairs.push(("timeseries".into(), series_json(series)));
        }
    }
    if let Some(service) = &result.output.service {
        pairs.push(("service".into(), service_json(service)));
    }
    if !result.output.values.is_empty() {
        pairs.push((
            "values".into(),
            Json::Obj(
                result
                    .output
                    .values
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    if !result.output.series.is_empty() {
        pairs.push((
            "series".into(),
            Json::Obj(
                result
                    .output
                    .series
                    .iter()
                    .map(|(k, points)| {
                        (
                            k.clone(),
                            Json::Arr(
                                points
                                    .iter()
                                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

/// Suite-level aggregation over every replay result, built with
/// [`Metrics::merge`] — the rack-wide totals a perf trajectory tracks.
pub fn aggregate_json(results: &[ScenarioResult]) -> Json {
    let mut merged = Metrics::new();
    let mut replayed = 0i128;
    let mut total_ops = 0i128;
    let mut runtime_ns_sum = 0i128;
    let mut service_scenarios = 0i128;
    let mut service_ops = 0i128;
    // Datapath speedups (`wall_speedup_b<N>` values emitted by the
    // `datapath` figure), aggregated as a geometric mean per batch size.
    let mut speedups: std::collections::BTreeMap<&str, Vec<f64>> = std::collections::BTreeMap::new();
    // Overlap recoveries (`overlap_recovery_w<W>` values): simulated MOPS
    // at the windowed batch point over the batch-1 serialized baseline.
    let mut recoveries: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    // Cross-turn recoveries (`xturn_recovery_w<W>` values): the same
    // ratio with the cluster engine overlapping across turns and threads.
    let mut xturn_recoveries: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    for result in results {
        if let Some(report) = &result.output.report {
            merged.merge(&report.window_metrics);
            replayed += 1;
            total_ops += report.total_ops as i128;
            runtime_ns_sum += report.runtime.as_nanos() as i128;
        }
        if let Some(service) = &result.output.service {
            service_scenarios += 1;
            service_ops += service.total_ops as i128;
        }
        for (key, value) in &result.output.values {
            if let Some(batch) = key.strip_prefix("wall_speedup_") {
                speedups.entry(batch).or_default().push(*value);
            }
            if let Some(window) = key.strip_prefix("overlap_recovery_") {
                recoveries.entry(window).or_default().push(*value);
            }
            if let Some(window) = key.strip_prefix("xturn_recovery_") {
                xturn_recoveries.entry(window).or_default().push(*value);
            }
        }
    }
    let geomean = |xs: &[f64]| -> f64 {
        (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
    };
    let mut pairs: Vec<(String, Json)> = vec![
        ("replayed_scenarios".into(), Json::Int(replayed)),
        ("total_ops".into(), Json::Int(total_ops)),
        ("runtime_ns_sum".into(), Json::Int(runtime_ns_sum)),
        ("service_scenarios".into(), Json::Int(service_scenarios)),
        ("service_ops".into(), Json::Int(service_ops)),
    ];
    if !speedups.is_empty() {
        pairs.push((
            "datapath_speedup_geomean".into(),
            Json::Obj(
                speedups
                    .iter()
                    .map(|(batch, xs)| (batch.to_string(), Json::Num(geomean(xs))))
                    .collect(),
            ),
        ));
        // The best regime per batch size: how much batching buys where it
        // is the right tool (the geomean includes regimes where coarse
        // quanta cost simulated latency).
        pairs.push((
            "datapath_speedup_max".into(),
            Json::Obj(
                speedups
                    .iter()
                    .map(|(batch, xs)| {
                        (
                            batch.to_string(),
                            Json::Num(xs.iter().copied().fold(f64::MIN, f64::max)),
                        )
                    })
                    .collect(),
            ),
        ));
        // The worst regime per batch size: the parity floor. A value
        // below 1.0 here means batching made some regime's host replay
        // *slower* than scalar — the regression class the datapath
        // perf-guard gates on.
        pairs.push((
            "datapath_speedup_min".into(),
            Json::Obj(
                speedups
                    .iter()
                    .map(|(batch, xs)| {
                        (
                            batch.to_string(),
                            Json::Num(xs.iter().copied().fold(f64::MAX, f64::min)),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    if !recoveries.is_empty() {
        // Geomean and worst-case recovery per window depth: ≥ 1.0 means
        // intra-batch RTT overlap fully bought back the coarse-quantum
        // simulated-MOPS loss relative to the batch-1 baseline.
        pairs.push((
            "overlap_recovery".into(),
            Json::Obj(
                recoveries
                    .iter()
                    .map(|(window, xs)| (window.to_string(), Json::Num(geomean(xs))))
                    .collect(),
            ),
        ));
        pairs.push((
            "overlap_recovery_min".into(),
            Json::Obj(
                recoveries
                    .iter()
                    .map(|(window, xs)| {
                        (
                            window.to_string(),
                            Json::Num(xs.iter().copied().fold(f64::MAX, f64::min)),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    if !xturn_recoveries.is_empty() {
        // Geomean and worst-case cross-turn recovery per window depth:
        // sitting above `overlap_recovery` for the same depth means the
        // cluster engine's cross-turn overlap beat the per-batch window.
        pairs.push((
            "xturn_recovery".into(),
            Json::Obj(
                xturn_recoveries
                    .iter()
                    .map(|(window, xs)| (window.to_string(), Json::Num(geomean(xs))))
                    .collect(),
            ),
        ));
        pairs.push((
            "xturn_recovery_min".into(),
            Json::Obj(
                xturn_recoveries
                    .iter()
                    .map(|(window, xs)| {
                        (
                            window.to_string(),
                            Json::Num(xs.iter().copied().fold(f64::MAX, f64::min)),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    pairs.push(("window_metrics".into(), metrics_json(&merged)));
    Json::Obj(pairs)
}

/// The whole suite as one JSON document.
pub fn suite_json(suite: &str, results: &[ScenarioResult]) -> Json {
    Json::obj([
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("generator", Json::str(generator())),
        ("suite", Json::str(suite)),
        (
            "scenarios",
            Json::Arr(results.iter().map(result_json).collect()),
        ),
        ("aggregate", aggregate_json(results)),
    ])
}

/// The output directory for BENCH/TRACE files: `$MIND_BENCH_DIR` if set,
/// otherwise the current directory.
fn bench_dir() -> PathBuf {
    mind_sim::env::bench_dir().unwrap_or_else(|| PathBuf::from("."))
}

/// Renders and writes `BENCH_<suite>.json` into the current directory (or
/// `$MIND_BENCH_DIR` if set), returning the path written.
pub fn write_suite(suite: &str, results: &[ScenarioResult]) -> std::io::Result<PathBuf> {
    let dir = bench_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{suite}.json"));
    std::fs::write(&path, suite_json(suite, results).render())?;
    Ok(path)
}

/// The suite's deterministic event traces as one Chrome-trace-event JSON
/// document (loadable in Perfetto / `chrome://tracing`). Every scenario
/// gets a `process_name` metadata record (pid = its index in the suite);
/// scenarios that carried a trace contribute their canonicalized events.
/// Extra top-level keys (`schemaVersion`, `suite`, `dropped`) are
/// tolerated by trace viewers and identify the document.
pub fn trace_json(suite: &str, results: &[ScenarioResult]) -> String {
    let mut lines: Vec<String> = Vec::new();
    let mut dropped = 0u64;
    for (pid, result) in results.iter().enumerate() {
        lines.push(chrome_process_name(pid, &result.name));
    }
    for (pid, result) in results.iter().enumerate() {
        let trace: Option<&TraceData> = result
            .output
            .report
            .as_ref()
            .and_then(|r| r.trace.as_ref())
            .or_else(|| result.output.service.as_ref().and_then(|s| s.trace.as_ref()));
        if let Some(trace) = trace {
            dropped += trace.dropped;
            let mut canon = trace.clone();
            canon.canonicalize();
            canon.render_chrome(pid, &mut lines);
        }
    }
    let mut out = String::with_capacity(64 + lines.iter().map(|l| l.len() + 3).sum::<usize>());
    out.push_str("{\"schemaVersion\":");
    out.push_str(&SCHEMA_VERSION.to_string());
    out.push_str(",\"suite\":");
    // `render()` appends a trailing newline (documents end with one);
    // trim it for inline embedding.
    out.push_str(Json::str(suite).render().trim_end());
    out.push_str(",\"dropped\":");
    out.push_str(&dropped.to_string());
    out.push_str(",\"traceEvents\":[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Writes `TRACE_<suite>.json` next to the BENCH output, returning the
/// path written. Callers gate on tracing being enabled so disabled runs
/// produce no trace files at all.
pub fn write_trace(suite: &str, results: &[ScenarioResult]) -> std::io::Result<PathBuf> {
    let dir = bench_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TRACE_{suite}.json"));
    std::fs::write(&path, trace_json(suite, results))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOutput;

    fn custom_result() -> ScenarioResult {
        ScenarioResult {
            name: "c".into(),
            output: ScenarioOutput::default()
                .value("x", 1.25)
                .with_series("ts", vec![(0.0, 2.0)]),
        }
    }

    #[test]
    fn custom_result_serializes_values_and_series() {
        let text = result_json(&custom_result()).render();
        assert!(text.contains("\"x\": 1.25"));
        assert!(text.contains("\"ts\""));
        assert!(!text.contains("runtime_ns"), "no replay fields");
    }

    #[test]
    fn suite_json_has_schema_header() {
        let doc = suite_json("t", &[custom_result()]).render();
        assert!(
            doc.starts_with("{\n  \"schema_version\": 2,\n  \"generator\": \""),
            "schema header leads the document: {doc}"
        );
    }

    #[test]
    fn traced_replay_serializes_timeseries() {
        use mind_obs::{TraceConfig, TraceMode};

        let traced = replay_result_with_trace(TraceConfig::with_mode(TraceMode::On));
        let text = result_json(&traced).render();
        assert!(text.contains("\"timeseries\""), "timeseries section: {text}");
        assert!(text.contains("\"interval_ns\": 1000000"));
        assert!(text.contains("\"mops\""));
        assert!(text.contains("\"stall_ns\""));

        let off = replay_result();
        let text = result_json(&off).render();
        assert!(!text.contains("\"timeseries\""), "absent when tracing off");
    }

    #[test]
    fn trace_json_renders_chrome_events() {
        use mind_obs::{TraceConfig, TraceMode};

        let traced = replay_result_with_trace(TraceConfig::with_mode(TraceMode::On));
        let doc = trace_json("t", std::slice::from_ref(&traced));
        assert!(doc.starts_with("{\"schemaVersion\":2,\"suite\":\"t\",\"dropped\":0,"));
        assert!(doc.contains("\"name\":\"process_name\""));
        assert!(doc.contains("\"name\":\"issue\""));
        assert!(doc.ends_with("]}\n"));

        let off = replay_result();
        let doc = trace_json("t", std::slice::from_ref(&off));
        assert!(
            doc.contains("process_name") && !doc.contains("\"ph\":\"X\""),
            "untraced scenarios contribute only metadata: {doc}"
        );
    }

    #[test]
    fn suite_json_has_aggregate() {
        let doc = suite_json("t", &[custom_result()]).render();
        assert!(doc.contains("\"suite\": \"t\""));
        assert!(doc.contains("\"replayed_scenarios\": 0"));
        assert!(doc.contains("\"service_scenarios\": 0"));
        assert!(
            !doc.contains("datapath_speedup_geomean"),
            "no speedup block without datapath values"
        );
    }

    #[test]
    fn aggregate_reports_overlap_recovery() {
        let results = vec![
            ScenarioResult {
                name: "datapath/a".into(),
                output: ScenarioOutput::default().value("overlap_recovery_w4", 2.0),
            },
            ScenarioResult {
                name: "datapath/b".into(),
                output: ScenarioOutput::default().value("overlap_recovery_w4", 8.0),
            },
        ];
        let doc = suite_json("datapath", &results).render();
        // geomean(2, 8) = 4; min(2, 8) = 2.
        assert!(
            doc.contains("\"overlap_recovery\": {\n      \"w4\": 4"),
            "recovery geomean missing or wrong: {doc}"
        );
        assert!(
            doc.contains("\"overlap_recovery_min\": {\n      \"w4\": 2"),
            "recovery min missing or wrong: {doc}"
        );
        let empty = suite_json("t", &[custom_result()]).render();
        assert!(!empty.contains("overlap_recovery"), "absent without values");
    }

    #[test]
    fn aggregate_reports_xturn_recovery() {
        let results = vec![
            ScenarioResult {
                name: "datapath/a".into(),
                output: ScenarioOutput::default().value("xturn_recovery_w16", 3.0),
            },
            ScenarioResult {
                name: "datapath/b".into(),
                output: ScenarioOutput::default().value("xturn_recovery_w16", 12.0),
            },
        ];
        let doc = suite_json("datapath", &results).render();
        // geomean(3, 12) = 6; min(3, 12) = 3.
        assert!(
            doc.contains("\"xturn_recovery\": {\n      \"w16\": 6"),
            "xturn geomean missing or wrong: {doc}"
        );
        assert!(
            doc.contains("\"xturn_recovery_min\": {\n      \"w16\": 3"),
            "xturn min missing or wrong: {doc}"
        );
        let empty = suite_json("t", &[custom_result()]).render();
        assert!(!empty.contains("xturn_recovery"), "absent without values");
    }

    #[test]
    fn replay_result_serializes_overlapped_breakdown() {
        let text = result_json(&replay_result()).render();
        assert!(
            text.contains("\"overlapped\": 0"),
            "serialized replays report a zero overlapped component: {text}"
        );
    }

    #[test]
    fn aggregate_geomeans_datapath_speedups() {
        let results = vec![
            ScenarioResult {
                name: "datapath/a".into(),
                output: ScenarioOutput::default()
                    .value("wall_kops_b1", 100.0)
                    .value("wall_speedup_b64", 2.0),
            },
            ScenarioResult {
                name: "datapath/b".into(),
                output: ScenarioOutput::default().value("wall_speedup_b64", 8.0),
            },
        ];
        let doc = suite_json("datapath", &results).render();
        // geomean(2, 8) = 4; max(2, 8) = 8.
        assert!(
            doc.contains("\"datapath_speedup_geomean\": {\n      \"b64\": 4"),
            "speedup block missing or wrong: {doc}"
        );
        assert!(
            doc.contains("\"datapath_speedup_max\": {\n      \"b64\": 8"),
            "max block missing or wrong: {doc}"
        );
        assert!(
            doc.contains("\"datapath_speedup_min\": {\n      \"b64\": 2"),
            "min block missing or wrong: {doc}"
        );
    }

    fn replay_result() -> ScenarioResult {
        replay_result_with_trace(mind_obs::TraceConfig::with_mode(mind_obs::TraceMode::Off))
    }

    fn replay_result_with_trace(trace: mind_obs::TraceConfig) -> ScenarioResult {
        use crate::spec::{SystemSpec, WorkloadSpec};
        use mind_core::system::ConsistencyModel;
        use mind_workloads::micro::MicroConfig;
        use mind_workloads::runner::RunConfig;

        let wl = WorkloadSpec::Micro(MicroConfig {
            n_threads: 2,
            shared_pages: 64,
            private_pages: 8,
            ..Default::default()
        });
        let regions = wl.regions();
        crate::Scenario::replay(
            "r",
            SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso),
            wl,
            RunConfig {
                ops_per_thread: 200,
                trace,
                ..Default::default()
            },
        )
        .execute()
    }

    #[test]
    fn replay_result_serializes_latency_percentiles() {
        let result = replay_result();
        let text = result_json(&result).render();
        assert!(text.contains("\"latency_percentiles_ns\""));
        assert!(text.contains("\"p999\""));
        // Round-trip: the serialized integers are the histogram's cuts.
        let report = result.report();
        for (key, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
            let expect = format!("\"{key}\": {}", report.latency.quantile(q));
            assert!(text.contains(&expect), "missing {expect}");
        }
    }

    fn service_result() -> ScenarioResult {
        use crate::spec::ServiceSpec;
        crate::Scenario::service(
            "s",
            ServiceSpec::new(mind_service::ServiceConfig {
                duration: mind_sim::SimTime::from_millis(10),
                ..Default::default()
            }),
        )
        .execute()
    }

    #[test]
    fn service_result_serializes_slo_report() {
        let result = service_result();
        let text = result_json(&result).render();
        assert!(text.contains("\"service\""));
        assert!(text.contains("\"tenants_admitted\""));
        assert!(text.contains("\"class\": \"Gold\""));
        assert!(text.contains("\"p999_ns\""));
        assert!(!text.contains("\"runtime_ns\""), "no replay fields");
        // The aggregate counts service work.
        let doc = suite_json("svc", &[service_result()]).render();
        assert!(doc.contains("\"service_scenarios\": 1"));
        let ops = service_result().service().total_ops;
        assert!(doc.contains(&format!("\"service_ops\": {ops}")));
    }
}
