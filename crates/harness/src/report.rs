//! Serializing scenario results into `BENCH_<suite>.json` perf reports.
//!
//! Schema (stable, hand-rolled — see `crates/harness/src/json.rs`):
//!
//! ```json
//! {
//!   "suite": "fig5_intra",
//!   "scenarios": [
//!     {
//!       "name": "fig5_intra/TF/MIND/t1",
//!       "workload": "TF",            // replay scenarios only
//!       "runtime_ns": 123,
//!       "total_ops": 400000,
//!       "mops": 1.5,
//!       "remote_per_op": 0.01,
//!       "invalidations_per_op": 0.0,
//!       "flushed_per_op": 0.0,
//!       "mean_remote_ns": 9100.0,
//!       "latency_ns": { "fault": 1, "network": 2, "inv_queue": 3,
//!                        "inv_tlb": 4, "software": 5 },
//!       "window_metrics": { "...": 0 },
//!       "metrics": { "...": 0 },
//!       "values": { "...": 0.0 },    // custom scenarios
//!       "series": { "name": [[x, y], ...] }
//!     }
//!   ],
//!   "aggregate": {                    // Metrics::merge over all replays
//!     "replayed_scenarios": 3,
//!     "total_ops": 1200000,
//!     "runtime_ns_sum": 456,
//!     "window_metrics": { "...": 0 }
//!   }
//! }
//! ```

use std::path::PathBuf;

use mind_sim::stats::Metrics;

use crate::json::Json;
use crate::scenario::ScenarioResult;

fn metrics_json(m: &Metrics) -> Json {
    Json::Obj(
        m.iter()
            .map(|(k, v)| (k.to_string(), Json::Int(v as i128)))
            .collect(),
    )
}

/// One scenario result as JSON.
pub fn result_json(result: &ScenarioResult) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("name".into(), Json::str(&result.name))];
    if let Some(report) = &result.output.report {
        pairs.push(("workload".into(), Json::str(&report.name)));
        pairs.push(("runtime_ns".into(), Json::Int(report.runtime.as_nanos() as i128)));
        pairs.push(("total_ops".into(), Json::Int(report.total_ops as i128)));
        pairs.push(("mops".into(), Json::Num(report.mops)));
        pairs.push(("remote_per_op".into(), Json::Num(report.remote_per_op)));
        pairs.push((
            "invalidations_per_op".into(),
            Json::Num(report.invalidations_per_op),
        ));
        pairs.push(("flushed_per_op".into(), Json::Num(report.flushed_per_op)));
        pairs.push(("mean_remote_ns".into(), Json::Num(report.mean_remote_ns)));
        pairs.push((
            "latency_ns".into(),
            Json::obj([
                ("fault", Json::Int(report.sum_fault_ns as i128)),
                ("network", Json::Int(report.sum_network_ns as i128)),
                ("inv_queue", Json::Int(report.sum_inv_queue_ns as i128)),
                ("inv_tlb", Json::Int(report.sum_inv_tlb_ns as i128)),
                ("software", Json::Int(report.sum_software_ns as i128)),
            ]),
        ));
        pairs.push(("window_metrics".into(), metrics_json(&report.window_metrics)));
        pairs.push(("metrics".into(), metrics_json(&report.metrics)));
    }
    if !result.output.values.is_empty() {
        pairs.push((
            "values".into(),
            Json::Obj(
                result
                    .output
                    .values
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
    }
    if !result.output.series.is_empty() {
        pairs.push((
            "series".into(),
            Json::Obj(
                result
                    .output
                    .series
                    .iter()
                    .map(|(k, points)| {
                        (
                            k.clone(),
                            Json::Arr(
                                points
                                    .iter()
                                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(pairs)
}

/// Suite-level aggregation over every replay result, built with
/// [`Metrics::merge`] — the rack-wide totals a perf trajectory tracks.
pub fn aggregate_json(results: &[ScenarioResult]) -> Json {
    let mut merged = Metrics::new();
    let mut replayed = 0i128;
    let mut total_ops = 0i128;
    let mut runtime_ns_sum = 0i128;
    for result in results {
        if let Some(report) = &result.output.report {
            merged.merge(&report.window_metrics);
            replayed += 1;
            total_ops += report.total_ops as i128;
            runtime_ns_sum += report.runtime.as_nanos() as i128;
        }
    }
    Json::obj([
        ("replayed_scenarios", Json::Int(replayed)),
        ("total_ops", Json::Int(total_ops)),
        ("runtime_ns_sum", Json::Int(runtime_ns_sum)),
        ("window_metrics", metrics_json(&merged)),
    ])
}

/// The whole suite as one JSON document.
pub fn suite_json(suite: &str, results: &[ScenarioResult]) -> Json {
    Json::obj([
        ("suite", Json::str(suite)),
        (
            "scenarios",
            Json::Arr(results.iter().map(result_json).collect()),
        ),
        ("aggregate", aggregate_json(results)),
    ])
}

/// Renders and writes `BENCH_<suite>.json` into the current directory (or
/// `$MIND_BENCH_DIR` if set), returning the path written.
pub fn write_suite(suite: &str, results: &[ScenarioResult]) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(std::env::var("MIND_BENCH_DIR").unwrap_or_else(|_| ".".to_string()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{suite}.json"));
    std::fs::write(&path, suite_json(suite, results).render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOutput;

    fn custom_result() -> ScenarioResult {
        ScenarioResult {
            name: "c".into(),
            output: ScenarioOutput::default()
                .value("x", 1.25)
                .with_series("ts", vec![(0.0, 2.0)]),
        }
    }

    #[test]
    fn custom_result_serializes_values_and_series() {
        let text = result_json(&custom_result()).render();
        assert!(text.contains("\"x\": 1.25"));
        assert!(text.contains("\"ts\""));
        assert!(!text.contains("runtime_ns"), "no replay fields");
    }

    #[test]
    fn suite_json_has_aggregate() {
        let doc = suite_json("t", &[custom_result()]).render();
        assert!(doc.contains("\"suite\": \"t\""));
        assert!(doc.contains("\"replayed_scenarios\": 0"));
    }
}
