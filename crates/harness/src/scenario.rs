//! Scenarios: one experiment point as data, plus its execution result.

use mind_service::ServiceReport;
use mind_workloads::runner::{self, RunConfig, RunReport};

use crate::spec::{ServiceSpec, SystemSpec, WorkloadSpec};

/// A replay scenario's data: what to build and how to run it.
#[derive(Debug, Clone, Copy)]
pub struct ReplaySpec {
    /// System under test.
    pub system: SystemSpec,
    /// Workload to replay.
    pub workload: WorkloadSpec,
    /// Runner parameters — including `batch_ops`, the op-batch datapath
    /// knob (`RunConfig::with_batch_ops`); scenario tables sweep it like
    /// any other run parameter.
    pub run: RunConfig,
}

/// What a scenario does when an engine worker executes it.
pub enum ScenarioKind {
    /// The common case: replay a workload against a system with the trace
    /// runner. Everything is data — the worker builds system and workload
    /// from their specs, so execution is identical regardless of which
    /// thread runs it or when.
    Replay(Box<ReplaySpec>),
    /// A multi-tenant serving run (`mind_service`): the worker builds the
    /// whole service (rack included) from the spec and runs its
    /// deterministic event loop.
    Service(Box<ServiceSpec>),
    /// An arbitrary deterministic experiment (e.g. Figure 7's orchestrated
    /// MSI transitions, Figure 8's rule counting) — must be a pure function
    /// of its captured configuration for the engine's determinism guarantee
    /// to hold.
    Custom(Box<dyn Fn() -> ScenarioOutput + Send>),
}

/// One experiment point: a name carrying the sweep parameters, and what to
/// run. A `Vec<Scenario>` is a scenario table — the declarative unit the
/// [`crate::engine::Engine`] executes.
pub struct Scenario {
    /// Unique name within its suite, e.g. `fig5_intra/TF/MIND/t4`.
    pub name: String,
    /// What to execute.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// A trace-replay scenario.
    pub fn replay(
        name: impl Into<String>,
        system: SystemSpec,
        workload: WorkloadSpec,
        run: RunConfig,
    ) -> Self {
        Scenario {
            name: name.into(),
            kind: ScenarioKind::Replay(Box::new(ReplaySpec {
                system,
                workload,
                run,
            })),
        }
    }

    /// A multi-tenant serving scenario.
    pub fn service(name: impl Into<String>, spec: ServiceSpec) -> Self {
        Scenario {
            name: name.into(),
            kind: ScenarioKind::Service(Box::new(spec)),
        }
    }

    /// A custom deterministic scenario.
    pub fn custom(name: impl Into<String>, f: impl Fn() -> ScenarioOutput + Send + 'static) -> Self {
        Scenario {
            name: name.into(),
            kind: ScenarioKind::Custom(Box::new(f)),
        }
    }

    /// Executes this scenario (on whatever thread the engine chose).
    pub fn execute(&self) -> ScenarioResult {
        let output = match &self.kind {
            ScenarioKind::Replay(spec) => {
                // The run's pinned trace mode (if any) overrides the
                // system's, so one `RunConfig` knob drives both the
                // windowed telemetry and the system's event trace.
                let mut sys = spec.system.with_trace(spec.run.trace).build();
                let mut wl = spec.workload.build();
                ScenarioOutput::from_report(runner::run(sys.as_mut(), wl.as_mut(), spec.run))
            }
            ScenarioKind::Service(spec) => ScenarioOutput::from_service(spec.run()),
            ScenarioKind::Custom(f) => f(),
        };
        ScenarioResult {
            name: self.name.clone(),
            output,
        }
    }
}

/// What executing a scenario produced. Replay scenarios carry the full
/// [`RunReport`]; custom scenarios fill `values` (and optionally `series`)
/// with whatever they measured.
#[derive(Debug, Default)]
pub struct ScenarioOutput {
    /// Full replay report, when the scenario ran the trace runner.
    pub report: Option<RunReport>,
    /// Full service report, when the scenario ran a multi-tenant service.
    pub service: Option<ServiceReport>,
    /// Named scalar results, in insertion order (serialized as-is).
    pub values: Vec<(String, f64)>,
    /// Named `(x, y)` series, e.g. directory entries over time.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

impl ScenarioOutput {
    /// Output wrapping a replay report.
    pub fn from_report(report: RunReport) -> Self {
        ScenarioOutput {
            report: Some(report),
            ..Default::default()
        }
    }

    /// Output wrapping a service report.
    pub fn from_service(report: ServiceReport) -> Self {
        ScenarioOutput {
            service: Some(report),
            ..Default::default()
        }
    }

    /// Adds a named scalar (builder-style).
    pub fn value(mut self, key: impl Into<String>, v: f64) -> Self {
        self.values.push((key.into(), v));
        self
    }

    /// Adds a named series (builder-style).
    pub fn with_series(mut self, key: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        self.series.push((key.into(), points));
        self
    }
}

/// A scenario's result, tagged with its name. The engine returns results in
/// scenario-table order regardless of execution interleaving.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario's name.
    pub name: String,
    /// What it produced.
    pub output: ScenarioOutput,
}

impl ScenarioResult {
    /// The replay report.
    ///
    /// # Panics
    ///
    /// Panics if this was a custom scenario without one.
    pub fn report(&self) -> &RunReport {
        self.output
            .report
            .as_ref()
            .unwrap_or_else(|| panic!("scenario {} has no replay report", self.name))
    }

    /// The service report.
    ///
    /// # Panics
    ///
    /// Panics if this was not a service scenario.
    pub fn service(&self) -> &ServiceReport {
        self.output
            .service
            .as_ref()
            .unwrap_or_else(|| panic!("scenario {} has no service report", self.name))
    }

    /// A named scalar produced by a custom scenario.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent.
    pub fn value(&self, key: &str) -> f64 {
        self.output
            .values
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("scenario {} has no value {key}", self.name))
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_core::system::ConsistencyModel;
    use mind_workloads::micro::MicroConfig;

    fn tiny_replay() -> Scenario {
        let wl = WorkloadSpec::Micro(MicroConfig {
            n_threads: 2,
            shared_pages: 64,
            private_pages: 8,
            ..Default::default()
        });
        let regions = wl.regions();
        Scenario::replay(
            "tiny",
            SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso),
            wl,
            RunConfig {
                ops_per_thread: 200,
                ..Default::default()
            },
        )
    }

    #[test]
    fn replay_scenario_produces_report() {
        let result = tiny_replay().execute();
        assert_eq!(result.name, "tiny");
        let report = result.report();
        assert_eq!(report.total_ops, 400);
        assert!(report.name.starts_with("micro("), "parameterized name");
    }

    #[test]
    fn service_scenario_produces_service_report() {
        let spec = ServiceSpec::new(mind_service::ServiceConfig {
            duration: mind_sim::SimTime::from_millis(10),
            ..Default::default()
        });
        let result = Scenario::service("svc", spec).execute();
        assert_eq!(result.name, "svc");
        let report = result.service();
        assert!(report.tenants_admitted > 0);
        assert!(result.output.report.is_none(), "not a replay");
    }

    #[test]
    fn custom_scenario_produces_values() {
        let s = Scenario::custom("c", || {
            ScenarioOutput::default()
                .value("x", 2.5)
                .with_series("ts", vec![(0.0, 1.0), (1.0, 2.0)])
        });
        let r = s.execute();
        assert_eq!(r.value("x"), 2.5);
        assert_eq!(r.output.series[0].1.len(), 2);
    }

    #[test]
    #[should_panic(expected = "no value")]
    fn missing_value_panics() {
        let r = Scenario::custom("c", ScenarioOutput::default).execute();
        r.value("absent");
    }
}
