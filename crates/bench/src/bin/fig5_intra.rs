//! Figure 5 (left): intra-blade performance scaling.
//!
//! 1–10 threads on a single compute blade for TF / GC / MA / MC under MIND,
//! FastSwap, and GAM. Performance is inverse runtime normalized to MIND at
//! 1 thread.
//!
//! Expected shape (paper): MIND and FastSwap scale almost linearly (page-
//! fault driven remote access, hardware MMU for local hits); GAM is linear
//! only to ~4 threads and sub-linear after, because its user-level library
//! takes a lock on *every* access and the software path contends.

use mind_bench::{fastswap_for, gam_for, mind_for, print_table, real_workload, REAL_WORKLOADS};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const TOTAL_OPS: u64 = 400_000;
const THREADS: [u16; 4] = [1, 2, 4, 10];

fn main() {
    for wl_name in REAL_WORKLOADS {
        let mut rows = Vec::new();
        let mut baseline: Option<SimTime> = None;
        for &threads in &THREADS {
            let ops_per_thread = TOTAL_OPS / threads as u64;
            let cfg = RunConfig {
                ops_per_thread,
                warmup_ops_per_thread: ops_per_thread / 2,
                threads_per_blade: threads,
                think_time: SimTime::from_nanos(100),
                interleave: false,
            };
            let mut cells = vec![threads.to_string()];
            for sys_name in ["MIND", "FastSwap", "GAM"] {
                let mut wl = real_workload(wl_name, threads);
                let regions = wl.regions();
                let report = match sys_name {
                    "MIND" => {
                        let mut sys = mind_for(&regions, 1, ConsistencyModel::Tso);
                        run(&mut sys, &mut *wl, cfg)
                    }
                    "FastSwap" => {
                        let mut sys = fastswap_for(&regions);
                        run(&mut sys, &mut *wl, cfg)
                    }
                    _ => {
                        let mut sys = gam_for(&regions, 1, threads);
                        run(&mut sys, &mut *wl, cfg)
                    }
                };
                if sys_name == "MIND" && threads == 1 {
                    baseline = Some(report.runtime);
                }
                let base = baseline.expect("MIND@1 thread runs first");
                let norm = base.as_nanos() as f64 / report.runtime.as_nanos() as f64;
                cells.push(format!("{norm:.3}"));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Figure 5 (left) — {wl_name}: normalized perf vs #threads, 1 blade"),
            &["threads", "MIND", "FastSwap", "GAM"],
            &rows,
        );
    }
}
