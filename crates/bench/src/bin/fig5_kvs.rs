//! Figure 5 (right): Native-KVS throughput (MOPS) under YCSB-A and YCSB-C.
//!
//! Single-blade scaling (1–10 threads) for MIND and FastSwap, then
//! multi-blade scaling (20–80 threads at 10/blade) for MIND only —
//! FastSwap cannot share state across blades.
//!
//! Expected shape (paper): near-linear intra-blade scaling for both;
//! YCSB-A stops scaling past one blade (read-write contention) while
//! YCSB-C keeps scaling linearly (read-only ⇒ no invalidations); the
//! partitioned native store scales better than memcached's M_A.

use mind_bench::{cache_pages_for, dir_capacity_for, fastswap_for, print_table};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::kvs::{KvsConfig, KvsWorkload};
use mind_workloads::runner::{run, RunConfig};
use mind_workloads::trace::Workload;

const OPS_PER_THREAD: u64 = 20_000;

fn mind_sized(regions: &[u64], blades: u16) -> MindCluster {
    let mut cfg = MindConfig {
        n_compute: blades,
        cache_pages: cache_pages_for(regions),
        dir_capacity: dir_capacity_for(regions),
        ..Default::default()
    }
    .consistency(ConsistencyModel::Tso);
    cfg.split.epoch_len = SimTime::from_millis(2);
    MindCluster::new(cfg)
}

fn mops_for(mix: &str, threads: u16, blades: u16, system: &str) -> f64 {
    let kcfg = match mix {
        "A" => KvsConfig::ycsb_a(threads),
        _ => KvsConfig::ycsb_c(threads),
    };
    let mut wl = KvsWorkload::new(kcfg);
    let regions = wl.regions();
    let threads_per_blade = threads.div_ceil(blades);
    let cfg = RunConfig {
        ops_per_thread: OPS_PER_THREAD,
        warmup_ops_per_thread: OPS_PER_THREAD / 2,
        threads_per_blade,
        think_time: SimTime::from_nanos(100),
        interleave: false,
    };
    match system {
        "MIND" => {
            let mut sys = mind_sized(&regions, blades);
            run(&mut sys, &mut wl, cfg).mops
        }
        _ => {
            let mut sys = fastswap_for(&regions);
            run(&mut sys, &mut wl, cfg).mops
        }
    }
}

fn main() {
    // Single blade: 1–10 threads, MIND + FastSwap.
    for mix in ["A", "C"] {
        let rows: Vec<Vec<String>> = [1u16, 2, 4, 10]
            .iter()
            .map(|&threads| {
                vec![
                    threads.to_string(),
                    format!("{:.3}", mops_for(mix, threads, 1, "MIND")),
                    format!("{:.3}", mops_for(mix, threads, 1, "FastSwap")),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 5 (right) — Native-KVS YCSB-{mix}, single blade (MOPS)"),
            &["threads", "MIND", "FastSwap"],
            &rows,
        );
    }

    // Multiple blades: 20–80 threads at 10/blade, MIND only.
    for mix in ["A", "C"] {
        let rows: Vec<Vec<String>> = [20u16, 40, 80]
            .iter()
            .map(|&threads| {
                let blades = threads / 10;
                vec![
                    threads.to_string(),
                    blades.to_string(),
                    format!("{:.3}", mops_for(mix, threads, blades, "MIND")),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 5 (right) — Native-KVS YCSB-{mix}, multiple blades (MOPS, MIND)"),
            &["threads", "blades", "MIND"],
            &rows,
        );
    }
}
