//! Figure 9 (right): bounded splitting's sensitivity to epoch length and
//! initial region size.
//!
//! TF and GC at 8 blades × 10 threads, sweeping (a) the epoch length and
//! (b) the initial region size, reporting total false invalidations
//! normalized to the default configuration (and the stable-state entry
//! count, which the paper notes is insensitive to both).
//!
//! Expected shape (paper): epoch length barely matters across two orders
//! of magnitude (too-short epochs under-sample and destabilize); smaller
//! initial regions give fewer false invalidations because large ones pay
//! several lossy epochs of splitting before stabilizing. The paper's
//! defaults (100 ms, 16 KB) are the sweet spot; the harness sweeps the
//! same ratios around its scaled 2 ms default.

use mind_bench::{cache_pages_for, dir_capacity_for, print_table, real_workload};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::split::SplitConfig;
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const THREADS_PER_BLADE: u16 = 10;
const BLADES: u16 = 8;
const TOTAL_OPS: u64 = 400_000;

fn false_inv(wl_name: &str, split: SplitConfig) -> (u64, u64) {
    let n_threads = BLADES * THREADS_PER_BLADE;
    let mut wl = real_workload(wl_name, n_threads);
    let regions = wl.regions();
    let cfg = MindConfig {
        n_compute: BLADES,
        cache_pages: cache_pages_for(&regions),
        dir_capacity: dir_capacity_for(&regions),
        split,
        ..Default::default()
    }
    .consistency(ConsistencyModel::Tso);
    let mut sys = MindCluster::new(cfg);
    let report = run(
        &mut sys,
        &mut *wl,
        RunConfig {
            ops_per_thread: TOTAL_OPS / n_threads as u64,
            warmup_ops_per_thread: 0,
            threads_per_blade: THREADS_PER_BLADE,
            think_time: SimTime::from_nanos(100),
            interleave: false,
        },
    );
    (
        report.metrics.get("false_invalidations"),
        report.metrics.get("directory_entries"),
    )
}

fn main() {
    for wl_name in ["TF", "GC"] {
        // Epoch sweep (paper: 1/10/100 ms on a 100+ s run; scaled here to
        // the same run-length ratios).
        let (base_f, _) = false_inv(
            wl_name,
            SplitConfig {
                epoch_len: SimTime::from_millis(2),
                ..Default::default()
            },
        );
        let mut rows = Vec::new();
        for (label, us) in [("0.02ms", 20u64), ("0.2ms", 200), ("2ms", 2_000)] {
            let (f, entries) = false_inv(
                wl_name,
                SplitConfig {
                    epoch_len: SimTime::from_micros(us),
                    ..Default::default()
                },
            );
            rows.push(vec![
                label.to_string(),
                f.to_string(),
                format!("{:.3}", f as f64 / base_f.max(1) as f64),
                entries.to_string(),
            ]);
        }
        print_table(
            &format!("Figure 9 (right, a) — {wl_name}: epoch-size sensitivity"),
            &["epoch", "false inv", "norm (vs 2ms)", "entries@end"],
            &rows,
        );

        // Initial-region-size sweep.
        let mut rows = Vec::new();
        for (label, k) in [
            ("2MB", 21u8),
            ("1MB", 20),
            ("256KB", 18),
            ("64KB", 16),
            ("16KB", 14),
        ] {
            let (f, entries) = false_inv(
                wl_name,
                SplitConfig {
                    initial_region_log2: k,
                    epoch_len: SimTime::from_millis(2),
                    ..Default::default()
                },
            );
            rows.push(vec![
                label.to_string(),
                f.to_string(),
                format!("{:.3}", f as f64 / base_f.max(1) as f64),
                entries.to_string(),
            ]);
        }
        print_table(
            &format!("Figure 9 (right, b) — {wl_name}: initial-region-size sensitivity"),
            &["initial", "false inv", "norm (vs 16KB)", "entries@end"],
            &rows,
        );
    }
}
