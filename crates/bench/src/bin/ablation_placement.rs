//! Ablation (paper §8, "Thread management"): sharer-aware thread placement.
//!
//! The paper notes that co-locating threads with a high proportion of
//! mutual shared-memory accesses is an orthogonal lever: invalidations
//! between co-located threads never cross the network (same blade, same
//! cache). This harness quantifies it with a partitioned KVS under YCSB-A
//! where threads `t` and `t + n/2` share a partition:
//!
//! - **grouped** placement (`t / threads_per_blade`, the paper's
//!   round-robin default) puts the two sharers of every partition on
//!   *different* blades — worst case, every shared write ping-pongs;
//! - **co-located** placement (`t % n_blades` under this thread/partition
//!   layout) puts each partition's sharers on the *same* blade — shared
//!   writes become local cache hits.

use mind_bench::{cache_pages_for, dir_capacity_for, print_table};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::kvs::{KvsConfig, KvsWorkload};
use mind_workloads::runner::{run, RunConfig};
use mind_workloads::trace::Workload;

const BLADES: u16 = 2;
const THREADS: u16 = 20;
const OPS_PER_THREAD: u64 = 15_000;

fn run_one(interleave: bool) -> (f64, u64, u64) {
    // n_partitions = THREADS / 2: threads t and t + 10 share partition
    // t % 10. Grouped placement puts t on blade t/10 (sharers split);
    // interleaved puts t on blade t%2 (t and t+10 share parity → same
    // blade).
    let mut wl = KvsWorkload::new(KvsConfig {
        n_partitions: THREADS / 2,
        locality: 1.0,
        ..KvsConfig::ycsb_a(THREADS)
    });
    let regions = wl.regions();
    let mut cfg = MindConfig {
        n_compute: BLADES,
        cache_pages: cache_pages_for(&regions),
        dir_capacity: dir_capacity_for(&regions),
        ..Default::default()
    }
    .consistency(ConsistencyModel::Tso);
    cfg.split.epoch_len = SimTime::from_millis(2);
    let mut sys = MindCluster::new(cfg);
    let report = run(
        &mut sys,
        &mut wl,
        RunConfig {
            ops_per_thread: OPS_PER_THREAD,
            warmup_ops_per_thread: OPS_PER_THREAD / 2,
            threads_per_blade: THREADS / BLADES,
            think_time: SimTime::from_nanos(100),
            interleave,
        },
    );
    (
        report.mops,
        report.window_metrics.get("invalidation_rounds"),
        report.window_metrics.get("flushed_pages"),
    )
}

fn main() {
    let (g_mops, g_inv, g_flush) = run_one(false);
    let (c_mops, c_inv, c_flush) = run_one(true);
    print_table(
        "§8 ablation — thread placement (KVS YCSB-A, sharers in pairs, 2 blades)",
        &["placement", "MOPS", "inv rounds", "flushed"],
        &[
            vec![
                "sharers split".into(),
                format!("{g_mops:.3}"),
                g_inv.to_string(),
                g_flush.to_string(),
            ],
            vec![
                "sharers co-located".into(),
                format!("{c_mops:.3}"),
                c_inv.to_string(),
                c_flush.to_string(),
            ],
        ],
    );
    println!(
        "\nco-location speedup: {:.2}x — invalidations between co-located\n\
         threads never leave the blade (§8 'Thread management')",
        c_mops / g_mops
    );
}
