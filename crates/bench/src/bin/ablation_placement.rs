//! Thin wrapper over the `ablation_placement` scenario table (see
//! `mind_bench::figures`): builds the table, executes it on the
//! environment-sized engine (`MIND_THREADS`), prints the paper-style
//! rows, and writes `BENCH_ablation_placement.json`. Pass `--quick` for the
//! CI-sized variant.

fn main() {
    mind_bench::figures::run_main("ablation_placement");
}
