//! Figure 8 (right): memory-allocation load balance across memory blades.
//!
//! Jain's fairness index of bytes allocated per memory blade, for MIND's
//! least-loaded vma placement vs page-granularity placement at 2 MB and
//! 1 GB, as the rack grows.
//!
//! Expected shape (paper): MIND ≈ 1.0 everywhere; 2 MB pages also balance
//! well (fine granularity) but at the cost of the rule explosion shown in
//! Figure 8 (center); 1 GB pages balance poorly for allocation-intensive
//! workloads (MA/MC's many small vmas each pin a whole huge page).

use mind_bench::{print_table, real_workload};
use mind_core::galloc::GlobalAllocator;
use mind_sim::stats::jains_index;

/// Places `vmas` on `n` blades with `chunk`-granularity pages.
///
/// A page lives wholly on one blade, and new vmas *pack into* the open
/// partially-filled page before a fresh page is opened on the least-loaded
/// blade — the standard huge-page allocation behaviour. With 1 GB pages,
/// many small vmas pile onto a single blade before the next page opens;
/// this is exactly the imbalance the paper shows for allocation-intensive
/// workloads.
fn paged_fairness(vmas: &[u64], n: u16, chunk: u64) -> f64 {
    let mut load = vec![0u64; n as usize]; // Bytes resident per blade.
    let mut open: Option<(usize, u64)> = None; // (blade, bytes left in page).
    for &len in vmas {
        let mut remaining = len;
        while remaining > 0 {
            let (blade, left) = match open {
                Some((b, l)) if l > 0 => (b, l),
                _ => {
                    let (idx, _) = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &l)| (l, i))
                        .expect("non-empty");
                    (idx, chunk)
                }
            };
            let piece = remaining.min(left);
            load[blade] += piece;
            remaining -= piece;
            open = Some((blade, left - piece));
        }
    }
    jains_index(&load.iter().map(|&x| x as f64).collect::<Vec<_>>())
}

fn mind_fairness(vmas: &[u64], n: u16) -> f64 {
    let mut galloc = GlobalAllocator::new(n, 1 << 34);
    for &len in vmas {
        galloc.alloc(len).expect("fits");
    }
    jains_index(
        &galloc
            .allocated_per_blade()
            .iter()
            .map(|&x| x as f64)
            .collect::<Vec<_>>(),
    )
}

fn main() {
    let groups: [(&str, &str); 3] = [("TF", "TF"), ("GC", "GC"), ("MA&C", "MA")];
    for (label, wl_name) in groups {
        let mut rows = Vec::new();
        for blades in [1u16, 2, 4, 8] {
            // The allocation-request stream: one workload instance per
            // memory blade (dataset scales with the rack), with MA/MC's
            // allocation-intensive pattern of many smaller slab requests.
            let wl = real_workload(wl_name, 8);
            let mut vmas: Vec<u64> = Vec::new();
            for _ in 0..blades {
                for &len in &wl.regions() {
                    if label == "MA&C" {
                        // memcached grows its slab arena in 1 MB chunks.
                        let mut left = len;
                        while left > 0 {
                            let piece = left.min(1 << 20);
                            vmas.push(piece);
                            left -= piece;
                        }
                    } else {
                        vmas.push(len);
                    }
                }
            }
            rows.push(vec![
                blades.to_string(),
                format!("{:.3}", mind_fairness(&vmas, blades)),
                format!("{:.3}", paged_fairness(&vmas, blades, 2 << 20)),
                format!("{:.3}", paged_fairness(&vmas, blades, 1 << 30)),
            ]);
        }
        print_table(
            &format!("Figure 8 (right) — {label}: Jain's fairness of blade load"),
            &["blades", "MIND", "2MB pages", "1GB pages"],
            &rows,
        );
    }
}
