//! Thin wrapper over the `fig8_fairness` scenario table (see
//! `mind_bench::figures`): builds the table, executes it on the
//! environment-sized engine (`MIND_THREADS`), prints the paper-style
//! rows, and writes `BENCH_fig8_fairness.json`. Pass `--quick` for the
//! CI-sized variant.

fn main() {
    mind_bench::figures::run_main("fig8_fairness");
}
