//! The multi-tenant serving suite: every `service_*` figure (QoS classes
//! under overload, tenant churn with admission control and TCAM
//! reclamation, elastic blade assignment) in one parallel invocation,
//! writing `BENCH_service.json`. Pass `--quick` for the CI-sized variant.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let figures = mind_bench::figures::matching("service");
    mind_bench::figures::run_suite("service", &figures, quick);
}
