//! Figure 6: invalidation overhead of MIND per workload and blade count.
//!
//! Reports remote accesses, invalidation requests, and flushed pages as a
//! fraction of total memory accesses for TF / GC / MA / MC at 1–8 compute
//! blades.
//!
//! Expected shape (paper): all three rates grow with blade count; GC's
//! growth is much steeper than TF's; MA and MC trigger over 10× more
//! invalidations and page flushes than either.

use mind_bench::{mind_for, print_table, real_workload, REAL_WORKLOADS};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const THREADS_PER_BLADE: u16 = 10;
const TOTAL_OPS: u64 = 400_000;

fn main() {
    for wl_name in REAL_WORKLOADS {
        let mut rows = Vec::new();
        for blades in [1u16, 2, 4, 8] {
            let n_threads = blades * THREADS_PER_BLADE;
            let ops_per_thread = TOTAL_OPS / n_threads as u64;
            let mut wl = real_workload(wl_name, n_threads);
            let regions = wl.regions();
            let mut sys = mind_for(&regions, blades, ConsistencyModel::Tso);
            let report = run(
                &mut sys,
                &mut *wl,
                RunConfig {
                    ops_per_thread,
                    warmup_ops_per_thread: ops_per_thread / 2,
                    threads_per_blade: THREADS_PER_BLADE,
                    think_time: SimTime::from_nanos(100),
                    interleave: false,
                },
            );
            rows.push(vec![
                blades.to_string(),
                format!("{:.2e}", report.remote_per_op),
                format!("{:.2e}", report.invalidations_per_op),
                format!("{:.2e}", report.flushed_per_op),
            ]);
        }
        print_table(
            &format!("Figure 6 — {wl_name}: occurrence per access vs #blades"),
            &["blades", "remote", "invalidations", "flushed"],
            &rows,
        );
    }
}
