//! Thin wrapper over the `fig7_throughput` scenario table (see
//! `mind_bench::figures`): builds the table, executes it on the
//! environment-sized engine (`MIND_THREADS`), prints the paper-style
//! rows, and writes `BENCH_fig7_throughput.json`. Pass `--quick` for the
//! CI-sized variant.

fn main() {
    mind_bench::figures::run_main("fig7_throughput");
}
