//! Figure 7 (center): 4 KB IOPS vs sharing ratio for read ratios
//! {0, 0.25, 0.5, 0.75, 1}.
//!
//! 8 compute blades × 1 thread over the §7.2 microbenchmark (uniform random
//! over a 400 k-page working set; the harness scales the set down 4× with
//! the cache scaled proportionally).
//!
//! Expected shape (paper): throughput is high (~10⁶ IOPS) at read ratio 1
//! for every sharing ratio, and at sharing ratio 0 for every read ratio;
//! raising both the write fraction and the sharing ratio collapses it by
//! ~10× (invalidation storms leave few local accesses).

use mind_bench::{cache_pages_for, dir_capacity_for, print_table};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::runner::{run, RunConfig};
use mind_workloads::trace::Workload;

const BLADES: u16 = 8;
const OPS_PER_THREAD: u64 = 40_000;
const SHARED_PAGES: u64 = 100_000;
const PRIVATE_PAGES: u64 = 12_500;

fn main() {
    let sharing_ratios = [0.0, 0.25, 0.5, 0.75, 1.0];
    let read_ratios = [1.0, 0.75, 0.5, 0.25, 0.0];

    let mut rows = Vec::new();
    for &sharing in &sharing_ratios {
        let mut cells = vec![format!("{sharing:.2}")];
        for &read in &read_ratios {
            let mut wl = MicroWorkload::new(MicroConfig {
                n_threads: BLADES,
                read_ratio: read,
                sharing_ratio: sharing,
                shared_pages: SHARED_PAGES,
                private_pages: PRIVATE_PAGES,
                seed: 42,
            });
            let regions = wl.regions();
            let mut cfg = MindConfig {
                n_compute: BLADES,
                cache_pages: cache_pages_for(&regions),
                dir_capacity: dir_capacity_for(&regions),
                ..Default::default()
            }
            .consistency(ConsistencyModel::Tso);
            cfg.split.epoch_len = SimTime::from_millis(2);
            let mut sys = MindCluster::new(cfg);
            let report = run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: OPS_PER_THREAD,
                    warmup_ops_per_thread: OPS_PER_THREAD / 2,
                    threads_per_blade: 1,
                    think_time: SimTime::from_nanos(100),
                    interleave: false,
                },
            );
            // 4 KB IOPS: page-granularity operations per second.
            cells.push(format!("{:.2e}", report.mops * 1e6));
        }
        rows.push(cells);
    }
    print_table(
        "Figure 7 (center) — 4KB IOPS, sharing ratio (rows) x read ratio (cols)",
        &["sharing", "R=1.0", "R=0.75", "R=0.5", "R=0.25", "R=0.0"],
        &rows,
    );
}
