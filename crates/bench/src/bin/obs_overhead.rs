//! `obs_overhead`: perf-guard for the tracing-disabled fast path.
//!
//! The observability contract is "near-zero cost when off": with tracing
//! disabled, every instrumentation site reduces to a branch on a cached
//! level. This bin makes that budget a gate. It measures
//!
//! 1. the per-operation wall cost of a replay with tracing pinned off
//!    (the datapath the instrumentation rides on), and
//! 2. the per-call wall cost of the disabled `TraceBuf::record` path,
//!
//! and exits non-zero if a disabled record call costs more than
//! [`THRESHOLD`] of one replayed operation — i.e. if the handful of trace
//! points an op crosses could move the tracing-off wall time by more than
//! the 3% the CI perf budget allows. The measurement is pure host time
//! and noisy in the absolute, but the two quantities differ by ~2-3
//! orders of magnitude, so the ratio gate is stable even on loaded hosts.

use std::hint::black_box;
use std::time::Instant;

use mind_core::cluster::{MindCluster, MindConfig};
use mind_obs::{EventKind, TraceBuf, TraceConfig, TraceMode};
use mind_sim::SimTime;
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::runner::{self, RunConfig};
use mind_workloads::Workload;

/// Maximum accepted (disabled record cost) / (replay op cost) ratio.
const THRESHOLD: f64 = 0.03;

/// Ops replayed to estimate the per-operation datapath cost.
const REPLAY_OPS: u64 = 40_000;

/// Disabled record calls timed to estimate the fast-path cost.
const RECORD_CALLS: u64 = 20_000_000;

fn replay_ns_per_op() -> f64 {
    let wl_cfg = MicroConfig {
        n_threads: 4,
        shared_pages: 256,
        private_pages: 64,
        ..Default::default()
    };
    let mut wl = MicroWorkload::new(wl_cfg);
    let footprint: u64 = wl.regions().iter().map(|len| len.div_ceil(4096)).sum();
    let cfg = MindConfig {
        trace: TraceConfig::with_mode(TraceMode::Off),
        ..MindConfig::scaled_to(footprint, 4)
    };
    let mut sys = MindCluster::new(cfg);
    let run = RunConfig {
        ops_per_thread: REPLAY_OPS / wl_cfg.n_threads as u64,
        trace: TraceConfig::with_mode(TraceMode::Off),
        ..Default::default()
    };
    let start = Instant::now();
    let report = runner::run(&mut sys, &mut wl, run);
    let wall = start.elapsed();
    assert!(report.trace.is_none(), "tracing pinned off");
    wall.as_secs_f64() * 1e9 / report.total_ops as f64
}

fn disabled_record_ns_per_call() -> f64 {
    let mut buf = TraceBuf::new(TraceConfig::with_mode(TraceMode::Off));
    let start = Instant::now();
    for i in 0..RECORD_CALLS {
        buf.record(
            SimTime::from_nanos(black_box(i)),
            (i & 7) as u32,
            EventKind::Issue,
            SimTime::from_nanos(3),
            i & 1,
            0,
        );
    }
    let wall = start.elapsed();
    assert!(buf.is_empty(), "disabled sink must record nothing");
    black_box(&buf);
    wall.as_secs_f64() * 1e9 / RECORD_CALLS as f64
}

fn main() {
    let op_ns = replay_ns_per_op();
    let record_ns = disabled_record_ns_per_call();
    let ratio = record_ns / op_ns;
    println!("replay:          {op_ns:>10.2} ns/op (tracing off)");
    println!("record disabled: {record_ns:>10.3} ns/call");
    println!(
        "ratio:           {:>10.4} (budget {THRESHOLD})",
        ratio
    );
    if ratio > THRESHOLD {
        eprintln!(
            "perf-guard: disabled trace record costs {ratio:.4} of a replayed op \
             (> {THRESHOLD}); the tracing-off fast path has regressed"
        );
        std::process::exit(1);
    }
    println!("obs_overhead: PASS");
}
