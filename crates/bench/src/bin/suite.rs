//! The whole evaluation in one parallel invocation.
//!
//! Concatenates every figure's scenario table (see
//! `mind_bench::figures::all`), fans the combined table across the
//! engine's workers (`MIND_THREADS`, default `available_parallelism`),
//! prints each figure's paper-style rows, and writes the combined
//! `BENCH_suite.json` perf report — per-scenario metrics plus the
//! `Metrics::merge` suite aggregate. Output is byte-identical for any
//! worker count.
//!
//! Flags:
//! - `--quick`: the CI-sized variant (smaller op budgets, shorter spans);
//! - `--list`: print every figure name and title, run nothing;
//! - `--filter <substr>`: run only figures whose name contains the
//!   substring (e.g. `--filter service_qos` for a single figure, or
//!   `--filter fig5` for a family). Unfiltered output is unaffected.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    if args.iter().any(|a| a == "--list") {
        for figure in mind_bench::figures::all() {
            println!("{:<20} {}", figure.name, figure.title);
        }
        return;
    }

    let filter = args.iter().position(|a| a == "--filter").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--filter requires a substring argument (see --list)");
            std::process::exit(2);
        })
    });
    let figures = match &filter {
        Some(substr) => mind_bench::figures::matching(substr),
        None => mind_bench::figures::all(),
    };
    if figures.is_empty() {
        eprintln!(
            "no figure matches {:?} (see --list)",
            filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    mind_bench::figures::run_suite("suite", &figures, quick);
}
