//! The whole evaluation in one parallel invocation.
//!
//! Concatenates every figure's scenario table (see
//! `mind_bench::figures::all`), fans the combined table across the
//! engine's workers (`MIND_THREADS`, default `available_parallelism`),
//! prints each figure's paper-style rows, and writes the combined
//! `BENCH_suite.json` perf report — per-scenario metrics plus the
//! `Metrics::merge` suite aggregate. Output is byte-identical for any
//! worker count. Pass `--quick` for the CI-sized variant.

use mind_harness::{report, Engine};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let figures = mind_bench::figures::all();

    let mut table = Vec::new();
    let mut spans = Vec::new();
    for figure in &figures {
        let scenarios = (figure.build)(quick);
        spans.push(scenarios.len());
        table.extend(scenarios);
    }

    let engine = Engine::from_env();
    eprintln!(
        "suite: {} scenarios across {} figures on {} worker(s){}",
        table.len(),
        figures.len(),
        engine.threads(),
        if quick { " (quick)" } else { "" },
    );
    let results = engine.run(table);

    let mut offset = 0;
    for (figure, span) in figures.iter().zip(spans) {
        println!("\n#### {} — {}", figure.name, figure.title);
        (figure.present)(&results[offset..offset + span]);
        offset += span;
    }

    let path = report::write_suite("suite", &results).expect("write BENCH json");
    println!("\nwrote {}", path.display());
}
