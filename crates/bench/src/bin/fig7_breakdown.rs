//! Figure 7 (right): end-to-end latency breakdown at sharing ratio 1.
//!
//! Mean per-remote-access latency decomposed into page-fault handling,
//! network (fetch + pipeline), invalidation queueing, and TLB shootdowns,
//! for read ratios {0, 0.5, 1} at 1–8 compute blades.
//!
//! Expected shape (paper): at R=1 latency stays near the S→S round trip
//! (~10 µs) regardless of blade count; at R=0.5 and R=0 it grows with
//! blade count, the growth coming from the two *extra* overhead sources —
//! invalidation queueing delay and synchronous TLB shootdowns. Paper values
//! at 8 blades: R=0 31.6 µs, R=0.5 20.5 µs, R=1 15.1 µs (their R=1 point
//! includes capacity effects).

use mind_bench::{cache_pages_for, dir_capacity_for, print_table};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::runner::{run, RunConfig};
use mind_workloads::trace::Workload;

const OPS_PER_THREAD: u64 = 40_000;
const SHARED_PAGES: u64 = 100_000;

fn main() {
    for read_ratio in [0.0, 0.5, 1.0] {
        let mut rows = Vec::new();
        for blades in [1u16, 2, 4, 8] {
            let mut wl = MicroWorkload::new(MicroConfig {
                n_threads: blades,
                read_ratio,
                sharing_ratio: 1.0,
                shared_pages: SHARED_PAGES,
                private_pages: 1,
                seed: 42,
            });
            let regions = wl.regions();
            let mut cfg = MindConfig {
                n_compute: blades,
                cache_pages: cache_pages_for(&regions),
                dir_capacity: dir_capacity_for(&regions),
                ..Default::default()
            }
            .consistency(ConsistencyModel::Tso);
            cfg.split.epoch_len = SimTime::from_millis(2);
            let mut sys = MindCluster::new(cfg);
            let report = run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: OPS_PER_THREAD,
                    warmup_ops_per_thread: OPS_PER_THREAD / 2,
                    threads_per_blade: 1,
                    think_time: SimTime::from_nanos(100),
                    interleave: false,
                },
            );
            let remotes = (report.remote_per_op * report.total_ops as f64).max(1.0);
            let us = |ns: u128| ns as f64 / remotes / 1000.0;
            let fault = us(report.sum_fault_ns);
            let net = us(report.sum_network_ns);
            let invq = us(report.sum_inv_queue_ns);
            let invtlb = us(report.sum_inv_tlb_ns);
            rows.push(vec![
                blades.to_string(),
                format!("{fault:.2}"),
                format!("{net:.2}"),
                format!("{invq:.2}"),
                format!("{invtlb:.2}"),
                format!("{:.2}", fault + net + invq + invtlb),
            ]);
        }
        print_table(
            &format!("Figure 7 (right) — latency breakdown per remote access (us), R={read_ratio}"),
            &[
                "blades",
                "PgFault",
                "Network",
                "Inv(queue)",
                "Inv(TLB)",
                "total",
            ],
            &rows,
        );
    }
    println!("\npaper totals at 8 blades: R=0 31.6  R=0.5 20.5  R=1 15.1 (us)");
}
