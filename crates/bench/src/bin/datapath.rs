//! The `datapath` figure: scalar vs op-batch pipeline replay throughput
//! over batch sizes 1/8/64/256, writing `BENCH_datapath.json`. Pass
//! `--quick` for the CI-sized variant. The `wall_*` values measure the
//! host and vary run to run; the `sim_*` values are deterministic.

fn main() {
    mind_bench::figures::run_main("datapath");
}
