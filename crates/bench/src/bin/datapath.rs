//! The `datapath` figure: scalar vs op-batch pipeline replay throughput
//! over batch sizes 1/8/64/256 plus the sharded large-scenario scaling
//! points (shard counts, OS-thread counts, the 131 072-tenant XL
//! population, and the 1 048 576-tenant streamed XXL population),
//! writing `BENCH_datapath.json`. Pass `--quick` for the CI-sized
//! variant. The `wall_*` / `shard_wall_*` / `shard_x*_wall_*` values
//! measure the host and vary run to run; the `sim_*` values are
//! deterministic.
//!
//! Under `--quick` the bin doubles as a perf-guard: it exits non-zero if
//!
//! - any regime's `wall_speedup_b64` falls below [`GUARD_FLOOR`] —
//!   batching regressing below scalar parity on any regime is the bug
//!   this figure exists to catch; or
//! - the multi-core shard driver at the top shard count
//!   (`shard_speedup_s4_t4`) falls below [`GUARD_FLOOR`] × the
//!   single-threaded figure (`shard_speedup_s4`) — threads must never
//!   cost wall time, and on a multi-core host they must gain it; or
//! - cross-turn recovery regresses against the per-batch window path:
//!   on the fault-dominated `remote` regime the cluster engine's
//!   `xturn_recovery_w16` must meet or beat `overlap_recovery_w16`
//!   outright (dissolving the turn-drain barrier is the engine's whole
//!   point there), and on every other regime it must stay within
//!   [`GUARD_FLOOR`] × of it. These are simulation values — the floor
//!   absorbs modelling drift, not host noise; or
//! - the million-tenant streamed point loses its scaling or its memory
//!   bound: `shard_xxl_speedup_t4` (multi-lane over single-lane wall)
//!   must stay ≥ [`GUARD_FLOOR`], and the XXL peak RSS must stay within
//!   [`RSS_CEILING`] × the XL peak at the same thread count — the
//!   constant-memory contract (8× the tenants must not mean 8× the
//!   memory). The RSS gate skips where the platform reports no peak
//!   counter (recorded as 0).
//!
//! The floor sits under 1.0 only to absorb wall-clock noise on loaded
//! CI hosts; the committed full-run figures keep every guarded ratio at
//! or above parity. The two thread-scaling gates additionally require
//! the host to expose at least as many cores as the gated thread count
//! (`std::thread::available_parallelism`): on a single-core host extra
//! worker lanes can only add scheduling and cache pressure, so a
//! wall-clock "threads must not cost time" assertion is unsatisfiable
//! there and the gate prints a skip note instead of failing. The RSS
//! gate is parallelism-independent and always applies.

use mind_bench::figures::datapath::{
    BATCH_SIZES, SHARD_COUNTS, SHARD_THREADS, WINDOWS, XXL_THREADS,
};

/// Minimum accepted `wall_speedup_b64` per regime — and minimum accepted
/// multi-thread/single-thread shard-speedup ratio — under `--quick`.
const GUARD_FLOOR: f64 = 0.95;

/// Maximum accepted `shard_xxl_peak_rss_mb / shard_xl_peak_rss_mb` at the
/// gate's thread count. The streamed datapath's promise is that peak
/// memory tracks worker lanes, not tenants; the XXL population carries 8×
/// the tenants and 2× the per-shard slice of XL, so ~2× (plus headroom
/// for allocator retention between the two measurements) is the bound.
const RSS_CEILING: f64 = 2.25;

/// Cores the host actually exposes; wall-clock thread-scaling gates only
/// apply when this covers the gated thread count.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn main() {
    let results = mind_bench::figures::run_main("datapath");
    if !std::env::args().any(|a| a == "--quick") {
        return;
    }
    assert!(BATCH_SIZES.contains(&64), "guard batch size must be swept");
    let mut failed = false;
    for r in results
        .iter()
        .filter(|r| !r.name.contains("/shards"))
    {
        let speedup = r.value("wall_speedup_b64");
        if speedup < GUARD_FLOOR {
            eprintln!(
                "perf-guard: {} wall_speedup_b64 = {speedup:.3} < {GUARD_FLOOR} \
                 (batching must not regress below scalar parity)",
                r.name
            );
            failed = true;
        }
    }
    // The cross-turn gate: cluster mode must never lose to the per-batch
    // window path it generalizes — and on the fault-dominated regime it
    // must win outright, because there the turn-drain barrier is what
    // the event-driven engine exists to dissolve.
    let top_window = *WINDOWS.last().expect("non-empty");
    for r in results
        .iter()
        .filter(|r| !r.name.contains("/shards"))
    {
        let turnwise = r.value(&format!("overlap_recovery_w{top_window}"));
        let xturn = r.value(&format!("xturn_recovery_w{top_window}"));
        let fault_dominated = r.name.ends_with("/remote");
        let floor = if fault_dominated { turnwise } else { GUARD_FLOOR * turnwise };
        if xturn < floor {
            eprintln!(
                "perf-guard: {} xturn_recovery_w{top_window} = {xturn:.3} < \
                 {} overlap_recovery_w{top_window} ({turnwise:.3}) \
                 (cross-turn overlap must not lose to the per-batch window)",
                r.name,
                if fault_dominated { "1.0 x".to_string() } else { format!("{GUARD_FLOOR} x") },
            );
            failed = true;
        }
    }
    // The multi-core gate: at the top shard count, the threaded driver
    // must keep (on one core) or beat (on many) the single-threaded
    // sharded wall clock.
    let top_shards = *SHARD_COUNTS.last().expect("non-empty");
    let top_threads = *SHARD_THREADS.last().expect("non-empty");
    if let Some(r) = results.iter().find(|r| r.name.ends_with("/shards")) {
        if host_cores() < top_threads {
            println!(
                "perf-guard: shard_speedup_s{top_shards}_t{top_threads} skipped \
                 (host exposes {} core(s) < {top_threads} gated threads)",
                host_cores()
            );
        } else {
            let single = r.value(&format!("shard_speedup_s{top_shards}"));
            let threaded = r.value(&format!("shard_speedup_s{top_shards}_t{top_threads}"));
            if threaded < GUARD_FLOOR * single {
                eprintln!(
                    "perf-guard: shard_speedup_s{top_shards}_t{top_threads} = {threaded:.3} < \
                     {GUARD_FLOOR} x shard_speedup_s{top_shards} ({single:.3}) \
                     (OS threads must not cost sharded wall time)"
                );
                failed = true;
            }
        }
    }
    // The streamed million-tenant gates: multi-lane execution must not
    // cost wall time against the single lane, and peak RSS must honor
    // the constant-memory contract against the XL run.
    let xxl_threads = *XXL_THREADS.last().expect("non-empty");
    let xl = results.iter().find(|r| r.name.ends_with("/shards_xl"));
    if let Some(r) = results.iter().find(|r| r.name.ends_with("/shards_xxl")) {
        if host_cores() < xxl_threads {
            println!(
                "perf-guard: shard_xxl_speedup_t{xxl_threads} skipped \
                 (host exposes {} core(s) < {xxl_threads} gated lanes)",
                host_cores()
            );
        } else {
            let speedup = r.value(&format!("shard_xxl_speedup_t{xxl_threads}"));
            if speedup < GUARD_FLOOR {
                eprintln!(
                    "perf-guard: shard_xxl_speedup_t{xxl_threads} = {speedup:.3} < {GUARD_FLOOR} \
                     (worker lanes must not cost streamed sharded wall time)"
                );
                failed = true;
            }
        }
        let xxl_rss = r.value(&format!("shard_xxl_peak_rss_mb_t{xxl_threads}"));
        let xl_rss =
            xl.map_or(0.0, |r| r.value(&format!("shard_xl_peak_rss_mb_t{xxl_threads}")));
        if xxl_rss > 0.0 && xl_rss > 0.0 {
            let ratio = xxl_rss / xl_rss;
            if ratio > RSS_CEILING {
                eprintln!(
                    "perf-guard: shards_xxl peak RSS {xxl_rss:.0} MiB = {ratio:.2}x the \
                     shards_xl peak ({xl_rss:.0} MiB) > {RSS_CEILING} \
                     (streamed sharding must keep peak memory O(lanes x one shard))"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "perf-guard: every regime's wall_speedup_b64 >= {GUARD_FLOOR}, \
         xturn_recovery_w{top_window} held against overlap_recovery_w{top_window}, \
         the thread-scaling gates held (or were skipped on an under-provisioned host), \
         and shards_xxl kept peak RSS <= {RSS_CEILING}x the XL peak"
    );
}
