//! The `datapath` figure: scalar vs op-batch pipeline replay throughput
//! over batch sizes 1/8/64/256 plus the sharded large-scenario scaling
//! point, writing `BENCH_datapath.json`. Pass `--quick` for the CI-sized
//! variant. The `wall_*` / `shard_wall_*` values measure the host and
//! vary run to run; the `sim_*` values are deterministic.
//!
//! Under `--quick` the bin doubles as a perf-guard: it exits non-zero if
//! any regime's `wall_speedup_b64` falls below [`GUARD_FLOOR`] — batching
//! regressing below scalar parity on any regime is the bug this figure
//! exists to catch. The floor sits under 1.0 only to absorb wall-clock
//! noise on loaded CI hosts; the committed full-run figures keep every
//! regime at or above parity.

use mind_bench::figures::datapath::BATCH_SIZES;

/// Minimum accepted `wall_speedup_b64` per regime under `--quick`.
const GUARD_FLOOR: f64 = 0.95;

fn main() {
    let results = mind_bench::figures::run_main("datapath");
    if !std::env::args().any(|a| a == "--quick") {
        return;
    }
    assert!(BATCH_SIZES.contains(&64), "guard batch size must be swept");
    let mut failed = false;
    for r in results.iter().filter(|r| !r.name.ends_with("/shards")) {
        let speedup = r.value("wall_speedup_b64");
        if speedup < GUARD_FLOOR {
            eprintln!(
                "perf-guard: {} wall_speedup_b64 = {speedup:.3} < {GUARD_FLOOR} \
                 (batching must not regress below scalar parity)",
                r.name
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("perf-guard: every regime's wall_speedup_b64 >= {GUARD_FLOOR}");
}
