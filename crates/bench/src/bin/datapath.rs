//! The `datapath` figure: scalar vs op-batch pipeline replay throughput
//! over batch sizes 1/8/64/256 plus the sharded large-scenario scaling
//! points (shard counts, OS-thread counts, and the 131 072-tenant XL
//! population), writing `BENCH_datapath.json`. Pass `--quick` for the
//! CI-sized variant. The `wall_*` / `shard_wall_*` / `shard_xl_wall_*`
//! values measure the host and vary run to run; the `sim_*` values are
//! deterministic.
//!
//! Under `--quick` the bin doubles as a perf-guard: it exits non-zero if
//!
//! - any regime's `wall_speedup_b64` falls below [`GUARD_FLOOR`] —
//!   batching regressing below scalar parity on any regime is the bug
//!   this figure exists to catch; or
//! - the multi-core shard driver at the top shard count
//!   (`shard_speedup_s4_t4`) falls below [`GUARD_FLOOR`] × the
//!   single-threaded figure (`shard_speedup_s4`) — threads must never
//!   cost wall time, and on a multi-core host they must gain it; or
//! - cross-turn recovery regresses against the per-batch window path:
//!   on the fault-dominated `remote` regime the cluster engine's
//!   `xturn_recovery_w16` must meet or beat `overlap_recovery_w16`
//!   outright (dissolving the turn-drain barrier is the engine's whole
//!   point there), and on every other regime it must stay within
//!   [`GUARD_FLOOR`] × of it. These are simulation values — the floor
//!   absorbs modelling drift, not host noise.
//!
//! The floor sits under 1.0 only to absorb wall-clock noise on loaded
//! (or single-core) CI hosts; the committed full-run figures keep every
//! guarded ratio at or above parity.

use mind_bench::figures::datapath::{BATCH_SIZES, SHARD_COUNTS, SHARD_THREADS, WINDOWS};

/// Minimum accepted `wall_speedup_b64` per regime — and minimum accepted
/// multi-thread/single-thread shard-speedup ratio — under `--quick`.
const GUARD_FLOOR: f64 = 0.95;

fn main() {
    let results = mind_bench::figures::run_main("datapath");
    if !std::env::args().any(|a| a == "--quick") {
        return;
    }
    assert!(BATCH_SIZES.contains(&64), "guard batch size must be swept");
    let mut failed = false;
    for r in results
        .iter()
        .filter(|r| !r.name.ends_with("/shards") && !r.name.ends_with("/shards_xl"))
    {
        let speedup = r.value("wall_speedup_b64");
        if speedup < GUARD_FLOOR {
            eprintln!(
                "perf-guard: {} wall_speedup_b64 = {speedup:.3} < {GUARD_FLOOR} \
                 (batching must not regress below scalar parity)",
                r.name
            );
            failed = true;
        }
    }
    // The cross-turn gate: cluster mode must never lose to the per-batch
    // window path it generalizes — and on the fault-dominated regime it
    // must win outright, because there the turn-drain barrier is what
    // the event-driven engine exists to dissolve.
    let top_window = *WINDOWS.last().expect("non-empty");
    for r in results
        .iter()
        .filter(|r| !r.name.ends_with("/shards") && !r.name.ends_with("/shards_xl"))
    {
        let turnwise = r.value(&format!("overlap_recovery_w{top_window}"));
        let xturn = r.value(&format!("xturn_recovery_w{top_window}"));
        let fault_dominated = r.name.ends_with("/remote");
        let floor = if fault_dominated { turnwise } else { GUARD_FLOOR * turnwise };
        if xturn < floor {
            eprintln!(
                "perf-guard: {} xturn_recovery_w{top_window} = {xturn:.3} < \
                 {} overlap_recovery_w{top_window} ({turnwise:.3}) \
                 (cross-turn overlap must not lose to the per-batch window)",
                r.name,
                if fault_dominated { "1.0 x".to_string() } else { format!("{GUARD_FLOOR} x") },
            );
            failed = true;
        }
    }
    // The multi-core gate: at the top shard count, the threaded driver
    // must keep (on one core) or beat (on many) the single-threaded
    // sharded wall clock.
    let top_shards = *SHARD_COUNTS.last().expect("non-empty");
    let top_threads = *SHARD_THREADS.last().expect("non-empty");
    if let Some(r) = results.iter().find(|r| r.name.ends_with("/shards")) {
        let single = r.value(&format!("shard_speedup_s{top_shards}"));
        let threaded = r.value(&format!("shard_speedup_s{top_shards}_t{top_threads}"));
        if threaded < GUARD_FLOOR * single {
            eprintln!(
                "perf-guard: shard_speedup_s{top_shards}_t{top_threads} = {threaded:.3} < \
                 {GUARD_FLOOR} x shard_speedup_s{top_shards} ({single:.3}) \
                 (OS threads must not cost sharded wall time)"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "perf-guard: every regime's wall_speedup_b64 >= {GUARD_FLOOR}, \
         xturn_recovery_w{top_window} held against overlap_recovery_w{top_window}, and \
         shard_speedup_s{top_shards}_t{top_threads} held >= {GUARD_FLOOR} x single-threaded"
    );
}
