//! Ablation (paper §8, "Other coherence protocols"): MSI vs MESI vs MOESI.
//!
//! The paper implements MSI for its simplicity and conjectures that MOESI
//! "may offer better scalability by reducing broadcasts and write-backs to
//! disaggregated memory" at the cost of a larger state-transition table.
//! This harness quantifies the conjecture on the simulated rack:
//!
//! - MESI removes the S→M upgrade fault for private read-then-write
//!   patterns (a sole reader is granted a writable Exclusive mapping);
//! - MOESI additionally removes the write-back on M→S downgrades and
//!   serves subsequent reads cache-to-cache from the Owned copy.
//!
//! Reported per workload at 4 blades × 10 threads: runtime (normalized to
//! MSI), upgrade faults, pages flushed, and STT rows (the switch storage
//! price §8 predicts stays "quite small").

use mind_bench::{cache_pages_for, dir_capacity_for, print_table, real_workload, REAL_WORKLOADS};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::stt::{Protocol, SttTable};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const BLADES: u16 = 4;
const THREADS_PER_BLADE: u16 = 10;
const TOTAL_OPS: u64 = 400_000;

fn main() {
    for wl_name in REAL_WORKLOADS {
        let mut rows = Vec::new();
        let mut msi_runtime = None;
        for protocol in [Protocol::Msi, Protocol::Mesi, Protocol::Moesi] {
            let n_threads = BLADES * THREADS_PER_BLADE;
            let mut wl = real_workload(wl_name, n_threads);
            let regions = wl.regions();
            let mut cfg = MindConfig {
                n_compute: BLADES,
                cache_pages: cache_pages_for(&regions),
                dir_capacity: dir_capacity_for(&regions),
                ..Default::default()
            }
            .consistency(ConsistencyModel::Tso)
            .protocol(protocol);
            cfg.split.epoch_len = SimTime::from_millis(2);
            let mut sys = MindCluster::new(cfg);
            let ops_per_thread = TOTAL_OPS / n_threads as u64;
            let report = run(
                &mut sys,
                &mut *wl,
                RunConfig {
                    ops_per_thread,
                    warmup_ops_per_thread: ops_per_thread / 2,
                    threads_per_blade: THREADS_PER_BLADE,
                    think_time: SimTime::from_nanos(100),
                    interleave: false,
                },
            );
            let base = *msi_runtime.get_or_insert(report.runtime);
            rows.push(vec![
                protocol.name().to_string(),
                format!(
                    "{:.3}",
                    base.as_nanos() as f64 / report.runtime.as_nanos() as f64
                ),
                report.metrics.get("upgrades").to_string(),
                report.metrics.get("flushed_pages").to_string(),
                report.metrics.get("invalidation_rounds").to_string(),
                SttTable::new(protocol).rows().to_string(),
            ]);
        }
        print_table(
            &format!("§8 ablation — {wl_name}: coherence protocol (perf normalized to MSI)"),
            &[
                "protocol",
                "perf",
                "upgrades",
                "flushed",
                "inv rounds",
                "STT rows",
            ],
            &rows,
        );
    }
}
