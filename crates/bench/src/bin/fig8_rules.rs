//! Figure 8 (center): match-action rules for the heap vs rack size.
//!
//! Compares MIND's translation+protection rule count against page-table
//! approaches that would install one match-action rule per 2 MB or 1 GB
//! page, as the dataset scales with the number of memory blades. The
//! switch's rule capacity is ~45 k.
//!
//! Expected shape (paper): MIND's count is nearly constant (one range rule
//! per memory blade plus one protection entry per vma — vma counts for
//! datacenter applications are well under 1–2 k); page-granularity rules
//! grow linearly with dataset size, crossing the 45 k limit for 2 MB pages.

use mind_bench::{print_table, real_workload};
use mind_core::cluster::{MindCluster, MindConfig};

const RULE_LIMIT: u64 = 45_000;

fn main() {
    // MA and MC share allocations; group them as the paper does.
    let groups: [(&str, &str); 3] = [("TF", "TF"), ("GC", "GC"), ("MA&C", "MA")];
    // Each memory blade contributes ~12 GB of heap (the dataset grows with
    // the rack; workload instances are allocated until the blade's memory
    // is consumed, as in the paper's scaling of the heap with blades).
    const HEAP_PER_BLADE: u64 = 12 << 30;
    for (label, wl_name) in groups {
        let mut rows = Vec::new();
        for blades in [1u16, 2, 4, 8] {
            let wl = real_workload(wl_name, 8);
            let regions = wl.regions();
            let instance_bytes: u64 = regions.iter().sum();
            let instances = (HEAP_PER_BLADE * blades as u64) / instance_bytes;
            let mut cluster = MindCluster::new(MindConfig {
                n_memory: blades,
                blade_span: 1 << 44,
                memory_blade_bytes: 1 << 44,
                ..Default::default()
            });
            let pid = cluster.exec().unwrap();
            let mut total_bytes = 0u64;
            let mut vma_count = 0u64;
            for _ in 0..instances {
                for &len in &regions {
                    cluster.mmap(pid, len).expect("fits");
                    total_bytes += len;
                    vma_count += 1;
                }
            }
            let mind_rules = cluster.match_action_rules() as u64;
            let rules_2mb = total_bytes.div_ceil(2 << 20);
            // 1 GB pages: a page cannot span allocation groups; count pages
            // needed per instance, summed.
            let rules_1gb: u64 =
                instances * regions.iter().map(|l| l.div_ceil(1 << 30)).sum::<u64>();
            rows.push(vec![
                blades.to_string(),
                format!("{mind_rules} ({vma_count} vmas)"),
                rules_2mb.to_string(),
                rules_1gb.to_string(),
                if rules_2mb > RULE_LIMIT {
                    "2MB over"
                } else {
                    "ok"
                }
                .to_string(),
            ]);
        }
        print_table(
            &format!(
                "Figure 8 (center) — {label}: match-action rules vs #blades (limit {RULE_LIMIT})"
            ),
            &["blades", "MIND", "2MB pages", "1GB pages", "capacity"],
            &rows,
        );
    }
}
