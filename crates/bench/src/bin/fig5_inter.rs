//! Figure 5 (center): inter-blade performance scaling.
//!
//! 10 threads per compute blade, 1–8 blades, for TF / GC / MA / MC under
//! MIND (TSO), MIND-PSO, MIND-PSO+ (infinite directory), and GAM.
//! Performance is the inverse of runtime, normalized to MIND at 1 blade.
//! FastSwap is omitted: it does not transparently scale beyond one blade
//! (§7.1).
//!
//! Expected shape (paper): TF scales ~1.67× per doubling; GC peaks at 2
//! blades; MA/MC do not scale past 1 blade under TSO; PSO(+) recovers some
//! scaling; GAM scales better on write-heavy workloads but from a much
//! lower single-blade baseline.

use mind_bench::{gam_for, mind_for, print_table, real_workload, REAL_WORKLOADS};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const THREADS_PER_BLADE: u16 = 10;
const TOTAL_OPS: u64 = 600_000;
const BLADES: [u16; 4] = [1, 2, 4, 8];

fn main() {
    let configs: [(&str, Option<ConsistencyModel>); 4] = [
        ("MIND", Some(ConsistencyModel::Tso)),
        ("MIND-PSO", Some(ConsistencyModel::Pso)),
        ("MIND-PSO+", Some(ConsistencyModel::PsoPlus)),
        ("GAM", None),
    ];

    for wl_name in REAL_WORKLOADS {
        let mut rows = Vec::new();
        let mut baseline_runtime: Option<SimTime> = None;
        for &blades in &BLADES {
            let n_threads = blades * THREADS_PER_BLADE;
            let ops_per_thread = TOTAL_OPS / n_threads as u64;
            let cfg = RunConfig {
                ops_per_thread,
                warmup_ops_per_thread: ops_per_thread / 2,
                threads_per_blade: THREADS_PER_BLADE,
                think_time: SimTime::from_nanos(100),
                interleave: false,
            };
            let mut cells = vec![blades.to_string()];
            for (sys_name, model) in configs {
                let mut wl = real_workload(wl_name, n_threads);
                let regions = wl.regions();
                let report = match model {
                    Some(m) => {
                        let mut sys = mind_for(&regions, blades, m);
                        run(&mut sys, &mut *wl, cfg)
                    }
                    None => {
                        let mut sys = gam_for(&regions, blades, THREADS_PER_BLADE);
                        run(&mut sys, &mut *wl, cfg)
                    }
                };
                if sys_name == "MIND" && blades == 1 {
                    baseline_runtime = Some(report.runtime);
                }
                let base = baseline_runtime.expect("MIND@1 runs first");
                let norm = base.as_nanos() as f64 / report.runtime.as_nanos() as f64;
                cells.push(format!("{norm:.3}"));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Figure 5 (center) — {wl_name}: normalized perf vs #blades"),
            &["blades", "MIND", "MIND-PSO", "MIND-PSO+", "GAM"],
            &rows,
        );
    }
}
