//! Figure 8 (left): cache-directory entries over time vs the SRAM limit.
//!
//! Runs each workload at 8 blades × 10 threads and samples the number of
//! directory entries at every bounded-splitting epoch.
//!
//! Expected shape (paper): TF and GC stay well below the limit; MA and MC
//! have so many actively shared regions that they sit pinned at the
//! capacity limit for the whole run (the capacity pressure behind their
//! poor scaling).

use mind_bench::{dir_capacity_for, mind_for, print_table, real_workload, REAL_WORKLOADS};
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const THREADS_PER_BLADE: u16 = 10;
const BLADES: u16 = 8;
const TOTAL_OPS: u64 = 600_000;

fn main() {
    for wl_name in REAL_WORKLOADS {
        let n_threads = BLADES * THREADS_PER_BLADE;
        let mut wl = real_workload(wl_name, n_threads);
        let regions = wl.regions();
        let capacity = dir_capacity_for(&regions);
        let mut sys = mind_for(&regions, BLADES, ConsistencyModel::Tso);
        let report = run(
            &mut sys,
            &mut *wl,
            RunConfig {
                ops_per_thread: TOTAL_OPS / n_threads as u64,
                warmup_ops_per_thread: 0,
                threads_per_blade: THREADS_PER_BLADE,
                think_time: SimTime::from_nanos(100),
                interleave: false,
            },
        );
        let series = sys.directory_series();
        let points = series.points();
        let mut rows = Vec::new();
        // Sample up to 12 evenly spaced epochs.
        let step = (points.len() / 12).max(1);
        for (t, v) in points.iter().step_by(step) {
            rows.push(vec![
                format!("{:.1}", t.as_millis_f64()),
                format!("{:.0}", v),
                format!("{:.0}%", v / capacity as f64 * 100.0),
            ]);
        }
        print_table(
            &format!(
                "Figure 8 (left) — {wl_name}: directory entries over time (limit = {capacity})"
            ),
            &["t(ms)", "entries", "of limit"],
            &rows,
        );
        println!(
            "  watermark={}  forced_merges={}  runtime={}",
            report.metrics.get("directory_watermark"),
            report.metrics.get("forced_merges"),
            report.runtime
        );
    }
}
