//! Diagnostic: per-run metric dump for calibration work (not a paper
//! figure). Usage: `diag [workload] [blades...]`.
//!
//! Builds one replay scenario per blade count and executes them through
//! the engine (so even ad-hoc diagnostics fan out across `MIND_THREADS`
//! workers), then dumps every metric and writes `BENCH_diag.json`.

use mind_core::system::ConsistencyModel;
use mind_harness::{report, Engine, Scenario, SystemSpec, WorkloadSpec};
use mind_workloads::runner::RunConfig;

const TOTAL_OPS: u64 = 600_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wl_name = args.get(1).map(|s| s.as_str()).unwrap_or("TF");
    let blades: Vec<u16> = if args.len() > 2 {
        args[2..].iter().map(|s| s.parse().unwrap()).collect()
    } else {
        vec![1, 2, 4, 8]
    };

    let table: Vec<Scenario> = blades
        .iter()
        .map(|&b| {
            let n_threads = b * 10;
            let ops_per_thread = TOTAL_OPS / n_threads as u64;
            let workload = WorkloadSpec::real(wl_name, n_threads);
            let regions = workload.regions();
            Scenario::replay(
                format!("diag/{wl_name}/b{b}"),
                SystemSpec::mind_scaled(&regions, b, ConsistencyModel::Tso),
                workload,
                RunConfig {
                    ops_per_thread,
                    warmup_ops_per_thread: ops_per_thread / 2,
                    threads_per_blade: 10,
                    ..Default::default()
                },
            )
        })
        .collect();
    let results = Engine::from_env().run(table);

    for (r, &b) in results.iter().zip(&blades) {
        let report = r.report();
        println!(
            "\n{} blades={} runtime={} mops={:.3} remote/op={:.4} inval/op={:.4} flushed/op={:.4} mean_remote={:.1}us",
            wl_name, b, report.runtime, report.mops, report.remote_per_op,
            report.invalidations_per_op, report.flushed_per_op,
            report.mean_remote_ns / 1000.0
        );
        let ops = report.total_ops as f64;
        println!(
            "  per-op ns: fault={:.0} net={:.0} invq={:.0} invtlb={:.0}",
            report.sum_fault_ns as f64 / ops,
            report.sum_network_ns as f64 / ops,
            report.sum_inv_queue_ns as f64 / ops,
            report.sum_inv_tlb_ns as f64 / ops
        );
        for key in [
            "local_hits",
            "remote_accesses",
            "upgrades",
            "invalidation_rounds",
            "false_invalidations",
            "bypasses",
            "forced_merges",
            "directory_entries",
            "directory_watermark",
            "directory_splits",
            "directory_merges",
            "evictions",
            "tlb_shootdowns",
            "resets",
        ] {
            print!("  {}={}", key, report.metrics.get(key));
        }
        println!();
    }

    let path = report::write_suite("diag", &results).expect("write BENCH json");
    println!("\nwrote {}", path.display());
}
