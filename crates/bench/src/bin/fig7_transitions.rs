//! Figure 7 (left): end-to-end latency of every MSI state transition.
//!
//! Orchestrates each transition on fresh pages and measures the requester's
//! access latency, for 2, 4, and 8 compute blades requesting the same page.
//!
//! Expected shape (paper): transitions without invalidations (S→S, I→S/M)
//! cost one RDMA round trip (~8.5–9.4 µs); S→M overlaps its invalidation
//! with the data path (~8.6 µs, flat in the sharer count thanks to switch
//! multicast); transitions out of M are two sequential round trips
//! (~18 µs).

use mind_bench::print_table;
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::AccessKind;
use mind_sim::SimTime;

const ITERS: u64 = 200;
const PAGE: u64 = 4096;

/// Measures the mean latency (µs) of `measure` after running `setup` on a
/// fresh page, across `ITERS` pages in a rack of `blades` compute blades.
fn measure_transition(
    blades: u16,
    setup: impl Fn(&mut MindCluster, u64, u64, SimTime),
    measure: impl Fn(&mut MindCluster, u64, u64, SimTime) -> SimTime,
) -> f64 {
    let mut cluster = MindCluster::new(MindConfig {
        n_compute: blades,
        ..Default::default()
    });
    let pid = cluster.exec().unwrap();
    let base = cluster.mmap(pid, ITERS * PAGE).unwrap();
    let mut total = SimTime::ZERO;
    for i in 0..ITERS {
        let vaddr = base + i * PAGE;
        // Generous spacing so iterations never queue behind each other.
        let t0 = SimTime::from_micros(1 + i * 500);
        setup(&mut cluster, pid, vaddr, t0);
        total += measure(&mut cluster, pid, vaddr, t0 + SimTime::from_micros(200));
    }
    total.as_micros_f64() / ITERS as f64
}

fn read(c: &mut MindCluster, pid: u64, vaddr: u64, at: SimTime, blade: u16) -> SimTime {
    c.access_as(at, blade, pid, vaddr, AccessKind::Read)
        .expect("read")
        .latency
        .total()
}

fn write(c: &mut MindCluster, pid: u64, vaddr: u64, at: SimTime, blade: u16) -> SimTime {
    c.access_as(at, blade, pid, vaddr, AccessKind::Write)
        .expect("write")
        .latency
        .total()
}

fn main() {
    let mut rows = Vec::new();
    for blades in [2u16, 4, 8] {
        // S→S: blades 1..k-1 share the page; blade 0 reads.
        let s_s = measure_transition(
            blades,
            |c, pid, v, t| {
                for b in 1..blades {
                    read(c, pid, v, t + SimTime::from_micros(20 * b as u64), b);
                }
            },
            |c, pid, v, t| read(c, pid, v, t, 0),
        );
        // I→S: fresh page read (row reported once per rack size).
        let i_s = measure_transition(
            blades,
            |_, _, _, _| {},
            |c, pid, v, t| read(c, pid, v, t, 0),
        );
        // I→M: fresh page write.
        let i_m = measure_transition(
            blades,
            |_, _, _, _| {},
            |c, pid, v, t| write(c, pid, v, t, 0),
        );
        // S→M: blades 1..k share; blade 0 write-misses — the invalidation
        // multicast overlaps the data fetch (§7.2).
        let s_m = measure_transition(
            blades,
            |c, pid, v, t| {
                for b in 1..blades {
                    read(c, pid, v, t + SimTime::from_micros(20 * b as u64), b);
                }
            },
            |c, pid, v, t| write(c, pid, v, t, 0),
        );
        // M→S: blade 1 owns dirty; blade 0 reads.
        let m_s = measure_transition(
            blades,
            |c, pid, v, t| {
                write(c, pid, v, t, 1);
            },
            |c, pid, v, t| read(c, pid, v, t, 0),
        );
        // M→M: blade 1 owns dirty; blade 0 writes.
        let m_m = measure_transition(
            blades,
            |c, pid, v, t| {
                write(c, pid, v, t, 1);
            },
            |c, pid, v, t| write(c, pid, v, t, 0),
        );
        rows.push(vec![
            format!("{blades}C"),
            format!("{s_s:.1}"),
            format!("{i_s:.1}"),
            format!("{i_m:.1}"),
            format!("{s_m:.1}"),
            format!("{m_s:.1}"),
            format!("{m_m:.1}"),
        ]);
    }
    print_table(
        "Figure 7 (left) — MSI transition latency (us)",
        &[
            "rack",
            "S->S",
            "I->S",
            "I->M",
            "S->M (inval)",
            "M->S (inval)",
            "M->M (inval)",
        ],
        &rows,
    );
    println!("\npaper (2C): S->S 8.5  I->S/M 9.3-9.4  S->M 8.6  M->S/M 18.0");
}
