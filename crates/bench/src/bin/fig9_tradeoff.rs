//! Figure 9 (left): the storage-vs-performance tradeoff that bounded
//! splitting navigates.
//!
//! For TF and GC at 8 blades × 10 threads: false invalidations and
//! directory entries under *fixed* region granularities (2 MB … 16 KB,
//! splitting disabled, unbounded SRAM so the granularity is actually held)
//! and under Bounded Splitting ("BS", default capacity).
//!
//! Expected shape (paper): small fixed regions → few false invalidations
//! but many directory entries; large fixed regions → the opposite; BS
//! lands near the small-region false-invalidation count with far fewer
//! entries. False invalidations are normalized to the 2 MB value.

use mind_bench::{cache_pages_for, dir_capacity_for, print_table, real_workload};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::split::SplitConfig;
use mind_core::system::ConsistencyModel;
use mind_sim::SimTime;
use mind_workloads::runner::{run, RunConfig};

const THREADS_PER_BLADE: u16 = 10;
const BLADES: u16 = 8;
const TOTAL_OPS: u64 = 400_000;

struct Point {
    label: String,
    false_inv: u64,
    entries: u64,
}

fn run_one(wl_name: &str, split: SplitConfig, dir_capacity: usize) -> Point {
    let n_threads = BLADES * THREADS_PER_BLADE;
    let mut wl = real_workload(wl_name, n_threads);
    let regions = wl.regions();
    let cfg = MindConfig {
        n_compute: BLADES,
        cache_pages: cache_pages_for(&regions),
        dir_capacity,
        split,
        ..Default::default()
    }
    .consistency(ConsistencyModel::Tso);
    let mut sys = MindCluster::new(cfg);
    let report = run(
        &mut sys,
        &mut *wl,
        RunConfig {
            ops_per_thread: TOTAL_OPS / n_threads as u64,
            warmup_ops_per_thread: 0,
            threads_per_blade: THREADS_PER_BLADE,
            think_time: SimTime::from_nanos(100),
            interleave: false,
        },
    );
    Point {
        label: String::new(),
        false_inv: report.metrics.get("false_invalidations"),
        entries: report.metrics.get("directory_watermark"),
    }
}

fn main() {
    for wl_name in ["TF", "GC"] {
        let regions = real_workload(wl_name, 8).regions();
        let scaled_cap = dir_capacity_for(&regions);
        let mut points = Vec::new();
        for (label, k) in [
            ("2MB", 21u8),
            ("1MB", 20),
            ("256KB", 18),
            ("64KB", 16),
            ("16KB", 14),
        ] {
            let mut p = run_one(wl_name, SplitConfig::fixed(k), usize::MAX / 2);
            p.label = label.to_string();
            points.push(p);
        }
        let mut bs = run_one(
            wl_name,
            SplitConfig {
                epoch_len: SimTime::from_millis(2),
                ..Default::default()
            },
            scaled_cap,
        );
        bs.label = "BS".to_string();
        points.push(bs);

        let norm = points[0].false_inv.max(1) as f64;
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    p.false_inv.to_string(),
                    format!("{:.3}", p.false_inv as f64 / norm),
                    p.entries.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 9 (left) — {wl_name}: region granularity tradeoff"),
            &["region", "false inv", "norm (vs 2MB)", "dir entries"],
            &rows,
        );
    }
}
