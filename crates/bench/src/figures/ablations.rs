//! §8 ablations: coherence protocols beyond MSI, and sharer-aware thread
//! placement.

use mind_core::cluster::MindConfig;
use mind_core::stt::{Protocol, SttTable};
use mind_core::system::ConsistencyModel;
use mind_harness::{footprint_pages, Scenario, ScenarioResult, SystemSpec, WorkloadSpec, REAL_WORKLOADS};
use mind_workloads::kvs::KvsConfig;
use mind_workloads::runner::RunConfig;

use super::scaled_ops;
use crate::print_table;

// ---- Coherence protocols: MSI vs MESI vs MOESI ----
//
// The paper implements MSI and conjectures MOESI "may offer better
// scalability by reducing broadcasts and write-backs" at the cost of a
// larger state-transition table. Quantified here at 4 blades × 10
// threads: MESI removes the S→M upgrade fault for private
// read-then-write patterns; MOESI additionally removes the write-back on
// M→S downgrades.

const PROTO_BLADES: u16 = 4;
const PROTO_TPB: u16 = 10;
const PROTO_TOTAL_OPS: u64 = 400_000;
const PROTOCOLS: [Protocol; 3] = [Protocol::Msi, Protocol::Mesi, Protocol::Moesi];

/// Scenario table for the protocol ablation.
pub fn protocols_build(quick: bool) -> Vec<Scenario> {
    let total = scaled_ops(PROTO_TOTAL_OPS, quick);
    let mut table = Vec::new();
    for wl_name in REAL_WORKLOADS {
        for protocol in PROTOCOLS {
            let n_threads = PROTO_BLADES * PROTO_TPB;
            let workload = WorkloadSpec::real(wl_name, n_threads);
            let regions = workload.regions();
            let cfg = MindConfig::scaled_to(footprint_pages(&regions), PROTO_BLADES)
                .consistency(ConsistencyModel::Tso)
                .protocol(protocol);
            let ops_per_thread = total / n_threads as u64;
            table.push(Scenario::replay(
                format!("ablation_protocols/{wl_name}/{}", protocol.name()),
                SystemSpec::Mind(cfg),
                workload,
                RunConfig {
                    ops_per_thread,
                    warmup_ops_per_thread: ops_per_thread / 2,
                    threads_per_blade: PROTO_TPB,
                    ..Default::default()
                },
            ));
        }
    }
    table
}

/// Prints the protocol ablation.
pub fn protocols_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for wl_name in REAL_WORKLOADS {
        let mut msi_runtime = None;
        let rows: Vec<Vec<String>> = PROTOCOLS
            .iter()
            .map(|&protocol| {
                let report = next.next().expect("table shape").report();
                let base = *msi_runtime.get_or_insert(report.runtime);
                vec![
                    protocol.name().to_string(),
                    format!(
                        "{:.3}",
                        base.as_nanos() as f64 / report.runtime.as_nanos() as f64
                    ),
                    report.metrics.get("upgrades").to_string(),
                    report.metrics.get("flushed_pages").to_string(),
                    report.metrics.get("invalidation_rounds").to_string(),
                    SttTable::new(protocol).rows().to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("§8 ablation — {wl_name}: coherence protocol (perf normalized to MSI)"),
            &[
                "protocol",
                "perf",
                "upgrades",
                "flushed",
                "inv rounds",
                "STT rows",
            ],
            &rows,
        );
    }
}

// ---- Thread placement: sharers split vs co-located ----
//
// A partitioned KVS under YCSB-A where threads `t` and `t + n/2` share a
// partition. Grouped placement (`t / threads_per_blade`) puts the two
// sharers of every partition on *different* blades — every shared write
// ping-pongs; interleaved placement (`t % n_blades`) co-locates them —
// shared writes become local cache hits.

const PLACE_BLADES: u16 = 2;
const PLACE_THREADS: u16 = 20;
const PLACE_OPS_PER_THREAD: u64 = 15_000;

/// Scenario table for the placement ablation: grouped, then co-located.
pub fn placement_build(quick: bool) -> Vec<Scenario> {
    let ops_per_thread = scaled_ops(PLACE_OPS_PER_THREAD, quick);
    [("sharers-split", false), ("sharers-colocated", true)]
        .into_iter()
        .map(|(label, interleave)| {
            let workload = WorkloadSpec::Kvs(KvsConfig {
                n_partitions: PLACE_THREADS / 2,
                locality: 1.0,
                ..KvsConfig::ycsb_a(PLACE_THREADS)
            });
            let regions = workload.regions();
            Scenario::replay(
                format!("ablation_placement/{label}"),
                SystemSpec::mind_scaled(&regions, PLACE_BLADES, ConsistencyModel::Tso),
                workload,
                RunConfig {
                    ops_per_thread,
                    warmup_ops_per_thread: ops_per_thread / 2,
                    threads_per_blade: PLACE_THREADS / PLACE_BLADES,
                    interleave,
                    ..Default::default()
                },
            )
        })
        .collect()
}

/// Prints the placement ablation.
pub fn placement_present(results: &[ScenarioResult]) {
    let stat = |r: &ScenarioResult| {
        let report = r.report();
        (
            report.mops,
            report.window_metrics.get("invalidation_rounds"),
            report.window_metrics.get("flushed_pages"),
        )
    };
    let (g_mops, g_inv, g_flush) = stat(&results[0]);
    let (c_mops, c_inv, c_flush) = stat(&results[1]);
    print_table(
        "§8 ablation — thread placement (KVS YCSB-A, sharers in pairs, 2 blades)",
        &["placement", "MOPS", "inv rounds", "flushed"],
        &[
            vec![
                "sharers split".into(),
                format!("{g_mops:.3}"),
                g_inv.to_string(),
                g_flush.to_string(),
            ],
            vec![
                "sharers co-located".into(),
                format!("{c_mops:.3}"),
                c_inv.to_string(),
                c_flush.to_string(),
            ],
        ],
    );
    println!(
        "\nco-location speedup: {:.2}x — invalidations between co-located\n\
         threads never leave the blade (§8 'Thread management')",
        c_mops / g_mops
    );
}
