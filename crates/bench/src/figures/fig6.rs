//! Figure 6: invalidation overhead of MIND per workload and blade count.
//!
//! Reports remote accesses, invalidation requests, and flushed pages as a
//! fraction of total memory accesses for TF / GC / MA / MC at 1–8 compute
//! blades. Expected shape (paper): all three rates grow with blade count;
//! GC's growth is much steeper than TF's; MA and MC trigger over 10× more
//! invalidations and page flushes than either.

use mind_core::system::ConsistencyModel;
use mind_harness::{Scenario, ScenarioResult, SystemSpec, WorkloadSpec, REAL_WORKLOADS};
use mind_workloads::runner::RunConfig;

use super::scaled_ops;
use crate::print_table;

const THREADS_PER_BLADE: u16 = 10;
const BLADES: [u16; 4] = [1, 2, 4, 8];
const TOTAL_OPS: u64 = 400_000;

/// Scenario table for Figure 6.
pub fn build(quick: bool) -> Vec<Scenario> {
    let total = scaled_ops(TOTAL_OPS, quick);
    let mut table = Vec::new();
    for wl_name in REAL_WORKLOADS {
        for &blades in &BLADES {
            let n_threads = blades * THREADS_PER_BLADE;
            let ops_per_thread = total / n_threads as u64;
            let workload = WorkloadSpec::real(wl_name, n_threads);
            let regions = workload.regions();
            table.push(Scenario::replay(
                format!("fig6_invalidation/{wl_name}/b{blades}"),
                SystemSpec::mind_scaled(&regions, blades, ConsistencyModel::Tso),
                workload,
                RunConfig {
                    ops_per_thread,
                    warmup_ops_per_thread: ops_per_thread / 2,
                    threads_per_blade: THREADS_PER_BLADE,
                    ..Default::default()
                },
            ));
        }
    }
    table
}

/// Prints Figure 6.
pub fn present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for wl_name in REAL_WORKLOADS {
        let rows: Vec<Vec<String>> = BLADES
            .iter()
            .map(|&blades| {
                let report = next.next().expect("table shape").report();
                vec![
                    blades.to_string(),
                    format!("{:.2e}", report.remote_per_op),
                    format!("{:.2e}", report.invalidations_per_op),
                    format!("{:.2e}", report.flushed_per_op),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 6 — {wl_name}: occurrence per access vs #blades"),
            &["blades", "remote", "invalidations", "flushed"],
            &rows,
        );
    }
}
