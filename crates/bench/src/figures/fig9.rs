//! Figure 9: the storage-vs-performance tradeoff Bounded Splitting
//! navigates (left) and its parameter sensitivity (right).

use mind_core::cluster::{scaled_cache_pages, scaled_dir_capacity, MindConfig};
use mind_core::split::SplitConfig;
use mind_core::system::ConsistencyModel;
use mind_harness::{footprint_pages, Scenario, ScenarioResult, SystemSpec, WorkloadSpec};
use mind_sim::SimTime;
use mind_workloads::runner::RunConfig;

use super::scaled_ops;
use crate::print_table;

const THREADS_PER_BLADE: u16 = 10;
const BLADES: u16 = 8;
const TOTAL_OPS: u64 = 400_000;
const WORKLOADS: [&str; 2] = ["TF", "GC"];
const FIXED_GRANULARITIES: [(&str, u8); 5] = [
    ("2MB", 21),
    ("1MB", 20),
    ("256KB", 18),
    ("64KB", 16),
    ("16KB", 14),
];

/// A replay scenario for one splitting configuration at the standard
/// 8-blade × 10-thread evaluation rack.
fn split_scenario(
    name: String,
    wl_name: &str,
    split: SplitConfig,
    dir_capacity: usize,
    warmup: bool,
    quick: bool,
) -> Scenario {
    let n_threads = BLADES * THREADS_PER_BLADE;
    let workload = WorkloadSpec::real(wl_name, n_threads);
    let regions = workload.regions();
    let cfg = MindConfig {
        n_compute: BLADES,
        cache_pages: scaled_cache_pages(footprint_pages(&regions)),
        dir_capacity,
        split,
        ..Default::default()
    }
    .consistency(ConsistencyModel::Tso);
    let ops_per_thread = scaled_ops(TOTAL_OPS, quick) / n_threads as u64;
    Scenario::replay(
        name,
        SystemSpec::Mind(cfg),
        workload,
        RunConfig {
            ops_per_thread,
            warmup_ops_per_thread: if warmup { ops_per_thread / 2 } else { 0 },
            threads_per_blade: THREADS_PER_BLADE,
            ..Default::default()
        },
    )
}

// ---- Figure 9 (left): region-granularity tradeoff ----
//
// For TF and GC: false invalidations and directory entries under *fixed*
// region granularities (2 MB … 16 KB, splitting disabled, unbounded SRAM
// so the granularity is actually held) and under Bounded Splitting ("BS",
// default capacity). Expected shape (paper): small fixed regions → few
// false invalidations but many directory entries; large fixed regions →
// the opposite; BS lands near the small-region false-invalidation count
// with far fewer entries.

/// Scenario table for Figure 9 (left).
pub fn tradeoff_build(quick: bool) -> Vec<Scenario> {
    let mut table = Vec::new();
    for wl_name in WORKLOADS {
        for (label, k) in FIXED_GRANULARITIES {
            table.push(split_scenario(
                format!("fig9_tradeoff/{wl_name}/{label}"),
                wl_name,
                SplitConfig::fixed(k),
                usize::MAX / 2,
                false,
                quick,
            ));
        }
        let scaled_cap =
            scaled_dir_capacity(footprint_pages(&WorkloadSpec::real(wl_name, 8).regions()));
        table.push(split_scenario(
            format!("fig9_tradeoff/{wl_name}/BS"),
            wl_name,
            SplitConfig {
                epoch_len: SimTime::from_millis(2),
                ..Default::default()
            },
            scaled_cap,
            false,
            quick,
        ));
    }
    table
}

/// Prints Figure 9 (left).
pub fn tradeoff_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for wl_name in WORKLOADS {
        let points: Vec<(&str, u64, u64)> = FIXED_GRANULARITIES
            .iter()
            .map(|&(label, _)| label)
            .chain(["BS"])
            .map(|label| {
                let report = next.next().expect("table shape").report();
                (
                    label,
                    report.metrics.get("false_invalidations"),
                    report.metrics.get("directory_watermark"),
                )
            })
            .collect();
        let norm = points[0].1.max(1) as f64;
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|&(label, false_inv, entries)| {
                vec![
                    label.to_string(),
                    false_inv.to_string(),
                    format!("{:.3}", false_inv as f64 / norm),
                    entries.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 9 (left) — {wl_name}: region granularity tradeoff"),
            &["region", "false inv", "norm (vs 2MB)", "dir entries"],
            &rows,
        );
    }
}

// ---- Figure 9 (right): epoch and initial-region-size sensitivity ----
//
// Sweeps (a) the epoch length and (b) the initial region size, reporting
// total false invalidations normalized to the default configuration
// (epoch 2 ms — the paper's 100 ms scaled by run length — and 16 KB
// initial regions). Expected shape (paper): epoch length barely matters
// across two orders of magnitude; smaller initial regions give fewer
// false invalidations because large ones pay several lossy epochs of
// splitting before stabilizing.

const EPOCHS_US: [(&str, u64); 3] = [("0.02ms", 20), ("0.2ms", 200), ("2ms", 2_000)];

fn sensitivity_scenario(
    wl_name: &str,
    label: &str,
    split: SplitConfig,
    quick: bool,
) -> Scenario {
    let dir_capacity =
        scaled_dir_capacity(footprint_pages(&WorkloadSpec::real(wl_name, 8).regions()));
    split_scenario(
        format!("fig9_sensitivity/{wl_name}/{label}"),
        wl_name,
        split,
        dir_capacity,
        false,
        quick,
    )
}

/// Scenario table for Figure 9 (right): per workload, the epoch sweep
/// then the initial-region-size sweep. The `2ms` epoch point doubles as
/// the normalization baseline (it *is* the default configuration).
pub fn sensitivity_build(quick: bool) -> Vec<Scenario> {
    let mut table = Vec::new();
    for wl_name in WORKLOADS {
        for (label, us) in EPOCHS_US {
            table.push(sensitivity_scenario(
                wl_name,
                label,
                SplitConfig {
                    epoch_len: SimTime::from_micros(us),
                    ..Default::default()
                },
                quick,
            ));
        }
        for (label, k) in FIXED_GRANULARITIES {
            table.push(sensitivity_scenario(
                wl_name,
                &format!("init{label}"),
                SplitConfig {
                    initial_region_log2: k,
                    epoch_len: SimTime::from_millis(2),
                    ..Default::default()
                },
                quick,
            ));
        }
    }
    table
}

/// Prints Figure 9 (right).
pub fn sensitivity_present(results: &[ScenarioResult]) {
    let per_wl = EPOCHS_US.len() + FIXED_GRANULARITIES.len();
    for (w, wl_name) in WORKLOADS.iter().enumerate() {
        let block = &results[w * per_wl..(w + 1) * per_wl];
        let stat = |r: &ScenarioResult| {
            (
                r.report().metrics.get("false_invalidations"),
                r.report().metrics.get("directory_entries"),
            )
        };
        // The 2 ms epoch entry is the default configuration — the
        // normalization baseline for both sweeps.
        let (base_f, _) = stat(&block[EPOCHS_US.len() - 1]);
        let row = |label: &str, f: u64, entries: u64| {
            vec![
                label.to_string(),
                f.to_string(),
                format!("{:.3}", f as f64 / base_f.max(1) as f64),
                entries.to_string(),
            ]
        };
        let rows: Vec<Vec<String>> = EPOCHS_US
            .iter()
            .zip(block)
            .map(|(&(label, _), r)| {
                let (f, entries) = stat(r);
                row(label, f, entries)
            })
            .collect();
        print_table(
            &format!("Figure 9 (right, a) — {wl_name}: epoch-size sensitivity"),
            &["epoch", "false inv", "norm (vs 2ms)", "entries@end"],
            &rows,
        );
        let rows: Vec<Vec<String>> = FIXED_GRANULARITIES
            .iter()
            .zip(&block[EPOCHS_US.len()..])
            .map(|(&(label, _), r)| {
                let (f, entries) = stat(r);
                row(label, f, entries)
            })
            .collect();
        print_table(
            &format!("Figure 9 (right, b) — {wl_name}: initial-region-size sensitivity"),
            &["initial", "false inv", "norm (vs 16KB)", "entries@end"],
            &rows,
        );
    }
}
