//! Figure 7: coherence microbenchmarks (left: MSI transition latency;
//! center: IOPS vs sharing ratio; right: latency breakdown).

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::{AccessKind, ConsistencyModel};
use mind_harness::{Scenario, ScenarioOutput, ScenarioResult, SystemSpec, WorkloadSpec};
use mind_sim::SimTime;
use mind_workloads::micro::MicroConfig;
use mind_workloads::runner::RunConfig;

use super::scaled_ops;
use crate::print_table;

// ---- Figure 7 (left): MSI transition latency ----
//
// Orchestrates each transition on fresh pages and measures the
// requester's access latency, for 2, 4, and 8 compute blades requesting
// the same page. Expected shape (paper): transitions without
// invalidations (S→S, I→S/M) cost one RDMA round trip (~8.5–9.4 µs); S→M
// overlaps its invalidation with the data path (~8.6 µs, flat in the
// sharer count thanks to switch multicast); transitions out of M are two
// sequential round trips (~18 µs).

const TRANSITION_RACKS: [u16; 3] = [2, 4, 8];
const TRANSITION_ITERS: u64 = 200;
const PAGE: u64 = 4096;

/// One MSI transition of Figure 7 (left), identified by requester intent
/// and orchestrated prior state.
#[derive(Debug, Clone, Copy)]
enum Transition {
    /// Sharers exist; blade 0 reads.
    SToS,
    /// Fresh page; blade 0 reads.
    IToS,
    /// Fresh page; blade 0 writes.
    IToM,
    /// Sharers exist; blade 0 writes (invalidation multicast overlaps the
    /// data fetch, §7.2).
    SToM,
    /// Blade 1 owns dirty; blade 0 reads.
    MToS,
    /// Blade 1 owns dirty; blade 0 writes.
    MToM,
}

const TRANSITIONS: [(&str, Transition); 6] = [
    ("S->S", Transition::SToS),
    ("I->S", Transition::IToS),
    ("I->M", Transition::IToM),
    ("S->M (inval)", Transition::SToM),
    ("M->S (inval)", Transition::MToS),
    ("M->M (inval)", Transition::MToM),
];

fn access(c: &mut MindCluster, pid: u64, vaddr: u64, at: SimTime, blade: u16, kind: AccessKind) -> SimTime {
    c.access_as(at, blade, pid, vaddr, kind)
        .expect("orchestrated access")
        .latency
        .total()
}

/// Mean latency (µs) of `transition` across `iters` fresh pages in a rack
/// of `blades` compute blades.
fn measure_transition(blades: u16, transition: Transition, iters: u64) -> f64 {
    let mut cluster = MindCluster::new(MindConfig {
        n_compute: blades,
        ..Default::default()
    });
    let pid = cluster.exec().unwrap();
    let base = cluster.mmap(pid, iters * PAGE).unwrap();
    let mut total = SimTime::ZERO;
    for i in 0..iters {
        let vaddr = base + i * PAGE;
        // Generous spacing so iterations never queue behind each other.
        let t0 = SimTime::from_micros(1 + i * 500);
        // Orchestrate the prior state.
        match transition {
            Transition::SToS | Transition::SToM => {
                for b in 1..blades {
                    access(
                        &mut cluster,
                        pid,
                        vaddr,
                        t0 + SimTime::from_micros(20 * b as u64),
                        b,
                        AccessKind::Read,
                    );
                }
            }
            Transition::MToS | Transition::MToM => {
                access(&mut cluster, pid, vaddr, t0, 1, AccessKind::Write);
            }
            Transition::IToS | Transition::IToM => {}
        }
        // Measure the requester.
        let kind = match transition {
            Transition::SToS | Transition::IToS | Transition::MToS => AccessKind::Read,
            _ => AccessKind::Write,
        };
        total += access(
            &mut cluster,
            pid,
            vaddr,
            t0 + SimTime::from_micros(200),
            0,
            kind,
        );
    }
    total.as_micros_f64() / iters as f64
}

/// Scenario table for Figure 7 (left): one custom scenario per
/// (rack size, transition).
pub fn transitions_build(quick: bool) -> Vec<Scenario> {
    let iters = if quick { 50 } else { TRANSITION_ITERS };
    let mut table = Vec::new();
    for &blades in &TRANSITION_RACKS {
        for (label, transition) in TRANSITIONS {
            table.push(Scenario::custom(
                format!("fig7_transitions/{blades}C/{label}"),
                move || {
                    ScenarioOutput::default()
                        .value("latency_us", measure_transition(blades, transition, iters))
                },
            ));
        }
    }
    table
}

/// Prints Figure 7 (left).
pub fn transitions_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    let rows: Vec<Vec<String>> = TRANSITION_RACKS
        .iter()
        .map(|&blades| {
            let mut cells = vec![format!("{blades}C")];
            for _ in TRANSITIONS {
                cells.push(format!(
                    "{:.1}",
                    next.next().expect("table shape").value("latency_us")
                ));
            }
            cells
        })
        .collect();
    print_table(
        "Figure 7 (left) — MSI transition latency (us)",
        &[
            "rack",
            "S->S",
            "I->S",
            "I->M",
            "S->M (inval)",
            "M->S (inval)",
            "M->M (inval)",
        ],
        &rows,
    );
    println!("\npaper (2C): S->S 8.5  I->S/M 9.3-9.4  S->M 8.6  M->S/M 18.0");
}

// ---- Figure 7 (center): 4 KB IOPS vs sharing ratio ----
//
// 8 compute blades × 1 thread over the §7.2 microbenchmark (uniform
// random; the harness scales the 400 k-page set down 4× with the cache
// scaled proportionally). Expected shape (paper): throughput is high
// (~10⁶ IOPS) at read ratio 1 for every sharing ratio, and at sharing
// ratio 0 for every read ratio; raising both the write fraction and the
// sharing ratio collapses it by ~10×.

const MICRO_BLADES: u16 = 8;
const MICRO_OPS_PER_THREAD: u64 = 40_000;
const MICRO_SHARED_PAGES: u64 = 100_000;
const MICRO_PRIVATE_PAGES: u64 = 12_500;
const SHARING_RATIOS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const READ_RATIOS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.0];

fn micro_scenario(
    prefix: &str,
    read_ratio: f64,
    sharing_ratio: f64,
    blades: u16,
    private_pages: u64,
    ops_per_thread: u64,
) -> Scenario {
    let workload = WorkloadSpec::Micro(MicroConfig {
        n_threads: blades,
        read_ratio,
        sharing_ratio,
        shared_pages: MICRO_SHARED_PAGES,
        private_pages,
        seed: 42,
    });
    let regions = workload.regions();
    Scenario::replay(
        format!("{prefix}/r{read_ratio}/s{sharing_ratio}/b{blades}"),
        SystemSpec::mind_scaled(&regions, blades, ConsistencyModel::Tso),
        workload,
        RunConfig {
            ops_per_thread,
            warmup_ops_per_thread: ops_per_thread / 2,
            threads_per_blade: 1,
            ..Default::default()
        },
    )
}

/// Scenario table for Figure 7 (center).
pub fn throughput_build(quick: bool) -> Vec<Scenario> {
    let ops = scaled_ops(MICRO_OPS_PER_THREAD, quick);
    let mut table = Vec::new();
    for &sharing in &SHARING_RATIOS {
        for &read in &READ_RATIOS {
            table.push(micro_scenario(
                "fig7_throughput",
                read,
                sharing,
                MICRO_BLADES,
                MICRO_PRIVATE_PAGES,
                ops,
            ));
        }
    }
    table
}

/// Prints Figure 7 (center).
pub fn throughput_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    let rows: Vec<Vec<String>> = SHARING_RATIOS
        .iter()
        .map(|&sharing| {
            let mut cells = vec![format!("{sharing:.2}")];
            for _ in READ_RATIOS {
                // 4 KB IOPS: page-granularity operations per second.
                let report = next.next().expect("table shape").report();
                cells.push(format!("{:.2e}", report.mops * 1e6));
            }
            cells
        })
        .collect();
    print_table(
        "Figure 7 (center) — 4KB IOPS, sharing ratio (rows) x read ratio (cols)",
        &["sharing", "R=1.0", "R=0.75", "R=0.5", "R=0.25", "R=0.0"],
        &rows,
    );
}

// ---- Figure 7 (right): latency breakdown at sharing ratio 1 ----
//
// Mean per-remote-access latency decomposed into page-fault handling,
// network, invalidation queueing, and TLB shootdowns, for read ratios
// {0, 0.5, 1} at 1–8 compute blades. Expected shape (paper): at R=1
// latency stays near the S→S round trip regardless of blade count; at
// R=0.5 and R=0 it grows with blade count, from invalidation queueing and
// synchronous TLB shootdowns. Paper values at 8 blades: R=0 31.6 µs,
// R=0.5 20.5 µs, R=1 15.1 µs.

const BREAKDOWN_READ_RATIOS: [f64; 3] = [0.0, 0.5, 1.0];
const BREAKDOWN_BLADES: [u16; 4] = [1, 2, 4, 8];

/// Scenario table for Figure 7 (right).
pub fn breakdown_build(quick: bool) -> Vec<Scenario> {
    let ops = scaled_ops(MICRO_OPS_PER_THREAD, quick);
    let mut table = Vec::new();
    for &read_ratio in &BREAKDOWN_READ_RATIOS {
        for &blades in &BREAKDOWN_BLADES {
            table.push(micro_scenario(
                "fig7_breakdown",
                read_ratio,
                1.0,
                blades,
                1,
                ops,
            ));
        }
    }
    table
}

/// Prints Figure 7 (right).
pub fn breakdown_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for &read_ratio in &BREAKDOWN_READ_RATIOS {
        let rows: Vec<Vec<String>> = BREAKDOWN_BLADES
            .iter()
            .map(|&blades| {
                let report = next.next().expect("table shape").report();
                let remotes = (report.remote_per_op * report.total_ops as f64).max(1.0);
                let us = |ns: u128| ns as f64 / remotes / 1000.0;
                let fault = us(report.sum_fault_ns);
                let net = us(report.sum_network_ns);
                let invq = us(report.sum_inv_queue_ns);
                let invtlb = us(report.sum_inv_tlb_ns);
                vec![
                    blades.to_string(),
                    format!("{fault:.2}"),
                    format!("{net:.2}"),
                    format!("{invq:.2}"),
                    format!("{invtlb:.2}"),
                    format!("{:.2}", fault + net + invq + invtlb),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 7 (right) — latency breakdown per remote access (us), R={read_ratio}"),
            &[
                "blades",
                "PgFault",
                "Network",
                "Inv(queue)",
                "Inv(TLB)",
                "total",
            ],
            &rows,
        );
    }
    println!("\npaper totals at 8 blades: R=0 31.6  R=0.5 20.5  R=1 15.1 (us)");
}
