//! The `datapath` figure: scalar vs op-batch pipeline throughput.
//!
//! MIND's premise is that the switch datapath runs at line rate, so the
//! *simulator's* ops/sec on the access hot path bounds every experiment
//! in this repo (275 suite scenarios, the service's tenant quanta). This
//! figure sweeps the trace runner's `batch_ops` over three micro-workload
//! regimes and reports, per batch size:
//!
//! - `sim_mops_b<N>` / `runtime_ns_b<N>` — *simulated* results, fully
//!   deterministic (and independent of the scalar/batched datapath choice:
//!   the equivalence suite asserts byte-identical reports);
//! - `wall_kops_b<N>` — host-side replay throughput (thousand simulated
//!   ops per wall-clock second), the quantity batching exists to raise;
//! - `wall_speedup_b<N>` — `wall_kops_b<N> / wall_kops_b1`.
//!
//! Unlike every other figure, the `wall_*` values measure the host and are
//! **not** run-to-run deterministic; the `sim_*` values are. Measurements
//! are paired (both pipelines run inside one scenario, best of
//! [`MEASURE_PASSES`]) *and pass-interleaved*: each pass runs every
//! (batch size × pipeline) cell once before the next pass starts, so slow
//! host drift (thermal, background load) lands on every cell about
//! equally instead of biasing whichever cell happened to run last.
//!
//! The figure also sweeps the **window axis** ([`WINDOWS`] ×
//! [`WINDOW_BATCHES`]): simulated MOPS with the issue/complete datapath
//! keeping up to W page-fault RTTs in flight per batch. These points are
//! simulation-only and deterministic. The `overlap_recovery_w<W>` values
//! (and the suite aggregate built from them) divide windowed batch-64
//! throughput by the batch-1 serialized baseline — the quantity that shows
//! whether latency hiding buys back the coarse-quantum loss batching
//! introduces on fault-dominated footprints.
//!
//! Finally the **shards axis** (`datapath/shards`): a large multi-tenant
//! population — every tenant in its own protection domain — replayed
//! fused and as 2/4 deterministic shards via
//! [`mind_workloads::shard::run_sharded_threads`]. The scenario first
//! asserts every (shard count × thread count) replay is *byte-identical*
//! to the fused serialized reference, then reports the wall-clock speedup
//! sharding buys (`shard_speedup_s<K>`): per-tenant TCAM admission scans
//! the rack-wide rule table, so the fused control plane pays O(tenants²)
//! while each shard pays only for its slice. The **threads axis**
//! (`shard_wall_secs_s<K>_t<T>` / `shard_speedup_s<K>_t<T>`) re-measures
//! the top shard count with 1/2/4 OS threads driving the shard
//! sub-clusters — identical output, multi-core wall clock. Like `wall_*`,
//! `shard_wall_*` and `shard_speedup_*` measure the host; the
//! `shard_sim_*` values are deterministic.
//!
//! `datapath/shards_xl` scales the same population to 131 072 tenants —
//! affordable only sharded ([`XL_SHARDS`] ways) and only because the
//! shard driver is multi-core. With no affordable fused reference,
//! determinism is asserted as byte-identity across thread counts, and
//! those identity runs double as the `shard_xl_wall_secs_t<T>`
//! measurements.
//!
//! `datapath/shards_xxl` is the million-tenant point: 1 048 576 tenants
//! ([`XXL_SHARDS`] × 16 384), affordable only because the streamed shard
//! datapath holds O(worker lanes × one shard) of state — shards are
//! built lazily, run to completion, and folded into the running merge as
//! they finish. Both XL and XXL runs record their peak RSS
//! (`shard_*_peak_rss_mb_t<T>`, from `VmHWM` with a reset per cell; 0
//! when the platform exposes no peak counter), which is how the
//! constant-memory claim is gated: the 8×-tenant XXL run must stay
//! within ~2× the XL peak.

use std::sync::Mutex;
use std::time::Instant;

use mind_core::system::{ConsistencyModel, ScalarLoop};
use mind_harness::{Scenario, ScenarioOutput, ScenarioResult, SystemSpec, WorkloadSpec};
use mind_service::{population_spec, tenant_partitions, TenantGroupConfig};
use mind_workloads::micro::MicroConfig;
use mind_workloads::runner::{self, Concurrency, RunConfig, RunReport};
use mind_workloads::{run_group, run_sharded_threads, ShardSpec};

use super::scaled_ops;
use crate::print_table;

/// Batch sizes swept (1 = the scalar per-op discipline).
pub const BATCH_SIZES: [u64; 4] = [1, 8, 64, 256];

/// In-flight window depths swept beyond the serialized baseline (the
/// whole wall-clock sweep above runs at window 1, which is byte-identical
/// to the pre-window datapath). Windowed points are simulation-only and
/// fully deterministic: they measure the *modelled* effect of
/// memory-level parallelism, not host throughput.
pub const WINDOWS: [u32; 2] = [4, 16];

/// Batch sizes the window axis sweeps (a batch of 1 has nothing to
/// overlap: the window is intra-batch).
pub const WINDOW_BATCHES: [u64; 3] = [8, 64, 256];

/// Wall-clock passes per point; the fastest is reported. Passes are
/// interleaved across cells (pass-major order), not batched per cell.
const MEASURE_PASSES: u32 = 5;

const OPS_PER_THREAD: u64 = 30_000;

/// Shard counts the scaling point sweeps (1 = the fused serialized
/// reference).
pub const SHARD_COUNTS: [u16; 3] = [1, 2, 4];

/// OS-thread counts the multi-core axis sweeps at the top shard count
/// (1 = the single-threaded sharded driver the original figure measured).
pub const SHARD_THREADS: [usize; 3] = [1, 2, 4];

/// Shard count of the 131 072-tenant `datapath/shards_xl` point.
pub const XL_SHARDS: u16 = 16;

/// Shard count of the 1 048 576-tenant `datapath/shards_xxl` point (one
/// shard per partition).
pub const XXL_SHARDS: u16 = 64;

/// OS-thread counts the XXL point sweeps: the single-lane baseline and
/// the multi-core cell the perf gate compares against it.
pub const XXL_THREADS: [usize; 2] = [1, 4];

/// Wall-clock passes for the sharded scaling point (each pass replays the
/// whole population at every shard count, so fewer passes suffice).
const SHARD_PASSES: u32 = 3;

/// Serializes the wall-clock sections across this figure's scenarios, so
/// a parallel engine does not run two measurements on sibling cores at
/// once (they would distort each other). Other figures' scenarios can
/// still interfere when the whole `suite` runs; the dedicated `datapath`
/// bin is the clean measurement path.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// One hot-path regime of the sweep.
#[derive(Clone, Copy)]
struct Regime {
    /// Short key used in scenario names and the report table.
    key: &'static str,
    /// What the regime stresses.
    title: &'static str,
    micro: MicroConfig,
    n_compute: u16,
    threads_per_blade: u16,
}

/// The three regimes the access hot path decomposes into: fault-dominated
/// (TCAM walk + directory transition per op), cache-resident (local-hit
/// bookkeeping per op), and invalidation-heavy (multicast rounds per op).
fn regimes() -> [Regime; 3] {
    [
        Regime {
            key: "remote",
            title: "fault-dominated (footprint >> cache)",
            micro: MicroConfig {
                n_threads: 4,
                read_ratio: 0.5,
                sharing_ratio: 1.0,
                shared_pages: 40_000,
                private_pages: 2_000,
                seed: 42,
            },
            n_compute: 2,
            threads_per_blade: 2,
        },
        Regime {
            key: "resident",
            title: "cache-resident (local hits)",
            micro: MicroConfig {
                n_threads: 8,
                read_ratio: 0.9,
                sharing_ratio: 0.2,
                shared_pages: 64,
                private_pages: 64,
                seed: 42,
            },
            n_compute: 4,
            threads_per_blade: 2,
        },
        Regime {
            key: "contended",
            title: "invalidation-heavy (small hot shared region)",
            micro: MicroConfig {
                n_threads: 8,
                read_ratio: 0.3,
                sharing_ratio: 1.0,
                shared_pages: 64,
                private_pages: 32,
                seed: 42,
            },
            n_compute: 4,
            threads_per_blade: 2,
        },
    ]
}

/// One measured cell, folded across passes: host kops/s from the best
/// pass plus the deterministic sim results (identical in every pass).
struct Point {
    best_secs: f64,
    executed: u64,
    sim_mops: f64,
    runtime_ns: u128,
}

impl Point {
    fn new() -> Self {
        Point {
            best_secs: f64::INFINITY,
            executed: 0,
            sim_mops: 0.0,
            runtime_ns: 0,
        }
    }

    fn kops(&self) -> f64 {
        self.executed as f64 / self.best_secs / 1e3
    }
}

/// Runs one wall-clock pass of one regime at one batch size through
/// either pipeline (`scalar` wraps the rack in [`ScalarLoop`], keeping
/// the trait's per-op loop) and folds it into `point`.
fn run_pass(regime: &Regime, batch_ops: u64, ops: u64, scalar: bool, point: &mut Point) {
    let workload = WorkloadSpec::Micro(regime.micro);
    let regions = workload.regions();
    let run_cfg = RunConfig {
        ops_per_thread: ops,
        warmup_ops_per_thread: ops / 2,
        threads_per_blade: regime.threads_per_blade,
        ..Default::default()
    }
    .with_batch_ops(batch_ops);

    let system = SystemSpec::mind_scaled(&regions, regime.n_compute, ConsistencyModel::Tso);
    let mut wl = workload.build();
    let report;
    let start;
    if scalar {
        let mut sys = ScalarLoop(system.build());
        start = Instant::now();
        report = runner::run(&mut sys, wl.as_mut(), run_cfg);
    } else {
        let mut sys = system.build();
        start = Instant::now();
        report = runner::run(sys.as_mut(), wl.as_mut(), run_cfg);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    point.best_secs = point.best_secs.min(secs);
    // Warmup ops run through the datapath too; count them as work done.
    point.executed =
        report.total_ops + run_cfg.warmup_ops_per_thread * regime.micro.n_threads as u64;
    point.sim_mops = report.mops;
    point.runtime_ns = report.runtime.as_nanos() as u128;
}

/// One simulation-only windowed point: the regime replayed at the given
/// batch size with an in-flight window of `window`. In
/// [`Concurrency::Turnwise`] the window overlaps RTTs within each
/// thread's batch; in [`Concurrency::Cluster`] the event-driven engine
/// additionally overlaps *across* turns and threads. Deterministic either
/// way — a single pass, no wall clock.
fn run_window_point(
    regime: &Regime,
    batch_ops: u64,
    window: u32,
    ops: u64,
    concurrency: Concurrency,
) -> (f64, u128, u128) {
    let workload = WorkloadSpec::Micro(regime.micro);
    let regions = workload.regions();
    let run_cfg = RunConfig {
        ops_per_thread: ops,
        warmup_ops_per_thread: ops / 2,
        threads_per_blade: regime.threads_per_blade,
        concurrency,
        ..Default::default()
    }
    .with_batch_ops(batch_ops)
    .with_window(window);
    let system = SystemSpec::mind_scaled(&regions, regime.n_compute, ConsistencyModel::Tso);
    let mut sys = system.build();
    let mut wl = workload.build();
    let report = runner::run(sys.as_mut(), wl.as_mut(), run_cfg);
    (
        report.mops,
        report.runtime.as_nanos() as u128,
        report.sum_overlapped_ns,
    )
}

/// The large-scenario scaling point: `partitions` × `tenants_per_group`
/// single-threaded tenants (16 384 in the full run), each in its own
/// protection domain with a 16-page footprint, on a 16+16-blade rack
/// sized by [`mind_service::population_spec`]. The population is confined
/// by construction (single-threaded tenants never invalidate) and
/// directory utilization stays at 1/4, so the sharded replay is
/// byte-identical to the fused reference — which the scenario asserts
/// before timing anything.
fn shard_spec(quick: bool) -> ShardSpec {
    population_spec("datapath/shards", 16, shard_population(quick))
}

/// The tenant population behind [`shard_spec`], keyed by global partition
/// index so every shard count replays identical op streams.
fn shard_population(quick: bool) -> TenantGroupConfig {
    TenantGroupConfig {
        tenants_per_group: if quick { 256 } else { 1024 },
        pages_per_tenant: 16,
        read_ratio: 0.7,
        seed: 42,
    }
}

/// The multi-core scaling point: the shard population grown to 131 072
/// tenants (16 × 8192, `--quick` included) — a footprint whose fused
/// O(tenants²) admission makes the serialized reference unaffordable, so
/// the point runs sharded only, at [`XL_SHARDS`] shards. Determinism is
/// asserted the way the multi-core contract states it: the merged report
/// is byte-identical across every thread count in [`SHARD_THREADS`].
fn shard_xl_spec() -> ShardSpec {
    population_spec("datapath/shards_xl", 16, shard_xl_population())
}

/// The tenant population behind [`shard_xl_spec`].
fn shard_xl_population() -> TenantGroupConfig {
    TenantGroupConfig {
        tenants_per_group: 8192,
        pages_per_tenant: 16,
        read_ratio: 0.7,
        seed: 42,
    }
}

/// The constant-memory scaling point: the shard population grown to
/// 1 048 576 tenants (64 × 16 384). At this scale even *holding* every
/// shard's finished report would defeat the run — the streamed merge
/// folds each shard away as it completes, so peak memory tracks the
/// worker-lane count, not the tenant count.
fn shard_xxl_spec() -> ShardSpec {
    population_spec("datapath/shards_xxl", XXL_SHARDS, shard_xxl_population())
}

/// The tenant population behind [`shard_xxl_spec`].
fn shard_xxl_population() -> TenantGroupConfig {
    TenantGroupConfig {
        tenants_per_group: 16_384,
        pages_per_tenant: 16,
        read_ratio: 0.7,
        seed: 42,
    }
}

/// Peak process RSS in MiB since the last reset, or 0.0 where the
/// platform exposes no peak counter (the RSS gate skips on 0).
fn peak_rss_mb() -> f64 {
    mind_obs::mem::peak_rss_bytes().map_or(0.0, |b| b as f64 / (1 << 20) as f64)
}

/// The byte-identity key of a merged report: every integer the merge adds
/// plus the recomputed floats (compared at the bit level).
fn report_key(r: &RunReport) -> (u128, u64, u64, u64, u128, u128, u64, u64) {
    (
        r.runtime.as_nanos() as u128,
        r.total_ops,
        r.remote_ops,
        r.flushed_pages,
        r.sum_network_ns,
        r.sum_remote_lat_ns,
        r.latency.quantile(0.999),
        r.mops.to_bits(),
    )
}

/// Scenario table: one paired-measurement scenario per regime, plus the
/// sharded scaling point. At every batch size both pipelines replay the
/// *identical* schedule, so `pipe_speedup` isolates the datapath
/// amortization; `wall_speedup` additionally includes the effect of
/// coarser issue quanta on the simulated workload itself.
pub fn build(quick: bool) -> Vec<Scenario> {
    let ops = scaled_ops(OPS_PER_THREAD, quick) / 4;
    let mut table: Vec<Scenario> = regimes()
        .into_iter()
        .map(|regime| {
            Scenario::custom(format!("datapath/{}", regime.key), move || {
                let _serial = MEASURE_LOCK.lock().expect("measure lock");
                let mut out = ScenarioOutput::default();
                // Pass-major: each pass visits every (batch × pipeline)
                // cell once, so host drift hits all cells evenly and the
                // per-cell best-of stays a paired comparison.
                let mut batched_pts: Vec<Point> = BATCH_SIZES.iter().map(|_| Point::new()).collect();
                let mut scalar_pts: Vec<Point> = BATCH_SIZES.iter().map(|_| Point::new()).collect();
                for _ in 0..MEASURE_PASSES {
                    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
                        run_pass(&regime, batch, ops, false, &mut batched_pts[i]);
                        run_pass(&regime, batch, ops, true, &mut scalar_pts[i]);
                    }
                }
                let mut base_kops = 0.0;
                let mut base_sim_mops = 0.0;
                for (i, &batch) in BATCH_SIZES.iter().enumerate() {
                    let batched = &batched_pts[i];
                    let scalar = &scalar_pts[i];
                    // The equivalence guarantee, enforced in-figure: both
                    // pipelines simulated the exact same run.
                    assert_eq!(
                        batched.runtime_ns, scalar.runtime_ns,
                        "scalar/batched divergence: {} b{batch}",
                        regime.key
                    );
                    out = out
                        .value(format!("sim_mops_b{batch}"), batched.sim_mops)
                        .value(format!("runtime_ns_b{batch}"), batched.runtime_ns as f64)
                        .value(format!("wall_kops_b{batch}"), batched.kops())
                        .value(format!("scalar_kops_b{batch}"), scalar.kops())
                        .value(
                            format!("pipe_speedup_b{batch}"),
                            batched.kops() / scalar.kops().max(1e-12),
                        );
                    if batch == 1 {
                        base_kops = batched.kops();
                        base_sim_mops = batched.sim_mops;
                    } else {
                        out = out.value(
                            format!("wall_speedup_b{batch}"),
                            batched.kops() / base_kops.max(1e-12),
                        );
                    }
                }
                // The window axis: simulated MOPS with up to W fault RTTs
                // in flight per batch. `overlap_recovery_w<W>` is the
                // figure's headline — windowed batch-64 throughput over
                // the batch-1 serialized baseline; ≥ 1.0 means the
                // latency hiding bought back the coarse-quantum loss.
                for &window in &WINDOWS {
                    for &batch in &WINDOW_BATCHES {
                        let (sim_mops, runtime_ns, overlapped_ns) =
                            run_window_point(&regime, batch, window, ops, Concurrency::Turnwise);
                        out = out
                            .value(format!("sim_mops_b{batch}_w{window}"), sim_mops)
                            .value(format!("runtime_ns_b{batch}_w{window}"), runtime_ns as f64)
                            .value(
                                format!("overlapped_ns_b{batch}_w{window}"),
                                overlapped_ns as f64,
                            );
                        if batch == 64 {
                            out = out.value(
                                format!("overlap_recovery_w{window}"),
                                sim_mops / base_sim_mops.max(1e-12),
                            );
                        }
                    }
                }
                // The cross-turn axis: the same windowed batch-64 cell in
                // cluster concurrency — the event-driven engine lets every
                // thread's in-flight faults overlap *across* turn and
                // thread boundaries, so `xturn_recovery_w<W>` should sit
                // strictly above `overlap_recovery_w<W>` wherever the
                // turn-drain barrier was the binding constraint.
                for &window in &WINDOWS {
                    let (sim_mops, runtime_ns, overlapped_ns) =
                        run_window_point(&regime, 64, window, ops, Concurrency::Cluster);
                    out = out
                        .value(format!("sim_mops_b64_xturn_w{window}"), sim_mops)
                        .value(format!("runtime_ns_b64_xturn_w{window}"), runtime_ns as f64)
                        .value(
                            format!("overlapped_ns_b64_xturn_w{window}"),
                            overlapped_ns as f64,
                        )
                        .value(
                            format!("xturn_recovery_w{window}"),
                            sim_mops / base_sim_mops.max(1e-12),
                        );
                }
                out
            })
        })
        .collect();

    table.push(Scenario::custom("datapath/shards".to_string(), move || {
        let _serial = MEASURE_LOCK.lock().expect("measure lock");
        let spec = shard_spec(quick);
        let factory = tenant_partitions(shard_population(quick));
        let tenants = spec.partitions as u64 * spec.run.threads_per_blade as u64;

        // Determinism first: the fused serialized reference, then every
        // (shard count × thread count) cell checked byte-identical
        // against it before any wall-clock pass is trusted. Thread
        // counts are asserted explicitly — the multi-core driver's
        // contract is that they are invisible in the output.
        let reference = run_group(&spec, &factory).expect("confined population");
        assert_eq!(reference.invalidations, 0, "population must be confined");
        for &shards in &SHARD_COUNTS {
            for &threads in &SHARD_THREADS {
                let merged =
                    run_sharded_threads(&spec, shards, threads, &factory).expect("confined");
                assert_eq!(
                    report_key(&reference),
                    report_key(&merged),
                    "sharded replay diverged from the serialized reference at \
                     shards={shards} threads={threads}"
                );
                assert_eq!(reference.metrics, merged.metrics, "shards={shards}");
                assert_eq!(reference.window_metrics, merged.window_metrics, "shards={shards}");
            }
        }

        // Wall clock, pass-major across cells (same drift reasoning as
        // the batch sweep): the classic shard axis single-threaded, plus
        // the thread axis at the top shard count.
        let top_shards = *SHARD_COUNTS.last().expect("non-empty");
        let mut best = [f64::INFINITY; SHARD_COUNTS.len()];
        let mut best_threads = [f64::INFINITY; SHARD_THREADS.len()];
        for _ in 0..SHARD_PASSES {
            for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
                let start = Instant::now();
                let merged = run_sharded_threads(&spec, shards, 1, &factory).expect("confined");
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                best[i] = best[i].min(secs);
                assert_eq!(report_key(&reference), report_key(&merged));
            }
            for (i, &threads) in SHARD_THREADS.iter().enumerate() {
                let start = Instant::now();
                let merged =
                    run_sharded_threads(&spec, top_shards, threads, &factory).expect("confined");
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                best_threads[i] = best_threads[i].min(secs);
                assert_eq!(report_key(&reference), report_key(&merged));
            }
        }

        let mut out = ScenarioOutput::default()
            .value("shard_tenants", tenants as f64)
            .value("shard_total_ops", reference.total_ops as f64)
            .value("shard_sim_runtime_ns", reference.runtime.as_nanos() as f64);
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            out = out.value(format!("shard_wall_secs_s{shards}"), best[i]);
            if shards > 1 {
                out = out.value(
                    format!("shard_speedup_s{shards}"),
                    best[0] / best[i].max(1e-12),
                );
            }
        }
        for (i, &threads) in SHARD_THREADS.iter().enumerate() {
            out = out.value(
                format!("shard_wall_secs_s{top_shards}_t{threads}"),
                best_threads[i],
            );
            out = out.value(
                format!("shard_speedup_s{top_shards}_t{threads}"),
                best[0] / best_threads[i].max(1e-12),
            );
        }
        out
    }));

    table.push(Scenario::custom("datapath/shards_xl".to_string(), move || {
        let _serial = MEASURE_LOCK.lock().expect("measure lock");
        let spec = shard_xl_spec();
        let factory = tenant_partitions(shard_xl_population());
        let tenants = spec.partitions as u64 * spec.run.threads_per_blade as u64;

        // No fused reference at this scale (per-tenant TCAM admission
        // makes the fused control plane pay O(tenants²)); determinism is
        // asserted as the multi-core contract states it — byte-identical
        // merged reports across thread counts — and the identity runs
        // double as the wall-clock measurements (one pass per cell).
        let mut reference: Option<RunReport> = None;
        let mut wall = [f64::INFINITY; SHARD_THREADS.len()];
        let mut peak = [0.0f64; SHARD_THREADS.len()];
        for (i, &threads) in SHARD_THREADS.iter().enumerate() {
            mind_obs::mem::reset_peak_rss();
            let start = Instant::now();
            let merged =
                run_sharded_threads(&spec, XL_SHARDS, threads, &factory).expect("confined");
            wall[i] = start.elapsed().as_secs_f64().max(1e-9);
            peak[i] = peak_rss_mb();
            match &reference {
                None => {
                    assert_eq!(merged.invalidations, 0, "population must be confined");
                    reference = Some(merged);
                }
                Some(reference) => {
                    assert_eq!(
                        report_key(reference),
                        report_key(&merged),
                        "thread count changed the merged report at threads={threads}"
                    );
                    assert_eq!(reference.metrics, merged.metrics, "threads={threads}");
                    assert_eq!(reference.window_metrics, merged.window_metrics);
                }
            }
        }
        let reference = reference.expect("at least one thread count");

        let mut out = ScenarioOutput::default()
            .value("shard_xl_tenants", tenants as f64)
            .value("shard_xl_shards", XL_SHARDS as f64)
            .value("shard_xl_total_ops", reference.total_ops as f64)
            .value("shard_xl_sim_runtime_ns", reference.runtime.as_nanos() as f64);
        for (i, &threads) in SHARD_THREADS.iter().enumerate() {
            out = out.value(format!("shard_xl_wall_secs_t{threads}"), wall[i]);
            out = out.value(format!("shard_xl_peak_rss_mb_t{threads}"), peak[i]);
            if threads > 1 {
                out = out.value(
                    format!("shard_xl_speedup_t{threads}"),
                    wall[0] / wall[i].max(1e-12),
                );
            }
        }
        out
    }));

    table.push(Scenario::custom(
        "datapath/shards_xxl".to_string(),
        move || {
            let _serial = MEASURE_LOCK.lock().expect("measure lock");
            let spec = shard_xxl_spec();
            let factory = tenant_partitions(shard_xxl_population());
            let tenants = spec.partitions as u64 * spec.run.threads_per_blade as u64;

            // Like XL: no affordable fused reference, so determinism is
            // byte-identity across thread counts, and each identity run
            // doubles as that cell's wall-clock and peak-RSS measurement
            // (the peak counter is reset per cell, so each cell's figure
            // is its own high-water mark).
            let mut reference: Option<RunReport> = None;
            let mut wall = [f64::INFINITY; XXL_THREADS.len()];
            let mut peak = [0.0f64; XXL_THREADS.len()];
            for (i, &threads) in XXL_THREADS.iter().enumerate() {
                mind_obs::mem::reset_peak_rss();
                let start = Instant::now();
                let merged =
                    run_sharded_threads(&spec, XXL_SHARDS, threads, &factory).expect("confined");
                wall[i] = start.elapsed().as_secs_f64().max(1e-9);
                peak[i] = peak_rss_mb();
                match &reference {
                    None => {
                        assert_eq!(merged.invalidations, 0, "population must be confined");
                        assert!(
                            merged.total_ops >= tenants,
                            "every tenant must issue at least one measured op"
                        );
                        reference = Some(merged);
                    }
                    Some(reference) => {
                        assert_eq!(
                            report_key(reference),
                            report_key(&merged),
                            "thread count changed the merged report at threads={threads}"
                        );
                        assert_eq!(reference.metrics, merged.metrics, "threads={threads}");
                        assert_eq!(reference.window_metrics, merged.window_metrics);
                    }
                }
            }
            let reference = reference.expect("at least one thread count");

            let mut out = ScenarioOutput::default()
                .value("shard_xxl_tenants", tenants as f64)
                .value("shard_xxl_shards", XXL_SHARDS as f64)
                .value("shard_xxl_total_ops", reference.total_ops as f64)
                .value(
                    "shard_xxl_sim_runtime_ns",
                    reference.runtime.as_nanos() as f64,
                );
            for (i, &threads) in XXL_THREADS.iter().enumerate() {
                out = out.value(format!("shard_xxl_wall_secs_t{threads}"), wall[i]);
                out = out.value(format!("shard_xxl_peak_rss_mb_t{threads}"), peak[i]);
                if threads > 1 {
                    out = out.value(
                        format!("shard_xxl_speedup_t{threads}"),
                        wall[0] / wall[i].max(1e-12),
                    );
                }
            }
            out
        },
    ));
    table
}

/// Prints the datapath sweep tables.
pub fn present(results: &[ScenarioResult]) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(regimes())
        .map(|(r, regime)| {
            let mut cells = vec![regime.key.to_string()];
            for &batch in &BATCH_SIZES {
                cells.push(format!("{:.0}", r.value(&format!("wall_kops_b{batch}"))));
            }
            cells.push(format!("{:.2}x", r.value("wall_speedup_b64")));
            cells.push(format!("{:.3}", r.value("sim_mops_b1")));
            cells
        })
        .collect();
    print_table(
        "datapath — batched-pipeline throughput (host kops/s) vs batch_ops",
        &["regime", "b=1", "b=8", "b=64", "b=256", "speedup64", "sim MOPS (b=1)"],
        &rows,
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(regimes())
        .map(|(r, regime)| {
            let mut cells = vec![regime.key.to_string()];
            for &batch in &BATCH_SIZES {
                cells.push(format!(
                    "{:.2}x",
                    r.value(&format!("pipe_speedup_b{batch}"))
                ));
            }
            cells
        })
        .collect();
    print_table(
        "datapath — batched vs scalar-loop pipeline on the identical schedule",
        &["regime", "b=1", "b=8", "b=64", "b=256"],
        &rows,
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(regimes())
        .map(|(r, regime)| {
            let mut cells = vec![
                regime.key.to_string(),
                format!("{:.3}", r.value("sim_mops_b1")),
                format!("{:.3}", r.value("sim_mops_b64")),
            ];
            for &window in &WINDOWS {
                cells.push(format!("{:.3}", r.value(&format!("sim_mops_b64_w{window}"))));
            }
            for &window in &WINDOWS {
                cells.push(format!(
                    "{:.2}x",
                    r.value(&format!("overlap_recovery_w{window}"))
                ));
            }
            cells
        })
        .collect();
    let mut headers = vec!["regime".to_string(), "b=1".to_string(), "b64/w1".to_string()];
    headers.extend(WINDOWS.iter().map(|w| format!("b64/w{w}")));
    headers.extend(WINDOWS.iter().map(|w| format!("recov w{w}")));
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "datapath — intra-batch RTT overlap: simulated MOPS at batch 64 vs window \
         (recovery is vs the b=1 serialized baseline)",
        &headers,
        &rows,
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(regimes())
        .map(|(r, regime)| {
            let mut cells = vec![regime.key.to_string()];
            for &window in &WINDOWS {
                cells.push(format!(
                    "{:.3}",
                    r.value(&format!("sim_mops_b64_xturn_w{window}"))
                ));
            }
            for &window in &WINDOWS {
                cells.push(format!(
                    "{:.2}x",
                    r.value(&format!("overlap_recovery_w{window}"))
                ));
                cells.push(format!(
                    "{:.2}x",
                    r.value(&format!("xturn_recovery_w{window}"))
                ));
            }
            cells
        })
        .collect();
    let mut headers = vec!["regime".to_string()];
    headers.extend(WINDOWS.iter().map(|w| format!("xturn b64/w{w}")));
    for w in &WINDOWS {
        headers.push(format!("turn recov w{w}"));
        headers.push(format!("xturn recov w{w}"));
    }
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "datapath — cross-turn overlap: cluster-engine MOPS at batch 64 \
         (xturn recovery vs the b=1 serialized baseline, next to the turnwise figure)",
        &headers,
        &rows,
    );
    for regime in regimes() {
        println!("   {:<10} {}", regime.key, regime.title);
    }

    // The sharded scaling point rides as the table's last scenarios.
    if let Some(r) = results.iter().find(|r| r.name.ends_with("/shards")) {
        let mut cells = vec![
            format!("{:.0}", r.value("shard_tenants")),
            format!("{:.0}", r.value("shard_total_ops")),
        ];
        for &shards in &SHARD_COUNTS {
            cells.push(format!("{:.2}s", r.value(&format!("shard_wall_secs_s{shards}"))));
        }
        cells.push(format!("{:.2}x", r.value("shard_speedup_s2")));
        cells.push(format!("{:.2}x", r.value("shard_speedup_s4")));
        print_table(
            "datapath — sharded large-scenario replay (byte-identical to the fused \
             reference; wall seconds, speedup vs shards=1)",
            &["tenants", "ops", "s=1", "s=2", "s=4", "speedup s2", "speedup s4"],
            &[cells],
        );
        let top_shards = *SHARD_COUNTS.last().expect("non-empty");
        let mut cells = vec![format!("s={top_shards}")];
        for &threads in &SHARD_THREADS {
            cells.push(format!(
                "{:.2}s",
                r.value(&format!("shard_wall_secs_s{top_shards}_t{threads}"))
            ));
        }
        for &threads in &SHARD_THREADS {
            cells.push(format!(
                "{:.2}x",
                r.value(&format!("shard_speedup_s{top_shards}_t{threads}"))
            ));
        }
        print_table(
            "datapath — multi-core shard execution (OS threads over the same shards; \
             byte-identical output, speedup vs shards=1 single-threaded)",
            &["cell", "t=1", "t=2", "t=4", "speedup t1", "speedup t2", "speedup t4"],
            &[cells],
        );
    }
    if let Some(r) = results.iter().find(|r| r.name.ends_with("/shards_xl")) {
        let mut cells = vec![
            format!("{:.0}", r.value("shard_xl_tenants")),
            format!("{:.0}", r.value("shard_xl_shards")),
            format!("{:.0}", r.value("shard_xl_total_ops")),
        ];
        for &threads in &SHARD_THREADS {
            cells.push(format!(
                "{:.2}s",
                r.value(&format!("shard_xl_wall_secs_t{threads}"))
            ));
        }
        print_table(
            "datapath — 131 072-tenant sharded replay (no affordable fused reference; \
             byte-identical across thread counts; wall seconds per thread count)",
            &["tenants", "shards", "ops", "t=1", "t=2", "t=4"],
            &[cells],
        );
    }
    if let Some(r) = results.iter().find(|r| r.name.ends_with("/shards_xxl")) {
        let mut cells = vec![
            format!("{:.0}", r.value("shard_xxl_tenants")),
            format!("{:.0}", r.value("shard_xxl_shards")),
            format!("{:.0}", r.value("shard_xxl_total_ops")),
        ];
        for &threads in &XXL_THREADS {
            cells.push(format!(
                "{:.2}s",
                r.value(&format!("shard_xxl_wall_secs_t{threads}"))
            ));
        }
        for &threads in &XXL_THREADS {
            cells.push(format!(
                "{:.0}M",
                r.value(&format!("shard_xxl_peak_rss_mb_t{threads}"))
            ));
        }
        print_table(
            "datapath — 1 048 576-tenant streamed sharded replay (byte-identical across \
             thread counts; wall seconds and peak RSS per thread count)",
            &["tenants", "shards", "ops", "t=1", "t=4", "rss t=1", "rss t=4"],
            &[cells],
        );
    }
}
