//! Figure 8: switch-resource behaviour (left: directory occupancy over
//! time; center: match-action rule counts; right: allocation fairness).

use mind_core::cluster::{scaled_dir_capacity, MindCluster, MindConfig};
use mind_core::galloc::GlobalAllocator;
use mind_core::system::ConsistencyModel;
use mind_harness::{
    footprint_pages, Scenario, ScenarioOutput, ScenarioResult, WorkloadSpec, REAL_WORKLOADS,
};
use mind_sim::stats::jains_index;
use mind_workloads::runner::{run, RunConfig};

use super::scaled_ops;
use crate::print_table;

// ---- Figure 8 (left): directory entries over time ----
//
// Runs each workload at 8 blades × 10 threads and samples the number of
// directory entries at every bounded-splitting epoch. Expected shape
// (paper): TF and GC stay well below the SRAM limit; MA and MC have so
// many actively shared regions that they sit pinned at the capacity limit
// for the whole run.

const DIR_BLADES: u16 = 8;
const DIR_TPB: u16 = 10;
const DIR_TOTAL_OPS: u64 = 600_000;

/// Scenario table for Figure 8 (left). Custom scenarios: the directory
/// time series lives on the concrete `MindCluster`, which the generic
/// replay path (deliberately) does not expose.
pub fn directory_build(quick: bool) -> Vec<Scenario> {
    let total = scaled_ops(DIR_TOTAL_OPS, quick);
    REAL_WORKLOADS
        .iter()
        .map(|&wl_name| {
            let n_threads = DIR_BLADES * DIR_TPB;
            let workload = WorkloadSpec::real(wl_name, n_threads);
            Scenario::custom(format!("fig8_directory/{wl_name}"), move || {
                let mut wl = workload.build();
                let regions = wl.regions();
                let footprint = footprint_pages(&regions);
                let mut sys = MindCluster::new(
                    MindConfig::scaled_to(footprint, DIR_BLADES)
                        .consistency(ConsistencyModel::Tso),
                );
                let report = run(
                    &mut sys,
                    wl.as_mut(),
                    RunConfig {
                        ops_per_thread: total / n_threads as u64,
                        warmup_ops_per_thread: 0,
                        threads_per_blade: DIR_TPB,
                        ..Default::default()
                    },
                );
                let series: Vec<(f64, f64)> = sys
                    .directory_series()
                    .points()
                    .iter()
                    .map(|&(t, v)| (t.as_millis_f64(), v))
                    .collect();
                ScenarioOutput::from_report(report)
                    .value("dir_capacity", scaled_dir_capacity(footprint) as f64)
                    .with_series("directory_entries", series)
            })
        })
        .collect()
}

/// Prints Figure 8 (left).
pub fn directory_present(results: &[ScenarioResult]) {
    for (result, wl_name) in results.iter().zip(REAL_WORKLOADS) {
        let capacity = result.value("dir_capacity");
        let points = &result
            .output
            .series
            .iter()
            .find(|(k, _)| k == "directory_entries")
            .expect("directory series")
            .1;
        // Sample up to 12 evenly spaced epochs.
        let step = (points.len() / 12).max(1);
        let rows: Vec<Vec<String>> = points
            .iter()
            .step_by(step)
            .map(|&(t_ms, v)| {
                vec![
                    format!("{t_ms:.1}"),
                    format!("{v:.0}"),
                    format!("{:.0}%", v / capacity * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 8 (left) — {wl_name}: directory entries over time (limit = {capacity:.0})"
            ),
            &["t(ms)", "entries", "of limit"],
            &rows,
        );
        let report = result.report();
        println!(
            "  watermark={}  forced_merges={}  runtime={}",
            report.metrics.get("directory_watermark"),
            report.metrics.get("forced_merges"),
            report.runtime
        );
    }
}

// ---- Figure 8 (center): match-action rules vs rack size ----
//
// Compares MIND's translation+protection rule count against page-table
// approaches that would install one match-action rule per 2 MB or 1 GB
// page, as the dataset scales with the number of memory blades. Expected
// shape (paper): MIND's count is nearly constant; page-granularity rules
// grow linearly with dataset size, crossing the ~45 k switch limit for
// 2 MB pages.

const RULE_LIMIT: u64 = 45_000;
const RULE_BLADES: [u16; 4] = [1, 2, 4, 8];
/// MA and MC share allocations; group them as the paper does.
const GROUPS: [(&str, &str); 3] = [("TF", "TF"), ("GC", "GC"), ("MA&C", "MA")];
/// Heap contributed per memory blade (the dataset grows with the rack).
const HEAP_PER_BLADE: u64 = 12 << 30;

/// Scenario table for Figure 8 (center). The experiment allocates, it
/// never replays — a custom scenario per (group, rack size).
pub fn rules_build(quick: bool) -> Vec<Scenario> {
    // The rack-size sweep is allocation-bound, not op-bound; quick mode
    // shrinks the heap instead of the op budget.
    let heap_per_blade = if quick { HEAP_PER_BLADE / 8 } else { HEAP_PER_BLADE };
    let mut table = Vec::new();
    for (label, wl_name) in GROUPS {
        for &blades in &RULE_BLADES {
            let workload = WorkloadSpec::real(wl_name, 8);
            table.push(Scenario::custom(
                format!("fig8_rules/{label}/b{blades}"),
                move || {
                    let regions = workload.regions();
                    let instance_bytes: u64 = regions.iter().sum();
                    let instances = (heap_per_blade * blades as u64) / instance_bytes;
                    let mut cluster = MindCluster::new(MindConfig {
                        n_memory: blades,
                        blade_span: 1 << 44,
                        memory_blade_bytes: 1 << 44,
                        ..Default::default()
                    });
                    let pid = cluster.exec().unwrap();
                    let mut total_bytes = 0u64;
                    let mut vma_count = 0u64;
                    for _ in 0..instances {
                        for &len in &regions {
                            cluster.mmap(pid, len).expect("fits");
                            total_bytes += len;
                            vma_count += 1;
                        }
                    }
                    let rules_2mb = total_bytes.div_ceil(2 << 20);
                    // 1 GB pages: a page cannot span allocation groups;
                    // count pages needed per instance, summed.
                    let rules_1gb: u64 =
                        instances * regions.iter().map(|l| l.div_ceil(1 << 30)).sum::<u64>();
                    ScenarioOutput::default()
                        .value("mind_rules", cluster.match_action_rules() as f64)
                        .value("vma_count", vma_count as f64)
                        .value("rules_2mb", rules_2mb as f64)
                        .value("rules_1gb", rules_1gb as f64)
                },
            ));
        }
    }
    table
}

/// Prints Figure 8 (center).
pub fn rules_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for (label, _) in GROUPS {
        let rows: Vec<Vec<String>> = RULE_BLADES
            .iter()
            .map(|&blades| {
                let r = next.next().expect("table shape");
                let rules_2mb = r.value("rules_2mb") as u64;
                vec![
                    blades.to_string(),
                    format!("{} ({} vmas)", r.value("mind_rules"), r.value("vma_count")),
                    rules_2mb.to_string(),
                    (r.value("rules_1gb") as u64).to_string(),
                    if rules_2mb > RULE_LIMIT { "2MB over" } else { "ok" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 8 (center) — {label}: match-action rules vs #blades (limit {RULE_LIMIT})"
            ),
            &["blades", "MIND", "2MB pages", "1GB pages", "capacity"],
            &rows,
        );
    }
}

// ---- Figure 8 (right): allocation fairness across memory blades ----
//
// Jain's fairness index of bytes allocated per memory blade, for MIND's
// least-loaded vma placement vs page-granularity placement at 2 MB and
// 1 GB. Expected shape (paper): MIND ≈ 1.0 everywhere; 2 MB pages also
// balance well (at the rule-explosion cost of Figure 8 center); 1 GB
// pages balance poorly for allocation-intensive workloads.

/// Places `vmas` on `n` blades with `chunk`-granularity pages.
///
/// A page lives wholly on one blade, and new vmas *pack into* the open
/// partially-filled page before a fresh page is opened on the
/// least-loaded blade — the standard huge-page allocation behaviour. With
/// 1 GB pages, many small vmas pile onto a single blade before the next
/// page opens.
fn paged_fairness(vmas: &[u64], n: u16, chunk: u64) -> f64 {
    let mut load = vec![0u64; n as usize]; // Bytes resident per blade.
    let mut open: Option<(usize, u64)> = None; // (blade, bytes left in page).
    for &len in vmas {
        let mut remaining = len;
        while remaining > 0 {
            let (blade, left) = match open {
                Some((b, l)) if l > 0 => (b, l),
                _ => {
                    let (idx, _) = load
                        .iter()
                        .enumerate()
                        .min_by_key(|&(i, &l)| (l, i))
                        .expect("non-empty");
                    (idx, chunk)
                }
            };
            let piece = remaining.min(left);
            load[blade] += piece;
            remaining -= piece;
            open = Some((blade, left - piece));
        }
    }
    jains_index(&load.iter().map(|&x| x as f64).collect::<Vec<_>>())
}

fn mind_fairness(vmas: &[u64], n: u16) -> f64 {
    let mut galloc = GlobalAllocator::new(n, 1 << 34);
    for &len in vmas {
        galloc.alloc(len).expect("fits");
    }
    jains_index(
        &galloc
            .allocated_per_blade()
            .iter()
            .map(|&x| x as f64)
            .collect::<Vec<_>>(),
    )
}

/// The allocation-request stream for a group at a rack size: one workload
/// instance per memory blade, with MA/MC's allocation-intensive pattern
/// of many smaller slab requests (memcached grows its arena in 1 MB
/// chunks).
fn vma_stream(label: &str, wl_name: &str, blades: u16) -> Vec<u64> {
    let workload = WorkloadSpec::real(wl_name, 8);
    let mut vmas = Vec::new();
    for _ in 0..blades {
        for &len in &workload.regions() {
            if label == "MA&C" {
                let mut left = len;
                while left > 0 {
                    let piece = left.min(1 << 20);
                    vmas.push(piece);
                    left -= piece;
                }
            } else {
                vmas.push(len);
            }
        }
    }
    vmas
}

/// Scenario table for Figure 8 (right) — pure allocation-model
/// computations, one custom scenario per (group, rack size).
pub fn fairness_build(_quick: bool) -> Vec<Scenario> {
    let mut table = Vec::new();
    for (label, wl_name) in GROUPS {
        for &blades in &RULE_BLADES {
            table.push(Scenario::custom(
                format!("fig8_fairness/{label}/b{blades}"),
                move || {
                    let vmas = vma_stream(label, wl_name, blades);
                    ScenarioOutput::default()
                        .value("mind", mind_fairness(&vmas, blades))
                        .value("pages_2mb", paged_fairness(&vmas, blades, 2 << 20))
                        .value("pages_1gb", paged_fairness(&vmas, blades, 1 << 30))
                },
            ));
        }
    }
    table
}

/// Prints Figure 8 (right).
pub fn fairness_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for (label, _) in GROUPS {
        let rows: Vec<Vec<String>> = RULE_BLADES
            .iter()
            .map(|&blades| {
                let r = next.next().expect("table shape");
                vec![
                    blades.to_string(),
                    format!("{:.3}", r.value("mind")),
                    format!("{:.3}", r.value("pages_2mb")),
                    format!("{:.3}", r.value("pages_1gb")),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 8 (right) — {label}: Jain's fairness of blade load"),
            &["blades", "MIND", "2MB pages", "1GB pages"],
            &rows,
        );
    }
}
