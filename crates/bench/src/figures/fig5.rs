//! Figure 5: end-to-end performance scaling (left: intra-blade; center:
//! inter-blade; right: Native-KVS throughput).

use mind_core::system::ConsistencyModel;
use mind_harness::{Scenario, ScenarioResult, SystemSpec, WorkloadSpec, REAL_WORKLOADS};
use mind_sim::SimTime;
use mind_workloads::kvs::KvsConfig;
use mind_workloads::runner::RunConfig;

use super::scaled_ops;
use crate::print_table;

fn replay_cfg(ops_per_thread: u64, threads_per_blade: u16) -> RunConfig {
    RunConfig {
        ops_per_thread,
        warmup_ops_per_thread: ops_per_thread / 2,
        threads_per_blade,
        ..Default::default()
    }
}

/// Normalized performance: `baseline / runtime` (Figure 5's y-axis).
fn norm(baseline: SimTime, runtime: SimTime) -> String {
    format!(
        "{:.3}",
        baseline.as_nanos() as f64 / runtime.as_nanos() as f64
    )
}

// ---- Figure 5 (left): intra-blade scaling ----
//
// 1–10 threads on a single compute blade for TF / GC / MA / MC under MIND,
// FastSwap, and GAM, normalized to MIND at 1 thread. Expected shape
// (paper): MIND and FastSwap scale almost linearly; GAM is linear only to
// ~4 threads (its user-level library takes a lock on *every* access).

const INTRA_THREADS: [u16; 4] = [1, 2, 4, 10];
const INTRA_TOTAL_OPS: u64 = 400_000;

/// Scenario table for Figure 5 (left).
pub fn intra_build(quick: bool) -> Vec<Scenario> {
    let total = scaled_ops(INTRA_TOTAL_OPS, quick);
    let mut table = Vec::new();
    for wl_name in REAL_WORKLOADS {
        for &threads in &INTRA_THREADS {
            let run = replay_cfg(total / threads as u64, threads);
            let workload = WorkloadSpec::real(wl_name, threads);
            let regions = workload.regions();
            for system in [
                SystemSpec::mind_scaled(&regions, 1, ConsistencyModel::Tso),
                SystemSpec::fastswap_scaled(&regions),
                SystemSpec::gam_scaled(&regions, 1, threads),
            ] {
                table.push(Scenario::replay(
                    format!("fig5_intra/{wl_name}/{}/t{threads}", system.label()),
                    system,
                    workload,
                    run,
                ));
            }
        }
    }
    table
}

/// Prints Figure 5 (left).
pub fn intra_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for wl_name in REAL_WORKLOADS {
        let mut rows = Vec::new();
        let mut baseline = None;
        for &threads in &INTRA_THREADS {
            let mut cells = vec![threads.to_string()];
            for _ in 0..3 {
                let runtime = next.next().expect("table shape").report().runtime;
                let base = *baseline.get_or_insert(runtime); // MIND @ 1 thread.
                cells.push(norm(base, runtime));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Figure 5 (left) — {wl_name}: normalized perf vs #threads, 1 blade"),
            &["threads", "MIND", "FastSwap", "GAM"],
            &rows,
        );
    }
}

// ---- Figure 5 (center): inter-blade scaling ----
//
// 10 threads per compute blade, 1–8 blades, under MIND (TSO), MIND-PSO,
// MIND-PSO+ (infinite directory), and GAM, normalized to MIND at 1 blade.
// FastSwap is omitted: it does not transparently scale beyond one blade
// (§7.1). Expected shape (paper): TF scales ~1.67× per doubling; GC peaks
// at 2 blades; MA/MC do not scale past 1 blade under TSO; PSO(+) recovers
// some scaling; GAM scales better on write-heavy workloads but from a much
// lower single-blade baseline.

const INTER_BLADES: [u16; 4] = [1, 2, 4, 8];
const INTER_TPB: u16 = 10;
const INTER_TOTAL_OPS: u64 = 600_000;

/// Scenario table for Figure 5 (center).
pub fn inter_build(quick: bool) -> Vec<Scenario> {
    let total = scaled_ops(INTER_TOTAL_OPS, quick);
    let mut table = Vec::new();
    for wl_name in REAL_WORKLOADS {
        for &blades in &INTER_BLADES {
            let n_threads = blades * INTER_TPB;
            let run = replay_cfg(total / n_threads as u64, INTER_TPB);
            let workload = WorkloadSpec::real(wl_name, n_threads);
            let regions = workload.regions();
            for system in [
                SystemSpec::mind_scaled(&regions, blades, ConsistencyModel::Tso),
                SystemSpec::mind_scaled(&regions, blades, ConsistencyModel::Pso),
                SystemSpec::mind_scaled(&regions, blades, ConsistencyModel::PsoPlus),
                SystemSpec::gam_scaled(&regions, blades, INTER_TPB),
            ] {
                table.push(Scenario::replay(
                    format!("fig5_inter/{wl_name}/{}/b{blades}", system.label()),
                    system,
                    workload,
                    run,
                ));
            }
        }
    }
    table
}

/// Prints Figure 5 (center).
pub fn inter_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for wl_name in REAL_WORKLOADS {
        let mut rows = Vec::new();
        let mut baseline = None;
        for &blades in &INTER_BLADES {
            let mut cells = vec![blades.to_string()];
            for _ in 0..4 {
                let runtime = next.next().expect("table shape").report().runtime;
                let base = *baseline.get_or_insert(runtime); // MIND @ 1 blade.
                cells.push(norm(base, runtime));
            }
            rows.push(cells);
        }
        print_table(
            &format!("Figure 5 (center) — {wl_name}: normalized perf vs #blades"),
            &["blades", "MIND", "MIND-PSO", "MIND-PSO+", "GAM"],
            &rows,
        );
    }
}

// ---- Figure 5 (right): Native-KVS throughput (MOPS) ----
//
// Single-blade scaling (1–10 threads) for MIND and FastSwap, then
// multi-blade scaling (20–80 threads at 10/blade) for MIND only —
// FastSwap cannot share state across blades. Expected shape (paper):
// near-linear intra-blade scaling for both; YCSB-A stops scaling past one
// blade (read-write contention) while YCSB-C keeps scaling linearly.

const KVS_OPS_PER_THREAD: u64 = 20_000;
const KVS_MIXES: [&str; 2] = ["A", "C"];
const KVS_SINGLE_THREADS: [u16; 4] = [1, 2, 4, 10];
const KVS_MULTI_THREADS: [u16; 3] = [20, 40, 80];

fn kvs_spec(mix: &str, threads: u16) -> WorkloadSpec {
    WorkloadSpec::Kvs(match mix {
        "A" => KvsConfig::ycsb_a(threads),
        _ => KvsConfig::ycsb_c(threads),
    })
}

/// Scenario table for Figure 5 (right).
pub fn kvs_build(quick: bool) -> Vec<Scenario> {
    let ops = scaled_ops(KVS_OPS_PER_THREAD, quick);
    let mut table = Vec::new();
    // Single blade: MIND + FastSwap.
    for mix in KVS_MIXES {
        for &threads in &KVS_SINGLE_THREADS {
            let workload = kvs_spec(mix, threads);
            let regions = workload.regions();
            let run = replay_cfg(ops, threads);
            for system in [
                SystemSpec::mind_scaled(&regions, 1, ConsistencyModel::Tso),
                SystemSpec::fastswap_scaled(&regions),
            ] {
                table.push(Scenario::replay(
                    format!("fig5_kvs/YCSB-{mix}/{}/t{threads}", system.label()),
                    system,
                    workload,
                    run,
                ));
            }
        }
    }
    // Multiple blades: MIND only.
    for mix in KVS_MIXES {
        for &threads in &KVS_MULTI_THREADS {
            let blades = threads / 10;
            let workload = kvs_spec(mix, threads);
            let regions = workload.regions();
            table.push(Scenario::replay(
                format!("fig5_kvs/YCSB-{mix}/MIND/t{threads}b{blades}"),
                SystemSpec::mind_scaled(&regions, blades, ConsistencyModel::Tso),
                workload,
                replay_cfg(ops, threads.div_ceil(blades)),
            ));
        }
    }
    table
}

/// Prints Figure 5 (right).
pub fn kvs_present(results: &[ScenarioResult]) {
    let mut next = results.iter();
    for mix in KVS_MIXES {
        let rows: Vec<Vec<String>> = KVS_SINGLE_THREADS
            .iter()
            .map(|&threads| {
                let mind = next.next().expect("table shape").report().mops;
                let fastswap = next.next().expect("table shape").report().mops;
                vec![
                    threads.to_string(),
                    format!("{mind:.3}"),
                    format!("{fastswap:.3}"),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 5 (right) — Native-KVS YCSB-{mix}, single blade (MOPS)"),
            &["threads", "MIND", "FastSwap"],
            &rows,
        );
    }
    for mix in KVS_MIXES {
        let rows: Vec<Vec<String>> = KVS_MULTI_THREADS
            .iter()
            .map(|&threads| {
                let mind = next.next().expect("table shape").report().mops;
                vec![
                    threads.to_string(),
                    (threads / 10).to_string(),
                    format!("{mind:.3}"),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 5 (right) — Native-KVS YCSB-{mix}, multiple blades (MOPS, MIND)"),
            &["threads", "blades", "MIND"],
            &rows,
        );
    }
}
