//! The paper's figures and ablations as declarative scenario tables.
//!
//! Each figure contributes two functions: `*_build(quick) ->
//! Vec<Scenario>` (the declarative table — every experiment point is pure
//! data) and `*_present(&[ScenarioResult])` (prints the paper-style table
//! from results, which arrive in table order regardless of how the engine
//! interleaved execution). The [`all`] registry ties them together so the
//! per-figure binaries and the all-in-one `suite` binary share one
//! definition.

use mind_harness::{report, Engine, Scenario, ScenarioResult};

pub mod ablations;
pub mod datapath;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod service;

/// One figure: a named scenario table plus its presentation.
pub struct Figure {
    /// Binary/suite name, e.g. `fig5_intra`.
    pub name: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Builds the scenario table; `true` requests the quick (CI-sized)
    /// variant.
    pub build: fn(bool) -> Vec<Scenario>,
    /// Prints the paper-style tables from the results.
    pub present: fn(&[ScenarioResult]),
}

/// Every figure and ablation, in paper order.
pub fn all() -> Vec<Figure> {
    vec![
        Figure {
            name: "fig5_intra",
            title: "Figure 5 (left): intra-blade performance scaling",
            build: fig5::intra_build,
            present: fig5::intra_present,
        },
        Figure {
            name: "fig5_inter",
            title: "Figure 5 (center): inter-blade performance scaling",
            build: fig5::inter_build,
            present: fig5::inter_present,
        },
        Figure {
            name: "fig5_kvs",
            title: "Figure 5 (right): Native-KVS throughput",
            build: fig5::kvs_build,
            present: fig5::kvs_present,
        },
        Figure {
            name: "fig6_invalidation",
            title: "Figure 6: invalidation overhead per workload and blade count",
            build: fig6::build,
            present: fig6::present,
        },
        Figure {
            name: "fig7_transitions",
            title: "Figure 7 (left): MSI transition latency",
            build: fig7::transitions_build,
            present: fig7::transitions_present,
        },
        Figure {
            name: "fig7_throughput",
            title: "Figure 7 (center): IOPS vs sharing ratio x read ratio",
            build: fig7::throughput_build,
            present: fig7::throughput_present,
        },
        Figure {
            name: "fig7_breakdown",
            title: "Figure 7 (right): latency breakdown per remote access",
            build: fig7::breakdown_build,
            present: fig7::breakdown_present,
        },
        Figure {
            name: "fig8_directory",
            title: "Figure 8 (left): directory entries over time vs the SRAM limit",
            build: fig8::directory_build,
            present: fig8::directory_present,
        },
        Figure {
            name: "fig8_rules",
            title: "Figure 8 (center): match-action rules vs rack size",
            build: fig8::rules_build,
            present: fig8::rules_present,
        },
        Figure {
            name: "fig8_fairness",
            title: "Figure 8 (right): memory-allocation load balance",
            build: fig8::fairness_build,
            present: fig8::fairness_present,
        },
        Figure {
            name: "fig9_tradeoff",
            title: "Figure 9 (left): region-granularity storage/performance tradeoff",
            build: fig9::tradeoff_build,
            present: fig9::tradeoff_present,
        },
        Figure {
            name: "fig9_sensitivity",
            title: "Figure 9 (right): bounded-splitting sensitivity",
            build: fig9::sensitivity_build,
            present: fig9::sensitivity_present,
        },
        Figure {
            name: "ablation_protocols",
            title: "§8 ablation: MSI vs MESI vs MOESI",
            build: ablations::protocols_build,
            present: ablations::protocols_present,
        },
        Figure {
            name: "ablation_placement",
            title: "§8 ablation: sharer-aware thread placement",
            build: ablations::placement_build,
            present: ablations::placement_present,
        },
        Figure {
            name: "service_qos",
            title: "service: per-class SLOs (p50/p99/p99.9) vs offered load",
            build: service::qos_build,
            present: service::qos_present,
        },
        Figure {
            name: "service_churn",
            title: "service: tenant churn, admission control, and TCAM reclamation",
            build: service::churn_build,
            present: service::churn_present,
        },
        Figure {
            name: "service_elastic",
            title: "service: elastic blade assignment vs per-tenant load",
            build: service::elastic_build,
            present: service::elastic_present,
        },
        Figure {
            name: "service_scale",
            title: "service: 10^5-tenant sharded populations on the multi-core executor",
            build: service::scale_build,
            present: service::scale_present,
        },
        Figure {
            name: "datapath",
            title: "datapath: scalar vs op-batch pipeline replay throughput",
            build: datapath::build,
            present: datapath::present,
        },
    ]
}

/// The figure registry filtered to a name substring (the `--filter` flag
/// of the `suite` binary; the `service` binary uses the `"service"`
/// prefix).
pub fn matching(filter: &str) -> Vec<Figure> {
    all().into_iter().filter(|f| f.name.contains(filter)).collect()
}

/// Operation-count scaling: the quick (CI) variant divides op budgets by
/// 20 with a floor that keeps every scenario meaningfully exercised.
pub(crate) fn scaled_ops(full: u64, quick: bool) -> u64 {
    if quick {
        (full / 20).max(2_000)
    } else {
        full
    }
}

/// Entry point shared by the per-figure binaries: builds the named
/// figure's table (honouring a `--quick` argument), executes it on the
/// environment-sized engine, prints the tables, and writes
/// `BENCH_<name>.json`. Returns the results so a binary can gate on them
/// (the `datapath` bin's `--quick` perf-guard).
pub fn run_main(name: &str) -> Vec<ScenarioResult> {
    let quick = std::env::args().any(|a| a == "--quick");
    let figure = all()
        .into_iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("unknown figure {name}"));
    let engine = Engine::from_env();
    let results = engine.run((figure.build)(quick));
    (figure.present)(&results);
    let path = report::write_suite(figure.name, &results).expect("write BENCH json");
    println!("\nwrote {}", path.display());
    write_trace_if_enabled(figure.name, &results);
    results
}

/// Writes `TRACE_<suite>.json` when `MIND_TRACE` enables tracing —
/// disabled runs produce no trace files, so the default BENCH output set
/// is unchanged.
fn write_trace_if_enabled(suite: &str, results: &[ScenarioResult]) {
    if mind_sim::env::trace_level().enabled() {
        let path = report::write_trace(suite, results).expect("write TRACE json");
        println!("wrote {}", path.display());
    }
}

/// Entry point shared by the multi-figure binaries (`suite`, `service`):
/// concatenates the given figures' tables, fans the combined table across
/// the engine's workers, prints each figure's rows, and writes
/// `BENCH_<suite>.json`. Output is byte-identical for any worker count.
pub fn run_suite(suite: &str, figures: &[Figure], quick: bool) {
    let mut table = Vec::new();
    let mut spans = Vec::new();
    for figure in figures {
        let scenarios = (figure.build)(quick);
        spans.push(scenarios.len());
        table.extend(scenarios);
    }

    let engine = Engine::from_env();
    eprintln!(
        "{suite}: {} scenarios across {} figures on {} worker(s){}",
        table.len(),
        figures.len(),
        engine.threads(),
        if quick { " (quick)" } else { "" },
    );
    let results = engine.run(table);

    let mut offset = 0;
    for (figure, span) in figures.iter().zip(spans) {
        println!("\n#### {} — {}", figure.name, figure.title);
        (figure.present)(&results[offset..offset + span]);
        offset += span;
    }

    let path = report::write_suite(suite, &results).expect("write BENCH json");
    println!("\nwrote {}", path.display());
    write_trace_if_enabled(suite, &results);
}
