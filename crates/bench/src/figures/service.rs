//! The `service` figure family: the multi-tenant serving layer
//! (`mind_service`) swept along its four axes — offered load vs QoS
//! class, tenant churn, per-tenant elasticity, and static population
//! scale (10⁵ tenants through the multi-core sharded executor).
//!
//! These figures go beyond the paper: §4.2's protection domains and the
//! controller's round-robin placement exist there as *mechanisms*; here
//! they are driven the way a shared rack is driven — many tenants
//! arriving, leaving, and contending at once — and judged by the numbers
//! an operator owes each tenant (p50/p99/p99.9, throughput, rejects).

use mind_harness::{Scenario, ScenarioOutput, ScenarioResult, ServiceSpec};
use mind_service::{
    population_spec, tenant_partitions, AccessPattern, ServiceConfig, TenantGroupConfig,
};
use mind_sim::SimTime;
use mind_workloads::{run_group, run_sharded};

use crate::print_table;

/// Simulated span per scenario; the quick (CI) variant shortens the run
/// but keeps every sweep point.
fn span(quick: bool) -> SimTime {
    if quick {
        SimTime::from_millis(60)
    } else {
        SimTime::from_millis(250)
    }
}

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

// ---- service_qos: per-class SLOs vs offered load ----
//
// The same tenant mix offered at 1x / 2x / 3x the dispatcher's capacity,
// with per-class workload diversity: Gold tenants are Zipfian-skewed
// (hot-key, cache-friendly), Silver uniform, BestEffort sequential
// scanners. Expected shape: at 1x every class meets a tight tail; at 2x
// Gold's weighted share still covers its demand (short p99) while Silver
// backs up and BestEffort starts starving; at 3x BestEffort serves
// almost nothing and absorbs nearly all rejected requests. A fourth
// scenario re-runs the 2x point with an in-flight window of 2: the
// dispatcher's quantum grants execute through the issue/complete
// datapath with finite memory-level parallelism, so grants beyond the
// window queue for a slot and the wait bills to per-tenant latency.

const QOS_LOADS: [f64; 3] = [1.0, 2.0, 3.0];

/// Window depth of the overlapped-dispatch QoS scenario: deliberately
/// *below* the default `slots_per_quantum` (4), so the quantum's grants
/// contend for finite memory-level parallelism through the
/// issue/complete datapath — a window at or above the slot budget
/// reproduces the serialized path's all-at-the-boundary optimism
/// exactly.
const QOS_OVERLAP_WINDOW: u32 = 2;

/// The per-class access-pattern mix the QoS scenarios run (in
/// Gold/Silver/BestEffort order).
const QOS_PATTERNS: [AccessPattern; 3] = [
    AccessPattern::Zipfian(0.99),
    AccessPattern::Uniform,
    AccessPattern::Scan,
];

/// Scenario table for the QoS figure.
pub fn qos_build(quick: bool) -> Vec<Scenario> {
    let base = |factor: f64| {
        ServiceConfig {
            duration: span(quick),
            class_patterns: QOS_PATTERNS,
            ..Default::default()
        }
        .load_scaled(factor)
    };
    let mut scenarios: Vec<Scenario> = QOS_LOADS
        .iter()
        .map(|&factor| {
            Scenario::service(format!("service_qos/load{factor}"), ServiceSpec::new(base(factor)))
        })
        .collect();
    scenarios.push(Scenario::service(
        format!("service_qos/load2_w{QOS_OVERLAP_WINDOW}"),
        ServiceSpec::new(ServiceConfig {
            window: QOS_OVERLAP_WINDOW,
            ..base(2.0)
        }),
    ));
    scenarios
}

/// Prints the QoS figure.
pub fn qos_present(results: &[ScenarioResult]) {
    let labels: Vec<String> = QOS_LOADS
        .iter()
        .map(|factor| format!("{factor}x load"))
        .chain(std::iter::once(format!(
            "2x load, window {QOS_OVERLAP_WINDOW} (overlapped quanta)"
        )))
        .collect();
    for (result, label) in results.iter().zip(&labels) {
        let report = result.service();
        let rows: Vec<Vec<String>> = report
            .classes
            .iter()
            .zip(&QOS_PATTERNS)
            .map(|(c, pattern)| {
                vec![
                    format!("{} ({})", c.qos.label(), pattern.label()),
                    c.tenants_admitted.to_string(),
                    c.ops.to_string(),
                    format!("{:.3}", c.mops),
                    us(c.p50_ns),
                    us(c.p99_ns),
                    us(c.p999_ns),
                    c.rejected_requests.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "service — QoS classes at {label} ({} tenants, {} ops)",
                report.tenants_admitted, report.total_ops
            ),
            &[
                "class", "tenants", "ops", "MOPS", "p50(us)", "p99(us)", "p99.9(us)", "rejected",
            ],
            &rows,
        );
    }
}

// ---- service_churn: tenant lifecycle under increasing arrival rates ----
//
// Short-lived tenants arriving ever faster. Expected shape: admissions
// scale with the arrival rate until memory pressure engages (BestEffort
// refused first); departures track admissions (no tenant leaks); the
// match-action rule count at the end stays bounded because departed
// tenants' TCAM entries are reclaimed.

const CHURN_ARRIVALS: [f64; 3] = [200.0, 800.0, 3_200.0];

/// Scenario table for the churn figure.
pub fn churn_build(quick: bool) -> Vec<Scenario> {
    CHURN_ARRIVALS
        .iter()
        .map(|&rate| {
            let cfg = ServiceConfig {
                duration: span(quick),
                arrival_rate_hz: rate,
                mean_lifetime: SimTime::from_millis(20),
                ..Default::default()
            };
            Scenario::service(
                format!("service_churn/arrivals{rate}"),
                ServiceSpec::new(cfg),
            )
        })
        .collect()
}

/// Prints the churn figure.
pub fn churn_present(results: &[ScenarioResult]) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(&CHURN_ARRIVALS)
        .map(|(result, &rate)| {
            let r = result.service();
            vec![
                format!("{rate}"),
                r.tenants_admitted.to_string(),
                r.tenants_rejected.to_string(),
                r.tenants_departed.to_string(),
                r.tenants_live.to_string(),
                r.peak_live_tenants.to_string(),
                format!("{:.3}", r.memory_utilization),
                r.match_action_rules.to_string(),
            ]
        })
        .collect();
    print_table(
        "service — tenant churn vs arrival rate (20 ms mean lifetime)",
        &[
            "arrivals/s", "admitted", "refused", "departed", "live", "peak", "mem util", "rules",
        ],
        &rows,
    );
}

// ---- service_elastic: blade footprint vs offered load ----
//
// A few long-lived tenants, swept over per-tenant offered load with a
// fixed per-blade capacity. Expected shape: light tenants stay on one
// blade; heavier tenants grow toward the rack's four compute blades
// (peak blade count rises with the rate), and served throughput rises
// with the extra compute until dispatch capacity caps it.

const ELASTIC_RATES: [f64; 3] = [2_000.0, 20_000.0, 80_000.0];

/// Scenario table for the elasticity figure.
pub fn elastic_build(quick: bool) -> Vec<Scenario> {
    ELASTIC_RATES
        .iter()
        .map(|&rate| {
            let cfg = ServiceConfig {
                duration: span(quick),
                arrival_rate_hz: 100.0,
                mean_lifetime: SimTime::from_millis(80),
                min_rate_hz: rate,
                max_rate_hz: rate,
                blade_capacity_hz: 20_000.0,
                ..Default::default()
            };
            Scenario::service(
                format!("service_elastic/rate{rate}"),
                ServiceSpec::new(cfg),
            )
        })
        .collect()
}

/// Prints the elasticity figure.
pub fn elastic_present(results: &[ScenarioResult]) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(&ELASTIC_RATES)
        .map(|(result, &rate)| {
            let r = result.service();
            let n = r.tenants.len().max(1) as f64;
            let mean_peak: f64 = r.tenants.iter().map(|t| t.blades_peak as f64).sum::<f64>() / n;
            let max_peak = r.tenants.iter().map(|t| t.blades_peak).max().unwrap_or(0);
            vec![
                format!("{rate}"),
                r.tenants_admitted.to_string(),
                format!("{mean_peak:.2}"),
                max_peak.to_string(),
                r.total_ops.to_string(),
                format!("{:.3}", r.total_ops as f64 / r.duration.as_secs_f64() / 1e6),
            ]
        })
        .collect();
    print_table(
        "service — elastic blade assignment vs per-tenant offered load (20 k/s per blade)",
        &[
            "req/s/tenant", "tenants", "mean peak blades", "max peak", "ops", "MOPS",
        ],
        &rows,
    );
}

// ---- service_scale: 10^5-tenant static populations, sharded ----
//
// The serving layer's steady state scaled past what the event loop (or
// the fused replay) can host: 4 096 -> 131 072 single-threaded tenants
// built by `mind_service::population_spec` and replayed through the
// multi-core sharded executor. The smallest point is also replayed fused
// and checked byte-identical — the determinism contract extends to the
// larger points by construction (same population shape, same confinement).
// Expected shape: simulated MOPS grows roughly linearly with the tenant
// count (tenants are independent), while fused-equivalent wall cost would
// grow quadratically — the reason only the sharded path reaches 10^5.

/// Tenants-per-partition sweep of the scale family (16 partitions each:
/// 4 096, 16 384, and 131 072 total tenants). `--quick` drops the
/// largest point; the `datapath/shards_xl` perf point covers it in CI.
const SCALE_GROUPS: [u16; 3] = [256, 1024, 8192];

/// Shards the scale points replay at.
const SCALE_SHARDS: u16 = 16;

fn scale_points(quick: bool) -> Vec<u16> {
    let mut points: Vec<u16> = SCALE_GROUPS.to_vec();
    if quick {
        points.pop();
    }
    points
}

/// Scenario table for the population-scale figure.
pub fn scale_build(quick: bool) -> Vec<Scenario> {
    scale_points(quick)
        .into_iter()
        .map(|tenants_per_group| {
            Scenario::custom(
                format!("service_scale/tenants{}", 16 * tenants_per_group as u32),
                move || {
                    let population = TenantGroupConfig {
                        tenants_per_group,
                        pages_per_tenant: 16,
                        read_ratio: 0.7,
                        seed: 42,
                    };
                    let spec = population_spec("service_scale", 16, population);
                    let factory = tenant_partitions(population);
                    let merged =
                        run_sharded(&spec, SCALE_SHARDS, &factory).expect("confined population");
                    assert_eq!(merged.invalidations, 0, "population must be confined");
                    if tenants_per_group == SCALE_GROUPS[0] {
                        // Affordable only here: the fused serialized
                        // reference, asserting the contract end to end.
                        let fused = run_group(&spec, &factory).expect("confined population");
                        assert_eq!(fused.runtime, merged.runtime, "sharded replay diverged");
                        assert_eq!(fused.total_ops, merged.total_ops);
                        assert_eq!(fused.mops.to_bits(), merged.mops.to_bits());
                        assert_eq!(fused.metrics, merged.metrics);
                    }
                    ScenarioOutput::default()
                        .value("tenants", 16.0 * tenants_per_group as f64)
                        .value("total_ops", merged.total_ops as f64)
                        .value("sim_runtime_ns", merged.runtime.as_nanos() as f64)
                        .value("sim_mops", merged.mops)
                        .value("remote_per_op", merged.remote_per_op)
                        .value("p999_ns", merged.latency.quantile(0.999) as f64)
                },
            )
        })
        .collect()
}

/// Prints the population-scale figure.
pub fn scale_present(results: &[ScenarioResult]) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.value("tenants")),
                format!("{:.0}", r.value("total_ops")),
                format!("{:.3}", r.value("sim_runtime_ns") / 1e6),
                format!("{:.3}", r.value("sim_mops")),
                format!("{:.2}", r.value("remote_per_op")),
                us(r.value("p999_ns") as u64),
            ]
        })
        .collect();
    print_table(
        &format!(
            "service — sharded static populations ({SCALE_SHARDS} shards, multi-core; \
             smallest point asserted byte-identical to the fused reference)"
        ),
        &[
            "tenants", "ops", "sim ms", "sim MOPS", "remote/op", "p99.9(us)",
        ],
        &rows,
    );
}
