//! The figure-regeneration suite, as declarative scenario tables.
//!
//! Every table and figure in the paper's evaluation (§7–§8) is described
//! in [`figures`] as a *scenario table* — pure data (system spec +
//! workload spec + run parameters) executed by the
//! [`mind_harness::Engine`] — plus a presentation function that prints the
//! corresponding rows. Each `src/bin/` binary is a thin wrapper over one
//! table; the `suite` binary runs every figure in a single parallel
//! invocation and emits `BENCH_suite.json`.
//!
//! ## Scaling
//!
//! The paper's testbed workloads have ~2 GB footprints with 512 MB caches
//! (25 %) and a 30 k-entry switch directory. Simulating a full run of that
//! size per figure point would take hours, so the factories
//! ([`mind_core::cluster::MindConfig::scaled_to`] and friends) scale
//! footprints down while holding the *ratios* fixed: cache = 25 % of
//! footprint, directory entries ≈ 6 % of footprint pages (30 k / 500 k).
//! Shapes — who wins, by what factor, where scaling breaks — are
//! preserved; absolute seconds are not comparable to the paper's testbed
//! (and are not meant to be).

pub mod figures;

/// Prints a header row followed by aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}
