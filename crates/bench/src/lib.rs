//! Shared support for the figure-regeneration harness.
//!
//! Every table and figure in the paper's evaluation (§7) has a binary in
//! `src/bin/` that prints the corresponding rows; this library holds the
//! system factories (building MIND/GAM/FastSwap at a consistent *scale*)
//! and the report formatting.
//!
//! ## Scaling
//!
//! The paper's testbed workloads have ~2 GB footprints with 512 MB caches
//! (25 %) and a 30 k-entry switch directory. Simulating a full run of that
//! size per figure point would take hours, so the harness scales footprints
//! down while holding the *ratios* fixed: cache = 25 % of footprint,
//! directory entries ≈ 6 % of footprint pages (30 k / 500 k). Shapes — who
//! wins, by what factor, where scaling breaks — are preserved; absolute
//! seconds are not comparable to the paper's testbed (and are not meant to
//! be).

use mind_baselines::{FastSwapConfig, FastSwapSystem, GamConfig, GamSystem};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::ConsistencyModel;
use mind_workloads::gc::{GcConfig, GcWorkload};
use mind_workloads::memcached::{MemcachedConfig, MemcachedWorkload};
use mind_workloads::tf::{TfConfig, TfWorkload};
use mind_workloads::trace::Workload;

/// The four real-world workloads of §7.1, by paper name.
pub const REAL_WORKLOADS: [&str; 4] = ["TF", "GC", "MA", "MC"];

/// Builds a real-world workload generator by paper name for `n_threads`.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn real_workload(name: &str, n_threads: u16) -> Box<dyn Workload> {
    match name {
        "TF" => Box::new(TfWorkload::new(TfConfig {
            n_threads,
            ..Default::default()
        })),
        "GC" => Box::new(GcWorkload::new(GcConfig {
            n_threads,
            ..Default::default()
        })),
        "MA" => Box::new(MemcachedWorkload::new(MemcachedConfig {
            n_threads,
            ..MemcachedConfig::workload_a()
        })),
        "MC" => Box::new(MemcachedWorkload::new(MemcachedConfig {
            n_threads,
            ..MemcachedConfig::workload_c()
        })),
        other => panic!("unknown workload {other}"),
    }
}

/// Paper constants the scaling preserves as ratios.
pub const CACHE_FRACTION: f64 = 0.25;
/// Directory entries per footprint page (30 k entries / ~500 k pages).
pub const DIR_ENTRIES_PER_PAGE: f64 = 0.06;

/// Footprint in pages of a region list.
pub fn footprint_pages(regions: &[u64]) -> u64 {
    regions.iter().map(|len| len.div_ceil(4096)).sum()
}

/// Per-blade cache size (pages) for a workload footprint: 25 % of the
/// total, floored so tiny workloads still have a working cache.
pub fn cache_pages_for(regions: &[u64]) -> u32 {
    ((footprint_pages(regions) as f64 * CACHE_FRACTION) as u32).max(256)
}

/// Scaled directory capacity for a workload footprint.
pub fn dir_capacity_for(regions: &[u64]) -> usize {
    ((footprint_pages(regions) as f64 * DIR_ENTRIES_PER_PAGE) as usize).max(512)
}

/// Builds a MIND rack sized for `regions` with `n_compute` blades.
///
/// The bounded-splitting epoch is scaled from the paper's 100 ms to 2 ms:
/// harness runs simulate ~0.1–1 s of rack time instead of the testbed's
/// 60–300 s, and the algorithm needs tens of epochs to stabilize region
/// sizes (its O(log M) convergence, §5).
pub fn mind_for(regions: &[u64], n_compute: u16, consistency: ConsistencyModel) -> MindCluster {
    let mut cfg = MindConfig {
        n_compute,
        cache_pages: cache_pages_for(regions),
        dir_capacity: dir_capacity_for(regions),
        ..Default::default()
    }
    .consistency(consistency);
    cfg.split.epoch_len = mind_sim::SimTime::from_millis(2);
    MindCluster::new(cfg)
}

/// Builds a GAM system sized for `regions`.
pub fn gam_for(regions: &[u64], n_compute: u16, threads_per_blade: u16) -> GamSystem {
    GamSystem::new(GamConfig {
        n_compute,
        cache_pages: cache_pages_for(regions),
        threads_per_blade,
        ..Default::default()
    })
}

/// Builds a FastSwap system sized for `regions` (single blade).
pub fn fastswap_for(regions: &[u64]) -> FastSwapSystem {
    FastSwapSystem::new(FastSwapConfig {
        n_compute: 1,
        cache_pages: cache_pages_for(regions),
        ..Default::default()
    })
}

/// Prints a header row followed by aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_and_scaling_helpers() {
        let regions = vec![4096 * 100, 4096 * 300];
        assert_eq!(footprint_pages(&regions), 400);
        assert_eq!(cache_pages_for(&regions), 256, "floored");
        assert_eq!(dir_capacity_for(&regions), 512, "floored");
        let big = vec![4096 * 100_000];
        assert_eq!(cache_pages_for(&big), 25_000);
        assert_eq!(dir_capacity_for(&big), 6_000);
    }

    #[test]
    fn factories_build() {
        let regions = vec![1 << 24];
        let mind = mind_for(&regions, 2, ConsistencyModel::Tso);
        assert_eq!(mind.config().n_compute, 2);
        let gam = gam_for(&regions, 2, 10);
        let _ = gam;
        let fs = fastswap_for(&regions);
        let _ = fs;
    }
}
