//! Criterion benchmarks of the full in-network data path.
//!
//! Measures the simulator cost of each coherence path end-to-end (cache
//! hit, cold fetch, shared-write upgrade with multicast invalidation,
//! owner downgrade) plus a short end-to-end trace replay — the per-access
//! budget that bounds harness experiment sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::{AccessKind, ConsistencyModel};
use mind_sim::SimTime;
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::runner::{run, RunConfig};

fn cluster() -> (MindCluster, u64) {
    let mut c = MindCluster::new(MindConfig {
        n_compute: 8,
        cache_pages: 1 << 16,
        ..Default::default()
    });
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 30).unwrap();
    (c, base)
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");

    group.bench_function("local_hit", |b| {
        let (mut rack, base) = cluster();
        rack.access_as(SimTime::ZERO, 0, 1, base, AccessKind::Read)
            .unwrap();
        b.iter(|| {
            black_box(
                rack.access_as(SimTime::from_micros(50), 0, 1, base, AccessKind::Read)
                    .unwrap(),
            )
        })
    });

    group.bench_function("cold_fetch", |b| {
        let (mut rack, base) = cluster();
        let mut page = 0u64;
        b.iter(|| {
            page += 4096;
            black_box(
                rack.access_as(
                    SimTime::from_micros(page),
                    0,
                    1,
                    base + page,
                    AccessKind::Read,
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("shared_write_invalidation", |b| {
        b.iter_batched(
            || {
                let (mut rack, base) = cluster();
                // All 8 blades share the page.
                for blade in 0..8 {
                    rack.access_as(
                        SimTime::from_micros(10 * (blade as u64 + 1)),
                        blade,
                        1,
                        base,
                        AccessKind::Read,
                    )
                    .unwrap();
                }
                (rack, base)
            },
            |(mut rack, base)| {
                rack.access_as(SimTime::from_millis(1), 0, 1, base, AccessKind::Write)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("owner_downgrade", |b| {
        b.iter_batched(
            || {
                let (mut rack, base) = cluster();
                rack.access_as(SimTime::from_micros(10), 1, 1, base, AccessKind::Write)
                    .unwrap();
                (rack, base)
            },
            |(mut rack, base)| {
                rack.access_as(SimTime::from_millis(1), 0, 1, base, AccessKind::Read)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_trace_replay(c: &mut Criterion) {
    c.bench_function("replay/micro_10k_ops_8_blades", |b| {
        b.iter_batched(
            || {
                let sys = MindCluster::new(
                    MindConfig {
                        n_compute: 8,
                        cache_pages: 1 << 14,
                        ..Default::default()
                    }
                    .consistency(ConsistencyModel::Tso),
                );
                let wl = MicroWorkload::new(MicroConfig {
                    n_threads: 8,
                    read_ratio: 0.5,
                    sharing_ratio: 0.5,
                    shared_pages: 10_000,
                    private_pages: 2_000,
                    seed: 5,
                });
                (sys, wl)
            },
            |(mut sys, mut wl)| {
                run(
                    &mut sys,
                    &mut wl,
                    RunConfig {
                        ops_per_thread: 1_250,
                        warmup_ops_per_thread: 0,
                        threads_per_blade: 1,
                        think_time: SimTime::from_nanos(100),
                        interleave: false,
                        batch_ops: 1,
                        window: 1,
                        ..Default::default()
                    },
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_paths, bench_trace_replay);
criterion_main!(benches);
