//! Criterion benchmark for the multi-core sharded executor: host-side
//! cost of replaying a partitioned multi-tenant population fused, sharded
//! single-threaded, and sharded on 2/4 OS threads. Every cell replays the
//! byte-identical simulation (the equivalence suite asserts it), so the
//! axis isolates pure driver cost: sharding shrinks the per-tenant TCAM
//! admission scans, threads spread the shard sub-clusters across cores
//! (`cargo bench --bench shard`); `BENCH_datapath.json` (the `datapath`
//! bin) reports the same sweep as wall seconds.

use criterion::{criterion_group, criterion_main, Criterion};

use mind_service::{population_spec, tenant_partitions, TenantGroupConfig};
use mind_workloads::{run_group, run_sharded_threads};

/// A population small enough to iterate under criterion but large enough
/// that the per-tenant admission cost dominates: 16 × 64 = 1024 tenants.
fn population() -> TenantGroupConfig {
    TenantGroupConfig {
        tenants_per_group: 64,
        pages_per_tenant: 16,
        read_ratio: 0.7,
        seed: 42,
    }
}

fn bench_shard(c: &mut Criterion) {
    let population = population();
    let spec = population_spec("bench/shard", 16, population);
    let factory = tenant_partitions(population);

    let mut group = c.benchmark_group("shard");
    group.bench_function("fused", |b| {
        b.iter(|| run_group(&spec, &factory).expect("confined population"))
    });
    for shards in [4u16, 16] {
        group.bench_function(&format!("s{shards}_t1"), |b| {
            b.iter(|| run_sharded_threads(&spec, shards, 1, &factory).expect("confined"))
        });
    }
    for threads in [2usize, 4] {
        group.bench_function(&format!("s16_t{threads}"), |b| {
            b.iter(|| run_sharded_threads(&spec, 16, threads, &factory).expect("confined"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
