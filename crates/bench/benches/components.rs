//! Criterion micro-benchmarks for MIND's building blocks.
//!
//! These measure the *simulator's* cost per modelled operation (host
//! nanoseconds, not simulated time) — they are the budget that determines
//! how large a rack/workload the harness can replay, and they catch
//! algorithmic regressions in the hot structures (TCAM LPM, directory
//! region lookup, bounded-splitting epochs, first-fit allocation, LRU
//! cache maintenance).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mind_blade::DramCache;
use mind_core::directory::RegionDirectory;
use mind_core::galloc::GlobalAllocator;
use mind_core::split::{BoundedSplitting, SplitConfig};
use mind_sim::rng::Zipfian;
use mind_sim::{SimRng, SimTime};
use mind_switch::tcam::{Tcam, TcamEntry};

fn bench_tcam(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcam");
    // A realistically loaded protection TCAM: 2k entries over many domains.
    let mut tcam: Tcam<u32> = Tcam::new(45_000);
    let mut rng = SimRng::new(1);
    for i in 0..2_000u64 {
        let base = (rng.gen_below(1 << 30) >> 14) << 14;
        let _ = tcam.insert(TcamEntry::new(i % 64, base, 14), i as u32);
    }
    group.bench_function("lpm_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            black_box(tcam.lookup(i % 64, i % (1 << 30)).map(|(e, &v)| (e, v)))
        })
    });
    group.bench_function("insert_remove", |b| {
        b.iter(|| {
            let e = TcamEntry::new(99, 0x4000_0000, 14);
            tcam.insert(e, 7).unwrap();
            tcam.remove(&e)
        })
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    group.bench_function("ensure_region_hot", |b| {
        let mut dir = RegionDirectory::new(30_000, 14);
        for i in 0..10_000u64 {
            dir.ensure_region(i << 14).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            black_box(dir.ensure_region(i << 14))
        })
    });
    group.bench_function("split_merge_cycle", |b| {
        let mut dir = RegionDirectory::new(30_000, 14);
        dir.ensure_region(0).unwrap();
        b.iter(|| {
            let (l, _r) = dir.split(0).unwrap();
            dir.merge(l).unwrap()
        })
    });
    group.finish();
}

fn bench_bounded_splitting(c: &mut Criterion) {
    c.bench_function("bounded_splitting/epoch_10k_regions", |b| {
        b.iter_batched(
            || {
                let mut dir = RegionDirectory::new(30_000, 14);
                let mut rng = SimRng::new(3);
                for i in 0..10_000u64 {
                    dir.ensure_region(i << 14).unwrap();
                }
                for i in 0..10_000u64 {
                    dir.record_invalidation(i << 14, rng.gen_below(20) as u32);
                }
                (BoundedSplitting::new(SplitConfig::default()), dir)
            },
            |(mut bs, mut dir)| bs.run_epoch(SimTime::from_millis(100), &mut dir),
            BatchSize::SmallInput,
        )
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("galloc/alloc_dealloc_1MB", |b| {
        let mut galloc = GlobalAllocator::new(8, 1 << 34);
        b.iter(|| {
            let vma = galloc.alloc(1 << 20).unwrap();
            galloc.dealloc(vma.base)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_cache");
    group.bench_function("hit", |b| {
        let mut cache = DramCache::new(1 << 17);
        for i in 0..(1 << 17) as u64 {
            cache.insert(i << 12, false, None);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 127) % (1 << 17);
            black_box(cache.access(i << 12, false))
        })
    });
    group.bench_function("miss_insert_evict", |b| {
        let mut cache = DramCache::new(1 << 10);
        let mut page = 0u64;
        b.iter(|| {
            page += 1 << 12;
            cache.access(page, true);
            black_box(cache.insert(page, true, None))
        })
    });
    group.bench_function("invalidate_region_64_pages", |b| {
        b.iter_batched(
            || {
                let mut cache = DramCache::new(1 << 10);
                for i in 0..64u64 {
                    cache.insert(i << 12, true, None);
                }
                cache
            },
            |mut cache| cache.invalidate_region(0, 18, false),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("xoshiro_next", |b| {
        let mut rng = SimRng::new(9);
        b.iter(|| black_box(rng.next_u64()))
    });
    group.bench_function("zipfian_sample", |b| {
        let mut rng = SimRng::new(9);
        let z = Zipfian::new(1 << 20, 0.99);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tcam,
    bench_directory,
    bench_bounded_splitting,
    bench_allocator,
    bench_cache,
    bench_rng
);
criterion_main!(benches);
