//! Criterion benchmark for the op-batch datapath: host-side cost of the
//! replay hot path at batch sizes 1 (the scalar per-op discipline) vs
//! 8/64, on fault-dominated and cache-resident micro regimes. These
//! measure *simulator* nanoseconds per replayed run — the budget the
//! batched pipeline exists to shrink — and make the speedup measurable
//! locally (`cargo bench --bench datapath`); `BENCH_datapath.json` (the
//! `datapath` bin) reports the same sweep as ops/sec.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mind_core::system::ConsistencyModel;
use mind_harness::{SystemSpec, WorkloadSpec};
use mind_workloads::micro::MicroConfig;
use mind_workloads::runner::{self, RunConfig};

const OPS_PER_THREAD: u64 = 1_500;

fn bench_regime(c: &mut Criterion, label: &str, micro: MicroConfig) {
    let mut group = c.benchmark_group(&format!("datapath/{label}"));
    for batch_ops in [1u64, 8, 64] {
        let workload = WorkloadSpec::Micro(micro);
        let regions = workload.regions();
        let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
        let cfg = RunConfig {
            ops_per_thread: OPS_PER_THREAD,
            warmup_ops_per_thread: OPS_PER_THREAD / 2,
            threads_per_blade: 2,
            ..Default::default()
        }
        .with_batch_ops(batch_ops);
        group.bench_function(&format!("b{batch_ops}"), |b| {
            b.iter_batched(
                || (system.build(), workload.build()),
                |(mut sys, mut wl)| runner::run(sys.as_mut(), wl.as_mut(), cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_datapath(c: &mut Criterion) {
    bench_regime(
        c,
        "remote",
        MicroConfig {
            n_threads: 4,
            read_ratio: 0.5,
            sharing_ratio: 1.0,
            shared_pages: 40_000,
            private_pages: 2_000,
            seed: 42,
        },
    );
    bench_regime(
        c,
        "resident",
        MicroConfig {
            n_threads: 4,
            read_ratio: 0.9,
            sharing_ratio: 0.2,
            shared_pages: 64,
            private_pages: 64,
            seed: 42,
        },
    );
}

criterion_group!(datapath, bench_datapath);
criterion_main!(datapath);
