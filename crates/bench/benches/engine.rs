//! Criterion benchmark for the cluster-wide event-driven issue engine:
//! host-side cost of the cluster-mode replay against the turnwise
//! windowed path on the fault-dominated micro regime at batch 64. Both
//! cells replay the identical op streams; the cluster cell additionally
//! pays the engine's ready-queue scheduling per op, and this bench keeps
//! that overhead measurable locally (`cargo bench --bench engine`). The
//! per-NIC cell runs with a bounded RNIC depth so the third gate's
//! bookkeeping is on the measured path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mind_core::system::ConsistencyModel;
use mind_harness::{SystemSpec, WorkloadSpec};
use mind_workloads::micro::MicroConfig;
use mind_workloads::runner::{self, Concurrency, RunConfig};

const OPS_PER_THREAD: u64 = 1_500;
const WINDOW: u32 = 16;

fn remote_regime() -> MicroConfig {
    MicroConfig {
        n_threads: 4,
        read_ratio: 0.5,
        sharing_ratio: 1.0,
        shared_pages: 40_000,
        private_pages: 2_000,
        seed: 42,
    }
}

fn bench_engine(c: &mut Criterion) {
    let micro = remote_regime();
    let mut group = c.benchmark_group("engine/remote");
    let cells: [(&str, Concurrency, u32); 3] = [
        ("turnwise_w16", Concurrency::Turnwise, 0),
        ("cluster_w16", Concurrency::Cluster, 0),
        ("cluster_w16_nic2", Concurrency::Cluster, 2),
    ];
    for (label, concurrency, nic_depth) in cells {
        let workload = WorkloadSpec::Micro(micro);
        let regions = workload.regions();
        let mut system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
        if let SystemSpec::Mind(rack) = &mut system {
            rack.nic_depth = nic_depth;
        }
        let cfg = RunConfig {
            ops_per_thread: OPS_PER_THREAD,
            warmup_ops_per_thread: OPS_PER_THREAD / 2,
            threads_per_blade: 2,
            concurrency,
            ..Default::default()
        }
        .with_batch_ops(64)
        .with_window(WINDOW);
        group.bench_function(label, |b| {
            b.iter_batched(
                || (system.build(), workload.build()),
                |(mut sys, mut wl)| runner::run(sys.as_mut(), wl.as_mut(), cfg),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(engine, bench_engine);
criterion_main!(engine);
