//! Partitioning a rack for sharded simulation.
//!
//! A *partition* is a slice of the rack — a contiguous run of compute
//! blades plus a contiguous run of memory blades — whose tenants never
//! touch state outside the slice. When every partition is confined (its
//! threads pinned to its compute slice, its vmas placed with
//! [`crate::cluster::MindCluster::mmap_in`] on its memory slice, and no
//! cross-partition sharing), the fused simulation decomposes exactly: the
//! per-blade fabric links, caches, and directory regions a partition
//! exercises are disjoint from every other partition's, so running each
//! partition on its own sub-cluster reproduces the fused run's per-op
//! timings bit for bit. `mind_workloads::shard` builds the sharded
//! executor on top of this layout; this module owns the arithmetic.
//!
//! The layout is deliberately *symmetric*: every partition gets the same
//! number of compute and memory blades, and [`MindConfig::partition`]
//! scales the switch-resource capacities (directory slots, match-action
//! rules) by the same factor, keeping per-partition pressure — and hence
//! Bounded-Splitting behaviour — identical between the fused rack and the
//! sub-clusters.

use std::fmt;
use std::ops::Range;

use crate::addr::VA_BASE;
use crate::cluster::MindConfig;

/// Why a rack cannot divide into the requested partitions. Each variant
/// names the invariant that failed, so a misconfigured sharded scenario
/// reports *what* to fix instead of aborting mid-setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionError {
    /// Zero partitions requested.
    ZeroPartitions,
    /// Compute blades do not divide evenly into the partitions.
    UnevenCompute { blades: u16, partitions: u16 },
    /// Memory blades do not divide evenly into the partitions.
    UnevenMemory { blades: u16, partitions: u16 },
    /// Directory slots do not divide evenly into the partitions.
    UnevenDirCapacity { capacity: usize, partitions: u16 },
    /// Match-action rules do not divide evenly into the partitions.
    UnevenRuleCapacity { capacity: usize, partitions: u16 },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PartitionError::ZeroPartitions => write!(f, "at least one partition required"),
            PartitionError::UnevenCompute { blades, partitions } => write!(
                f,
                "{blades} compute blades do not divide into {partitions} partitions"
            ),
            PartitionError::UnevenMemory { blades, partitions } => write!(
                f,
                "{blades} memory blades do not divide into {partitions} partitions"
            ),
            PartitionError::UnevenDirCapacity { capacity, partitions } => write!(
                f,
                "dir_capacity {capacity} does not divide into {partitions} partitions"
            ),
            PartitionError::UnevenRuleCapacity { capacity, partitions } => write!(
                f,
                "rule_capacity {capacity} does not divide into {partitions} partitions"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// How a rack's blades divide into `partitions` symmetric slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionLayout {
    /// Number of partitions.
    pub partitions: u16,
    /// Compute blades per partition.
    pub compute_per_partition: u16,
    /// Memory blades per partition.
    pub memory_per_partition: u16,
    /// Virtual address span per memory blade (for VA → partition lookups).
    pub blade_span: u64,
}

impl PartitionLayout {
    /// Computes the layout of `cfg` divided into `partitions` slices.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero or does not evenly divide both blade
    /// counts — asymmetric partitions would not be interchangeable with
    /// the sub-clusters [`MindConfig::partition`] builds. Fallible setup
    /// paths use [`PartitionLayout::try_new`] instead.
    pub fn new(cfg: &MindConfig, partitions: u16) -> Self {
        match Self::try_new(cfg, partitions) {
            Ok(layout) => layout,
            Err(e) => panic!("{e}"),
        }
    }

    /// Computes the layout of `cfg` divided into `partitions` slices,
    /// reporting which symmetry invariant failed instead of panicking.
    pub fn try_new(cfg: &MindConfig, partitions: u16) -> Result<Self, PartitionError> {
        if partitions == 0 {
            return Err(PartitionError::ZeroPartitions);
        }
        if !cfg.n_compute.is_multiple_of(partitions) {
            return Err(PartitionError::UnevenCompute {
                blades: cfg.n_compute,
                partitions,
            });
        }
        if !cfg.n_memory.is_multiple_of(partitions) {
            return Err(PartitionError::UnevenMemory {
                blades: cfg.n_memory,
                partitions,
            });
        }
        Ok(PartitionLayout {
            partitions,
            compute_per_partition: cfg.n_compute / partitions,
            memory_per_partition: cfg.n_memory / partitions,
            blade_span: cfg.blade_span,
        })
    }

    /// The compute blades owned by partition `p`.
    pub fn compute_slice(&self, p: u16) -> Range<u16> {
        assert!(p < self.partitions, "partition {p} out of range");
        p * self.compute_per_partition..(p + 1) * self.compute_per_partition
    }

    /// The memory blades owned by partition `p`.
    pub fn memory_slice(&self, p: u16) -> Range<u16> {
        assert!(p < self.partitions, "partition {p} out of range");
        p * self.memory_per_partition..(p + 1) * self.memory_per_partition
    }

    /// The partition owning compute blade `blade`, if any.
    pub fn owner_of_compute(&self, blade: u16) -> Option<u16> {
        let p = blade / self.compute_per_partition;
        (p < self.partitions).then_some(p)
    }

    /// The partition owning virtual address `vaddr` under the range
    /// partition, if it falls on an owned memory blade.
    pub fn owner_of_vaddr(&self, vaddr: u64) -> Option<u16> {
        if vaddr < VA_BASE {
            return None;
        }
        let blade = (vaddr - VA_BASE) / self.blade_span;
        let p = blade / self.memory_per_partition as u64;
        (p < self.partitions as u64).then_some(p as u16)
    }
}

impl MindConfig {
    /// The sub-cluster configuration hosting `1/factor` of this rack: blade
    /// counts and switch-resource capacities divide by `factor`; per-blade
    /// quantities (cache pages, blade span, latencies, splitting
    /// parameters) are unchanged. A rack split this way is the unit a
    /// sharded run simulates independently; `partition(1)` is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `factor` does not evenly divide the blade counts or the
    /// directory/rule capacities — uneven shares would change the resource
    /// pressure a partition sees relative to the fused rack. Fallible
    /// setup paths use [`MindConfig::try_partition`] instead.
    pub fn partition(&self, factor: u16) -> MindConfig {
        match self.try_partition(factor) {
            Ok(sub) => sub,
            Err(e) => panic!("{e}"),
        }
    }

    /// The sub-cluster configuration hosting `1/factor` of this rack,
    /// reporting which divisibility invariant failed instead of
    /// panicking.
    pub fn try_partition(&self, factor: u16) -> Result<MindConfig, PartitionError> {
        let layout = PartitionLayout::try_new(self, factor)?;
        if !self.dir_capacity.is_multiple_of(factor as usize) {
            return Err(PartitionError::UnevenDirCapacity {
                capacity: self.dir_capacity,
                partitions: factor,
            });
        }
        if !self.rule_capacity.is_multiple_of(factor as usize) {
            return Err(PartitionError::UnevenRuleCapacity {
                capacity: self.rule_capacity,
                partitions: factor,
            });
        }
        Ok(MindConfig {
            n_compute: layout.compute_per_partition,
            n_memory: layout.memory_per_partition,
            dir_capacity: self.dir_capacity / factor as usize,
            rule_capacity: self.rule_capacity / factor as usize,
            ..*self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n_compute: u16, n_memory: u16) -> MindConfig {
        MindConfig {
            n_compute,
            n_memory,
            dir_capacity: 4_000,
            rule_capacity: 8_000,
            ..MindConfig::small()
        }
    }

    #[test]
    fn slices_tile_the_rack_disjointly() {
        let layout = PartitionLayout::new(&cfg(8, 4), 4);
        let mut compute = Vec::new();
        let mut memory = Vec::new();
        for p in 0..4 {
            compute.extend(layout.compute_slice(p));
            memory.extend(layout.memory_slice(p));
        }
        assert_eq!(compute, (0..8).collect::<Vec<u16>>());
        assert_eq!(memory, (0..4).collect::<Vec<u16>>());
    }

    #[test]
    fn ownership_matches_slices() {
        let layout = PartitionLayout::new(&cfg(8, 4), 2);
        assert_eq!(layout.owner_of_compute(0), Some(0));
        assert_eq!(layout.owner_of_compute(3), Some(0));
        assert_eq!(layout.owner_of_compute(4), Some(1));
        assert_eq!(layout.owner_of_compute(8), None);
        let span = layout.blade_span;
        assert_eq!(layout.owner_of_vaddr(VA_BASE), Some(0));
        assert_eq!(layout.owner_of_vaddr(VA_BASE + span * 2), Some(1));
        assert_eq!(layout.owner_of_vaddr(VA_BASE + span * 4), None);
        assert_eq!(layout.owner_of_vaddr(0), None);
    }

    #[test]
    fn partition_divides_shared_resources_only() {
        let base = cfg(8, 4);
        let sub = base.partition(4);
        assert_eq!(sub.n_compute, 2);
        assert_eq!(sub.n_memory, 1);
        assert_eq!(sub.dir_capacity, 1_000);
        assert_eq!(sub.rule_capacity, 2_000);
        assert_eq!(sub.cache_pages, base.cache_pages, "per-blade unchanged");
        assert_eq!(sub.blade_span, base.blade_span);
        assert_eq!(sub.split.epoch_len, base.split.epoch_len);
    }

    #[test]
    fn partition_by_one_is_identity() {
        let base = cfg(8, 4);
        let sub = base.partition(1);
        assert_eq!(sub.n_compute, base.n_compute);
        assert_eq!(sub.n_memory, base.n_memory);
        assert_eq!(sub.dir_capacity, base.dir_capacity);
        assert_eq!(sub.rule_capacity, base.rule_capacity);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn uneven_compute_split_rejected() {
        PartitionLayout::new(&cfg(6, 4), 4);
    }

    #[test]
    #[should_panic(expected = "dir_capacity")]
    fn uneven_dir_capacity_rejected() {
        let mut base = cfg(8, 4);
        base.dir_capacity = 4_001;
        base.partition(4);
    }

    #[test]
    fn try_new_names_the_failed_invariant() {
        assert_eq!(
            PartitionLayout::try_new(&cfg(8, 4), 0),
            Err(PartitionError::ZeroPartitions)
        );
        assert_eq!(
            PartitionLayout::try_new(&cfg(6, 4), 4),
            Err(PartitionError::UnevenCompute { blades: 6, partitions: 4 })
        );
        assert_eq!(
            PartitionLayout::try_new(&cfg(8, 6), 4),
            Err(PartitionError::UnevenMemory { blades: 6, partitions: 4 })
        );
        assert!(PartitionLayout::try_new(&cfg(8, 4), 4).is_ok());
    }

    #[test]
    fn try_partition_names_the_failed_capacity() {
        let mut base = cfg(8, 4);
        base.dir_capacity = 4_001;
        assert_eq!(
            base.try_partition(4).unwrap_err(),
            PartitionError::UnevenDirCapacity { capacity: 4_001, partitions: 4 }
        );
        base.dir_capacity = 4_000;
        base.rule_capacity = 8_001;
        assert_eq!(
            base.try_partition(4).unwrap_err(),
            PartitionError::UnevenRuleCapacity { capacity: 8_001, partitions: 4 }
        );
        base.rule_capacity = 8_000;
        assert!(base.try_partition(4).is_ok());
        let display = format!("{}", PartitionError::UnevenCompute { blades: 6, partitions: 4 });
        assert!(display.contains("6 compute blades"), "{display}");
    }
}
