//! The in-network cache directory (paper §4.3, §6.3).
//!
//! Directory entries live in switch SRAM slots and track *regions* —
//! power-of-two sized, size-aligned virtual ranges whose granularity is
//! decoupled from the 4 KB page granularity of cache accesses (§4.3.1).
//! Each entry records the MSI state and the sharer list; entries are
//! created lazily when a page in the region is first cached, split/merged
//! by the bounded-splitting algorithm (§5), and *force-merged* when the
//! SRAM capacity is reached — the capacity pressure that pins Memcached
//! workloads at the 30 k limit in Figure 8 (left).

use std::collections::BTreeMap;

use mind_blade::PAGE_SHIFT;
use mind_net::node::BladeSet;
use mind_sim::SimTime;
use mind_switch::sram::{SlotStore, SramFull};

/// Coherence states (§2.1). MIND runs MSI; the Exclusive and Owned states
/// appear only when the switch is configured with the MESI/MOESI
/// state-transition tables of paper §8 ("Other coherence protocols").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsiState {
    /// Not present in any compute-blade cache.
    Invalid,
    /// One or more blades hold read-only copies.
    Shared,
    /// Exactly one blade owns the region read-write.
    Modified,
    /// MESI: one blade holds the region with write permission but the
    /// memory copy is (initially) clean; treated like Modified when
    /// leaving the state, since it may have been silently dirtied.
    Exclusive,
    /// MOESI: one blade holds a dirty copy it serves to (clean) sharers
    /// cache-to-cache; memory is stale until the owner flushes.
    Owned,
}

/// One epoch's activity snapshot for a region (bounded-splitting input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochCounter {
    /// Region base.
    pub base: u64,
    /// log2 of the region size in bytes.
    pub size_log2: u8,
    /// False invalidations charged to the region this epoch.
    pub false_inv: u32,
    /// Invalidation rounds on the region this epoch.
    pub invalidations: u32,
}

/// One directory entry: the coherence state of a region.
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// log2 of the region size in bytes.
    pub size_log2: u8,
    /// Current MSI state.
    pub state: MsiState,
    /// Blades holding the region (singleton owner when `Modified`).
    pub sharers: BladeSet,
    /// The distinguished owner for `Owned` regions (MOESI): the blade that
    /// holds the dirty data and serves cache-to-cache fetches.
    pub owner_blade: Option<u16>,
    /// The region is mid-transition until this time; later requests queue.
    pub busy_until: SimTime,
    /// Invalidations sent for this region in the current epoch.
    pub epoch_invalidations: u32,
    /// False invalidations charged to this region in the current epoch
    /// (bounded splitting's split signal, §5).
    pub epoch_false_inv: u32,
}

impl DirEntry {
    fn new(size_log2: u8) -> Self {
        DirEntry {
            size_log2,
            state: MsiState::Invalid,
            sharers: BladeSet::EMPTY,
            owner_blade: None,
            busy_until: SimTime::ZERO,
            epoch_invalidations: 0,
            epoch_false_inv: 0,
        }
    }

    /// Region-busy arbitration: when a transition reaching the directory
    /// pipeline at `t_pipe` may actually execute. Transitions on one
    /// region serialize — a region mid-transition (invalidation round
    /// outstanding, §4.4) holds later requests at `busy_until`. This is
    /// the single place that ordering rule lives; the issue/complete
    /// datapath relies on it so that overlapped batches can never reorder
    /// same-region transitions.
    pub fn admit_transition(&self, t_pipe: SimTime) -> SimTime {
        t_pipe.max(self.busy_until)
    }

    /// The owner blade: the exclusive holder for `Modified`/`Exclusive`,
    /// the dirty-data supplier for `Owned`.
    pub fn owner(&self) -> Option<u16> {
        match self.state {
            MsiState::Modified | MsiState::Exclusive => self.sharers.sole_member(),
            MsiState::Owned => self.owner_blade,
            _ => None,
        }
    }

    /// Whether this entry can merge with `other` without violating
    /// coherence: merging must not grant any blade more rights than it has.
    fn mergeable_with(&self, other: &DirEntry) -> bool {
        match (self.state, other.state) {
            (MsiState::Invalid, _) | (_, MsiState::Invalid) => true,
            (MsiState::Shared, MsiState::Shared) => true,
            // Owned regions carry a dirty supplier: merging would couple
            // its flush obligations with unrelated pages — never merged
            // except with Invalid (handled above).
            (MsiState::Owned, _) | (_, MsiState::Owned) => false,
            // Merging M/E with M/E/S would mix an exclusive owner with
            // other holders; only allowed when the sharer sets coincide on
            // the single owner.
            _ => self.sharers == other.sharers && self.sharers.len() == 1,
        }
    }

    fn merged_with(&self, other: &DirEntry) -> DirEntry {
        let state = match (self.state, other.state) {
            (MsiState::Invalid, s) | (s, MsiState::Invalid) => s,
            (MsiState::Shared, MsiState::Shared) => MsiState::Shared,
            (a, b) if a == b => a,
            // Mixed exclusive-ish states with the same single holder:
            // conservatively Modified.
            _ => MsiState::Modified,
        };
        DirEntry {
            size_log2: self.size_log2 + 1,
            state,
            sharers: self.sharers.union(other.sharers),
            owner_blade: self.owner_blade.or(other.owner_blade),
            busy_until: self.busy_until.max(other.busy_until),
            epoch_invalidations: self.epoch_invalidations + other.epoch_invalidations,
            epoch_false_inv: self.epoch_false_inv + other.epoch_false_inv,
        }
    }
}

/// The region directory.
#[derive(Debug)]
pub struct RegionDirectory {
    slots: SlotStore<DirEntry>,
    /// Ordered mirror of region bases → size, for containing-region lookup.
    regions: BTreeMap<u64, u8>,
    /// Bases whose epoch counters went zero → nonzero since the last drain.
    /// Keeps per-epoch maintenance O(active regions), not O(capacity); may
    /// hold stale or duplicate bases (split/merge/remove churn), which the
    /// drain filters out.
    touched: Vec<u64>,
    initial_region_log2: u8,
    /// Bumped on every change to the region *map* (create/split/merge/
    /// remove). A cached `(base, size)` resolution is valid exactly while
    /// the generation is unchanged — the guard MIND's batched datapath
    /// uses to reuse one region lookup across the ops of a batch.
    generation: u64,
    splits: u64,
    merges: u64,
    forced_merges: u64,
    total_false_inv: u64,
    total_invalidations: u64,
}

impl RegionDirectory {
    /// Creates a directory with `capacity` SRAM slots and the given initial
    /// region size (16 KB default in MIND, §5).
    pub fn new(capacity: usize, initial_region_log2: u8) -> Self {
        assert!(initial_region_log2 >= PAGE_SHIFT, "region below page size");
        RegionDirectory {
            slots: SlotStore::new(capacity),
            regions: BTreeMap::new(),
            touched: Vec::new(),
            initial_region_log2,
            generation: 0,
            splits: 0,
            merges: 0,
            forced_merges: 0,
            total_false_inv: 0,
            total_invalidations: 0,
        }
    }

    /// Directory entries installed.
    pub fn entries(&self) -> usize {
        self.slots.used()
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// SRAM utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.slots.utilization()
    }

    /// The region `(base, size_log2)` containing `addr`, if tracked.
    pub fn region_of(&self, addr: u64) -> Option<(u64, u8)> {
        let (&base, &k) = self.regions.range(..=addr).next_back()?;
        if addr < base + (1u64 << k) {
            Some((base, k))
        } else {
            None
        }
    }

    /// Immutable entry access.
    pub fn entry(&self, base: u64) -> Option<&DirEntry> {
        self.slots.get(base)
    }

    /// Mutable entry access.
    pub fn entry_mut(&mut self, base: u64) -> Option<&mut DirEntry> {
        self.slots.get_mut(base)
    }

    /// Finds or creates the region entry containing `addr`.
    ///
    /// New regions start at the configured initial size, *coarsened* under
    /// SRAM pressure (the capacity-adaptive analog of §5's `c` adjustment:
    /// as utilization climbs, fresh entries must each cover more address
    /// space or the directory cannot track the working set at all) and
    /// shrunk as needed to avoid overlapping existing finer regions. At
    /// full occupancy, force-merges the coldest compatible buddy pair; if
    /// nothing can merge, returns [`SramFull`] and the caller must bypass
    /// the cache.
    pub fn ensure_region(&mut self, addr: u64) -> Result<(u64, u8), SramFull> {
        if let Some(found) = self.region_of(addr) {
            return Ok(found);
        }
        // Pressure-adaptive creation size: up to 2 MB extra coarseness as
        // the directory approaches capacity.
        let boost = match self.utilization() {
            u if u > 0.90 => 5,
            u if u > 0.80 => 4,
            u if u > 0.65 => 3,
            u if u > 0.50 => 2,
            u if u > 0.35 => 1,
            _ => 0,
        };
        let mut k = (self.initial_region_log2 + boost).min(30);
        // Find the largest aligned region containing `addr` that does not
        // overlap existing regions.
        let (base, k) = loop {
            let base = addr & !((1u64 << k) - 1);
            if !self.overlaps_existing(base, k) {
                break (base, k);
            }
            debug_assert!(k > PAGE_SHIFT, "page-size region cannot overlap");
            k -= 1;
        };
        if self.slots.free() == 0 {
            self.force_merge_one()?;
        }
        self.slots.insert(base, DirEntry::new(k))?;
        self.regions.insert(base, k);
        self.generation += 1;
        Ok((base, k))
    }

    /// The region-map generation (see the field docs): compare before
    /// reusing a cached [`RegionDirectory::region_of`] result.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn overlaps_existing(&self, base: u64, k: u8) -> bool {
        let end = base + (1u64 << k);
        // A region starting inside [base, end)...
        if self.regions.range(base..end).next().is_some() {
            return true;
        }
        // ...or one starting before and reaching into it.
        if let Some((&pbase, &pk)) = self.regions.range(..base).next_back() {
            if pbase + (1u64 << pk) > base {
                return true;
            }
        }
        false
    }

    /// Splits the region at `base` into two halves (bounded splitting, §5).
    ///
    /// Children inherit the parent's state and sharers (pages could reside
    /// anywhere in the region). Epoch counters reset on split.
    pub fn split(&mut self, base: u64) -> Result<(u64, u64), SramFull> {
        let entry = self.slots.get(base).expect("splitting existing region");
        assert!(
            entry.size_log2 > PAGE_SHIFT,
            "cannot split a page-sized region"
        );
        if self.slots.free() == 0 {
            return Err(SramFull);
        }
        let parent = self.slots.remove(base).expect("entry exists");
        self.regions.remove(&base);
        let child_k = parent.size_log2 - 1;
        let right_base = base + (1u64 << child_k);
        let mk_child = || DirEntry {
            size_log2: child_k,
            state: parent.state,
            sharers: parent.sharers,
            owner_blade: parent.owner_blade,
            busy_until: parent.busy_until,
            epoch_invalidations: 0,
            epoch_false_inv: 0,
        };
        self.slots.insert(base, mk_child()).expect("slot freed");
        self.slots
            .insert(right_base, mk_child())
            .expect("free slot checked");
        self.regions.insert(base, child_k);
        self.regions.insert(right_base, child_k);
        self.generation += 1;
        self.splits += 1;
        Ok((base, right_base))
    }

    /// Merges the region at `base` with its buddy if both exist at the same
    /// size and are coherence-compatible. Returns the merged base.
    pub fn merge(&mut self, base: u64) -> Option<u64> {
        let k = *self.regions.get(&base)?;
        let buddy_base = base ^ (1u64 << k);
        let buddy_k = *self.regions.get(&buddy_base)?;
        if buddy_k != k {
            return None;
        }
        let a = self.slots.get(base)?;
        let b = self.slots.get(buddy_base)?;
        if !a.mergeable_with(b) {
            return None;
        }
        let merged = a.merged_with(b);
        let parent_base = base & !(1u64 << k);
        if merged.epoch_invalidations != 0 || merged.epoch_false_inv != 0 {
            self.touched.push(parent_base);
        }
        self.slots.remove(base);
        self.slots.remove(buddy_base);
        self.regions.remove(&base);
        self.regions.remove(&buddy_base);
        self.slots
            .insert(parent_base, merged)
            .expect("merge frees two slots");
        self.regions.insert(parent_base, k + 1);
        self.generation += 1;
        self.merges += 1;
        Some(parent_base)
    }

    /// Frees one slot under capacity pressure by merging the coldest
    /// compatible buddy pair (fewest epoch invalidations).
    fn force_merge_one(&mut self) -> Result<(), SramFull> {
        let mut candidates: Vec<(u32, u64)> = Vec::new();
        for (&base, &k) in &self.regions {
            let buddy = base ^ (1u64 << k);
            if buddy < base {
                continue; // Visit each pair once (from its left half).
            }
            if self.regions.get(&buddy) != Some(&k) {
                continue;
            }
            let a = self.slots.get(base).expect("region has entry");
            let b = self.slots.get(buddy).expect("region has entry");
            if a.mergeable_with(b) {
                let heat = a.epoch_invalidations + b.epoch_invalidations;
                candidates.push((heat, base));
            }
        }
        let &(_, base) = candidates.iter().min().ok_or(SramFull)?;
        self.merge(base).expect("candidate verified mergeable");
        self.forced_merges += 1;
        Ok(())
    }

    /// Removes the region entry at `base` (reset protocol §4.4, or
    /// deallocation).
    pub fn remove(&mut self, base: u64) -> Option<DirEntry> {
        if self.regions.remove(&base).is_some() {
            self.generation += 1;
        }
        self.slots.remove(base)
    }

    /// Records invalidation traffic for a region (bounded-splitting signal).
    pub fn record_invalidation(&mut self, base: u64, false_invalidations: u32) {
        self.total_invalidations += 1;
        self.total_false_inv += false_invalidations as u64;
        if let Some(e) = self.slots.get_mut(base) {
            if e.epoch_invalidations == 0 && e.epoch_false_inv == 0 {
                self.touched.push(base);
            }
            e.epoch_invalidations += 1;
            e.epoch_false_inv += false_invalidations;
        }
    }

    /// Takes and resets the per-epoch counters, returning one
    /// [`EpochCounter`] per region *with activity this epoch*, sorted by
    /// base. Regions that saw no invalidation traffic are not listed —
    /// draining costs O(active regions), so the epoch driver stays cheap
    /// even when the directory tracks tens of thousands of idle regions.
    pub fn drain_epoch_counters(&mut self) -> Vec<EpochCounter> {
        self.touched.sort_unstable();
        self.touched.dedup();
        let mut out = Vec::with_capacity(self.touched.len());
        for i in 0..self.touched.len() {
            let base = self.touched[i];
            // Stale bases (split/removed since being touched) or zeroed
            // entries (split children reuse the parent base) drop out here.
            let Some(e) = self.slots.get_mut(base) else {
                continue;
            };
            if e.epoch_invalidations == 0 && e.epoch_false_inv == 0 {
                continue;
            }
            out.push(EpochCounter {
                base,
                size_log2: e.size_log2,
                false_inv: e.epoch_false_inv,
                invalidations: e.epoch_invalidations,
            });
            e.epoch_false_inv = 0;
            e.epoch_invalidations = 0;
        }
        self.touched.clear();
        out
    }

    /// Iterates `(base, size_log2)` over all tracked regions in base order.
    pub fn regions_iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.regions.iter().map(|(&b, &k)| (b, k))
    }

    /// All region bases, sorted.
    pub fn bases_sorted(&self) -> Vec<u64> {
        self.slots.bases_sorted()
    }

    /// Splits performed (policy-driven).
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Merges performed (including forced).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Merges forced by SRAM pressure.
    pub fn forced_merges(&self) -> u64 {
        self.forced_merges
    }

    /// Lifetime false invalidations.
    pub fn total_false_invalidations(&self) -> u64 {
        self.total_false_inv
    }

    /// Lifetime invalidation rounds.
    pub fn total_invalidations(&self) -> u64 {
        self.total_invalidations
    }

    /// Highest simultaneous entry count.
    pub fn high_watermark(&self) -> usize {
        self.slots.high_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> RegionDirectory {
        RegionDirectory::new(64, 14) // 16 KB initial regions.
    }

    #[test]
    fn ensure_creates_aligned_initial_region() {
        let mut d = dir();
        let (base, k) = d.ensure_region(0x1_2345).unwrap();
        assert_eq!(k, 14);
        assert_eq!(base, 0x1_0000, "aligned to 16 KB");
        assert_eq!(d.entries(), 1);
        // Idempotent.
        assert_eq!(d.ensure_region(0x1_3000).unwrap(), (base, k));
        assert_eq!(d.entries(), 1);
    }

    #[test]
    fn region_of_respects_bounds() {
        let mut d = dir();
        d.ensure_region(0x1_0000).unwrap();
        assert_eq!(d.region_of(0x1_3FFF), Some((0x1_0000, 14)));
        assert_eq!(d.region_of(0x1_4000), None);
        assert_eq!(d.region_of(0x0_FFFF), None);
    }

    #[test]
    fn split_halves_region() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        d.entry_mut(base).unwrap().state = MsiState::Shared;
        d.entry_mut(base).unwrap().sharers = BladeSet::singleton(2);
        let (l, r) = d.split(base).unwrap();
        assert_eq!(l, 0x1_0000);
        assert_eq!(r, 0x1_2000);
        assert_eq!(d.entries(), 2);
        // Children inherit coherence state conservatively.
        assert_eq!(d.entry(l).unwrap().state, MsiState::Shared);
        assert!(d.entry(r).unwrap().sharers.contains(2));
        assert_eq!(d.region_of(0x1_2000), Some((r, 13)));
        assert_eq!(d.splits(), 1);
    }

    #[test]
    fn split_down_to_page_size_only() {
        let mut d = RegionDirectory::new(64, 13);
        let (base, _) = d.ensure_region(0x2000).unwrap();
        let (l, _r) = d.split(base).unwrap();
        assert_eq!(d.entry(l).unwrap().size_log2, 12);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn page_region_split_panics() {
        let mut d = RegionDirectory::new(64, 12);
        let (base, _) = d.ensure_region(0x1000).unwrap();
        let _ = d.split(base);
    }

    #[test]
    fn merge_requires_compatible_buddies() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        let (l, r) = d.split(base).unwrap();
        // I + I merges.
        let merged = d.merge(l).unwrap();
        assert_eq!(merged, 0x1_0000);
        assert_eq!(d.entries(), 1);
        assert_eq!(d.entry(merged).unwrap().size_log2, 14);
        let _ = r;
    }

    #[test]
    fn merge_unions_sharers() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        let (l, r) = d.split(base).unwrap();
        d.entry_mut(l).unwrap().state = MsiState::Shared;
        d.entry_mut(l).unwrap().sharers = BladeSet::singleton(0);
        d.entry_mut(r).unwrap().state = MsiState::Shared;
        d.entry_mut(r).unwrap().sharers = BladeSet::singleton(1);
        let merged = d.merge(l).unwrap();
        let e = d.entry(merged).unwrap();
        assert_eq!(e.state, MsiState::Shared);
        assert!(e.sharers.contains(0) && e.sharers.contains(1));
    }

    #[test]
    fn merge_refuses_conflicting_modified() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        let (l, r) = d.split(base).unwrap();
        d.entry_mut(l).unwrap().state = MsiState::Modified;
        d.entry_mut(l).unwrap().sharers = BladeSet::singleton(0);
        d.entry_mut(r).unwrap().state = MsiState::Shared;
        d.entry_mut(r).unwrap().sharers = BladeSet::singleton(1);
        assert!(d.merge(l).is_none(), "M + S with different blades");
        // Same single owner on both sides is fine.
        d.entry_mut(r).unwrap().state = MsiState::Modified;
        d.entry_mut(r).unwrap().sharers = BladeSet::singleton(0);
        assert!(d.merge(l).is_some());
        assert_eq!(
            d.entry(0x1_0000).unwrap().owner(),
            Some(0),
            "owner preserved"
        );
    }

    #[test]
    fn lazy_creation_avoids_overlap_with_finer_regions() {
        let mut d = dir();
        // Create a 16 KB region and split it to 8 KB; remove the right half.
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        let (l, r) = d.split(base).unwrap();
        d.remove(r);
        // A new access at the removed right half must not create a 16 KB
        // region overlapping the left 8 KB one.
        let (nbase, nk) = d.ensure_region(0x1_2000).unwrap();
        assert_eq!((nbase, nk), (0x1_2000, 13));
        assert_eq!(d.region_of(0x1_1000), Some((l, 13)), "left intact");
    }

    #[test]
    fn capacity_pressure_forces_merges() {
        let mut d = RegionDirectory::new(4, 14);
        // Fill all 4 slots with adjacent 16 KB regions (pre-sizing them via
        // split from a pair of 32 KB parents keeps creation sizes exact).
        for i in 0..4u64 {
            let (base, k) = d.ensure_region(i * 0x4000).unwrap();
            let _ = (base, k);
        }
        assert!(d.entries() >= 3, "pressure may coarsen creation");
        let before = d.entries();
        // Another region far away forces a cold buddy pair to merge once
        // the store is full.
        while d.slots.free() > 0 {
            let next = 0x100_0000 + d.entries() as u64 * 0x40_0000;
            d.ensure_region(next).unwrap();
        }
        d.ensure_region(0x900_0000).unwrap();
        assert!(d.entries() <= 4, "stayed at capacity");
        assert!(d.forced_merges() >= 1 || d.entries() < before + 1);
        // All original addresses are still covered by some region.
        for i in 0..4u64 {
            assert!(d.region_of(i * 0x4000).is_some());
        }
    }

    #[test]
    fn creation_size_coarsens_under_pressure() {
        let mut d = RegionDirectory::new(10, 14);
        let (_, k0) = d.ensure_region(0x0).unwrap();
        assert_eq!(k0, 14, "no pressure: initial size");
        // Fill to >65% utilization with far-apart regions.
        for i in 1..8u64 {
            d.ensure_region(i << 30).unwrap();
        }
        let (_, k_hot) = d.ensure_region(0x4000_0000_0000).unwrap();
        assert!(k_hot > 14, "creation coarsened under pressure: {k_hot}");
    }

    #[test]
    fn sram_full_when_nothing_mergeable() {
        let mut d = RegionDirectory::new(2, 14);
        let (a, _) = d.ensure_region(0x0).unwrap();
        let (b, _) = d.ensure_region(0x10_0000).unwrap();
        // Make both unmergeable: different M owners, and they are not
        // buddies anyway.
        d.entry_mut(a).unwrap().state = MsiState::Modified;
        d.entry_mut(a).unwrap().sharers = BladeSet::singleton(0);
        d.entry_mut(b).unwrap().state = MsiState::Modified;
        d.entry_mut(b).unwrap().sharers = BladeSet::singleton(1);
        assert!(d.ensure_region(0x20_0000).is_err());
    }

    #[test]
    fn epoch_counters_drain_and_reset() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        d.record_invalidation(base, 3);
        d.record_invalidation(base, 2);
        let drained = d.drain_epoch_counters();
        assert_eq!(
            drained,
            vec![EpochCounter {
                base,
                size_log2: 14,
                false_inv: 5,
                invalidations: 2,
            }]
        );
        assert_eq!(d.total_false_invalidations(), 5);
        assert_eq!(d.total_invalidations(), 2);
        // Second drain: no activity since the first, so nothing is listed.
        let again = d.drain_epoch_counters();
        assert!(again.is_empty());
    }

    #[test]
    fn drain_lists_only_active_regions() {
        let mut d = dir();
        let (a, _) = d.ensure_region(0x1_0000).unwrap();
        let (_b, _) = d.ensure_region(0x8_0000).unwrap();
        d.record_invalidation(a, 0);
        d.record_invalidation(a, 4);
        let drained = d.drain_epoch_counters();
        assert_eq!(drained.len(), 1, "idle region not listed");
        assert_eq!(drained[0].base, a);
        assert_eq!(drained[0].invalidations, 2);
        assert_eq!(drained[0].false_inv, 4);
        // Merging actives carries the summed counters to the parent.
        let (l, _r) = d.split(a).unwrap();
        d.record_invalidation(l, 1);
        let parent = d.merge(l).unwrap();
        let drained = d.drain_epoch_counters();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].base, parent);
        assert_eq!(drained[0].invalidations, 1);
    }

    #[test]
    fn generation_tracks_region_map_changes() {
        let mut d = dir();
        let g0 = d.generation();
        let (base, _) = d.ensure_region(0x1_0000).unwrap();
        assert!(d.generation() > g0, "creation bumps");
        let g1 = d.generation();
        d.ensure_region(0x1_2000).unwrap(); // Same region: pure lookup.
        assert_eq!(d.generation(), g1, "lookup does not bump");
        d.record_invalidation(base, 2); // Counters do not move boundaries.
        assert_eq!(d.generation(), g1);
        let (l, _) = d.split(base).unwrap();
        assert!(d.generation() > g1, "split bumps");
        let g2 = d.generation();
        d.merge(l).unwrap();
        assert!(d.generation() > g2, "merge bumps");
        let g3 = d.generation();
        d.remove(base);
        assert!(d.generation() > g3, "remove bumps");
    }

    #[test]
    fn admit_transition_serializes_on_busy_until() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x0).unwrap();
        let e = d.entry_mut(base).unwrap();
        assert_eq!(
            e.admit_transition(SimTime::from_micros(3)),
            SimTime::from_micros(3),
            "idle region admits immediately"
        );
        e.busy_until = SimTime::from_micros(10);
        assert_eq!(
            e.admit_transition(SimTime::from_micros(3)),
            SimTime::from_micros(10),
            "mid-transition region holds the request"
        );
        assert_eq!(
            e.admit_transition(SimTime::from_micros(12)),
            SimTime::from_micros(12)
        );
    }

    #[test]
    fn owner_accessor() {
        let mut d = dir();
        let (base, _) = d.ensure_region(0x0).unwrap();
        assert_eq!(d.entry(base).unwrap().owner(), None);
        d.entry_mut(base).unwrap().state = MsiState::Modified;
        d.entry_mut(base).unwrap().sharers = BladeSet::singleton(5);
        assert_eq!(d.entry(base).unwrap().owner(), Some(5));
    }
}
