//! Materialized coherence state-transition tables (paper §6.3, §8).
//!
//! A single MAU cannot compute a coherence transition, so MIND stores the
//! *entire* transition function as an exact-match table in the second MAU:
//! `(state, access kind, requester role) → (actions, next state)`. This
//! module generates those tables for three protocols:
//!
//! - **MSI** — the paper's implementation;
//! - **MESI** — adds Exclusive: a sole reader is granted a writable
//!   mapping, so private read-then-write patterns never pay the S→M
//!   upgrade fault;
//! - **MOESI** — adds Owned: a modified region downgrades *without*
//!   writing back, the old owner serves subsequent fetches cache-to-cache,
//!   eliminating the write-back and one memory round trip (§8 "Other
//!   coherence protocols" conjectures better scalability from exactly
//!   these two savings).
//!
//! The row count stays in the tens (§8: "the number of TCAM entries
//! required for STT entries would be quite small"), which
//! [`SttTable::rows`] lets the ablation harness report.

use mind_switch::mau::ExactTable;

use crate::directory::MsiState;
use crate::system::AccessKind;

/// Which coherence protocol the switch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Modified / Shared / Invalid — the paper's choice (§4.3.2).
    #[default]
    Msi,
    /// MSI + Exclusive.
    Mesi,
    /// MESI + Owned.
    Moesi,
}

impl Protocol {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Msi => "MSI",
            Protocol::Mesi => "MESI",
            Protocol::Moesi => "MOESI",
        }
    }
}

/// The requester's relation to the region's current holders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The requester is the region's exclusive owner (M/E/O).
    Owner,
    /// The requester already holds a shared copy.
    Sharer,
    /// The requester holds nothing.
    Other,
}

/// Who must be invalidated before/while the request completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalScope {
    /// Nobody.
    None,
    /// Every holder except the requester, downgraded to read-only copies.
    DowngradeOthers,
    /// Every holder except the requester, fully invalidated.
    InvalidateOthers,
}

/// Where the requested page's data comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// One-sided RDMA read from the home memory blade.
    Memory,
    /// Cache-to-cache transfer from the current owner blade (MOESI).
    OwnerCache,
}

/// One materialized transition row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SttRow {
    /// The region's next stable state.
    pub next: MsiState,
    /// Invalidation action.
    pub inval: InvalScope,
    /// Whether invalidated holders must flush dirty pages to memory.
    /// MOESI's Owned transitions skip the flush — that is the protocol's
    /// write-back saving.
    pub flush_dirty: bool,
    /// Data source for the fetch (ignored for upgrade-only faults).
    pub fetch: FetchSource,
    /// Whether the fetch must wait for invalidation ACKs (true for
    /// transitions out of a dirty exclusive state).
    pub sequential: bool,
    /// Whether the page is installed writable at the requester (a write,
    /// or MESI's exclusive read grant).
    pub insert_writable: bool,
}

/// A protocol's full materialized table, stored in an MAU exact-match
/// table with capacity accounting like the real ASIC.
#[derive(Debug)]
pub struct SttTable {
    protocol: Protocol,
    table: ExactTable<(MsiState, bool, Role), SttRow>,
}

impl SttTable {
    /// Materializes the table for `protocol`.
    pub fn new(protocol: Protocol) -> Self {
        // Generous MAU capacity; real tables need tens of rows.
        let mut table = ExactTable::new("state-transition", 256);
        let states: &[MsiState] = match protocol {
            Protocol::Msi => &[MsiState::Invalid, MsiState::Shared, MsiState::Modified],
            Protocol::Mesi => &[
                MsiState::Invalid,
                MsiState::Shared,
                MsiState::Exclusive,
                MsiState::Modified,
            ],
            Protocol::Moesi => &[
                MsiState::Invalid,
                MsiState::Shared,
                MsiState::Exclusive,
                MsiState::Modified,
                MsiState::Owned,
            ],
        };
        for &state in states {
            for is_write in [false, true] {
                for role in [Role::Owner, Role::Sharer, Role::Other] {
                    if let Some(row) = Self::row(protocol, state, is_write, role) {
                        table
                            .insert((state, is_write, role), row)
                            .expect("STT fits its MAU table");
                    }
                }
            }
        }
        SttTable { protocol, table }
    }

    /// The protocol this table implements.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of materialized rows (switch storage cost, §8).
    pub fn rows(&self) -> usize {
        self.table.len()
    }

    /// Looks up the transition for a fault.
    ///
    /// # Panics
    ///
    /// Panics if the combination is not in the table — that would be a
    /// protocol bug, not a runtime condition.
    pub fn lookup(&self, state: MsiState, kind: AccessKind, role: Role) -> SttRow {
        *self
            .table
            .get(&(state, kind.is_write(), role))
            .unwrap_or_else(|| panic!("no STT row for {state:?}/{kind:?}/{role:?}"))
    }

    /// Defines one row; `None` where the combination cannot occur (e.g. a
    /// Sharer role on an Invalid region).
    fn row(protocol: Protocol, state: MsiState, is_write: bool, role: Role) -> Option<SttRow> {
        use FetchSource::*;
        use InvalScope::*;
        use MsiState::*;
        use Role::*;

        let row = |next, inval, flush_dirty, fetch, sequential, insert_writable| {
            Some(SttRow {
                next,
                inval,
                flush_dirty,
                fetch,
                sequential,
                insert_writable,
            })
        };

        match (state, is_write, role) {
            // --- Invalid: plain fetches. MESI/MOESI grant Exclusive on a
            // read so the first write is a silent cache hit.
            (Invalid, false, Other) => match protocol {
                Protocol::Msi => row(Shared, None, false, Memory, false, false),
                _ => row(Exclusive, None, false, Memory, false, true),
            },
            (Invalid, true, Other) => row(Modified, None, false, Memory, false, true),
            (Invalid, _, _) => Option::None, // No holders => no Owner/Sharer.

            // --- Shared: reads join; writes invalidate the other sharers
            // in parallel with the fetch (their copies are clean).
            (Shared, false, _) => row(Shared, None, false, Memory, false, false),
            (Shared, true, _) => row(Modified, InvalidateOthers, false, Memory, false, true),

            // --- Exclusive: possibly silently dirtied, so leaving it is
            // exactly like leaving Modified.
            (Exclusive, _, _) if protocol == Protocol::Msi => Option::None,
            (Exclusive, false, Owner) => row(Exclusive, None, false, Memory, false, true),
            (Exclusive, true, Owner) => row(Exclusive, None, false, Memory, false, true),
            (Exclusive, false, _) => Self::read_of_dirty(protocol),
            (Exclusive, true, _) => row(Modified, InvalidateOthers, true, Memory, true, true),

            // --- Modified.
            (Modified, false, Owner) => row(Modified, None, false, Memory, false, true),
            (Modified, true, Owner) => row(Modified, None, false, Memory, false, true),
            (Modified, false, _) => Self::read_of_dirty(protocol),
            (Modified, true, _) => row(Modified, InvalidateOthers, true, Memory, true, true),

            // --- Owned (MOESI only): the owner serves reads cache-to-cache
            // with no write-back; a write collapses everything back to M.
            (Owned, _, _) if protocol != Protocol::Moesi => Option::None,
            (Owned, false, Owner) => row(Owned, None, false, Memory, false, false),
            (Owned, false, _) => row(Owned, None, false, OwnerCache, false, false),
            (Owned, true, _) => row(Modified, InvalidateOthers, true, Memory, true, true),
        }
    }

    /// A read of a dirty-exclusive (M or E) region by a non-owner: MSI and
    /// MESI downgrade the owner with a write-back and fetch from memory,
    /// sequentially; MOESI downgrades *without* write-back and the old
    /// owner serves the data (→ Owned).
    fn read_of_dirty(protocol: Protocol) -> Option<SttRow> {
        match protocol {
            Protocol::Moesi => Some(SttRow {
                next: MsiState::Owned,
                inval: InvalScope::DowngradeOthers,
                flush_dirty: false,
                fetch: FetchSource::OwnerCache,
                sequential: true,
                insert_writable: false,
            }),
            _ => Some(SttRow {
                next: MsiState::Shared,
                inval: InvalScope::DowngradeOthers,
                flush_dirty: true,
                fetch: FetchSource::Memory,
                sequential: true,
                insert_writable: false,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_are_tens_not_thousands() {
        let msi = SttTable::new(Protocol::Msi).rows();
        let mesi = SttTable::new(Protocol::Mesi).rows();
        let moesi = SttTable::new(Protocol::Moesi).rows();
        assert!(msi < mesi && mesi < moesi, "{msi} {mesi} {moesi}");
        assert!(moesi <= 40, "STT stays tiny: {moesi} rows");
    }

    #[test]
    fn msi_matches_paper_transitions() {
        let stt = SttTable::new(Protocol::Msi);
        // I + read -> S, plain fetch.
        let r = stt.lookup(MsiState::Invalid, AccessKind::Read, Role::Other);
        assert_eq!(r.next, MsiState::Shared);
        assert_eq!(r.inval, InvalScope::None);
        assert!(!r.insert_writable);
        // S + write -> M with parallel invalidation of the other sharers.
        let r = stt.lookup(MsiState::Shared, AccessKind::Write, Role::Sharer);
        assert_eq!(r.next, MsiState::Modified);
        assert_eq!(r.inval, InvalScope::InvalidateOthers);
        assert!(!r.sequential, "S->M overlaps inval with fetch (Fig 7)");
        // M + read by another blade -> sequential downgrade with flush.
        let r = stt.lookup(MsiState::Modified, AccessKind::Read, Role::Other);
        assert_eq!(r.next, MsiState::Shared);
        assert!(r.sequential && r.flush_dirty);
    }

    #[test]
    fn mesi_grants_exclusive_on_sole_read() {
        let stt = SttTable::new(Protocol::Mesi);
        let r = stt.lookup(MsiState::Invalid, AccessKind::Read, Role::Other);
        assert_eq!(r.next, MsiState::Exclusive);
        assert!(r.insert_writable, "E maps writable: silent first write");
        // Leaving E behaves like leaving M (may be silently dirty).
        let r = stt.lookup(MsiState::Exclusive, AccessKind::Read, Role::Other);
        assert!(r.flush_dirty && r.sequential);
    }

    #[test]
    fn moesi_skips_writeback_on_downgrade() {
        let stt = SttTable::new(Protocol::Moesi);
        let r = stt.lookup(MsiState::Modified, AccessKind::Read, Role::Other);
        assert_eq!(r.next, MsiState::Owned);
        assert!(!r.flush_dirty, "no write-back to disaggregated memory");
        assert_eq!(r.fetch, FetchSource::OwnerCache);
        // Owned serves further readers cache-to-cache with no invalidation.
        let r = stt.lookup(MsiState::Owned, AccessKind::Read, Role::Other);
        assert_eq!(r.inval, InvalScope::None);
        assert_eq!(r.fetch, FetchSource::OwnerCache);
        // A write anywhere collapses O back to M with a full flush.
        let r = stt.lookup(MsiState::Owned, AccessKind::Write, Role::Sharer);
        assert_eq!(r.next, MsiState::Modified);
        assert!(r.flush_dirty);
    }

    #[test]
    fn msi_has_no_exclusive_or_owned_rows() {
        let stt = SttTable::new(Protocol::Msi);
        assert!(stt
            .table
            .get(&(MsiState::Exclusive, false, Role::Other))
            .is_none());
        assert!(stt
            .table
            .get(&(MsiState::Owned, false, Role::Other))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "no STT row")]
    fn impossible_combination_panics() {
        let stt = SttTable::new(Protocol::Msi);
        stt.lookup(MsiState::Invalid, AccessKind::Read, Role::Owner);
    }
}
