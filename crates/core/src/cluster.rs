//! `MindCluster`: the public face of the reproduction.
//!
//! Assembles the simulated rack — compute blades, memory blades, the
//! programmable switch with MIND's in-network tables — behind a small API:
//! process/memory system calls, byte-granularity reads/writes (functional
//! shared memory), trace-replay access (the [`MemorySystem`] trait used by
//! the evaluation harness), and metric/series accessors for the figures.

use mind_blade::{page_base, PAGE_SIZE};
use mind_net::link::LatencyConfig;
use mind_sim::stats::{Metrics, TimeSeries};
use mind_sim::SimTime;

use crate::addr::Vma;
use crate::coherence::{AccessError, CoherenceConfig, CoherenceEngine};
use crate::engine::{ClusterEngine, ClusterStep};
use crate::controller::{Controller, Pid, SysError};
use crate::failure::{switch_failover, FailoverReport};
use crate::protect::PermClass;
use crate::split::{BoundedSplitting, SplitConfig};
use crate::system::{AccessKind, AccessOutcome, ConsistencyModel, MemorySystem, OpBatch};
use crate::window::InFlightWindow;

/// Fraction of a workload footprint held in the compute-blade cache when
/// scaling a rack down (the paper's 512 MB cache / ~2 GB footprint, §7).
pub const CACHE_FRACTION: f64 = 0.25;

/// Directory entries per footprint page when scaling a rack down (the
/// paper's 30 k entries / ~500 k pages, Figure 8 left).
pub const DIR_ENTRIES_PER_PAGE: f64 = 0.06;

/// Compute-blade cache size (pages) for a workload of `footprint_pages`,
/// holding [`CACHE_FRACTION`] and floored so tiny workloads still have a
/// working cache. Huge footprints saturate at `u32::MAX`: Rust's
/// float→int `as` cast already clamps (it never wraps), and the explicit
/// `.min` + regression test pin that behavior down as a contract rather
/// than an implementation accident.
pub fn scaled_cache_pages(footprint_pages: u64) -> u32 {
    let scaled = (footprint_pages as f64 * CACHE_FRACTION).min(u32::MAX as f64) as u32;
    scaled.max(256)
}

/// Switch-directory capacity for a workload of `footprint_pages`, holding
/// [`DIR_ENTRIES_PER_PAGE`] with a floor; saturates like
/// [`scaled_cache_pages`].
pub fn scaled_dir_capacity(footprint_pages: u64) -> usize {
    let scaled = (footprint_pages as f64 * DIR_ENTRIES_PER_PAGE).min(usize::MAX as f64) as usize;
    scaled.max(512)
}

/// ConnectX-5 outstanding-read limit (`max_qp_rd_atom`): the paper's
/// testbed blades reach memory over one-sided RDMA through CX-5 adapters,
/// which bound in-flight RDMA reads per queue pair at 16. The default
/// [`MindConfig::nic_depth`].
pub const CX5_NIC_DEPTH: u32 = 16;

/// Configuration of a simulated MIND rack.
#[derive(Debug, Clone, Copy)]
pub struct MindConfig {
    /// Compute blades (the paper evaluates up to 8).
    pub n_compute: u16,
    /// Memory blades.
    pub n_memory: u16,
    /// Compute-blade local DRAM cache, in pages (512 MB = 131 072 pages in
    /// the paper's setup, ≈25 % of workload footprint).
    pub cache_pages: u32,
    /// Virtual address span per memory blade (power of two).
    pub blade_span: u64,
    /// Physical capacity per memory blade in bytes.
    pub memory_blade_bytes: u64,
    /// Switch SRAM directory capacity (30 k entries, Figure 8 left).
    pub dir_capacity: usize,
    /// Switch match-action rule capacity (45 k entries, Figure 8 center).
    pub rule_capacity: usize,
    /// Bounded-splitting parameters (§5).
    pub split: SplitConfig,
    /// Coherence engine parameters.
    pub coherence: CoherenceConfig,
    /// Calibrated network/blade latencies.
    pub latency: LatencyConfig,
    /// Control-plane cost per intercepted syscall.
    pub syscall_cost: SimTime,
    /// Control-plane cost per rule install over PCIe.
    pub rule_install_cost: SimTime,
    /// Per-blade RNIC issue queue depth: how many remote operations one
    /// compute blade's NIC keeps in flight at once — the third gate of
    /// the in-flight window and the cluster engine (after the slot pool
    /// and same-region serialization). `0` models an unbounded queue.
    ///
    /// The default is [`CX5_NIC_DEPTH`] (16), calibrated to the paper's
    /// testbed NIC: MIND's compute blades talk to memory blades over
    /// one-sided RDMA reads/writes through ConnectX-5 adapters, whose
    /// `max_qp_rd_atom` limit caps outstanding RDMA reads per queue pair
    /// at 16. A batch whose in-flight window is ≤ 16 (every committed
    /// scenario) can never queue more than 16 ops on one blade, so the
    /// calibrated default reproduces the unbounded numbers byte-
    /// identically there; it only starts gating when the cluster engine
    /// runs more than 16 same-blade sources concurrently — exactly the
    /// saturation the real adapter would impose.
    pub nic_depth: u32,
    /// Deterministic tracing (defaults to resolving `MIND_TRACE`;
    /// propagated unchanged into shard sub-clusters by
    /// [`MindConfig::try_partition`]).
    pub trace: mind_obs::TraceConfig,
}

impl Default for MindConfig {
    /// The paper's evaluation rack: 8 compute blades × 512 MB cache, 8
    /// memory blades, 30 k directory entries, 45 k rules, TSO.
    fn default() -> Self {
        MindConfig {
            n_compute: 8,
            n_memory: 8,
            cache_pages: 131_072,
            blade_span: 1 << 34, // 16 GB of VA per memory blade.
            memory_blade_bytes: 1 << 34,
            dir_capacity: 30_000,
            rule_capacity: 45_000,
            split: SplitConfig::default(),
            coherence: CoherenceConfig::default(),
            latency: LatencyConfig::default(),
            syscall_cost: SimTime::from_micros(15),
            rule_install_cost: SimTime::from_micros(2),
            nic_depth: CX5_NIC_DEPTH,
            trace: mind_obs::TraceConfig::default(),
        }
    }
}

impl MindConfig {
    /// A small functional rack (2+2 blades, data-carrying) for examples and
    /// tests.
    pub fn small() -> Self {
        MindConfig {
            n_compute: 2,
            n_memory: 2,
            cache_pages: 1024,
            blade_span: 1 << 26,
            memory_blade_bytes: 1 << 26,
            dir_capacity: 2_000,
            rule_capacity: 2_000,
            coherence: CoherenceConfig {
                carry_data: true,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// A rack scaled for a workload of `footprint_pages` with `n_compute`
    /// compute blades, holding the paper's testbed *ratios* fixed rather
    /// than its absolute sizes: cache = 25 % of footprint, directory ≈ 6 %
    /// of footprint pages, and the bounded-splitting epoch scaled from the
    /// testbed's 100 ms to 2 ms (harness runs simulate ~0.1–1 s of rack
    /// time instead of 60–300 s, and the algorithm needs tens of epochs to
    /// stabilize region sizes, §5). Shapes — who wins, by what factor,
    /// where scaling breaks — are preserved; absolute seconds are not.
    pub fn scaled_to(footprint_pages: u64, n_compute: u16) -> Self {
        let mut cfg = MindConfig {
            n_compute,
            cache_pages: scaled_cache_pages(footprint_pages),
            dir_capacity: scaled_dir_capacity(footprint_pages),
            ..Default::default()
        };
        cfg.split.epoch_len = SimTime::from_millis(2);
        cfg
    }

    /// The default rack resized to `n_compute` compute blades (Figure 5
    /// center sweeps 1–8).
    pub fn with_compute(n_compute: u16) -> Self {
        MindConfig {
            n_compute,
            ..Default::default()
        }
    }

    /// Sets the consistency model (MIND / MIND-PSO / MIND-PSO+, §7.1).
    pub fn consistency(mut self, model: ConsistencyModel) -> Self {
        self.coherence.consistency = model;
        self
    }

    /// Sets the coherence protocol (MSI default; MESI/MOESI are §8's
    /// proposed extensions).
    pub fn protocol(mut self, protocol: crate::stt::Protocol) -> Self {
        self.coherence.protocol = protocol;
        self
    }

    /// Sets the compute-blade cache size in pages.
    pub fn cache(mut self, pages: u32) -> Self {
        self.cache_pages = pages;
        self
    }
}

/// A simulated MIND rack.
#[derive(Debug)]
pub struct MindCluster {
    cfg: MindConfig,
    engine: CoherenceEngine,
    controller: Controller,
    splitter: BoundedSplitting,
    default_pid: Option<Pid>,
    clock_high_watermark: SimTime,
}

impl MindCluster {
    /// Builds the rack.
    pub fn new(cfg: MindConfig) -> Self {
        let mut engine = CoherenceEngine::new(
            cfg.n_compute,
            cfg.n_memory,
            cfg.cache_pages,
            cfg.blade_span,
            cfg.memory_blade_bytes,
            cfg.dir_capacity,
            cfg.split.initial_region_log2,
            cfg.rule_capacity,
            cfg.latency,
            cfg.coherence,
        );
        engine.set_trace(mind_obs::TraceBuf::new(cfg.trace));
        let controller = Controller::new(
            cfg.n_compute,
            cfg.n_memory,
            cfg.blade_span,
            cfg.syscall_cost,
            cfg.rule_install_cost,
        );
        MindCluster {
            engine,
            controller,
            splitter: BoundedSplitting::new(cfg.split),
            cfg,
            default_pid: None,
            clock_high_watermark: SimTime::ZERO,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MindConfig {
        &self.cfg
    }

    // ----- System calls (§6.1) -----

    /// `exec`: starts a process. The first process becomes the default for
    /// the trace-replay [`MemorySystem`] interface.
    pub fn exec(&mut self) -> Result<Pid, SysError> {
        let pid = self.controller.exec();
        if self.default_pid.is_none() {
            self.default_pid = Some(pid);
        }
        Ok(pid)
    }

    /// `mmap` with read-write permissions.
    pub fn mmap(&mut self, pid: Pid, len: u64) -> Result<u64, SysError> {
        self.mmap_with(pid, len, PermClass::ReadWrite)
            .map(|v| v.base)
    }

    /// `mmap` with an explicit permission class; returns the vma.
    pub fn mmap_with(&mut self, pid: Pid, len: u64, pc: PermClass) -> Result<Vma, SysError> {
        self.controller.mmap(&mut self.engine, pid, len, pc)
    }

    /// `mmap` (read-write) with placement confined to the memory blades in
    /// `blades` — region ownership for partitioned runs (see
    /// [`crate::shard`]): each partition's vmas stay on its own blade
    /// slice, so its fabric traffic never shares a memory-blade link with
    /// another partition's.
    pub fn mmap_in(
        &mut self,
        pid: Pid,
        len: u64,
        blades: std::ops::Range<u16>,
    ) -> Result<u64, SysError> {
        self.controller
            .mmap_in(&mut self.engine, pid, len, PermClass::ReadWrite, blades)
            .map(|v| v.base)
    }

    /// `munmap`.
    pub fn munmap(&mut self, now: SimTime, pid: Pid, base: u64) -> Result<(), SysError> {
        self.controller.munmap(&mut self.engine, now, pid, base)
    }

    /// `mprotect`.
    pub fn mprotect(
        &mut self,
        now: SimTime,
        pid: Pid,
        base: u64,
        pc: PermClass,
    ) -> Result<(), SysError> {
        self.controller
            .mprotect(&mut self.engine, now, pid, base, pc)
    }

    /// `exit`.
    pub fn exit(&mut self, now: SimTime, pid: Pid) -> Result<(), SysError> {
        if self.default_pid == Some(pid) {
            self.default_pid = None;
        }
        self.controller.exit(&mut self.engine, now, pid)
    }

    /// Places a thread of `pid` on a compute blade (round-robin, §6.1).
    pub fn place_thread(&mut self, pid: Pid) -> Result<u16, SysError> {
        self.controller.place_thread(pid)
    }

    /// Retires one thread of `pid` from `blade` (elastic shrink).
    pub fn unplace_thread(&mut self, pid: Pid, blade: u16) -> Result<bool, SysError> {
        self.controller.unplace_thread(pid, blade)
    }

    /// The control program (process/thread roster inspection).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    // ----- Memory access -----

    /// One LOAD/STORE by a thread of `pid` on `blade` at time `now`.
    pub fn access_as(
        &mut self,
        now: SimTime,
        blade: u16,
        pid: Pid,
        vaddr: u64,
        kind: AccessKind,
    ) -> Result<AccessOutcome, AccessError> {
        self.tick(now);
        self.engine.access(now, blade, pid, vaddr, kind)
    }

    /// Executes an [`OpBatch`] through the rack's batched datapath.
    ///
    /// This is the fast path behind [`MemorySystem::execute_batch`] and
    /// the service dispatcher's quantum grants: the engine installs a
    /// per-batch lookaside that fills lazily — the first op to touch a
    /// protection range pays the TCAM walk and every later op in the
    /// range is served from the memo, translations skip the outlier TCAM
    /// while it is empty, the last directory-region resolution is reused
    /// under a generation guard — and metric deltas flush once at batch
    /// end. Per-op outcomes, issue times, and metrics are identical to
    /// issuing each op through the scalar [`MindCluster::access_as`]
    /// path.
    ///
    /// Ops with `pdid: None` run as the default replay process.
    ///
    /// A batch with an in-flight window deeper than 1 executes through the
    /// two-phase issue/complete datapath instead (see
    /// [`MindCluster::run_batch_overlapped`]); `window <= 1` is always
    /// this serialized path, byte-identical to the pre-window release.
    ///
    /// # Panics
    ///
    /// Panics if an op has no protection domain and no process has been
    /// `exec`ed.
    pub fn run_batch(&mut self, now: SimTime, batch: &mut OpBatch) {
        if batch.window() > 1 {
            return self.run_batch_overlapped(now, batch);
        }
        // A batch of one *is* the scalar path: skip the lookaside setup
        // (there is nothing to amortize over).
        if batch.len() > 1 {
            self.engine.begin_batch();
        }

        let default_pid = self.default_pid;
        let chained = batch.is_chained();
        let gap = batch.gap();
        let mut t = now;
        for i in 0..batch.len() {
            let op = batch.op(i);
            let at = if chained { t } else { op.at };
            self.tick(at);
            let pdid = op.pdid.or(default_pid).expect("exec a process before replay");
            let result = self.engine.access(at, op.blade, pdid, op.vaddr, op.kind);
            if let Ok(outcome) = &result {
                t = at + outcome.latency.total() + gap;
            } else {
                // A refused chained op contributes no service time; the
                // next op issues after the gap alone. Trace-replay callers
                // treat any `Err` as fatal before using later results (the
                // scalar reference loop panics on the first error), so
                // this arm only defines behaviour for callers that opt
                // into inspecting per-op `Result`s.
                t = at + gap;
            }
            batch.record(i, at, result);
        }
        self.engine.end_batch();
    }

    /// The two-phase issue/complete executor: up to `batch.window()` ops
    /// in flight at once, modelling the blade's memory-level parallelism
    /// (the paper's RDMA NICs pipeline page-fault round trips, §3).
    ///
    /// Issue arbitration, per op:
    ///
    /// 1. **Slot gate** — with `W` ops outstanding, the op waits for the
    ///    earliest in-flight completion. Chained ops additionally issue no
    ///    earlier than `gap` after their predecessor's issue (the issue
    ///    pipeline's per-op cost); fixed ops no earlier than their preset
    ///    [`MemOp::at`].
    /// 2. **NIC gate** — with [`MindConfig::nic_depth`] of the blade's own
    ///    ops outstanding, the op waits for the blade's earliest in-flight
    ///    completion (its RNIC issue queue is full). Depth `0` — the
    ///    default — never gates.
    /// 3. **Region gate** — an op whose page lies in the directory region
    ///    of an in-flight op waits for that op to complete: same-region
    ///    transitions never overlap (on top of the directory's own
    ///    `busy_until` serialization).
    ///
    /// The engine's issue phase then runs the full data path at the gated
    /// time and returns a completion record. The fabric time an op spent
    /// below the window's completion frontier ran concurrently with
    /// earlier in-flight work; it moves from the breakdown's `network`
    /// into `overlapped`, so per-op totals (and the op's completion time)
    /// are unchanged while the visible breakdown reflects the hiding.
    fn run_batch_overlapped(&mut self, now: SimTime, batch: &mut OpBatch) {
        if batch.len() > 1 {
            self.engine.begin_batch();
        }

        let default_pid = self.default_pid;
        let chained = batch.is_chained();
        let gap = batch.gap();
        let mut window =
            InFlightWindow::new(batch.window() as usize).with_nic_depth(self.cfg.nic_depth);
        let mut prev_issue = now;
        for i in 0..batch.len() {
            let op = batch.op(i);
            // The op's ungated issue time: what `at` would be with an
            // infinite window and no region conflicts (trace attribution
            // only — never feeds back into the simulation).
            let ungated = if chained {
                if i == 0 {
                    now
                } else {
                    prev_issue + gap
                }
            } else {
                op.at.max(prev_issue)
            };
            // Slot gate.
            let mut at = if chained {
                if i == 0 {
                    now
                } else {
                    prev_issue.max(window.slot_free_at()) + gap
                }
            } else {
                // Fixed ops issue in program order: clamp to the previous
                // issue time so that a gate release retiring several
                // tied completions at once can never regress simulated
                // time or re-admit past the window.
                op.at.max(prev_issue).max(window.slot_free_at())
            };
            window.retire_through(at);
            // NIC gate: the blade's RNIC queue must have a free entry.
            let nic = window.nic_free_at(op.blade);
            if nic > at {
                if self.engine.trace.enabled() {
                    self.engine.trace.record(
                        at,
                        op.blade as u32,
                        mind_obs::EventKind::NicStall,
                        nic.saturating_sub(at),
                        window.nic_depth() as u64,
                        window.nic_in_flight(op.blade) as u64,
                    );
                }
                at = nic;
                window.retire_through(at);
            }
            // Region gate: serialize behind in-flight same-region ops.
            at = at.max(window.region_release(page_base(op.vaddr)));
            window.retire_through(at);
            if self.engine.trace.enabled() {
                let stall = at.saturating_sub(ungated);
                if stall > SimTime::ZERO {
                    self.engine.trace.record(
                        ungated,
                        op.blade as u32,
                        mind_obs::EventKind::WindowStall,
                        stall,
                        window.in_flight() as u64,
                        0,
                    );
                }
            }
            self.tick(at);
            let pdid = op.pdid.or(default_pid).expect("exec a process before replay");
            match self.engine.issue(at, op.blade, pdid, op.vaddr, op.kind) {
                Ok(issued) => {
                    let mut outcome = issued.outcome;
                    // Overlap attribution: the share of this op's fabric
                    // time spent below the frontier was hidden behind
                    // earlier in-flight completions.
                    let hidden = window
                        .frontier()
                        .min(issued.complete_at)
                        .saturating_sub(at)
                        .min(outcome.latency.network);
                    outcome.latency.network = outcome.latency.network.saturating_sub(hidden);
                    outcome.latency.overlapped = hidden;
                    window.admit(issued.complete_at, issued.region, op.blade);
                    self.engine.trace.record(
                        at,
                        op.blade as u32,
                        mind_obs::EventKind::WindowAdmit,
                        SimTime::ZERO,
                        window.in_flight() as u64,
                        0,
                    );
                    batch.record_with_region(i, at, Ok(outcome), issued.region);
                }
                // A refused op occupies no slot; the next op's issue chains
                // from this issue time alone (same rule as the serialized
                // path's gap-only advance).
                Err(e) => batch.record_with_region(i, at, Err(e), None),
            }
            prev_issue = at;
        }
        self.engine.end_batch();
    }

    /// Reads `len` bytes at `vaddr` through `blade`'s cache (functional
    /// mode: `carry_data` must be on).
    pub fn read_bytes(
        &mut self,
        now: SimTime,
        blade: u16,
        pid: Pid,
        vaddr: u64,
        len: usize,
    ) -> Result<Vec<u8>, AccessError> {
        assert!(
            self.cfg.coherence.carry_data,
            "read_bytes requires MindConfig with carry_data"
        );
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        let mut t = now;
        while done < len {
            let addr = vaddr + done as u64;
            let page = page_base(addr);
            let offset = (addr - page) as usize;
            let chunk = ((PAGE_SIZE as usize) - offset).min(len - done);
            let outcome = self.access_as(t, blade, pid, addr, AccessKind::Read)?;
            t += outcome.latency.total();
            let ok = self
                .engine
                .cache(blade)
                .read_data(page, offset, &mut out[done..done + chunk]);
            debug_assert!(ok, "page present after successful access");
            done += chunk;
        }
        Ok(out)
    }

    /// Writes `bytes` at `vaddr` through `blade`'s cache (functional mode).
    pub fn write_bytes(
        &mut self,
        now: SimTime,
        blade: u16,
        pid: Pid,
        vaddr: u64,
        bytes: &[u8],
    ) -> Result<(), AccessError> {
        assert!(
            self.cfg.coherence.carry_data,
            "write_bytes requires MindConfig with carry_data"
        );
        let mut done = 0usize;
        let mut t = now;
        while done < bytes.len() {
            let addr = vaddr + done as u64;
            let page = page_base(addr);
            let offset = (addr - page) as usize;
            let chunk = ((PAGE_SIZE as usize) - offset).min(bytes.len() - done);
            let outcome = self.access_as(t, blade, pid, addr, AccessKind::Write)?;
            t += outcome.latency.total();
            let ok =
                self.engine
                    .cache_mut(blade)
                    .write_data(page, offset, &bytes[done..done + chunk]);
            debug_assert!(ok, "page present and writable after write access");
            done += chunk;
        }
        Ok(())
    }

    // ----- Periodic work & failure hooks -----

    /// Advances the bounded-splitting epoch driver to `now`.
    fn tick(&mut self, now: SimTime) {
        self.clock_high_watermark = self.clock_high_watermark.max(now);
        self.splitter
            .advance_to(self.clock_high_watermark, self.engine.directory_mut());
    }

    /// Injects packet loss into the fabric (exercises §4.4 reliability).
    pub fn inject_loss(&mut self, rate: f64, seed: u64) {
        self.engine.fabric_mut().set_loss(rate, seed);
    }

    /// Runs the §4.4 reset protocol on a directory region: every live
    /// blade flushes its dirty pages for `[base, base + 2^k)` and the
    /// entry is removed. Returns when the flushes complete.
    pub fn reset_region(&mut self, now: SimTime, base: u64, k: u8) -> SimTime {
        self.engine.reset_region(now, base, k)
    }

    /// Fails a compute blade (it stops ACKing invalidations; cache lost).
    pub fn fail_blade(&mut self, blade: u16) {
        self.engine.fail_blade(blade);
    }

    /// Fails over to the backup switch (§4.4): replays control-plane state
    /// and cold-starts coherence.
    pub fn switch_failover(&mut self, now: SimTime) -> FailoverReport {
        switch_failover(&mut self.controller, &mut self.engine, now)
    }

    /// Migrates a previously mmapped vma to a different memory blade,
    /// installing outlier translation entries (§4.1 "Transparency via
    /// outlier entries"). `pa_base` is the destination physical offset.
    pub fn migrate(
        &mut self,
        now: SimTime,
        base: u64,
        len: u64,
        dst_blade: u16,
        pa_base: u64,
    ) -> Result<usize, SysError> {
        // Flush coherence state so stale copies cannot outlive the move.
        let mut addr = base;
        while addr < base + len {
            match self.engine.directory().region_of(addr) {
                Some((rbase, rk)) => {
                    self.engine.reset_region(now, rbase, rk);
                    addr = rbase + (1u64 << rk);
                }
                None => addr += PAGE_SIZE,
            }
        }
        self.engine
            .translation
            .add_outlier(base, len, dst_blade, pa_base)
            .map_err(|_| SysError::NoMem)
    }

    // ----- Reporting -----

    /// Engine + controller metrics.
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.engine.metrics();
        m.add(
            "syscalls",
            self.controller.control_plane().syscalls_handled(),
        );
        m.add(
            "rules_installed",
            self.controller.control_plane().rules_installed(),
        );
        m.add("match_action_rules", self.engine.rule_count() as u64);
        m
    }

    /// Per-epoch directory-entry counts (Figure 8 left).
    pub fn directory_series(&self) -> &TimeSeries {
        self.splitter.entries_series()
    }

    /// Per-epoch false-invalidation counts (Figure 9).
    pub fn false_invalidation_series(&self) -> &TimeSeries {
        self.splitter.false_inv_series()
    }

    /// Current directory entry count.
    pub fn directory_entries(&self) -> usize {
        self.engine.directory().entries()
    }

    /// Total match-action rules installed (translation + protection).
    pub fn match_action_rules(&self) -> usize {
        self.engine.rule_count()
    }

    /// Bytes allocated per memory blade (Figure 8 right).
    pub fn allocated_per_blade(&self) -> Vec<u64> {
        self.controller.allocator().allocated_per_blade()
    }

    /// Fraction of the rack's disaggregated memory currently allocated,
    /// in `[0, 1]` — the pressure signal a serving layer's admission
    /// control reads before admitting a tenant.
    pub fn memory_utilization(&self) -> f64 {
        let allocated: u64 = self.allocated_per_blade().iter().sum();
        let capacity = self.cfg.n_memory as u64 * self.cfg.memory_blade_bytes;
        allocated as f64 / capacity as f64
    }

    /// Protection TCAM entries installed for one protection domain
    /// (tenant-isolation accounting: must return to zero after the
    /// domain's owner exits).
    pub fn protection_entries_for(&self, pdid: crate::protect::Pdid) -> usize {
        self.engine.protection_entries_for(pdid)
    }

    /// The bounded-splitting driver (reporting).
    pub fn splitter(&self) -> &BoundedSplitting {
        &self.splitter
    }

    /// The coherence engine (advanced inspection in tests/benches).
    ///
    /// Read-only by design: mutation goes through the purpose-built
    /// operations ([`MindCluster::inject_loss`],
    /// [`MindCluster::fail_blade`], [`MindCluster::reset_region`],
    /// [`MindCluster::switch_failover`], [`MindCluster::migrate`]) so the
    /// cluster's invariants — and the batched datapath's lookaside
    /// assumptions — cannot be bypassed from outside.
    pub fn engine(&self) -> &CoherenceEngine {
        &self.engine
    }

    /// The deterministic event sink (live when the config enables
    /// tracing). Callers above the datapath — the serving layer, the
    /// shard executor — record their control-plane events here so one
    /// buffer per (sub-)cluster carries the whole story.
    pub fn trace(&mut self) -> &mut mind_obs::TraceBuf {
        &mut self.engine.trace
    }

    /// Extracts the recorded trace (`None` when tracing is disabled).
    pub fn take_trace(&mut self) -> Option<mind_obs::TraceData> {
        self.engine.take_trace()
    }

    /// One step of the cluster-wide event-driven engine
    /// ([`crate::engine`]): offers `op` — the next operation of a source
    /// that became ungated-ready at `ready0` — to the three issue gates at
    /// virtual time `now` (the source's pop time).
    ///
    /// If the slot pool, the per-NIC queue, or a same-region in-flight
    /// transition holds the op — or the op would miss (or upgrade) into a
    /// directory region still mid-transition (`busy_until`, §4.4) —
    /// returns [`ClusterStep::Gated`] with the exact release time (a
    /// completion of an already-admitted op or the directory entry's
    /// release, so re-offering there makes progress); the NIC's *extra*
    /// share of the wait is reported (and traced) separately so NIC
    /// pressure is attributable. Otherwise the op issues at `now`: the full datapath
    /// runs, fabric time below the pool's overlap frontier moves into
    /// `latency.overlapped` (totals unchanged, same attribution as
    /// [`MindCluster::run_batch`]'s windowed path), the op is admitted,
    /// and any `ready0 → now` wait is traced as a `WindowStall` span.
    ///
    /// # Panics
    ///
    /// Panics when the access itself fails, like every trace-replay path.
    pub fn issue_clustered(
        &mut self,
        eng: &mut ClusterEngine,
        now: SimTime,
        ready0: SimTime,
        op: &crate::system::MemOp,
    ) -> ClusterStep {
        let window = eng.window_mut();
        window.retire_through(now);
        let slot = window.slot_free_at();
        let mut region = SimTime::ZERO;
        let mut nic = window.nic_free_at(op.blade);
        // Event-driven admission. Only an op that will consult the switch
        // (cache miss or write upgrade) starts a directory transition or
        // uses the RNIC — a local hit does neither, so it passes these
        // gates untouched. A consulting op is held back while it could
        // not make progress anyway; otherwise it occupies a pool slot for
        // the whole wait and convoys the cluster behind one hot spot. The
        // turnwise replay cannot do either deferral (it commits a whole
        // turn before seeing the fabric), which is precisely the
        // cross-turn engine's advantage on invalidation-heavy sharing.
        if self
            .engine
            .would_consult_directory(op.blade, op.vaddr, op.kind)
        {
            // Same-region serialization: directory transitions on one
            // region serialize cluster-wide — behind in-flight
            // transitions (the pooled window's gate) and behind an entry
            // still mid-transition from earlier rounds (`busy_until`,
            // §4.4; deferring beats queueing at `admit_transition`).
            region = window
                .region_release(page_base(op.vaddr))
                .max(self.engine.region_busy_until(op.vaddr));
            // NIC TX deferral: the blade's RNIC cannot put the request on
            // the wire while its up-link is booked (e.g. behind a bulk
            // dirty flush); defer to the backlog's drain so the slot goes
            // to a source that can actually issue.
            nic = nic.max(self.engine.nic_tx_release(op.blade));
        }
        let others = now.max(slot).max(region);
        let until = others.max(nic);
        if until > now {
            let nic_stall = until.saturating_sub(others);
            if nic_stall > SimTime::ZERO && self.engine.trace.enabled() {
                self.engine.trace.record(
                    others,
                    op.blade as u32,
                    mind_obs::EventKind::NicStall,
                    nic_stall,
                    window.nic_depth() as u64,
                    window.nic_in_flight(op.blade) as u64,
                );
            }
            return ClusterStep::Gated { until, nic_stall };
        }
        if self.engine.trace.enabled() {
            let stall = now.saturating_sub(ready0);
            if stall > SimTime::ZERO {
                self.engine.trace.record(
                    ready0,
                    op.blade as u32,
                    mind_obs::EventKind::WindowStall,
                    stall,
                    window.in_flight() as u64,
                    0,
                );
            }
        }
        self.tick(now);
        let pdid = op
            .pdid
            .or(self.default_pid)
            .expect("exec a process before replay");
        match self.engine.issue(now, op.blade, pdid, op.vaddr, op.kind) {
            Ok(issued) => {
                let window = eng.window_mut();
                let mut outcome = issued.outcome;
                let hidden = window
                    .frontier()
                    .min(issued.complete_at)
                    .saturating_sub(now)
                    .min(outcome.latency.network);
                outcome.latency.network = outcome.latency.network.saturating_sub(hidden);
                outcome.latency.overlapped = hidden;
                window.admit(issued.complete_at, issued.region, op.blade);
                self.engine.trace.record(
                    now,
                    op.blade as u32,
                    mind_obs::EventKind::WindowAdmit,
                    SimTime::ZERO,
                    window.in_flight() as u64,
                    0,
                );
                ClusterStep::Issued {
                    outcome,
                    complete_at: issued.complete_at,
                    region: issued.region,
                }
            }
            Err(e) => panic!("clustered access failed at {:#x}: {e}", op.vaddr),
        }
    }
}

impl MemorySystem for MindCluster {
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome {
        let pid = self.default_pid.expect("exec a process before replay");
        match self.access_as(now, blade, pid, vaddr, kind) {
            Ok(outcome) => outcome,
            Err(e) => panic!("trace access failed at {vaddr:#x}: {e}"),
        }
    }

    fn n_compute(&self) -> u16 {
        self.cfg.n_compute
    }

    fn metrics(&self) -> Metrics {
        self.metrics_snapshot()
    }

    fn alloc(&mut self, len: u64) -> u64 {
        if self.default_pid.is_none() {
            self.exec().expect("exec cannot fail");
        }
        let pid = self.default_pid.expect("just ensured");
        self.mmap(pid, len).expect("trace allocation fits the rack")
    }

    fn advance_to(&mut self, now: SimTime) {
        self.tick(now);
    }

    /// MIND's op-batch pipeline (see [`MindCluster::run_batch`]): same
    /// per-op outcomes and metrics as the default scalar loop, with the
    /// per-op table walks amortized across the batch.
    fn execute_batch(&mut self, now: SimTime, batch: &mut OpBatch) {
        self.run_batch(now, batch);
    }

    fn take_trace(&mut self) -> Option<mind_obs::TraceData> {
        MindCluster::take_trace(self)
    }

    /// MIND has an issue/complete datapath, so it supports cluster-wide
    /// event-driven issue; the rack's [`MindConfig::nic_depth`] supplies
    /// the per-NIC gate.
    fn cluster_engine(&self, window: u32, sources: u32) -> Option<ClusterEngine> {
        Some(ClusterEngine::new(window, self.cfg.nic_depth, sources))
    }

    fn cluster_issue(
        &mut self,
        eng: &mut ClusterEngine,
        now: SimTime,
        ready0: SimTime,
        op: &crate::system::MemOp,
    ) -> Option<ClusterStep> {
        Some(self.issue_clustered(eng, now, ready0, op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_to_holds_testbed_ratios() {
        assert_eq!(scaled_cache_pages(100_000), 25_000);
        assert_eq!(scaled_dir_capacity(100_000), 6_000);
        assert_eq!(scaled_cache_pages(400), 256, "floored");
        assert_eq!(scaled_dir_capacity(400), 512, "floored");
        let cfg = MindConfig::scaled_to(100_000, 4);
        assert_eq!(cfg.n_compute, 4);
        assert_eq!(cfg.cache_pages, 25_000);
        assert_eq!(cfg.dir_capacity, 6_000);
        assert_eq!(cfg.split.epoch_len, SimTime::from_millis(2));
    }

    #[test]
    fn scaled_sizes_saturate_on_huge_footprints() {
        // A footprint beyond any 32-bit page count must clamp to the type
        // maximum, never wrap around to a tiny cache/directory.
        assert_eq!(scaled_cache_pages(u64::MAX), u32::MAX);
        assert_eq!(scaled_cache_pages((u32::MAX as u64 + 1) * 8), u32::MAX);
        assert!(scaled_dir_capacity(u64::MAX) >= scaled_dir_capacity(1 << 40));
        // Monotonic across the u32 boundary: growing the footprint never
        // shrinks the scaled sizes.
        let footprints = [1u64 << 20, 1 << 32, 1 << 40, 1 << 50, u64::MAX];
        for pair in footprints.windows(2) {
            assert!(scaled_cache_pages(pair[1]) >= scaled_cache_pages(pair[0]));
            assert!(scaled_dir_capacity(pair[1]) >= scaled_dir_capacity(pair[0]));
        }
    }

    /// The cluster-level equivalence guarantee: a batch through
    /// `run_batch` produces identical outcomes, issue times, and metrics
    /// to the same ops issued through the scalar path.
    #[test]
    fn run_batch_matches_scalar_path() {
        use crate::system::MemOp;

        let build_ops = |c: &mut MindCluster, pid: Pid| -> Vec<MemOp> {
            let base = c.mmap(pid, 1 << 20).unwrap();
            let mut rng = mind_sim::SimRng::new(9);
            (0..64)
                .map(|i| MemOp {
                    at: SimTime::ZERO,
                    blade: (i % 2) as u16,
                    pdid: None,
                    vaddr: base + (rng.gen_below(64) << 12),
                    kind: if rng.gen_bool(0.4) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                })
                .collect()
        };

        // Scalar reference: issue each op through access_as, chaining
        // issue times exactly like a chained batch.
        let mut scalar = MindCluster::new(MindConfig::small());
        let pid = scalar.exec().unwrap();
        let gap = SimTime::from_nanos(100);
        let ops = build_ops(&mut scalar, pid);
        let mut scalar_outcomes = Vec::new();
        let mut t = SimTime::ZERO;
        for op in &ops {
            let outcome = scalar.access_as(t, op.blade, pid, op.vaddr, op.kind).unwrap();
            scalar_outcomes.push((t, outcome));
            t = t + outcome.latency.total() + gap;
        }

        // Batched run over an identically prepared rack.
        let mut batched = MindCluster::new(MindConfig::small());
        let pid2 = batched.exec().unwrap();
        let ops2 = build_ops(&mut batched, pid2);
        assert_eq!(ops.len(), ops2.len());
        let mut batch = OpBatch::chained(gap);
        for op in &ops2 {
            batch.push(*op);
        }
        batched.run_batch(SimTime::ZERO, &mut batch);

        for (i, &(at, outcome)) in scalar_outcomes.iter().enumerate() {
            assert_eq!(batch.op(i).at, at, "issue time of op {i}");
            let b = batch.outcome(i);
            assert_eq!(b.latency, outcome.latency, "latency of op {i}");
            assert_eq!(b.remote, outcome.remote);
            assert_eq!(b.invalidations, outcome.invalidations);
            assert_eq!(b.flushed_pages, outcome.flushed_pages);
            assert_eq!(b.false_invalidations, outcome.false_invalidations);
        }
        assert_eq!(
            scalar.metrics_snapshot(),
            batched.metrics_snapshot(),
            "batched metrics diverge from scalar"
        );
    }

    /// The review probe that caught the fixed-batch slot-gate regression:
    /// warm local hits complete at identical times, so one gated op's
    /// issue retires several slots at once — the next op must not issue
    /// back at its preset time with more than `window` ops in flight.
    #[test]
    fn fixed_overlapped_batch_issues_monotonically_within_window() {
        use crate::system::MemOp;
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        let base = c.mmap(pid, 1 << 16).unwrap();
        // Warm four pages so every batched op is a local hit with an
        // identical (tied) completion latency.
        for p in 0..4u64 {
            c.access_as(SimTime::ZERO, 0, pid, base + (p << 12), AccessKind::Read)
                .unwrap();
        }
        let mut batch = OpBatch::fixed().with_window(2);
        for p in 0..4u64 {
            batch.push(MemOp {
                at: SimTime::from_micros(100),
                blade: 0,
                pdid: None,
                vaddr: base + (p << 12),
                kind: AccessKind::Read,
            });
        }
        c.run_batch(SimTime::from_micros(100), &mut batch);
        for i in 0..batch.len() {
            assert!(batch.result(i).is_ok());
            if i > 0 {
                assert!(
                    batch.op(i).at >= batch.op(i - 1).at,
                    "fixed issue times regressed: op {i} at {:?} after {:?}",
                    batch.op(i).at,
                    batch.op(i - 1).at
                );
            }
            let in_flight = (0..i)
                .filter(|&j| batch.op(j).at <= batch.op(i).at && batch.completion(j) > batch.op(i).at)
                .count();
            assert!(in_flight < 2, "op {i} issued with {in_flight} in flight");
        }
    }

    #[test]
    fn run_batch_records_errors_and_advances_by_gap() {
        use crate::system::MemOp;
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        let base = c.mmap(pid, 1 << 16).unwrap();
        c.fail_blade(0);
        let gap = SimTime::from_nanos(100);
        let mut batch = OpBatch::chained(gap);
        for &blade in &[0u16, 1] {
            batch.push(MemOp {
                at: SimTime::ZERO,
                blade,
                pdid: None,
                vaddr: base,
                kind: AccessKind::Read,
            });
        }
        c.run_batch(SimTime::ZERO, &mut batch);
        assert!(
            matches!(batch.result(0), Err(AccessError::BladeFailed)),
            "failed blade's op recorded as an error: {:?}",
            batch.result(0)
        );
        assert!(batch.result(1).is_ok(), "healthy blade proceeds");
        assert_eq!(
            batch.op(1).at,
            gap,
            "a refused chained op contributes no service time"
        );
    }

    #[test]
    fn reset_region_accessor_flushes_and_removes() {
        let (mut c, pid, base) = functional_cluster();
        c.write_bytes(SimTime::ZERO, 0, pid, base, b"dirty").unwrap();
        let (rbase, rk) = c.engine().directory().region_of(base).unwrap();
        c.reset_region(SimTime::from_micros(50), rbase, rk);
        assert!(
            c.engine().directory().region_of(base).is_none(),
            "entry removed by the reset protocol"
        );
        assert!(!c.engine().cache(0).contains(base), "cache flushed");
    }

    fn functional_cluster() -> (MindCluster, Pid, u64) {
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        let base = c.mmap(pid, 1 << 20).unwrap();
        (c, pid, base)
    }

    #[test]
    fn bytes_roundtrip_same_blade() {
        let (mut c, pid, base) = functional_cluster();
        c.write_bytes(SimTime::ZERO, 0, pid, base + 100, b"disaggregated")
            .unwrap();
        let got = c
            .read_bytes(SimTime::from_micros(100), 0, pid, base + 100, 13)
            .unwrap();
        assert_eq!(&got, b"disaggregated");
    }

    #[test]
    fn bytes_coherent_across_blades() {
        let (mut c, pid, base) = functional_cluster();
        c.write_bytes(SimTime::ZERO, 0, pid, base, b"written on cb0")
            .unwrap();
        let got = c
            .read_bytes(SimTime::from_millis(1), 1, pid, base, 14)
            .unwrap();
        assert_eq!(&got, b"written on cb0");
        // And back: cb1 updates, cb0 observes.
        c.write_bytes(SimTime::from_millis(2), 1, pid, base, b"updated on cb1")
            .unwrap();
        let got = c
            .read_bytes(SimTime::from_millis(3), 0, pid, base, 14)
            .unwrap();
        assert_eq!(&got, b"updated on cb1");
    }

    #[test]
    fn cross_page_write_spans_pages() {
        let (mut c, pid, base) = functional_cluster();
        let addr = base + PAGE_SIZE - 3; // Straddles a page boundary.
        c.write_bytes(SimTime::ZERO, 0, pid, addr, b"straddle")
            .unwrap();
        let got = c
            .read_bytes(SimTime::from_millis(1), 1, pid, addr, 8)
            .unwrap();
        assert_eq!(&got, b"straddle");
    }

    #[test]
    fn permission_enforced_between_processes() {
        let mut c = MindCluster::new(MindConfig::small());
        let p1 = c.exec().unwrap();
        let p2 = c.exec().unwrap();
        let base = c.mmap(p1, 4096).unwrap();
        assert!(c
            .access_as(SimTime::ZERO, 0, p1, base, AccessKind::Write)
            .is_ok());
        let err = c
            .access_as(SimTime::ZERO, 0, p2, base, AccessKind::Read)
            .unwrap_err();
        assert_eq!(err, AccessError::PermissionDenied);
    }

    #[test]
    fn read_only_vma_rejects_writes() {
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        let vma = c.mmap_with(pid, 4096, PermClass::ReadOnly).unwrap();
        assert!(c
            .access_as(SimTime::ZERO, 0, pid, vma.base, AccessKind::Read)
            .is_ok());
        assert_eq!(
            c.access_as(SimTime::ZERO, 0, pid, vma.base, AccessKind::Write)
                .unwrap_err(),
            AccessError::PermissionDenied
        );
    }

    #[test]
    fn trace_interface_uses_first_process() {
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        let base = c.mmap(pid, 1 << 16).unwrap();
        let out = MemorySystem::access(&mut c, SimTime::ZERO, 0, base, AccessKind::Read);
        assert!(out.remote, "first touch faults");
        let out = MemorySystem::access(&mut c, SimTime::from_micros(20), 0, base, AccessKind::Read);
        assert!(!out.remote, "second touch hits the cache");
        assert_eq!(c.metrics().get("accesses"), 2);
    }

    #[test]
    fn epochs_fire_during_accesses() {
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        let base = c.mmap(pid, 1 << 16).unwrap();
        c.access_as(SimTime::ZERO, 0, pid, base, AccessKind::Read)
            .unwrap();
        // Jump past several epoch boundaries.
        c.access_as(SimTime::from_millis(350), 0, pid, base, AccessKind::Read)
            .unwrap();
        assert!(c.splitter().epochs_run() >= 3);
        assert!(!c.directory_series().points().is_empty());
    }

    #[test]
    fn migration_preserves_contents() {
        let (mut c, pid, base) = functional_cluster();
        c.write_bytes(SimTime::ZERO, 0, pid, base, b"premigration")
            .unwrap();
        // Move the vma's first 64 KB to memory blade 1 at offset 32 MB...
        // within capacity (the small config has 64 MB blades).
        c.migrate(SimTime::from_millis(1), base, 1 << 16, 1, 1 << 25)
            .unwrap();
        // NOTE: migration moves the *mapping*; in a real system the pages
        // would be copied. The model reads the destination, which is fresh
        // (zeroed) — verify the mapping moved and access still works.
        let out = c
            .access_as(SimTime::from_millis(2), 1, pid, base, AccessKind::Read)
            .unwrap();
        assert!(out.remote);
        assert!(c.match_action_rules() > 0);
    }

    #[test]
    fn memory_utilization_tracks_allocation() {
        let mut c = MindCluster::new(MindConfig::small());
        assert_eq!(c.memory_utilization(), 0.0);
        let pid = c.exec().unwrap();
        // Small config: 2 blades x 64 MB; a 32 MB vma is 1/4 of capacity.
        let base = c.mmap(pid, 1 << 25).unwrap();
        assert!((c.memory_utilization() - 0.25).abs() < 1e-9);
        c.munmap(SimTime::ZERO, pid, base).unwrap();
        assert_eq!(c.memory_utilization(), 0.0);
    }

    #[test]
    fn protection_entries_reclaimed_on_exit() {
        let mut c = MindCluster::new(MindConfig::small());
        let pid = c.exec().unwrap();
        c.mmap(pid, 1 << 16).unwrap();
        c.mmap(pid, 1 << 20).unwrap();
        assert!(c.protection_entries_for(pid) >= 2);
        c.exit(SimTime::ZERO, pid).unwrap();
        assert_eq!(c.protection_entries_for(pid), 0, "TCAM reclaimed");
    }

    /// The default NIC gate is the CX-5 calibration, and it is inert for
    /// every committed window depth (≤ 16): a single-blade window-16
    /// batch runs byte-identically with the calibrated and unbounded
    /// queues, because the slot pool already caps same-blade in-flight at
    /// the adapter's own limit.
    #[test]
    fn default_nic_depth_is_cx5_and_inert_within_window() {
        assert_eq!(MindConfig::default().nic_depth, CX5_NIC_DEPTH);
        let run = |nic_depth: u32| {
            let mut cfg = MindConfig::small();
            cfg.nic_depth = nic_depth;
            let mut c = MindCluster::new(cfg);
            let pid = c.exec().unwrap();
            let base = c.mmap(pid, 1 << 22).unwrap();
            let mut batch = OpBatch::fixed().with_window(16);
            for i in 0..64u64 {
                batch.push(crate::system::MemOp {
                    at: SimTime::from_nanos(i * 10),
                    blade: 0,
                    pdid: None,
                    vaddr: base + (((i * 37) % 1024) << 12),
                    kind: if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                });
            }
            c.run_batch(SimTime::ZERO, &mut batch);
            (0..batch.len())
                .map(|i| (batch.op(i).at, batch.outcome(i).latency.total()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(CX5_NIC_DEPTH), run(0));
    }

    #[test]
    fn metrics_include_rule_counts() {
        let (c, _pid, _base) = functional_cluster();
        let m = c.metrics_snapshot();
        assert!(m.get("match_action_rules") >= 3, "2 blade ranges + 1 vma");
        assert_eq!(m.get("syscalls"), 2, "exec + mmap");
    }
}
