//! Global memory allocation at the switch control plane.
//!
//! Because the virtual address space is range-partitioned across memory
//! blades with a one-to-one VA↔PA mapping per blade (§4.1), allocation
//! decides both placement and addressing:
//!
//! - **Balanced placement**: the control plane tracks total allocation per
//!   blade and places each new allocation on the least-loaded blade,
//!   yielding near-optimal balance (Figure 8 right).
//! - **Low fragmentation**: within a blade, a classic first-fit allocator
//!   over the blade's contiguous range.
//! - **TCAM-friendly sizing**: only power-of-two sized, size-aligned areas
//!   are carved so each vma is one TCAM protection entry (§4.2).

use std::collections::{BTreeMap, HashMap};

use crate::addr::{pow2_alloc_size, Vma, VA_BASE};

/// First-fit allocator over one memory blade's contiguous range.
#[derive(Debug, Clone)]
pub struct BladeAllocator {
    capacity: u64,
    /// Free extents: offset → length, disjoint and coalesced.
    free: BTreeMap<u64, u64>,
    allocated: u64,
}

impl BladeAllocator {
    /// Creates an allocator over `[0, capacity)`.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        BladeAllocator {
            capacity,
            free,
            allocated: 0,
        }
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Blade capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `size` bytes aligned to `size` (power of two), first-fit.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        assert!(size.is_power_of_two(), "allocation size must be pow2");
        let candidate = self.free.iter().find_map(|(&off, &len)| {
            let aligned = off.next_multiple_of(size);
            let pad = aligned - off;
            if len >= pad + size {
                Some((off, len, aligned))
            } else {
                None
            }
        });
        let (off, len, aligned) = candidate?;
        self.free.remove(&off);
        if aligned > off {
            self.free.insert(off, aligned - off);
        }
        let tail_start = aligned + size;
        let tail_len = (off + len) - tail_start;
        if tail_len > 0 {
            self.free.insert(tail_start, tail_len);
        }
        self.allocated += size;
        Some(aligned)
    }

    /// Frees `[offset, offset + size)`, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps a free extent (double free).
    pub fn free(&mut self, offset: u64, size: u64) {
        let mut start = offset;
        let mut len = size;
        // Coalesce with predecessor.
        if let Some((&poff, &plen)) = self.free.range(..offset).next_back() {
            assert!(poff + plen <= offset, "double free at {offset:#x}");
            if poff + plen == offset {
                self.free.remove(&poff);
                start = poff;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&noff, &nlen)) = self.free.range(offset..).next() {
            assert!(offset + size <= noff, "double free at {offset:#x}");
            if offset + size == noff {
                self.free.remove(&noff);
                len += nlen;
            }
        }
        self.free.insert(start, len);
        self.allocated -= size;
    }

    /// Number of free extents (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// Largest free extent.
    pub fn largest_free(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }
}

/// A completed allocation record.
#[derive(Debug, Clone, Copy)]
struct Allocation {
    blade: u16,
    size: u64,
}

/// The rack-wide allocator: balanced placement across blades plus per-blade
/// first-fit.
#[derive(Debug, Clone)]
pub struct GlobalAllocator {
    blades: Vec<BladeAllocator>,
    blade_span: u64,
    allocations: HashMap<u64, Allocation>,
}

impl GlobalAllocator {
    /// Creates an allocator over `n_blades` memory blades of `blade_span`
    /// bytes each. The virtual address space is laid out as
    /// `VA_BASE + blade * blade_span + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `blade_span` is not a power of two (keeps blade-range
    /// translation a single shift/mask, as a switch pipeline requires).
    pub fn new(n_blades: u16, blade_span: u64) -> Self {
        assert!(blade_span.is_power_of_two(), "blade span must be pow2");
        GlobalAllocator {
            blades: (0..n_blades)
                .map(|_| BladeAllocator::new(blade_span))
                .collect(),
            blade_span,
            allocations: HashMap::new(),
        }
    }

    /// Bytes of virtual address space per blade.
    pub fn blade_span(&self) -> u64 {
        self.blade_span
    }

    /// Number of memory blades.
    pub fn n_blades(&self) -> u16 {
        self.blades.len() as u16
    }

    /// Allocates a vma of at least `len` bytes on the least-loaded blade
    /// that fits; returns `None` when no blade can satisfy it (ENOMEM).
    pub fn alloc(&mut self, len: u64) -> Option<Vma> {
        self.alloc_in(len, 0..self.n_blades())
    }

    /// Allocates like [`GlobalAllocator::alloc`] but confined to the memory
    /// blades in `blades`: balanced placement runs over that slice only, so
    /// placement inside the slice is independent of load on blades outside
    /// it. A partitioned simulation uses this to pin each partition's
    /// regions onto its own blade slice (region ownership); `alloc` is the
    /// whole-rack special case.
    pub fn alloc_in(&mut self, len: u64, blades: std::ops::Range<u16>) -> Option<Vma> {
        assert!(
            blades.end <= self.n_blades(),
            "blade slice {blades:?} exceeds rack ({} blades)",
            self.n_blades()
        );
        let size = pow2_alloc_size(len);
        // Least-allocated blade first (P2: global view); ties by index for
        // determinism.
        let mut order: Vec<u16> = blades.collect();
        order.sort_by_key(|&b| (self.blades[b as usize].allocated(), b));
        for blade in order {
            if let Some(offset) = self.blades[blade as usize].alloc(size) {
                let base = VA_BASE + blade as u64 * self.blade_span + offset;
                self.allocations.insert(base, Allocation { blade, size });
                return Some(Vma::new(base, len));
            }
        }
        None
    }

    /// Frees the vma based at `base`; returns `false` if unknown.
    pub fn dealloc(&mut self, base: u64) -> bool {
        let Some(a) = self.allocations.remove(&base) else {
            return false;
        };
        let offset = base - VA_BASE - a.blade as u64 * self.blade_span;
        self.blades[a.blade as usize].free(offset, a.size);
        true
    }

    /// The power-of-two size actually reserved for the vma at `base`.
    pub fn reserved_size(&self, base: u64) -> Option<u64> {
        self.allocations.get(&base).map(|a| a.size)
    }

    /// The memory blade owning virtual address `vaddr` under the range
    /// partition (independent of whether it is allocated).
    pub fn blade_of(&self, vaddr: u64) -> Option<u16> {
        if vaddr < VA_BASE {
            return None;
        }
        let blade = (vaddr - VA_BASE) / self.blade_span;
        if blade < self.blades.len() as u64 {
            Some(blade as u16)
        } else {
            None
        }
    }

    /// Bytes allocated per blade (for Jain's fairness, Figure 8 right).
    pub fn allocated_per_blade(&self) -> Vec<u64> {
        self.blades.iter().map(|b| b.allocated()).collect()
    }

    /// Total live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocations.len()
    }

    /// Per-blade fragment counts.
    pub fn fragments_per_blade(&self) -> Vec<usize> {
        self.blades.iter().map(|b| b.fragments()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_sim::stats::jains_index;

    #[test]
    fn first_fit_allocates_lowest_fit() {
        let mut b = BladeAllocator::new(1 << 20);
        let a = b.alloc(4096).unwrap();
        let c = b.alloc(4096).unwrap();
        assert_eq!(a, 0);
        assert_eq!(c, 4096);
        b.free(a, 4096);
        // First fit reuses the hole at 0.
        assert_eq!(b.alloc(4096).unwrap(), 0);
    }

    #[test]
    fn alignment_respected() {
        let mut b = BladeAllocator::new(1 << 20);
        b.alloc(4096).unwrap(); // [0, 4K)
        let big = b.alloc(1 << 16).unwrap(); // Needs 64K alignment.
        assert_eq!(big % (1 << 16), 0);
        assert_eq!(big, 1 << 16, "first aligned spot");
        // The gap [4K, 64K) remains free for small allocations.
        assert_eq!(b.alloc(4096).unwrap(), 4096);
    }

    #[test]
    fn free_coalesces_neighbours() {
        let mut b = BladeAllocator::new(1 << 16);
        let a = b.alloc(4096).unwrap();
        let c = b.alloc(4096).unwrap();
        let d = b.alloc(4096).unwrap();
        b.free(a, 4096);
        b.free(d, 4096);
        assert_eq!(b.fragments(), 2, "hole at 0 + tail");
        b.free(c, 4096);
        assert_eq!(b.fragments(), 1, "all free space coalesced");
        assert_eq!(b.largest_free(), 1 << 16);
        assert_eq!(b.allocated(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut b = BladeAllocator::new(1 << 16);
        let a = b.alloc(4096).unwrap();
        b.free(a, 4096);
        b.free(a, 4096);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = BladeAllocator::new(8192);
        assert!(b.alloc(4096).is_some());
        assert!(b.alloc(4096).is_some());
        assert!(b.alloc(4096).is_none());
    }

    #[test]
    fn global_alloc_balances_across_blades() {
        let mut g = GlobalAllocator::new(4, 1 << 30);
        // 64 equal allocations spread evenly.
        for _ in 0..64 {
            g.alloc(1 << 20).unwrap();
        }
        let per: Vec<f64> = g.allocated_per_blade().iter().map(|&x| x as f64).collect();
        let fairness = jains_index(&per);
        assert!(fairness > 0.999, "fairness {fairness}");
    }

    #[test]
    fn global_alloc_balances_mixed_sizes() {
        let mut g = GlobalAllocator::new(4, 1 << 30);
        let sizes = [1 << 20, 1 << 24, 1 << 16, 1 << 22, 1 << 24, 1 << 20];
        for (i, &s) in sizes.iter().cycle().take(60).enumerate() {
            let _ = i;
            g.alloc(s).unwrap();
        }
        let per: Vec<f64> = g.allocated_per_blade().iter().map(|&x| x as f64).collect();
        assert!(jains_index(&per) > 0.95);
    }

    #[test]
    fn va_layout_is_range_partitioned() {
        let mut g = GlobalAllocator::new(2, 1 << 30);
        let v1 = g.alloc(4096).unwrap();
        let v2 = g.alloc(4096).unwrap();
        // Balanced placement sends the second allocation to the other blade.
        assert_eq!(g.blade_of(v1.base), Some(0));
        assert_eq!(g.blade_of(v2.base), Some(1));
        assert_eq!(v2.base - v1.base, 1 << 30);
        assert_eq!(g.blade_of(VA_BASE - 1), None);
        assert_eq!(g.blade_of(VA_BASE + (2u64 << 30)), None);
    }

    #[test]
    fn alloc_in_confines_and_balances_within_slice() {
        let mut g = GlobalAllocator::new(4, 1 << 30);
        // Load blade 2 so the global least-loaded choice would avoid it...
        g.alloc_in(1 << 24, 2..3).unwrap();
        // ...yet slice-confined allocation must stay inside [2, 4) and
        // balance within it, ignoring the empty blades 0 and 1.
        let a = g.alloc_in(4096, 2..4).unwrap();
        let b = g.alloc_in(4096, 2..4).unwrap();
        assert_eq!(g.blade_of(a.base), Some(3), "least loaded in slice");
        assert_eq!(g.blade_of(b.base), Some(3), "still lighter than blade 2");
        let c = g.alloc_in(1 << 24, 2..4).unwrap();
        assert_eq!(g.blade_of(c.base), Some(3));
        let d = g.alloc_in(4096, 2..4).unwrap();
        assert_eq!(g.blade_of(d.base), Some(2), "balance flips inside slice");
        assert_eq!(g.allocated_per_blade()[..2], [0, 0], "slice confined");
    }

    #[test]
    #[should_panic(expected = "blade slice")]
    fn alloc_in_rejects_out_of_range_slice() {
        let mut g = GlobalAllocator::new(2, 1 << 20);
        g.alloc_in(4096, 1..3);
    }

    #[test]
    fn dealloc_returns_space() {
        let mut g = GlobalAllocator::new(1, 1 << 20);
        let v = g.alloc(1 << 19).unwrap();
        assert!(g.alloc(1 << 20).is_none(), "not enough room");
        assert!(g.dealloc(v.base));
        assert!(!g.dealloc(v.base), "second dealloc is unknown");
        assert!(g.alloc(1 << 20).is_some(), "full blade available again");
    }

    #[test]
    fn reserved_size_is_pow2_rounded() {
        let mut g = GlobalAllocator::new(1, 1 << 30);
        let v = g.alloc(5000).unwrap();
        assert_eq!(v.len, 5000, "vma keeps requested length");
        assert_eq!(g.reserved_size(v.base), Some(8192));
        assert_eq!(g.live_allocations(), 1);
    }

    #[test]
    fn vma_base_is_size_aligned_for_tcam() {
        let mut g = GlobalAllocator::new(2, 1 << 30);
        for len in [4096u64, 10_000, 1 << 20, 3 << 20] {
            let v = g.alloc(len).unwrap();
            let size = pow2_alloc_size(len);
            assert_eq!(v.base % size, 0, "base aligned to reserved size");
        }
    }

    #[test]
    fn allocations_never_overlap() {
        let mut g = GlobalAllocator::new(2, 1 << 24);
        let mut vmas: Vec<Vma> = Vec::new();
        for len in [4096u64, 8192, 4096, 1 << 20, 9000, 4096, 1 << 16] {
            let v = g.alloc(len).unwrap();
            let size = pow2_alloc_size(len);
            let reserved = Vma::new(v.base, size);
            for prev in &vmas {
                assert!(!reserved.overlaps(prev), "{reserved:?} vs {prev:?}");
            }
            vmas.push(reserved);
        }
    }
}
