//! The global virtual address space and its range partitioning.
//!
//! MIND uses a *single* virtual address space shared by all processes, range
//! partitioned across memory blades so that the whole space maps to a
//! contiguous physical range per blade — one translation entry per memory
//! blade (paper §4.1). Isolation between processes comes from protection
//! domains (§4.2), not from separate address spaces.

use mind_blade::{PAGE_SHIFT, PAGE_SIZE};

/// Base of the allocatable global virtual address space.
///
/// Kept away from 0 so null-ish addresses are always faults, and 4 KB
/// aligned like everything else.
pub const VA_BASE: u64 = 0x0000_1000_0000_0000;

/// A physical address: a memory blade plus a byte offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysAddr {
    /// Owning memory blade.
    pub blade: u16,
    /// Byte offset within the blade.
    pub offset: u64,
}

impl PhysAddr {
    /// The physical page index within the blade.
    pub fn page(&self) -> u64 {
        self.offset >> PAGE_SHIFT
    }
}

/// A virtual memory area: the unit of allocation and protection (§4.1).
///
/// Identified by base address and length, e.g. `<0x00007f84b862d000,
/// 0x400>`. MIND's control plane only creates power-of-two aligned vmas so
/// each fits a single TCAM protection entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vma {
    /// Base virtual address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Vma {
    /// Creates a vma.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(len > 0, "empty vma");
        Vma { base, len }
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Whether `addr` falls inside the vma.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end()).contains(&addr)
    }

    /// Whether two vmas overlap.
    pub fn overlaps(&self, other: &Vma) -> bool {
        self.base < other.end() && other.base < self.end()
    }

    /// Number of pages spanned (length rounded up).
    pub fn pages(&self) -> u64 {
        (self.len + PAGE_SIZE - 1) >> PAGE_SHIFT
    }

    /// Iterates the page-aligned base addresses covered by the vma.
    pub fn page_bases(&self) -> impl Iterator<Item = u64> {
        let start = self.base >> PAGE_SHIFT;
        let end = (self.end() + PAGE_SIZE - 1) >> PAGE_SHIFT;
        (start..end).map(|p| p << PAGE_SHIFT)
    }
}

/// Rounds `len` up to the next power of two (minimum one page).
///
/// MIND's control plane performs only power-of-two sized, size-aligned
/// virtual allocations so each region is a single TCAM entry (§4.2); glibc
/// requests are mostly power-of-two sized anyway.
pub fn pow2_alloc_size(len: u64) -> u64 {
    len.max(PAGE_SIZE).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vma_bounds() {
        let v = Vma::new(0x1000, 0x2000);
        assert_eq!(v.end(), 0x3000);
        assert!(v.contains(0x1000));
        assert!(v.contains(0x2FFF));
        assert!(!v.contains(0x3000));
        assert!(!v.contains(0xFFF));
    }

    #[test]
    fn vma_overlap() {
        let a = Vma::new(0x1000, 0x1000);
        let b = Vma::new(0x1800, 0x1000);
        let c = Vma::new(0x2000, 0x1000);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching vmas do not overlap");
    }

    #[test]
    fn vma_pages() {
        assert_eq!(Vma::new(0x1000, 1).pages(), 1);
        assert_eq!(Vma::new(0x1000, 4096).pages(), 1);
        assert_eq!(Vma::new(0x1000, 4097).pages(), 2);
        let bases: Vec<u64> = Vma::new(0x1000, 0x2000).page_bases().collect();
        assert_eq!(bases, vec![0x1000, 0x2000]);
    }

    #[test]
    #[should_panic(expected = "empty vma")]
    fn empty_vma_rejected() {
        Vma::new(0x1000, 0);
    }

    #[test]
    fn pow2_alloc_sizes() {
        assert_eq!(pow2_alloc_size(1), PAGE_SIZE);
        assert_eq!(pow2_alloc_size(4096), 4096);
        assert_eq!(pow2_alloc_size(4097), 8192);
        assert_eq!(pow2_alloc_size(1 << 20), 1 << 20);
        assert_eq!(pow2_alloc_size((1 << 20) + 1), 1 << 21);
    }

    #[test]
    fn phys_addr_page() {
        let pa = PhysAddr {
            blade: 3,
            offset: 0x5432,
        };
        assert_eq!(pa.page(), 5);
    }
}
