//! The cluster-wide event-driven issue engine.
//!
//! The turnwise runner drives every compute thread through lockstep
//! *turns*: each turn issues one batch per thread and drains it before the
//! next begins, so overlap ([`InFlightWindow`]) only ever forms *within*
//! one thread's batch. Real MIND blades do not run in lockstep — a blade
//! whose fault is in flight does not stop its neighbours from issuing, and
//! the fabric keeps round trips from *every* blade outstanding at once
//! (paper §3, §7). This module generalizes the window's arbitration from
//! per-batch to per-cluster: issue readiness becomes an event in a
//! deterministic [`EventQueue`], every source (compute thread) is a
//! concurrent stream, and three gates arbitrate each issue —
//!
//! 1. **slot pool** — at most `window × sources` operations in flight
//!    cluster-wide (the per-source window, pooled);
//! 2. **region serialization** — an op touching the directory region of an
//!    in-flight transition waits for that transition, now enforced across
//!    *all* sources rather than within one batch;
//! 3. **per-NIC bandwidth** — each compute blade's RNIC keeps at most
//!    `nic_depth` operations outstanding (`0` = unbounded).
//!
//! The engine itself is pure scheduling: it owns the pooled window, the
//! ready queue, and per-source bookkeeping, while the protocol work stays
//! in [`MindCluster::issue_clustered`](crate::cluster::MindCluster), which
//! consults the gates and either issues at the popped virtual time or
//! returns a *gated* step. A gated source is re-scheduled at the exact
//! gate-release time (a completion of an already-admitted op, so virtual
//! time strictly advances and the loop terminates); ties pop in schedule
//! order, which keeps the whole interleaving deterministic for a fixed
//! source count regardless of OS threads or sharding.
//!
//! Determinism contract: cluster mode is opt-in (`Concurrency::Cluster`
//! in `mind_workloads`), and with `window <= 1` the runner keeps the
//! turnwise discipline — the serialized window=1 replay stays the
//! byte-identical reference.

use mind_sim::event::Scheduled;
use mind_sim::{EventQueue, SimTime};

use crate::system::AccessOutcome;
use crate::window::InFlightWindow;

/// The outcome of offering one source's next operation to the engine.
#[derive(Debug, Clone, Copy)]
pub enum ClusterStep {
    /// The operation issued at the popped time.
    Issued {
        /// The access outcome, with hidden fabric time already attributed
        /// to `latency.overlapped` against the pool's frontier.
        outcome: AccessOutcome,
        /// When the operation completes (virtual time).
        complete_at: SimTime,
        /// The directory region `(base, log2 size)` this op transitioned,
        /// if it consulted the switch — the span the region gate
        /// serializes cluster-wide until `complete_at` (`None` for local
        /// hits, which hold no region).
        region: Option<(u64, u8)>,
    },
    /// A gate held the operation; the source must be re-offered at
    /// `until`.
    Gated {
        /// The earliest time every gate is clear (strictly in the future).
        until: SimTime,
        /// The share of the wait attributable to the per-NIC bandwidth
        /// gate alone — the extra delay beyond what the slot pool and
        /// region serialization already imposed ([`SimTime::ZERO`] when
        /// the NIC was not the binding constraint).
        nic_stall: SimTime,
    },
}

/// Cluster-wide issue state: the pooled in-flight window plus a
/// deterministic ready queue of sources.
#[derive(Debug)]
pub struct ClusterEngine {
    window: InFlightWindow,
    queue: EventQueue<u32>,
    /// Per-source time the source first became ready (ungated) for its
    /// current op — survives gated deferrals so stall spans start where
    /// the wait actually began.
    ready0: Vec<SimTime>,
    /// Scratch buffer for same-timestamp batches ([`EventQueue::pop_batch_into`]
    /// keeps the hot loop allocation-free).
    scratch: Vec<Scheduled<u32>>,
    cursor: usize,
}

impl ClusterEngine {
    /// An engine for `sources` concurrent issue streams, each with a
    /// per-source window of `window` (pooled: the cluster-wide in-flight
    /// cap is `window × sources`), over blades whose RNICs hold
    /// `nic_depth` ops each (`0` = unbounded).
    pub fn new(window: u32, nic_depth: u32, sources: u32) -> Self {
        let sources = sources.max(1) as usize;
        let pool = (window.max(1) as usize) * sources;
        ClusterEngine {
            window: InFlightWindow::new(pool).with_nic_depth(nic_depth),
            queue: EventQueue::new(),
            ready0: vec![SimTime::ZERO; sources],
            scratch: Vec::new(),
            cursor: 0,
        }
    }

    /// The number of issue streams the engine arbitrates.
    pub fn sources(&self) -> u32 {
        self.ready0.len() as u32
    }

    /// The pooled in-flight window (slot, region, and NIC gates).
    pub fn window(&self) -> &InFlightWindow {
        &self.window
    }

    /// Mutable access for the issuing system (retire/admit).
    pub fn window_mut(&mut self) -> &mut InFlightWindow {
        &mut self.window
    }

    /// Starts a fresh scheduling phase (e.g. warmup → measured): drops any
    /// pending readiness events and resets the clock so sources can be
    /// re-seeded at their resume times, which may precede the old queue's
    /// final pop. In-flight state and the overlap frontier persist — a
    /// phase boundary is an accounting boundary, not a fabric drain.
    pub fn begin_phase(&mut self) {
        self.queue = EventQueue::new();
        self.scratch.clear();
        self.cursor = 0;
    }

    /// Declares `source` ready to issue its next operation at `at`,
    /// starting a new ungated-wait span ([`ClusterEngine::ready0`]).
    pub fn seed(&mut self, at: SimTime, source: u32) {
        self.ready0[source as usize] = at;
        self.queue.schedule(at, source);
    }

    /// Re-schedules a gated `source` at `until`, preserving the start of
    /// its wait span.
    pub fn defer(&mut self, until: SimTime, source: u32) {
        self.queue.schedule(until, source);
    }

    /// Pops the next ready source and the virtual time it pops at.
    /// Same-timestamp sources drain in schedule order via one batched pop.
    pub fn next_ready(&mut self) -> Option<(SimTime, u32)> {
        if self.cursor == self.scratch.len() {
            self.queue.pop_batch_into(&mut self.scratch);
            self.cursor = 0;
        }
        let ev = self.scratch.get(self.cursor)?;
        self.cursor += 1;
        Some((ev.at, ev.event))
    }

    /// The timestamp of the next readiness event, if any (scratch-aware:
    /// sources already drained into the current batch count).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.scratch
            .get(self.cursor)
            .map(|ev| ev.at)
            .or_else(|| self.queue.peek_time())
    }

    /// Whether no source is pending.
    pub fn is_idle(&self) -> bool {
        self.cursor == self.scratch.len() && self.queue.is_empty()
    }

    /// When `source` first became ready for its current operation.
    pub fn ready0(&self, source: u32) -> SimTime {
        self.ready0[source as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pool_depth_is_window_times_sources() {
        let eng = ClusterEngine::new(4, 2, 3);
        assert_eq!(eng.sources(), 3);
        assert_eq!(eng.window().depth(), 12);
        assert_eq!(eng.window().nic_depth(), 2);
        // Degenerate parameters clamp rather than collapse.
        assert_eq!(ClusterEngine::new(0, 0, 0).window().depth(), 1);
    }

    #[test]
    fn sources_pop_in_time_then_seed_order() {
        let mut eng = ClusterEngine::new(1, 0, 3);
        eng.seed(ns(20), 2);
        eng.seed(ns(10), 0);
        eng.seed(ns(10), 1);
        assert_eq!(eng.peek_time(), Some(ns(10)));
        assert_eq!(eng.next_ready(), Some((ns(10), 0)));
        assert_eq!(eng.peek_time(), Some(ns(10)), "scratch-aware peek");
        assert_eq!(eng.next_ready(), Some((ns(10), 1)));
        assert_eq!(eng.next_ready(), Some((ns(20), 2)));
        assert!(eng.next_ready().is_none());
        assert!(eng.is_idle());
    }

    #[test]
    fn ready0_survives_deferral() {
        let mut eng = ClusterEngine::new(2, 0, 2);
        eng.seed(ns(5), 0);
        let (now, src) = eng.next_ready().unwrap();
        assert_eq!((now, src), (ns(5), 0));
        eng.defer(ns(40), src);
        assert_eq!(eng.ready0(0), ns(5), "wait span anchored at first ready");
        assert_eq!(eng.next_ready(), Some((ns(40), 0)));
        eng.seed(ns(50), 0);
        assert_eq!(eng.ready0(0), ns(50), "re-seeding starts a new span");
    }

    #[test]
    fn begin_phase_resets_the_clock_but_not_the_window() {
        let mut eng = ClusterEngine::new(1, 0, 2);
        eng.seed(ns(100), 0);
        eng.next_ready();
        eng.window_mut().admit(ns(250), None, 0);
        eng.begin_phase();
        assert!(eng.is_idle());
        // Re-seeding *before* the old queue's last pop must not panic.
        eng.seed(ns(30), 1);
        assert_eq!(eng.next_ready(), Some((ns(30), 1)));
        assert_eq!(eng.window().in_flight(), 1, "in-flight state persists");
        assert_eq!(eng.window().frontier(), ns(250));
    }
}
