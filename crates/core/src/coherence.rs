//! The in-network MSI coherence protocol (paper §4.3.2, §6.3).
//!
//! The switch data plane intercepts page-fault RDMA requests addressed by
//! virtual address, runs protection + translation + the directory state
//! machine (two MAUs and a recirculation, Figure 4), multicasts invalidation
//! requests with sharer-list egress pruning, and forwards the fetch to the
//! right memory blade. Placing the directory *in* the data path gives:
//!
//! - common transitions (I→S/M, S→S, S→M) one round trip (~9 µs),
//! - the expensive M→S/M transitions two sequential round trips (~18 µs),
//!
//! matching Figure 7 (left). The engine also accounts false invalidations —
//! dirty pages flushed only because they share a directory region with the
//! requested page (§4.3.1) — which feed the bounded-splitting algorithm.

use mind_blade::{
    page_base, DramCache, InvalidationOutcome, InvalidationQueue, MemoryBlade, PageData,
    TaggedLookup, PAGE_SIZE,
};
use mind_net::fabric::Fabric;
use mind_net::link::LatencyConfig;
use mind_net::node::{BladeSet, NodeId};
use mind_net::packet::{Packet, PacketKind};
use mind_net::reliability::AckTracker;
use mind_obs::{EventKind, TraceBuf};
use mind_sim::stats::Metrics;
use mind_sim::SimTime;
use mind_switch::pipeline::Pipeline;
use mind_switch::sram::SramFull;
use mind_switch::tcam::TcamEntry;

use crate::addr::PhysAddr;
use crate::directory::{MsiState, RegionDirectory};
use crate::protect::{Pdid, PermClass, ProtectionTable};
use crate::stt::{FetchSource, InvalScope, Protocol, Role, SttTable};
use crate::system::{AccessKind, AccessOutcome, ConsistencyModel, LatencyBreakdown};
use crate::translate::TranslationTable;

/// Why an access was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// `<PDID, vaddr>` failed the protection check (or no entry exists).
    PermissionDenied,
    /// The address does not translate to any memory blade.
    BadAddress,
    /// The target compute blade has been failed by fault injection.
    BladeFailed,
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::PermissionDenied => write!(f, "permission denied"),
            AccessError::BadAddress => write!(f, "bad address"),
            AccessError::BladeFailed => write!(f, "compute blade failed"),
        }
    }
}

impl std::error::Error for AccessError {}

/// A resolved, in-flight access: the **issue phase**'s product.
///
/// The issue phase runs the whole switch data path — protection,
/// translation, the directory state machine, invalidation rounds — and
/// commits the resulting state transitions (the recirculated directory
/// update, Figure 4 #3), exactly as the monolithic access path always did.
/// What it *returns* is new: an explicit completion record. The
/// **completion phase** is the caller's — retiring the record from an
/// in-flight window ([`crate::window::InFlightWindow`]), which is what
/// lets up to `W` independent faults overlap their fabric round trips
/// while [`region`](IssuedAccess::region) lets same-region transitions
/// serialize at issue.
#[derive(Debug, Clone, Copy)]
pub struct IssuedAccess {
    /// Latency attribution and protocol side effects, as the scalar path
    /// reports them.
    pub outcome: AccessOutcome,
    /// When the operation issued.
    pub issued_at: SimTime,
    /// When the operation completes (`issued_at` plus the outcome's total
    /// latency): the time its in-flight slot frees.
    pub complete_at: SimTime,
    /// The directory region `(base, size_log2)` this access transitioned,
    /// or `None` when it touched no directory state (local hits,
    /// cross-domain remaps, cache bypasses).
    pub region: Option<(u64, u8)>,
}

impl IssuedAccess {
    fn new(issued_at: SimTime, outcome: AccessOutcome, region: Option<(u64, u8)>) -> Self {
        IssuedAccess {
            outcome,
            issued_at,
            complete_at: issued_at + outcome.latency.total(),
            region,
        }
    }
}

/// Engine tunables.
#[derive(Debug, Clone, Copy)]
pub struct CoherenceConfig {
    /// Consistency model at the compute blades (§6.1).
    pub consistency: ConsistencyModel,
    /// The coherence protocol's state-transition table (MSI in the paper;
    /// MESI/MOESI are the §8 extensions).
    pub protocol: Protocol,
    /// Whether page data is physically carried (functional mode) or elided
    /// (pure performance simulation).
    pub carry_data: bool,
    /// ACK timeout for invalidation rounds (§4.4).
    pub ack_timeout: SimTime,
    /// Retransmissions before the reset protocol fires (§4.4).
    pub max_retries: u32,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            consistency: ConsistencyModel::Tso,
            protocol: Protocol::Msi,
            carry_data: false,
            ack_timeout: SimTime::from_micros(100),
            max_retries: 3,
        }
    }
}

/// Result of one invalidation round.
#[derive(Debug, Clone, Copy, Default)]
struct InvalRound {
    /// When the last ACK reached the switch.
    done_at: SimTime,
    /// Dirty pages flushed across victims.
    flushed: u32,
    /// Of those, false invalidations (not the requested page).
    false_inv: u32,
    /// Invalidation requests delivered.
    requests: u32,
    /// Queue delay of the critical (last-acking) victim.
    crit_queue: SimTime,
    /// TLB shootdown time of the critical victim.
    crit_tlb: SimTime,
    /// Whether the round ended in a reset (§4.4).
    reset: bool,
}

/// The engine's event counters, kept in one struct so the batched datapath
/// can accumulate a batch's deltas aside and flush them in a single merge
/// (identical totals to per-op updates, one memory region touched).
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    accesses: u64,
    local_hits: u64,
    remote_accesses: u64,
    upgrades: u64,
    inval_requests: u64,
    inval_rounds: u64,
    flushed_pages: u64,
    false_invalidations: u64,
    bypasses: u64,
    resets: u64,
    denials: u64,
    async_writes: u64,
}

impl Counters {
    fn merge(&mut self, o: &Counters) {
        self.accesses += o.accesses;
        self.local_hits += o.local_hits;
        self.remote_accesses += o.remote_accesses;
        self.upgrades += o.upgrades;
        self.inval_requests += o.inval_requests;
        self.inval_rounds += o.inval_rounds;
        self.flushed_pages += o.flushed_pages;
        self.false_invalidations += o.false_invalidations;
        self.bypasses += o.bypasses;
        self.resets += o.resets;
        self.denials += o.denials;
        self.async_writes += o.async_writes;
    }
}

/// Per-batch lookaside state for the op-batch datapath (§6.3's "the whole
/// function is a table", amortized): TCAM and directory resolutions made
/// once per batch instead of once per op, plus the batch's pending metric
/// deltas. Installed by [`CoherenceEngine::begin_batch`], dropped (and
/// flushed) by [`CoherenceEngine::end_batch`]. Every memoization here is
/// *semantics-preserving*: the scalar and batched paths produce identical
/// per-op outcomes and metrics.
#[derive(Debug, Default)]
struct BatchLookaside {
    /// Resolved protection grants `(pdid, entry, class)`. Valid for the
    /// whole batch: the data plane never mutates the protection TCAM, and
    /// a domain's grants are disjoint (one per vma, buddies coalesced), so
    /// the covering entry is unique — re-checked by a debug assertion.
    prot: Vec<(Pdid, TcamEntry, PermClass)>,
    /// Whether the outlier translation TCAM was empty at batch start (it
    /// cannot gain entries mid-batch: outliers install only through the
    /// control plane). `true` lets every translation in the batch use the
    /// pure range-partition arithmetic, skipping the TCAM walk.
    no_outliers: bool,
    /// Resolved outlier-era translations (`page` → physical), sorted by
    /// page; used only when outliers exist.
    xlate: Vec<(u64, PhysAddr)>,
    /// Last resolved directory region `(base, size_log2)`, valid while the
    /// directory's region-map generation is unchanged.
    region: Option<(u64, u8)>,
    /// Directory generation [`BatchLookaside::region`] was resolved at.
    dir_gen: u64,
    /// Metric deltas accumulated during the batch, merged into the live
    /// counters once at batch end.
    pending: Counters,
}

/// The in-network memory management engine: switch data plane + blades.
#[derive(Debug)]
pub struct CoherenceEngine {
    cfg: CoherenceConfig,
    lat: LatencyConfig,
    fabric: Fabric,
    pipeline: Pipeline,
    pub(crate) directory: RegionDirectory,
    pub(crate) translation: TranslationTable,
    pub(crate) protection: ProtectionTable,
    caches: Vec<DramCache>,
    inv_queues: Vec<InvalidationQueue>,
    memory: Vec<MemoryBlade>,
    failed: Vec<bool>,
    /// Per-blade PSO write buffer: completion times of in-flight
    /// asynchronous writes. A bounded store buffer — when full, further
    /// writes stall until the oldest drains (real PSO hardware has finite
    /// store-buffer capacity).
    pso_buffer: Vec<std::collections::VecDeque<SimTime>>,
    /// The materialized state-transition table in the second MAU (§6.3).
    stt: SttTable,
    acks: AckTracker,
    /// Live metric counters (plus the active batch's pending deltas).
    ctrs: Counters,
    /// The active op-batch's lookaside, when one is in flight.
    batch: Option<Box<BatchLookaside>>,
    /// Retired lookaside recycled across batches (keeps its allocations).
    spare_batch: Option<Box<BatchLookaside>>,
    /// Reusable multicast-delivery buffer for invalidation rounds.
    deliveries_scratch: Vec<(u16, SimTime)>,
    /// Reusable invalidation-outcome buffer (per-victim cache scans).
    inval_scratch: InvalidationOutcome,
    /// Deterministic event sink (disabled unless the owning cluster
    /// installs a live one via [`CoherenceEngine::set_trace`]).
    pub(crate) trace: TraceBuf,
}

impl CoherenceEngine {
    /// Builds the engine for a rack.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n_compute: u16,
        n_memory: u16,
        cache_pages: u32,
        blade_span: u64,
        memory_blade_bytes: u64,
        dir_capacity: usize,
        initial_region_log2: u8,
        tcam_capacity: usize,
        lat: LatencyConfig,
        cfg: CoherenceConfig,
    ) -> Self {
        let dir_capacity = if cfg.consistency.infinite_directory() {
            usize::MAX / 2
        } else {
            dir_capacity
        };
        CoherenceEngine {
            cfg,
            lat,
            fabric: Fabric::new(n_compute, n_memory, lat),
            pipeline: Pipeline::new(lat.switch_pipeline, lat.switch_recirculation),
            directory: RegionDirectory::new(dir_capacity, initial_region_log2),
            translation: TranslationTable::new(n_memory, blade_span, tcam_capacity),
            protection: ProtectionTable::new(tcam_capacity),
            caches: (0..n_compute)
                .map(|_| DramCache::new(cache_pages))
                .collect(),
            inv_queues: (0..n_compute).map(|_| InvalidationQueue::new()).collect(),
            memory: (0..n_memory)
                .map(|_| MemoryBlade::new(memory_blade_bytes))
                .collect(),
            failed: vec![false; n_compute as usize],
            pso_buffer: (0..n_compute)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            stt: SttTable::new(cfg.protocol),
            acks: AckTracker::new(cfg.ack_timeout, cfg.max_retries),
            ctrs: Counters::default(),
            batch: None,
            spare_batch: None,
            deliveries_scratch: Vec::new(),
            inval_scratch: InvalidationOutcome::default(),
            trace: TraceBuf::disabled(),
        }
    }

    /// Installs the event sink (called by the owning cluster at build
    /// time; the default is a disabled sink).
    pub fn set_trace(&mut self, trace: TraceBuf) {
        self.trace = trace;
    }

    /// Extracts the recorded trace, leaving the sink live (`None` when
    /// tracing is disabled).
    pub fn take_trace(&mut self) -> Option<mind_obs::TraceData> {
        self.trace.take()
    }

    /// The counter sink: the live counters, or the active batch's pending
    /// deltas (flushed once, at [`CoherenceEngine::end_batch`]).
    #[inline]
    fn ctr(&mut self) -> &mut Counters {
        match &mut self.batch {
            Some(b) => &mut b.pending,
            None => &mut self.ctrs,
        }
    }

    // ----- The op-batch datapath (amortized lookups) -----

    /// Begins an op-batch: installs the lookaside that amortizes TCAM,
    /// translation, and directory-region resolutions across the batch's
    /// ops. Resolutions fill in lazily — the first op to touch a
    /// protection range pays the TCAM walk, every later op in the range is
    /// served from the memo (an eager sorted prefill was measured slower:
    /// hit-dominated batches never consult protection at all).
    ///
    /// Between `begin_batch` and [`CoherenceEngine::end_batch`] only
    /// data-plane calls ([`CoherenceEngine::access`] and the epoch driver)
    /// may run — control-plane mutations (grants, outlier installs) would
    /// invalidate the lookaside.
    pub fn begin_batch(&mut self) {
        debug_assert!(self.batch.is_none(), "batches do not nest");
        let mut look = self.spare_batch.take().unwrap_or_default();
        look.prot.clear();
        look.xlate.clear();
        look.region = None;
        look.pending = Counters::default();
        look.no_outliers = self.translation.outlier_count() == 0;
        look.dir_gen = self.directory.generation();
        self.batch = Some(look);
    }

    /// Ends the active op-batch, flushing its pending metric deltas into
    /// the live counters in one merge.
    pub fn end_batch(&mut self) {
        if let Some(look) = self.batch.take() {
            self.ctrs.merge(&look.pending);
            self.spare_batch = Some(look);
        }
    }

    /// Protection check through the batch lookaside when one is active,
    /// the plain TCAM walk otherwise. Counter-exact with the scalar path:
    /// every op accounts one check (and one denial when refused), whether
    /// it was served from the memo or from a fresh walk.
    fn prot_check(&mut self, pdid: Pdid, page: u64, kind: AccessKind) -> bool {
        let memoized = self.batch.as_ref().and_then(|b| {
            b.prot
                .iter()
                .find(|&&(pd, e, _)| pd == pdid && e.matches(page))
                .map(|&(_, _, pc)| pc)
        });
        if let Some(pc) = memoized {
            debug_assert_eq!(
                Some(pc),
                self.protection.resolve_grant(pdid, page).map(|(_, c)| c),
                "protection memo out of date within a batch"
            );
            let allowed = pc.allows(kind);
            self.protection.note_memoized_check(allowed);
            return allowed;
        }
        if self.batch.is_some() {
            let (allowed, grant) = self.protection.check_resolve(pdid, page, kind);
            if let (Some((entry, pc)), Some(b)) = (grant, self.batch.as_mut()) {
                b.prot.push((pdid, entry, pc));
            }
            allowed
        } else {
            self.protection.check(pdid, page, kind)
        }
    }

    /// Address translation through the batch lookaside when one is
    /// active: with an empty outlier TCAM (the common case) every
    /// translation is pure range-partition arithmetic; with outliers
    /// installed, resolved pages are memoized for the batch. Identical
    /// results to [`TranslationTable::translate`] in all cases.
    fn xlate(&mut self, page: u64) -> Option<PhysAddr> {
        let Some(b) = &self.batch else {
            return self.translation.translate(page);
        };
        if b.no_outliers {
            debug_assert_eq!(self.translation.outlier_count(), 0);
            return self.translation.partition_of(page);
        }
        if let Ok(i) = b.xlate.binary_search_by_key(&page, |&(p, _)| p) {
            return Some(b.xlate[i].1);
        }
        let pa = self.translation.translate(page)?;
        if let Some(b) = self.batch.as_mut() {
            if let Err(i) = b.xlate.binary_search_by_key(&page, |&(p, _)| p) {
                b.xlate.insert(i, (page, pa));
            }
        }
        Some(pa)
    }

    /// Directory region resolution with a one-entry, generation-guarded
    /// memo: consecutive faults into the same region during a batch skip
    /// the ordered-map lookup. Any region-map change (create, split,
    /// merge, remove — including those made by the epoch driver between
    /// ops) bumps the directory generation and invalidates the memo.
    fn ensure_region_memo(&mut self, page: u64) -> Result<(u64, u8), SramFull> {
        if let Some(b) = &self.batch {
            if b.dir_gen == self.directory.generation() {
                if let Some((base, k)) = b.region {
                    if page >= base && page < base + (1u64 << k) {
                        return Ok((base, k));
                    }
                }
            }
        }
        let found = self.directory.ensure_region(page)?;
        let gen = self.directory.generation();
        if let Some(b) = self.batch.as_mut() {
            b.region = Some(found);
            b.dir_gen = gen;
        }
        Ok(found)
    }

    /// Number of compute blades.
    pub fn n_compute(&self) -> u16 {
        self.caches.len() as u16
    }

    /// Number of memory blades.
    pub fn n_memory(&self) -> u16 {
        self.memory.len() as u16
    }

    /// The fabric (for loss injection in tests).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The directory (for the epoch driver and reporting).
    pub fn directory(&self) -> &RegionDirectory {
        &self.directory
    }

    /// Mutable directory access (epoch driver).
    pub fn directory_mut(&mut self) -> &mut RegionDirectory {
        &mut self.directory
    }

    /// A compute blade's cache (for functional data access).
    pub fn cache(&self, blade: u16) -> &DramCache {
        &self.caches[blade as usize]
    }

    /// Mutable cache access.
    pub fn cache_mut(&mut self, blade: u16) -> &mut DramCache {
        &mut self.caches[blade as usize]
    }

    /// Whether an access would leave the blade (cache miss or write
    /// upgrade) and therefore consult the switch directory. Non-mutating:
    /// no LRU bump, no counters — a pure admission probe for the cluster
    /// engine's issue gates.
    pub fn would_consult_directory(&self, blade: u16, vaddr: u64, kind: AccessKind) -> bool {
        let page = page_base(vaddr);
        let cache = &self.caches[blade as usize];
        !cache.contains(page) || (kind.is_write() && !cache.is_writable(page))
    }

    /// The earliest time `blade`'s RNIC can put a new request on the
    /// wire: its up-link's serialization backlog. Bulk dirty flushes (a
    /// force-merged region's invalidation writing back every dirty page)
    /// book the up-link far into the future; a fault issued before the
    /// backlog drains would only queue behind it.
    pub fn nic_tx_release(&self, blade: u16) -> SimTime {
        self.fabric.tx_free_at(NodeId::Compute(blade))
    }

    /// The directory's transition-serialization release time for the
    /// region containing `vaddr` (`busy_until`, §4.4): `SimTime::ZERO`
    /// when the region is untracked or idle.
    pub fn region_busy_until(&self, vaddr: u64) -> SimTime {
        match self.directory.region_of(page_base(vaddr)) {
            Some((base, _)) => self
                .directory
                .entry(base)
                .map(|e| e.busy_until)
                .unwrap_or(SimTime::ZERO),
            None => SimTime::ZERO,
        }
    }

    /// Marks a compute blade as failed: it stops ACKing invalidations and
    /// its cache contents are lost (fault-injection hook, §4.4).
    pub fn fail_blade(&mut self, blade: u16) {
        self.failed[blade as usize] = true;
        self.caches[blade as usize] = DramCache::new(self.caches[blade as usize].capacity_pages());
    }

    /// Whether a blade is failed.
    pub fn is_failed(&self, blade: u16) -> bool {
        self.failed[blade as usize]
    }

    /// Performs one memory access. This is the full MIND data path —
    /// the issue phase of [`CoherenceEngine::issue`] with the completion
    /// record discarded, for callers that serialize anyway.
    pub fn access(
        &mut self,
        now: SimTime,
        blade: u16,
        pdid: Pdid,
        vaddr: u64,
        kind: AccessKind,
    ) -> Result<AccessOutcome, AccessError> {
        self.issue(now, blade, pdid, vaddr, kind).map(|ia| ia.outcome)
    }

    /// The issue phase: resolves protection, translation, and directory
    /// state, commits the transition, and returns the completion record
    /// an in-flight window arbitrates on (see [`IssuedAccess`]).
    pub fn issue(
        &mut self,
        now: SimTime,
        blade: u16,
        pdid: Pdid,
        vaddr: u64,
        kind: AccessKind,
    ) -> Result<IssuedAccess, AccessError> {
        let result = self.issue_inner(now, blade, pdid, vaddr, kind);
        if self.trace.enabled() {
            if let Ok(ia) = &result {
                self.trace.record(
                    now,
                    blade as u32,
                    EventKind::Issue,
                    ia.complete_at.saturating_sub(ia.issued_at),
                    ia.outcome.remote as u64,
                    ia.outcome.invalidations as u64,
                );
            }
        }
        result
    }

    fn issue_inner(
        &mut self,
        now: SimTime,
        blade: u16,
        pdid: Pdid,
        vaddr: u64,
        kind: AccessKind,
    ) -> Result<IssuedAccess, AccessError> {
        if self.failed[blade as usize] {
            return Err(AccessError::BladeFailed);
        }
        self.ctr().accesses += 1;
        let page = page_base(vaddr);
        let probe = self.caches[blade as usize].access_tagged(page, kind.is_write());
        match probe {
            TaggedLookup::Hit { frame, tag } => {
                // The local page tables are per protection domain: a page
                // cached under another domain is not mapped for this one.
                // The fault consults the switch, which either denies or
                // installs the mapping for the new domain. The domain tag
                // rides in the frame slab, so the probe resolved it with
                // no extra lookup.
                if tag != pdid {
                    if !self.prot_check(pdid, page, kind) {
                        self.ctr().denials += 1;
                        self.trace.record(
                            now + self.lat.fault_handler,
                            blade as u32,
                            EventKind::TcamMiss,
                            SimTime::ZERO,
                            kind.is_write() as u64,
                            0,
                        );
                        return Err(AccessError::PermissionDenied);
                    }
                    self.caches[blade as usize].set_frame_tag(frame, pdid);
                    self.ctr().remote_accesses += 1;
                    let t_done = self.grant(now + self.lat.fault_handler, blade);
                    let outcome = AccessOutcome {
                        latency: LatencyBreakdown {
                            fault: self.lat.fault_handler,
                            network: t_done.saturating_sub(now + self.lat.fault_handler),
                            ..Default::default()
                        },
                        remote: true,
                        ..Default::default()
                    };
                    return Ok(IssuedAccess::new(now, outcome, None));
                }
                self.ctr().local_hits += 1;
                let outcome = AccessOutcome {
                    latency: LatencyBreakdown::local(self.lat.local_dram),
                    ..Default::default()
                };
                Ok(IssuedAccess::new(now, outcome, None))
            }
            TaggedLookup::Miss => self.page_fault(now, blade, pdid, page, kind, true),
            TaggedLookup::NeedUpgrade => {
                self.ctr().upgrades += 1;
                self.page_fault(now, blade, pdid, page, kind, false)
            }
        }
    }

    /// The page-fault path: RDMA to the switch, coherence, fetch.
    fn page_fault(
        &mut self,
        now: SimTime,
        blade: u16,
        pdid: Pdid,
        page: u64,
        kind: AccessKind,
        need_data: bool,
    ) -> Result<IssuedAccess, AccessError> {
        self.ctr().remote_accesses += 1;
        let t0 = now + self.lat.fault_handler;

        // One-sided RDMA request, addressed by virtual address, intercepted
        // by the switch data plane.
        let req = Packet::new(
            NodeId::Compute(blade),
            NodeId::Switch,
            PacketKind::RdmaReadReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let t_switch = self.fabric.send(t0, &req);

        // Protection: TCAM parallel range match on <PDID, vaddr> (§4.2),
        // served from the batch lookaside when an op-batch is in flight.
        if !self.prot_check(pdid, page, kind) {
            self.ctr().denials += 1;
            self.trace.record(
                t_switch,
                blade as u32,
                EventKind::TcamMiss,
                SimTime::ZERO,
                kind.is_write() as u64,
                0,
            );
            return Err(AccessError::PermissionDenied);
        }

        // Directory lookup/transition: two MAUs + recirculation (Figure 4).
        let region = match self.ensure_region_memo(page) {
            Ok(r) => r,
            // No directory slot: the access bypasses the cache and holds no
            // region (nothing for an in-flight window to serialize on).
            Err(_) => {
                return self
                    .bypass(t_switch, blade, page, kind)
                    .map(|outcome| IssuedAccess::new(now, outcome, None))
            }
        };
        let (base, k) = region;
        let dt = self
            .pipeline
            .directory_transition()
            .expect("MIND's pipeline program fits the MAU budget");
        let entry = self.directory.entry(base).expect("ensured region");
        // Transitions on a region serialize at the directory.
        let t_dir = entry.admit_transition(t_switch + dt);

        let state = entry.state;
        let sharers = entry.sharers;
        let owner = entry.owner();

        // Classify the requester and look up the materialized transition
        // row in the second MAU (Figure 4, §6.3): the ASIC cannot compute
        // the transition, so the whole function is a table.
        let role = if owner == Some(blade) {
            Role::Owner
        } else if sharers.contains(blade) {
            Role::Sharer
        } else {
            Role::Other
        };
        let row = self.stt.lookup(state, kind, role);

        // Execute the row.
        let mut round = InvalRound::default();
        let victims = match row.inval {
            InvalScope::None => BladeSet::EMPTY,
            _ => {
                let mut v = sharers;
                v.remove(blade);
                v
            }
        };
        let downgrade = row.inval == InvalScope::DowngradeOthers;
        if !victims.is_empty() {
            round = self.invalidate(t_dir, base, k, victims, downgrade, row.flush_dirty, page);
        }
        let fetch_at = if row.sequential && !victims.is_empty() {
            round.done_at
        } else {
            t_dir
        };
        let fetch_done = if need_data {
            match row.fetch {
                FetchSource::Memory => self.fetch(fetch_at, blade, page, true)?,
                FetchSource::OwnerCache => {
                    let supplier = owner.expect("OwnerCache rows require an owner");
                    self.fetch_from_owner(fetch_at, blade, supplier)
                }
            }
        } else {
            self.grant(fetch_at, blade)
        };
        // The requester waits for its data and — under TSO — all ACKs.
        let done = fetch_done.max(round.done_at);

        // Apply the directory update (the recirculated pass, Figure 4 #3).
        // The entry serializes only while the transition is in flight: for
        // plain fetches that is the pipeline pass itself (the recirculated
        // update commits the new state before the data even leaves the
        // memory blade); a transition that issued invalidations holds the
        // entry in a transient state until every ACK arrives (§4.4).
        let new_busy = if round.requests > 0 {
            round.done_at
        } else {
            t_dir
        };
        let mut held_region = (base, k);
        if round.reset {
            // Reset protocol removed the entry; recreate and treat the
            // requester as a fresh fetch.
            let (nbase, nk) = self
                .directory
                .ensure_region(page)
                .expect("slot freed by reset");
            held_region = (nbase, nk);
            let e = self.directory.entry_mut(nbase).expect("recreated");
            e.state = match kind {
                AccessKind::Read => MsiState::Shared,
                AccessKind::Write => MsiState::Modified,
            };
            e.sharers = BladeSet::singleton(blade);
            e.owner_blade = Some(blade);
            e.busy_until = new_busy;
        } else {
            let e = self.directory.entry_mut(base).expect("region exists");
            e.state = row.next;
            e.sharers = match row.inval {
                // Full invalidation leaves only the requester.
                InvalScope::InvalidateOthers => BladeSet::singleton(blade),
                // Downgrades keep the old holders as (read-only) sharers.
                _ => {
                    let mut s = sharers;
                    s.insert(blade);
                    s
                }
            };
            e.owner_blade = match row.next {
                MsiState::Modified | MsiState::Exclusive => Some(blade),
                // M→O keeps the *old* owner as the dirty-data supplier.
                MsiState::Owned => owner.or(e.owner_blade),
                _ => None,
            };
            e.busy_until = new_busy;
        }

        // Install the page at the requester.
        if need_data {
            let data = if self.cfg.carry_data {
                match self.supply_data(
                    page,
                    if row.fetch == FetchSource::OwnerCache {
                        owner
                    } else {
                        None
                    },
                ) {
                    Ok(d) => Some(d),
                    Err(e) => return Err(e),
                }
            } else {
                None
            };
            // MESI's Exclusive grant maps writable but *clean*; a plain
            // write fault dirties immediately.
            let dirty = row.insert_writable && kind.is_write();
            let evicted =
                self.caches[blade as usize].insert_with(page, row.insert_writable, dirty, data);
            self.caches[blade as usize].set_page_tag(page, pdid);
            if let Some(ev) = evicted {
                if ev.dirty {
                    // The kernel picks and writes back the victim when the
                    // fault begins (charged at t0 so the link stays
                    // time-ordered); the write-back DMA overlaps the fetch
                    // and does not extend the thread's latency.
                    self.writeback(t0, blade, ev.page, ev.data)?;
                }
            }
        } else if kind.is_write() || row.insert_writable {
            self.caches[blade as usize].grant_write(page);
        }

        // Account the round.
        let ctrs = self.ctr();
        ctrs.inval_requests += round.requests as u64;
        if round.requests > 0 {
            ctrs.inval_rounds += 1;
        }
        ctrs.flushed_pages += round.flushed as u64;
        ctrs.false_invalidations += round.false_inv as u64;
        if round.requests > 0 {
            self.directory.record_invalidation(
                if round.reset {
                    page & !((1u64 << k) - 1)
                } else {
                    base
                },
                round.false_inv,
            );
        }
        if self.trace.enabled() {
            self.trace.record(
                t_dir,
                blade as u32,
                EventKind::DirTransition,
                SimTime::ZERO,
                round.requests as u64,
                round.flushed as u64,
            );
            if round.requests > 0 {
                self.trace.record(
                    t_dir,
                    blade as u32,
                    EventKind::Invalidation,
                    round.done_at.saturating_sub(t_dir),
                    round.requests as u64,
                    round.false_inv as u64,
                );
            }
        }

        // Latency attribution. Under PSO, writes are buffered at the blade
        // and propagate asynchronously: the thread sees only the fault
        // handler + write-buffer insertion, while the protocol completes in
        // the background (its completion still serializes the region via
        // busy_until). §7.1's MIND-PSO simulation.
        let total_wait = done.saturating_sub(now);
        if kind.is_write() && self.cfg.consistency.async_writes() {
            self.ctr().async_writes += 1;
            // Bounded store buffer: drain completed writes, stall if full.
            const PSO_BUFFER_DEPTH: usize = 16;
            let buf = &mut self.pso_buffer[blade as usize];
            while buf.front().is_some_and(|&t| t <= now) {
                buf.pop_front();
            }
            let stall = if buf.len() >= PSO_BUFFER_DEPTH {
                let oldest = buf.pop_front().expect("buffer full");
                oldest.saturating_sub(now)
            } else {
                SimTime::ZERO
            };
            buf.push_back(done);
            let outcome = AccessOutcome {
                latency: LatencyBreakdown {
                    fault: self.lat.fault_handler,
                    dram: self.lat.local_dram + stall,
                    ..Default::default()
                },
                remote: true,
                invalidations: round.requests,
                flushed_pages: round.flushed,
                false_invalidations: round.false_inv,
            };
            return Ok(IssuedAccess::new(now, outcome, Some(held_region)));
        }

        let inv_queue = round.crit_queue.min(total_wait);
        let inv_tlb = round.crit_tlb;
        let network = total_wait
            .saturating_sub(self.lat.fault_handler)
            .saturating_sub(inv_queue)
            .saturating_sub(inv_tlb);
        let outcome = AccessOutcome {
            latency: LatencyBreakdown {
                fault: self.lat.fault_handler,
                network,
                inv_queue,
                inv_tlb,
                ..Default::default()
            },
            remote: true,
            invalidations: round.requests,
            flushed_pages: round.flushed,
            false_invalidations: round.false_inv,
        };
        Ok(IssuedAccess::new(now, outcome, Some(held_region)))
    }

    /// Fetches `page` from its memory blade to `blade`, starting at the
    /// switch at `t_switch`. Returns the arrival time of the page.
    fn fetch(
        &mut self,
        t_switch: SimTime,
        blade: u16,
        page: u64,
        _carry: bool,
    ) -> Result<SimTime, AccessError> {
        let pa = self.xlate(page).ok_or(AccessError::BadAddress)?;
        if pa.blade >= self.n_memory() {
            return Err(AccessError::BadAddress);
        }
        // Switch → memory blade (header-rewritten RDMA read, §6.3).
        let fwd = Packet::new(
            NodeId::Switch,
            NodeId::Memory(pa.blade),
            PacketKind::RdmaReadReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let t_mem = self.fabric.send(t_switch, &fwd) + self.lat.memory_service;
        if !self.cfg.carry_data {
            self.memory[pa.blade as usize]
                .read_page_nodata(pa.page())
                .map_err(|_| AccessError::BadAddress)?;
        }
        // Memory blade → requester (page-sized response through the switch).
        let resp = Packet::new(
            NodeId::Memory(pa.blade),
            NodeId::Compute(blade),
            PacketKind::RdmaReadResp {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        Ok(self.fabric.send(t_mem, &resp))
    }

    /// Cache-to-cache page transfer from the current owner (MOESI's Owned
    /// state, §8): the switch redirects the fetch to the owner blade, whose
    /// NIC serves the page from its registered DRAM cache.
    fn fetch_from_owner(&mut self, t_switch: SimTime, blade: u16, owner: u16) -> SimTime {
        // Switch → owner: redirected one-sided read.
        let fwd = Packet::new(
            NodeId::Switch,
            NodeId::Compute(owner),
            PacketKind::RdmaReadReq {
                vaddr: 0,
                len: PAGE_SIZE as u32,
            },
        );
        let t_owner = self.fabric.send(t_switch, &fwd) + self.lat.memory_service;
        // Owner → requester (page response through the switch).
        let resp = Packet::new(
            NodeId::Compute(owner),
            NodeId::Compute(blade),
            PacketKind::RdmaReadResp {
                vaddr: 0,
                len: PAGE_SIZE as u32,
            },
        );
        self.fabric.send(t_owner, &resp)
    }

    /// Resolves the page contents for a data-carrying insert: the owner's
    /// cache when the row fetched cache-to-cache (memory may be stale under
    /// MOESI), otherwise the memory blade.
    fn supply_data(&mut self, page: u64, owner: Option<u16>) -> Result<PageData, AccessError> {
        if let Some(b) = owner {
            if let Some(data) = self.caches[b as usize].page_data(page) {
                return Ok(data);
            }
            // The owner evicted the page: its write-back made memory
            // current again.
        }
        let pa = self.xlate(page).ok_or(AccessError::BadAddress)?;
        self.memory[pa.blade as usize]
            .read_page(pa.page())
            .map_err(|_| AccessError::BadAddress)
    }

    /// A data-less permission grant from the switch back to the requester
    /// (S→M upgrade of a page the requester already caches).
    fn grant(&mut self, t_switch: SimTime, blade: u16) -> SimTime {
        let resp = Packet::new(
            NodeId::Switch,
            NodeId::Compute(blade),
            PacketKind::RdmaWriteResp { vaddr: 0 },
        );
        self.fabric.send(t_switch, &resp)
    }

    /// Writes a dirty evicted/flushed page back to its memory blade.
    fn writeback(
        &mut self,
        t: SimTime,
        blade: u16,
        page: u64,
        data: Option<PageData>,
    ) -> Result<SimTime, AccessError> {
        let pa = self.xlate(page).ok_or(AccessError::BadAddress)?;
        let pkt = Packet::new(
            NodeId::Compute(blade),
            NodeId::Memory(pa.blade),
            PacketKind::RdmaWriteReq {
                vaddr: page,
                len: PAGE_SIZE as u32,
            },
        );
        let arrive = self.fabric.send(t, &pkt) + self.lat.memory_service;
        match data {
            Some(d) => self.memory[pa.blade as usize]
                .write_page(pa.page(), d)
                .map_err(|_| AccessError::BadAddress)?,
            None => self.memory[pa.blade as usize]
                .write_page_nodata(pa.page())
                .map_err(|_| AccessError::BadAddress)?,
        }
        Ok(arrive)
    }

    /// Runs one invalidation round against `victims`, with ACK tracking,
    /// retransmission on loss, and the reset protocol after exhausted
    /// retries (§4.4).
    #[allow(clippy::too_many_arguments)]
    fn invalidate(
        &mut self,
        t_switch: SimTime,
        base: u64,
        k: u8,
        victims: BladeSet,
        downgrade: bool,
        flush_dirty: bool,
        requested_page: u64,
    ) -> InvalRound {
        debug_assert!(!victims.is_empty());
        let mut round = InvalRound::default();
        let inval_bytes = PacketKind::Invalidate {
            region_base: base,
            region_size_log2: k,
            sharers: victims,
            downgrade_to_shared: downgrade,
        }
        .wire_bytes();

        let round_id = self.acks.begin(t_switch, base, victims);
        let mut pending = victims;
        let mut t = t_switch;
        // Reused across rounds and victims: no per-round allocations on
        // the invalidation hot path.
        let mut deliveries = std::mem::take(&mut self.deliveries_scratch);
        let mut outcome = std::mem::take(&mut self.inval_scratch);
        while !pending.is_empty() {
            // Multicast to the remaining sharers; egress pruning drops
            // copies for blades outside `pending` (§4.3.2).
            self.fabric
                .multicast_from_switch_into(t, pending, inval_bytes, &mut deliveries);
            round.requests += deliveries.len() as u32;
            for &(victim, arrive) in deliveries.iter() {
                if self.failed[victim as usize] {
                    continue; // Failed blade: never ACKs.
                }
                // MOESI downgrades keep the dirty data at the old owner
                // (no write-back); everything else flushes dirty pages.
                if downgrade && !flush_dirty {
                    self.caches[victim as usize]
                        .downgrade_region_keep_dirty_into(base, k, &mut outcome);
                } else {
                    self.caches[victim as usize]
                        .invalidate_region_into(base, k, downgrade, &mut outcome);
                }
                let n_flushed = outcome.flushed.len() as u32;
                let touched = outcome.unmapped + outcome.downgraded;
                // Handler work + synchronous TLB shootdown (batched per
                // invalidation) + flush DMA initiation per dirty page.
                let tlb = if touched > 0 {
                    self.lat.tlb_shootdown
                } else {
                    SimTime::ZERO
                };
                let service = self.lat.invalidation_service
                    + tlb
                    + self.lat.serialization(PAGE_SIZE as u32) * n_flushed as u64;
                let served = self.inv_queues[victim as usize].enqueue(arrive, service);
                // Flush dirty pages to their memory blades.
                let mut flush_done = served.done;
                for fi in 0..outcome.flushed.len() {
                    let (page, data) = (outcome.flushed[fi].0, outcome.flushed[fi].1.take());
                    if let Ok(done) = self.writeback(served.done, victim, page, data) {
                        flush_done = flush_done.max(done);
                    }
                    round.flushed += 1;
                    if page != requested_page {
                        round.false_inv += 1;
                    }
                }
                // ACK back to the switch once flushes are durable; the ACK
                // itself may be lost, in which case the round retransmits
                // and the (idempotent) invalidation repeats.
                let ack = Packet::new(
                    NodeId::Compute(victim),
                    NodeId::Switch,
                    PacketKind::InvalidateAck {
                        region_base: base,
                        flushed_pages: n_flushed,
                    },
                );
                let Some(ack_at) = self.fabric.try_send(flush_done, &ack).arrival() else {
                    continue; // Lost ACK: victim stays pending.
                };
                self.acks.ack(round_id, victim);
                pending.remove(victim);
                if ack_at >= round.done_at {
                    round.done_at = ack_at;
                    round.crit_queue = served.queue_delay;
                    round.crit_tlb = tlb;
                }
            }
            if pending.is_empty() {
                break;
            }
            // ACK timeout: the tracker decides between retransmission and
            // — after the retry budget — the reset protocol (§4.4).
            t += self.cfg.ack_timeout;
            let mut do_reset = false;
            for action in self.acks.poll(t) {
                if let mind_net::reliability::ReliabilityAction::Reset { .. } = action {
                    do_reset = true;
                }
            }
            if do_reset {
                let done = self.reset_region(t, base, k);
                round.done_at = round.done_at.max(done);
                round.reset = true;
                self.ctr().resets += 1;
                break;
            }
        }
        self.deliveries_scratch = deliveries;
        self.inval_scratch = outcome;
        round
    }

    /// The reset protocol: force every live blade to flush its data for the
    /// region and remove the directory entry (§4.4).
    pub fn reset_region(&mut self, now: SimTime, base: u64, k: u8) -> SimTime {
        let mut done = now;
        for b in 0..self.n_compute() {
            if self.failed[b as usize] {
                continue;
            }
            let outcome = self.caches[b as usize].invalidate_region(base, k, false);
            let mut t = now + self.lat.invalidation_service;
            for (page, data) in outcome.flushed {
                if let Ok(fin) = self.writeback(t, b, page, data) {
                    t = fin;
                }
                self.ctr().flushed_pages += 1;
            }
            done = done.max(t);
        }
        self.directory.remove(base);
        done
    }

    /// Cache-bypass path when no directory slot can be made available: the
    /// access goes straight to the memory blade without caching.
    fn bypass(
        &mut self,
        t_switch: SimTime,
        blade: u16,
        page: u64,
        kind: AccessKind,
    ) -> Result<AccessOutcome, AccessError> {
        self.ctr().bypasses += 1;
        self.trace.record(
            t_switch,
            blade as u32,
            EventKind::Bypass,
            SimTime::ZERO,
            kind.is_write() as u64,
            0,
        );
        let done = match kind {
            AccessKind::Read => self.fetch(t_switch, blade, page, false)?,
            AccessKind::Write => self.writeback(t_switch, blade, page, None)?,
        };
        let network = done.saturating_sub(t_switch) + self.lat.hop_latency;
        Ok(AccessOutcome {
            latency: LatencyBreakdown {
                fault: self.lat.fault_handler,
                network,
                ..Default::default()
            },
            remote: true,
            ..Default::default()
        })
    }

    /// Lifetime metrics snapshot. Correct mid-batch too: an in-flight
    /// batch's pending deltas are merged into the view.
    pub fn metrics(&self) -> Metrics {
        let mut c = self.ctrs;
        if let Some(b) = &self.batch {
            c.merge(&b.pending);
        }
        let mut m = Metrics::new();
        m.add("accesses", c.accesses);
        m.add("local_hits", c.local_hits);
        m.add("remote_accesses", c.remote_accesses);
        m.add("upgrades", c.upgrades);
        m.add("invalidation_requests", c.inval_requests);
        m.add("invalidation_rounds", c.inval_rounds);
        m.add("flushed_pages", c.flushed_pages);
        m.add("false_invalidations", c.false_invalidations);
        m.add("bypasses", c.bypasses);
        m.add("resets", c.resets);
        m.add("denials", c.denials);
        m.add("async_writes", c.async_writes);
        m.add("directory_entries", self.directory.entries() as u64);
        m.add(
            "directory_watermark",
            self.directory.high_watermark() as u64,
        );
        m.add("directory_splits", self.directory.splits());
        m.add("directory_merges", self.directory.merges());
        m.add("forced_merges", self.directory.forced_merges());
        m.add("pipeline_recirculations", self.pipeline.recirculations());
        m.add("multicast_pruned", self.fabric.multicast_pruned());
        m.add("retransmissions", self.acks.retransmissions());
        let tlb: u64 = self.caches.iter().map(|c| c.tlb_shootdowns()).sum();
        m.add("tlb_shootdowns", tlb);
        let evictions: u64 = self.caches.iter().map(|c| c.evictions()).sum();
        m.add("evictions", evictions);
        m
    }

    /// Translation + protection match-action rule count (Figure 8 center).
    pub fn rule_count(&self) -> usize {
        self.translation.rule_count() + self.protection.rule_count()
    }

    /// Protection TCAM entries installed for one protection domain.
    pub fn protection_entries_for(&self, pdid: crate::protect::Pdid) -> usize {
        self.protection.entries_for(pdid)
    }
}
