//! The switch control plane: processes and system-call intercepts (§6.1,
//! §6.3).
//!
//! Compute-blade kernel modules intercept process and memory system calls
//! (`exec`, `exit`, `mmap`, `brk`, `munmap`, `mprotect`) and forward them to
//! the switch control plane over a reliable channel. The control plane keeps
//! the canonical `task_struct`/`mm_struct` equivalents, performs balanced
//! allocation, installs data-plane rules, and replies with Linux-compatible
//! return values — keeping user applications unmodified.
//!
//! Threads of the same process run on different compute blades under one
//! PID, sharing the address space through the in-switch tables; placement is
//! round-robin (the paper does not innovate on scheduling, §6.1).

use std::collections::HashMap;

use mind_sim::SimTime;
use mind_switch::control::ControlPlane;

use crate::addr::Vma;
use crate::coherence::CoherenceEngine;
use crate::galloc::GlobalAllocator;
use crate::protect::{Pdid, PermClass};

/// Process identifier. For unmodified applications `PDID = PID` (§4.2).
pub type Pid = u64;

/// Linux-compatible errors returned by syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysError {
    /// Out of disaggregated memory (`ENOMEM`).
    NoMem,
    /// Unknown process (`ESRCH`).
    NoProcess,
    /// Bad address / unknown vma (`EFAULT`).
    Fault,
}

impl std::fmt::Display for SysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SysError::NoMem => write!(f, "ENOMEM"),
            SysError::NoProcess => write!(f, "ESRCH"),
            SysError::Fault => write!(f, "EFAULT"),
        }
    }
}

impl std::error::Error for SysError {}

/// Control-plane record of a process (`task_struct` + `mm_struct`).
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id (also the protection domain id).
    pub pid: Pid,
    /// Live vmas, in allocation order.
    pub vmas: Vec<Vma>,
    /// Compute blades hosting this process's threads.
    pub blades: Vec<u16>,
}

/// A grant record, kept for backup-switch reconstruction (§4.4).
#[derive(Debug, Clone, Copy)]
pub struct GrantRecord {
    /// Protection domain.
    pub pdid: Pdid,
    /// The granted vma (reserved, power-of-two size).
    pub vma: Vma,
    /// Permission class.
    pub pc: PermClass,
}

/// The MIND control program running on the switch CPU.
#[derive(Debug)]
pub struct Controller {
    galloc: GlobalAllocator,
    processes: HashMap<Pid, Process>,
    next_pid: Pid,
    control: ControlPlane,
    rr_next_blade: u16,
    n_compute: u16,
    grants: Vec<GrantRecord>,
}

impl Controller {
    /// Creates a controller for a rack with `n_compute` compute blades and
    /// `n_memory` memory blades of `blade_span` VA bytes each.
    pub fn new(
        n_compute: u16,
        n_memory: u16,
        blade_span: u64,
        syscall_cost: SimTime,
        rule_install_cost: SimTime,
    ) -> Self {
        Controller {
            galloc: GlobalAllocator::new(n_memory, blade_span),
            processes: HashMap::new(),
            next_pid: 1,
            control: ControlPlane::new(syscall_cost, rule_install_cost),
            rr_next_blade: 0,
            n_compute,
            grants: Vec::new(),
        }
    }

    /// `exec`: creates a process; the PID doubles as its protection domain.
    pub fn exec(&mut self) -> Pid {
        self.control.handle_syscall();
        let pid = self.next_pid;
        self.next_pid += 1;
        self.processes.insert(
            pid,
            Process {
                pid,
                vmas: Vec::new(),
                blades: Vec::new(),
            },
        );
        pid
    }

    /// Places a new thread of `pid` on a compute blade, round-robin (§6.1).
    pub fn place_thread(&mut self, pid: Pid) -> Result<u16, SysError> {
        let blade = self.rr_next_blade;
        self.rr_next_blade = (self.rr_next_blade + 1) % self.n_compute;
        let p = self.processes.get_mut(&pid).ok_or(SysError::NoProcess)?;
        p.blades.push(blade);
        Ok(blade)
    }

    /// Retires one thread of `pid` from `blade` (elastic shrink): removes
    /// one matching registration. Returns whether one was found.
    pub fn unplace_thread(&mut self, pid: Pid, blade: u16) -> Result<bool, SysError> {
        let p = self.processes.get_mut(&pid).ok_or(SysError::NoProcess)?;
        match p.blades.iter().position(|&b| b == blade) {
            Some(idx) => {
                p.blades.remove(idx);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// `mmap`: allocates a vma on the least-loaded memory blade and installs
    /// the `<PDID, vma> → PC` protection entry.
    pub fn mmap(
        &mut self,
        engine: &mut CoherenceEngine,
        pid: Pid,
        len: u64,
        pc: PermClass,
    ) -> Result<Vma, SysError> {
        let all = 0..self.galloc.n_blades();
        self.mmap_in(engine, pid, len, pc, all)
    }

    /// `mmap` with placement confined to the memory blades in `blades`:
    /// the region-ownership path a partitioned simulation uses so each
    /// partition's vmas live on its own blade slice. `mmap` is the
    /// whole-rack special case.
    pub fn mmap_in(
        &mut self,
        engine: &mut CoherenceEngine,
        pid: Pid,
        len: u64,
        pc: PermClass,
        blades: std::ops::Range<u16>,
    ) -> Result<Vma, SysError> {
        self.control.handle_syscall();
        if !self.processes.contains_key(&pid) {
            return Err(SysError::NoProcess);
        }
        let vma = self.galloc.alloc_in(len, blades).ok_or(SysError::NoMem)?;
        // Grant over the reserved power-of-two extent: a single TCAM entry
        // (§4.2 "Optimizing for TCAM storage").
        let reserved = Vma::new(
            vma.base,
            self.galloc.reserved_size(vma.base).expect("just allocated"),
        );
        if engine.protection.grant(pid, reserved, pc).is_err() {
            self.galloc.dealloc(vma.base);
            return Err(SysError::NoMem);
        }
        self.control.install_rule();
        self.grants.push(GrantRecord {
            pdid: pid,
            vma: reserved,
            pc,
        });
        self.processes
            .get_mut(&pid)
            .expect("checked above")
            .vmas
            .push(vma);
        Ok(vma)
    }

    /// `brk`-style heap growth is modelled as an mmap of the increment; the
    /// glibc allocator's power-of-two request pattern (§4.2) makes the two
    /// equivalent at the switch.
    pub fn brk(
        &mut self,
        engine: &mut CoherenceEngine,
        pid: Pid,
        increment: u64,
    ) -> Result<Vma, SysError> {
        self.mmap(engine, pid, increment, PermClass::ReadWrite)
    }

    /// `munmap`: revokes protection, resets coherence state for all regions
    /// overlapping the vma (flushing cached pages), and frees the memory.
    pub fn munmap(
        &mut self,
        engine: &mut CoherenceEngine,
        now: SimTime,
        pid: Pid,
        base: u64,
    ) -> Result<(), SysError> {
        self.control.handle_syscall();
        let p = self.processes.get_mut(&pid).ok_or(SysError::NoProcess)?;
        let idx = p
            .vmas
            .iter()
            .position(|v| v.base == base)
            .ok_or(SysError::Fault)?;
        let vma = p.vmas.remove(idx);
        let reserved_len = self.galloc.reserved_size(base).ok_or(SysError::Fault)?;
        let reserved = Vma::new(base, reserved_len);
        engine.protection.revoke(pid, reserved);
        self.control.remove_rule();
        self.grants
            .retain(|g| !(g.pdid == pid && g.vma.base == base));
        // Tear down directory entries covering the vma, flushing caches.
        let mut addr = reserved.base;
        while addr < reserved.end() {
            match engine.directory().region_of(addr) {
                Some((rbase, rk)) => {
                    engine.reset_region(now, rbase, rk);
                    addr = rbase + (1u64 << rk);
                }
                None => addr += mind_blade::PAGE_SIZE,
            }
        }
        self.galloc.dealloc(base);
        let _ = vma;
        Ok(())
    }

    /// `mprotect`: changes the permission class of an existing vma.
    ///
    /// Cached mappings for the vma are torn down (dirty pages flushed) so
    /// blades re-fault and re-check the new class — the analog of the PTE
    /// update + TLB shootdown a host kernel performs.
    pub fn mprotect(
        &mut self,
        engine: &mut CoherenceEngine,
        now: SimTime,
        pid: Pid,
        base: u64,
        pc: PermClass,
    ) -> Result<(), SysError> {
        self.control.handle_syscall();
        if !self.processes.contains_key(&pid) {
            return Err(SysError::NoProcess);
        }
        let reserved_len = self.galloc.reserved_size(base).ok_or(SysError::Fault)?;
        let reserved = Vma::new(base, reserved_len);
        engine.protection.revoke(pid, reserved);
        engine
            .protection
            .grant(pid, reserved, pc)
            .map_err(|_| SysError::NoMem)?;
        self.control.install_rule();
        let mut addr = reserved.base;
        while addr < reserved.end() {
            match engine.directory().region_of(addr) {
                Some((rbase, rk)) => {
                    engine.reset_region(now, rbase, rk);
                    addr = rbase + (1u64 << rk);
                }
                None => addr += mind_blade::PAGE_SIZE,
            }
        }
        for g in &mut self.grants {
            if g.pdid == pid && g.vma.base == base {
                g.pc = pc;
            }
        }
        Ok(())
    }

    /// `exit`: tears down every vma of the process.
    pub fn exit(
        &mut self,
        engine: &mut CoherenceEngine,
        now: SimTime,
        pid: Pid,
    ) -> Result<(), SysError> {
        self.control.handle_syscall();
        let p = self.processes.get(&pid).ok_or(SysError::NoProcess)?;
        let bases: Vec<u64> = p.vmas.iter().map(|v| v.base).collect();
        for base in bases {
            self.munmap(engine, now, pid, base)?;
        }
        self.processes.remove(&pid);
        Ok(())
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The allocator (for fairness reporting).
    pub fn allocator(&self) -> &GlobalAllocator {
        &self.galloc
    }

    /// The control-plane CPU model.
    pub fn control_plane(&self) -> &ControlPlane {
        &self.control
    }

    /// Mutable control-plane access (replication driver).
    pub fn control_plane_mut(&mut self) -> &mut ControlPlane {
        &mut self.control
    }

    /// Grant records for backup-switch reconstruction.
    pub fn grants(&self) -> &[GrantRecord] {
        &self.grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_net::link::LatencyConfig;

    use crate::coherence::CoherenceConfig;
    use crate::system::AccessKind;

    fn setup() -> (Controller, CoherenceEngine) {
        let ctl = Controller::new(
            4,
            2,
            1 << 30,
            SimTime::from_micros(15),
            SimTime::from_micros(2),
        );
        let engine = CoherenceEngine::new(
            4,
            2,
            1024,
            1 << 30,
            1 << 30,
            1000,
            14,
            1000,
            LatencyConfig::default(),
            CoherenceConfig::default(),
        );
        (ctl, engine)
    }

    #[test]
    fn exec_assigns_fresh_pids() {
        let (mut ctl, _) = setup();
        let a = ctl.exec();
        let b = ctl.exec();
        assert_ne!(a, b);
        assert_eq!(ctl.process_count(), 2);
        assert_eq!(ctl.control_plane().syscalls_handled(), 2);
    }

    #[test]
    fn round_robin_thread_placement() {
        let (mut ctl, _) = setup();
        let pid = ctl.exec();
        let blades: Vec<u16> = (0..6).map(|_| ctl.place_thread(pid).unwrap()).collect();
        assert_eq!(blades, vec![0, 1, 2, 3, 0, 1]);
        assert!(ctl.place_thread(999).is_err());
    }

    #[test]
    fn unplace_thread_retires_one_registration() {
        let (mut ctl, _) = setup();
        let pid = ctl.exec();
        for _ in 0..5 {
            ctl.place_thread(pid).unwrap(); // Blades 0,1,2,3,0.
        }
        assert_eq!(ctl.unplace_thread(pid, 0), Ok(true));
        assert_eq!(ctl.process(pid).unwrap().blades, vec![1, 2, 3, 0]);
        assert_eq!(ctl.unplace_thread(pid, 0), Ok(true));
        assert_eq!(ctl.unplace_thread(pid, 0), Ok(false), "none left");
        assert_eq!(ctl.unplace_thread(999, 0), Err(SysError::NoProcess));
    }

    #[test]
    fn mmap_grants_protection_and_allocates() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        let vma = ctl
            .mmap(&mut eng, pid, 1 << 20, PermClass::ReadWrite)
            .unwrap();
        assert_eq!(vma.len, 1 << 20);
        assert!(eng.protection.check(pid, vma.base, AccessKind::Write));
        assert!(
            !eng.protection.check(pid + 1, vma.base, AccessKind::Read),
            "other domains denied"
        );
        assert_eq!(ctl.grants().len(), 1);
    }

    #[test]
    fn mmap_in_confines_placement_to_slice() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        for _ in 0..4 {
            let vma = ctl
                .mmap_in(&mut eng, pid, 1 << 20, PermClass::ReadWrite, 1..2)
                .unwrap();
            assert_eq!(ctl.allocator().blade_of(vma.base), Some(1));
        }
        assert_eq!(ctl.allocator().allocated_per_blade()[0], 0);
        // An exhausted slice reports ENOMEM even though other blades fit.
        let mut small = Controller::new(
            1,
            2,
            1 << 16,
            SimTime::from_micros(15),
            SimTime::from_micros(2),
        );
        let pid = small.exec();
        small
            .mmap_in(&mut eng, pid, 1 << 16, PermClass::ReadWrite, 0..1)
            .unwrap();
        assert_eq!(
            small.mmap_in(&mut eng, pid, 4096, PermClass::ReadWrite, 0..1),
            Err(SysError::NoMem)
        );
    }

    #[test]
    fn mmap_unknown_process_fails() {
        let (mut ctl, mut eng) = setup();
        assert_eq!(
            ctl.mmap(&mut eng, 42, 4096, PermClass::ReadOnly),
            Err(SysError::NoProcess)
        );
    }

    #[test]
    fn munmap_revokes_and_frees() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        let vma = ctl
            .mmap(&mut eng, pid, 1 << 16, PermClass::ReadWrite)
            .unwrap();
        // Touch a page so a directory entry exists.
        eng.access(SimTime::ZERO, 0, pid, vma.base, AccessKind::Write)
            .unwrap();
        assert!(eng.directory().region_of(vma.base).is_some());
        ctl.munmap(&mut eng, SimTime::from_millis(1), pid, vma.base)
            .unwrap();
        assert!(!eng.protection.check(pid, vma.base, AccessKind::Read));
        assert!(
            eng.directory().region_of(vma.base).is_none(),
            "directory entries torn down"
        );
        assert!(!eng.cache(0).contains(vma.base), "cached page dropped");
        assert_eq!(ctl.allocator().live_allocations(), 0);
    }

    #[test]
    fn mprotect_downgrades_permissions() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        let vma = ctl.mmap(&mut eng, pid, 4096, PermClass::ReadWrite).unwrap();
        ctl.mprotect(&mut eng, SimTime::ZERO, pid, vma.base, PermClass::ReadOnly)
            .unwrap();
        assert!(eng.protection.check(pid, vma.base, AccessKind::Read));
        assert!(!eng.protection.check(pid, vma.base, AccessKind::Write));
    }

    #[test]
    fn exit_tears_down_everything() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        ctl.mmap(&mut eng, pid, 4096, PermClass::ReadWrite).unwrap();
        ctl.mmap(&mut eng, pid, 1 << 16, PermClass::ReadOnly)
            .unwrap();
        ctl.exit(&mut eng, SimTime::ZERO, pid).unwrap();
        assert_eq!(ctl.process_count(), 0);
        assert_eq!(ctl.allocator().live_allocations(), 0);
        assert_eq!(ctl.grants().len(), 0);
    }

    #[test]
    fn enomem_when_memory_exhausted() {
        let mut ctl = Controller::new(
            1,
            1,
            1 << 16,
            SimTime::from_micros(15),
            SimTime::from_micros(2),
        );
        let mut eng = CoherenceEngine::new(
            1,
            1,
            64,
            1 << 16,
            1 << 16,
            100,
            14,
            100,
            LatencyConfig::default(),
            CoherenceConfig::default(),
        );
        let pid = ctl.exec();
        assert!(ctl
            .mmap(&mut eng, pid, 1 << 16, PermClass::ReadWrite)
            .is_ok());
        assert_eq!(
            ctl.mmap(&mut eng, pid, 4096, PermClass::ReadWrite),
            Err(SysError::NoMem)
        );
    }

    #[test]
    fn isolation_allocations_never_overlap_across_processes() {
        let (mut ctl, mut eng) = setup();
        let p1 = ctl.exec();
        let p2 = ctl.exec();
        let v1 = ctl
            .mmap(&mut eng, p1, 1 << 16, PermClass::ReadWrite)
            .unwrap();
        let v2 = ctl
            .mmap(&mut eng, p2, 1 << 16, PermClass::ReadWrite)
            .unwrap();
        let r1 = Vma::new(v1.base, ctl.allocator().reserved_size(v1.base).unwrap());
        let r2 = Vma::new(v2.base, ctl.allocator().reserved_size(v2.base).unwrap());
        assert!(!r1.overlaps(&r2), "single address space, disjoint vmas");
    }
}
