//! Domain-based memory protection (paper §4.2).
//!
//! MIND decouples protection from translation: permissions attach to
//! `<protection domain, vma>` pairs of arbitrary size, stored as TCAM range
//! entries. A protection domain (PDID) identifies *who* may access — for
//! unmodified applications MIND uses the PID, but richer schemes (per-client
//! sessions of a database, capability-style domains) are expressible. The
//! permission class (PC) identifies *what* they may do.
//!
//! TCAM entries match power-of-two ranges only; arbitrary vmas are split by
//! [`pow2_cover`] (bounded by ⌈log₂ s⌉ pieces), and the control plane keeps
//! entry counts low by (1) power-of-two aligned allocation so each vma is
//! one entry and (2) coalescing buddy entries with identical domain and
//! class.

use mind_switch::tcam::{pow2_cover, Tcam, TcamEntry, TcamFull};

use crate::addr::Vma;
use crate::system::AccessKind;

/// Protection domain identifier (PID for unmodified applications).
pub type Pdid = u64;

/// Permission classes, mirroring Linux memory permissions for unmodified
/// applications (richer classes are possible, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PermClass {
    /// No access.
    None,
    /// Loads only.
    ReadOnly,
    /// Loads and stores.
    ReadWrite,
}

impl PermClass {
    /// Whether the class admits the access kind.
    pub fn allows(self, kind: AccessKind) -> bool {
        match (self, kind) {
            (PermClass::None, _) => false,
            (PermClass::ReadOnly, AccessKind::Read) => true,
            (PermClass::ReadOnly, AccessKind::Write) => false,
            (PermClass::ReadWrite, _) => true,
        }
    }
}

/// The in-switch protection table.
#[derive(Debug, Clone)]
pub struct ProtectionTable {
    tcam: Tcam<PermClass>,
    checks: u64,
    denials: u64,
}

impl ProtectionTable {
    /// Creates a table with `tcam_capacity` entries.
    pub fn new(tcam_capacity: usize) -> Self {
        ProtectionTable {
            tcam: Tcam::new(tcam_capacity),
            checks: 0,
            denials: 0,
        }
    }

    /// Grants `pc` to `<pdid, vma>`; splits unaligned vmas into
    /// power-of-two pieces and coalesces buddies afterwards.
    ///
    /// Rolls back on TCAM exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the vma overlaps an existing grant of the same domain.
    /// A domain's grants are **disjoint by invariant** (change a range's
    /// class with [`ProtectionTable::revoke`] + re-grant, not by stacking
    /// nested entries): the control plane allocates disjoint vmas, and
    /// the batched datapath's grant memo relies on the covering entry
    /// being unique — a nested more-specific entry would win the TCAM's
    /// LPM in the scalar path but could be shadowed in the memo.
    pub fn grant(&mut self, pdid: Pdid, vma: Vma, pc: PermClass) -> Result<(), TcamFull> {
        assert!(
            !self.overlaps(pdid, vma),
            "protection grants within a domain must be disjoint \
             (revoke before re-granting {:#x}+{:#x} for domain {pdid})",
            vma.base,
            vma.len,
        );
        let pieces = pow2_cover(vma.base, vma.len);
        let mut installed = Vec::new();
        for &(base, k) in &pieces {
            let entry = TcamEntry::new(pdid, base, k);
            match self.tcam.insert(entry, pc) {
                Ok(_) => installed.push(entry),
                Err(full) => {
                    for e in installed {
                        self.tcam.remove(&e);
                    }
                    return Err(full);
                }
            }
        }
        for entry in installed {
            self.coalesce_from(entry);
        }
        Ok(())
    }

    /// Whether any existing entry of `pdid` overlaps `vma` (the
    /// disjointness check behind [`ProtectionTable::grant`]; control-plane
    /// cold path, so the linear descendant scan is fine).
    fn overlaps(&self, pdid: Pdid, vma: Vma) -> bool {
        // An existing entry covering (or equal to) a piece of the vma.
        for (base, _) in pow2_cover(vma.base, vma.len) {
            if self.tcam.peek_lookup(pdid, base).is_some() {
                return true;
            }
        }
        // An existing entry nested strictly inside the vma.
        let end = vma.base + vma.len;
        self.tcam
            .iter()
            .any(|(e, _)| e.ctx == pdid && e.base >= vma.base && e.base < end)
    }

    /// Repeatedly merges `entry` with its buddy while both exist with the
    /// same permission class (§4.2 "coalesces adjacent entries").
    fn coalesce_from(&mut self, mut entry: TcamEntry) {
        loop {
            let Some(&pc) = self.tcam.get(&entry) else {
                return;
            };
            let buddy = entry.buddy();
            let Some(&buddy_pc) = self.tcam.get(&buddy) else {
                return;
            };
            if buddy_pc != pc {
                return;
            }
            self.tcam.remove(&entry);
            self.tcam.remove(&buddy);
            let parent = entry.parent();
            self.tcam
                .insert(parent, pc)
                .expect("merge frees two entries, parent always fits");
            entry = parent;
        }
    }

    /// Revokes the entries covering `<pdid, vma>`. Returns entries removed.
    ///
    /// The vma must have been granted as a whole (partial revocation of a
    /// coalesced entry re-splits it first).
    pub fn revoke(&mut self, pdid: Pdid, vma: Vma) -> usize {
        let mut removed = 0;
        for (base, k) in pow2_cover(vma.base, vma.len) {
            removed += self.revoke_range(pdid, base, k);
        }
        removed
    }

    fn revoke_range(&mut self, pdid: Pdid, base: u64, k: u8) -> usize {
        let entry = TcamEntry::new(pdid, base, k);
        if self.tcam.remove(&entry).is_some() {
            return 1;
        }
        // The range may be covered by a coalesced ancestor: split it down.
        if let Some((covering, &pc)) = self.tcam.lookup(pdid, base) {
            if covering.size_log2 > k {
                self.tcam.remove(&covering);
                // Re-install the ancestor minus [base, base + 2^k).
                let mut cur = covering;
                while cur.size_log2 > k {
                    let left = TcamEntry::new(pdid, cur.base, cur.size_log2 - 1);
                    let right =
                        TcamEntry::new(pdid, cur.base + (1 << (cur.size_log2 - 1)), left.size_log2);
                    let (keep, descend) =
                        if base >> (cur.size_log2 - 1) == left.base >> (cur.size_log2 - 1) {
                            (right, left)
                        } else {
                            (left, right)
                        };
                    self.tcam
                        .insert(keep, pc)
                        .expect("split of removed entry fits");
                    cur = descend;
                }
                return 1;
            }
        }
        0
    }

    /// Checks whether `<pdid>` may perform `kind` at `vaddr` — the data-
    /// plane TCAM parallel range match.
    pub fn check(&mut self, pdid: Pdid, vaddr: u64, kind: AccessKind) -> bool {
        self.check_resolve(pdid, vaddr, kind).0
    }

    /// [`check`] that also returns the matched grant, so a batched
    /// datapath can memoize the entry and serve later ops in the same
    /// range without repeating the TCAM walk. Counter behaviour is
    /// identical to [`check`].
    ///
    /// [`check`]: ProtectionTable::check
    pub fn check_resolve(
        &mut self,
        pdid: Pdid,
        vaddr: u64,
        kind: AccessKind,
    ) -> (bool, Option<(TcamEntry, PermClass)>) {
        self.checks += 1;
        match self.tcam.lookup(pdid, vaddr) {
            Some((entry, &pc)) => {
                let allowed = pc.allows(kind);
                if !allowed {
                    self.denials += 1;
                }
                (allowed, Some((entry, pc)))
            }
            None => {
                self.denials += 1;
                (false, None)
            }
        }
    }

    /// Counter-free grant resolution: the entry and class covering
    /// `<pdid, vaddr>`, if any, without recording a check. Used to
    /// pre-resolve a batch's grants; per-op accounting then goes through
    /// [`ProtectionTable::note_memoized_check`].
    pub fn resolve_grant(&self, pdid: Pdid, vaddr: u64) -> Option<(TcamEntry, PermClass)> {
        self.tcam.peek_lookup(pdid, vaddr).map(|(e, &pc)| (e, pc))
    }

    /// Accounts one check served from a batch's memoized grant, keeping
    /// the `checks`/`denials` counters identical to the scalar path.
    pub fn note_memoized_check(&mut self, allowed: bool) {
        self.checks += 1;
        if !allowed {
            self.denials += 1;
        }
    }

    /// Installed TCAM entries (Figure 8 center counts these).
    pub fn rule_count(&self) -> usize {
        self.tcam.used()
    }

    /// Installed TCAM entries belonging to one protection domain — the
    /// quantity a multi-tenant control plane must drive back to zero when
    /// the domain's owner departs.
    pub fn entries_for(&self, pdid: Pdid) -> usize {
        self.tcam.iter().filter(|(e, _)| e.ctx == pdid).count()
    }

    /// Checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Checks denied.
    pub fn denials(&self) -> u64 {
        self.denials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_class_semantics() {
        assert!(PermClass::ReadWrite.allows(AccessKind::Write));
        assert!(PermClass::ReadWrite.allows(AccessKind::Read));
        assert!(PermClass::ReadOnly.allows(AccessKind::Read));
        assert!(!PermClass::ReadOnly.allows(AccessKind::Write));
        assert!(!PermClass::None.allows(AccessKind::Read));
    }

    #[test]
    fn grant_and_check_basic() {
        let mut p = ProtectionTable::new(64);
        p.grant(7, Vma::new(0x4000, 0x4000), PermClass::ReadWrite)
            .unwrap();
        assert!(p.check(7, 0x4000, AccessKind::Write));
        assert!(p.check(7, 0x7FFF, AccessKind::Read));
        assert!(!p.check(7, 0x8000, AccessKind::Read), "past the vma");
        assert!(!p.check(8, 0x4000, AccessKind::Read), "other domain");
        assert_eq!(p.denials(), 2);
        assert_eq!(p.checks(), 4);
    }

    #[test]
    fn pow2_vma_is_single_entry() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x10_0000, 1 << 20), PermClass::ReadOnly)
            .unwrap();
        assert_eq!(p.rule_count(), 1);
    }

    #[test]
    fn unaligned_vma_splits_bounded() {
        let mut p = ProtectionTable::new(64);
        // 12 KB = 4K + 8K pieces = 2 entries <= ceil(log2(12K)).
        p.grant(1, Vma::new(0x1000, 0x3000), PermClass::ReadWrite)
            .unwrap();
        assert!(p.rule_count() <= 14);
        assert!(p.check(1, 0x1000, AccessKind::Write));
        assert!(p.check(1, 0x3FFF, AccessKind::Write));
        assert!(!p.check(1, 0x4000, AccessKind::Read));
    }

    #[test]
    fn adjacent_grants_coalesce() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(1, Vma::new(0x9000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        assert_eq!(p.rule_count(), 1, "buddies merged into one 8K entry");
        assert!(p.check(1, 0x8000, AccessKind::Write));
        assert!(p.check(1, 0x9FFF, AccessKind::Write));
    }

    #[test]
    fn coalescing_cascades() {
        let mut p = ProtectionTable::new(64);
        for i in 0..4u64 {
            p.grant(
                1,
                Vma::new(0x1_0000 + i * 0x1000, 0x1000),
                PermClass::ReadOnly,
            )
            .unwrap();
        }
        assert_eq!(p.rule_count(), 1, "four 4K buddies -> one 16K entry");
    }

    #[test]
    fn different_classes_do_not_coalesce() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(1, Vma::new(0x9000, 0x1000), PermClass::ReadOnly)
            .unwrap();
        assert_eq!(p.rule_count(), 2);
        assert!(p.check(1, 0x8000, AccessKind::Write));
        assert!(!p.check(1, 0x9000, AccessKind::Write));
    }

    #[test]
    fn different_domains_do_not_coalesce() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(2, Vma::new(0x9000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    fn revoke_removes_access() {
        let mut p = ProtectionTable::new(64);
        let vma = Vma::new(0x4000, 0x4000);
        p.grant(1, vma, PermClass::ReadWrite).unwrap();
        assert_eq!(p.revoke(1, vma), 1);
        assert!(!p.check(1, 0x4000, AccessKind::Read));
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn revoke_part_of_coalesced_entry_resplits() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(1, Vma::new(0x9000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        assert_eq!(p.rule_count(), 1);
        // Revoke just the first page: the 8K entry must split.
        assert_eq!(p.revoke(1, Vma::new(0x8000, 0x1000)), 1);
        assert!(!p.check(1, 0x8000, AccessKind::Read));
        assert!(p.check(1, 0x9000, AccessKind::Write), "other half intact");
    }

    #[test]
    fn session_isolation_use_case() {
        // A database assigns one domain per client session (§4.2).
        let mut p = ProtectionTable::new(64);
        let session_a = 100;
        let session_b = 101;
        let buf_a = Vma::new(0x10_0000, 1 << 16);
        let buf_b = Vma::new(0x20_0000, 1 << 16);
        p.grant(session_a, buf_a, PermClass::ReadWrite).unwrap();
        p.grant(session_b, buf_b, PermClass::ReadWrite).unwrap();
        assert!(p.check(session_a, buf_a.base, AccessKind::Write));
        assert!(!p.check(session_a, buf_b.base, AccessKind::Read));
        assert!(!p.check(session_b, buf_a.base, AccessKind::Read));
    }

    #[test]
    fn resolve_grant_and_memoized_check_mirror_scalar_counters() {
        let mut p = ProtectionTable::new(64);
        let vma = Vma::new(0x4000, 0x4000);
        p.grant(7, vma, PermClass::ReadOnly).unwrap();
        // Counter-free resolution returns the covering entry.
        let (entry, pc) = p.resolve_grant(7, 0x5000).unwrap();
        assert!(entry.matches(0x4000) && entry.matches(0x7FFF));
        assert_eq!(pc, PermClass::ReadOnly);
        assert_eq!(p.checks(), 0, "resolve_grant records no check");
        assert!(p.resolve_grant(8, 0x5000).is_none(), "other domain");
        // A memoized check accounts exactly like a scalar one.
        p.note_memoized_check(pc.allows(AccessKind::Read));
        p.note_memoized_check(pc.allows(AccessKind::Write));
        let mut scalar = ProtectionTable::new(64);
        scalar.grant(7, vma, PermClass::ReadOnly).unwrap();
        scalar.check(7, 0x5000, AccessKind::Read);
        scalar.check(7, 0x5000, AccessKind::Write);
        assert_eq!((p.checks(), p.denials()), (scalar.checks(), scalar.denials()));
        // check_resolve is check plus the matched grant.
        let (allowed, grant) = scalar.check_resolve(7, 0x5000, AccessKind::Read);
        assert!(allowed);
        assert_eq!(grant, Some((entry, pc)));
        let (allowed, grant) = scalar.check_resolve(9, 0x5000, AccessKind::Read);
        assert!(!allowed);
        assert_eq!(grant, None);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn nested_grant_rejected() {
        // The batched datapath's grant memo relies on per-domain grants
        // being disjoint; stacking a nested entry must be refused loudly
        // rather than silently shadowing LPM.
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x0, 1 << 20), PermClass::ReadOnly).unwrap();
        let _ = p.grant(1, Vma::new(0x4000, 0x4000), PermClass::ReadWrite);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn enclosing_grant_rejected() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x4000, 0x4000), PermClass::ReadWrite).unwrap();
        let _ = p.grant(1, Vma::new(0x0, 1 << 20), PermClass::ReadOnly);
    }

    #[test]
    fn disjoint_and_cross_domain_grants_accepted() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x0, 0x4000), PermClass::ReadWrite).unwrap();
        p.grant(1, Vma::new(0x4000, 0x4000), PermClass::ReadOnly).unwrap();
        // Same range under another domain is not an overlap.
        p.grant(2, Vma::new(0x0, 0x4000), PermClass::ReadWrite).unwrap();
        // Revoke + re-grant is the sanctioned way to change a range.
        p.revoke(1, Vma::new(0x0, 0x4000));
        p.grant(1, Vma::new(0x0, 0x4000), PermClass::ReadOnly).unwrap();
        assert!(!p.check(1, 0x0, AccessKind::Write));
    }

    #[test]
    fn tcam_exhaustion_rolls_back_grant() {
        let mut p = ProtectionTable::new(1);
        // Requires 2 entries.
        let err = p.grant(1, Vma::new(0x1000, 0x3000), PermClass::ReadOnly);
        assert!(err.is_err());
        assert_eq!(p.rule_count(), 0);
    }
}
