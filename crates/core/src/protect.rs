//! Domain-based memory protection (paper §4.2).
//!
//! MIND decouples protection from translation: permissions attach to
//! `<protection domain, vma>` pairs of arbitrary size, stored as TCAM range
//! entries. A protection domain (PDID) identifies *who* may access — for
//! unmodified applications MIND uses the PID, but richer schemes (per-client
//! sessions of a database, capability-style domains) are expressible. The
//! permission class (PC) identifies *what* they may do.
//!
//! TCAM entries match power-of-two ranges only; arbitrary vmas are split by
//! [`pow2_cover`] (bounded by ⌈log₂ s⌉ pieces), and the control plane keeps
//! entry counts low by (1) power-of-two aligned allocation so each vma is
//! one entry and (2) coalescing buddy entries with identical domain and
//! class.
//!
//! ## Representation
//!
//! Grants within a domain are **disjoint by invariant** (see
//! [`ProtectionTable::grant`]), so a lookup has at most one match and LPM
//! priority is vacuous. The table therefore stores each domain's entries as
//! packed 8-byte [`Row`]s keyed by PDID rather than sharing a
//! level-indexed TCAM map: a million-tenant population holds one `Row`
//! per tenant after coalescing (the [`Rows::One`] inline case — no heap
//! allocation at all), instead of a hash entry in a 49-level shared map.
//! Lookups scan the domain's own rows — O(rows-in-domain), and
//! coalescing keeps that a handful.

use mind_sim::hash::FastMap;
use mind_switch::tcam::{pow2_cover, TcamEntry, TcamFull, VA_BITS};

use crate::addr::Vma;
use crate::system::AccessKind;

/// Protection domain identifier (PID for unmodified applications).
pub type Pdid = u64;

/// Permission classes, mirroring Linux memory permissions for unmodified
/// applications (richer classes are possible, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PermClass {
    /// No access.
    None,
    /// Loads only.
    ReadOnly,
    /// Loads and stores.
    ReadWrite,
}

impl PermClass {
    /// Whether the class admits the access kind.
    pub fn allows(self, kind: AccessKind) -> bool {
        match (self, kind) {
            (PermClass::None, _) => false,
            (PermClass::ReadOnly, AccessKind::Read) => true,
            (PermClass::ReadOnly, AccessKind::Write) => false,
            (PermClass::ReadWrite, _) => true,
        }
    }

    fn to_bits(self) -> u64 {
        match self {
            PermClass::None => 0,
            PermClass::ReadOnly => 1,
            PermClass::ReadWrite => 2,
        }
    }

    fn from_bits(bits: u64) -> Self {
        match bits {
            0 => PermClass::None,
            1 => PermClass::ReadOnly,
            _ => PermClass::ReadWrite,
        }
    }
}

/// One protection entry packed into 8 bytes, laid out `(base << 8) |
/// (size_log2 << 2) | class`: a 48-bit canonical-VA range base, the
/// range's `size_log2` (6 bits), and the permission class (2 bits). The
/// range semantics are exactly [`TcamEntry`]'s — [`Row::entry`] round-trips
/// into one for callers that memoize grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Row(u64);

impl Row {
    fn new(base: u64, size_log2: u8, pc: PermClass) -> Row {
        debug_assert!(size_log2 <= VA_BITS, "range wider than address space");
        debug_assert_eq!(
            base & ((1u64 << size_log2) - 1),
            0,
            "row base must be aligned to its size"
        );
        debug_assert!(base < 1u64 << VA_BITS, "base beyond canonical VAs");
        Row((base << 8) | ((size_log2 as u64) << 2) | pc.to_bits())
    }

    fn base(self) -> u64 {
        self.0 >> 8
    }

    fn size_log2(self) -> u8 {
        ((self.0 >> 2) & 0x3F) as u8
    }

    fn pc(self) -> PermClass {
        PermClass::from_bits(self.0 & 0x3)
    }

    /// Whether `addr` falls inside this row's range.
    fn matches(self, addr: u64) -> bool {
        addr >> self.size_log2() == self.base() >> self.size_log2()
    }

    /// Whether this row covers exactly `[base, base + 2^k)`.
    fn is(self, base: u64, k: u8) -> bool {
        self.base() == base && self.size_log2() == k
    }

    /// The equivalent [`TcamEntry`] under domain `pdid`.
    fn entry(self, pdid: Pdid) -> TcamEntry {
        TcamEntry::new(pdid, self.base(), self.size_log2())
    }
}

/// A domain's installed rows. Coalescing drives most domains to a single
/// entry, so the one-row case is stored inline — a million-tenant table
/// costs one map slot and zero side allocations per tenant.
#[derive(Debug, Clone)]
enum Rows {
    One(Row),
    Many(Vec<Row>),
}

impl Rows {
    fn iter(&self) -> std::slice::Iter<'_, Row> {
        match self {
            Rows::One(row) => std::slice::from_ref(row).iter(),
            Rows::Many(rows) => rows.iter(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Rows::One(_) => 1,
            Rows::Many(rows) => rows.len(),
        }
    }

    fn push(&mut self, row: Row) {
        match self {
            Rows::One(first) => *self = Rows::Many(vec![*first, row]),
            Rows::Many(rows) => rows.push(row),
        }
    }
}

/// The in-switch protection table.
#[derive(Debug, Clone)]
pub struct ProtectionTable {
    /// Per-domain packed rows; a domain with no grants holds no slot.
    rows: FastMap<Pdid, Rows>,
    capacity: usize,
    used: usize,
    checks: u64,
    denials: u64,
}

impl ProtectionTable {
    /// Creates a table with `tcam_capacity` entries.
    pub fn new(tcam_capacity: usize) -> Self {
        ProtectionTable {
            rows: FastMap::default(),
            capacity: tcam_capacity,
            used: 0,
            checks: 0,
            denials: 0,
        }
    }

    /// Grants `pc` to `<pdid, vma>`; splits unaligned vmas into
    /// power-of-two pieces and coalesces buddies afterwards.
    ///
    /// Rolls back on TCAM exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if the vma overlaps an existing grant of the same domain.
    /// A domain's grants are **disjoint by invariant** (change a range's
    /// class with [`ProtectionTable::revoke`] + re-grant, not by stacking
    /// nested entries): the control plane allocates disjoint vmas, and
    /// the batched datapath's grant memo relies on the covering entry
    /// being unique — a nested more-specific entry would win the TCAM's
    /// LPM in the scalar path but could be shadowed in the memo.
    pub fn grant(&mut self, pdid: Pdid, vma: Vma, pc: PermClass) -> Result<(), TcamFull> {
        assert!(
            !self.overlaps(pdid, vma),
            "protection grants within a domain must be disjoint \
             (revoke before re-granting {:#x}+{:#x} for domain {pdid})",
            vma.base,
            vma.len,
        );
        let pieces = pow2_cover(vma.base, vma.len);
        let mut installed = Vec::new();
        for &(base, k) in &pieces {
            let row = Row::new(base, k, pc);
            match self.insert_row(pdid, row) {
                Ok(()) => installed.push(row),
                Err(full) => {
                    for r in installed {
                        self.remove_row(pdid, r.base(), r.size_log2());
                    }
                    return Err(full);
                }
            }
        }
        for row in installed {
            self.coalesce_from(pdid, row.base(), row.size_log2());
        }
        Ok(())
    }

    /// Whether any existing entry of `pdid` overlaps `vma` (the
    /// disjointness check behind [`ProtectionTable::grant`]; control-plane
    /// cold path, and only scans the domain's own rows).
    fn overlaps(&self, pdid: Pdid, vma: Vma) -> bool {
        let end = vma.base + vma.len;
        self.rows.get(&pdid).is_some_and(|rows| {
            rows.iter().any(|r| {
                let rbase = r.base();
                let rend = rbase + (1u64 << r.size_log2());
                rbase < end && vma.base < rend
            })
        })
    }

    /// Installs one row under `pdid`, or reports the table full.
    fn insert_row(&mut self, pdid: Pdid, row: Row) -> Result<(), TcamFull> {
        if self.used >= self.capacity {
            return Err(TcamFull);
        }
        match self.rows.entry(pdid) {
            std::collections::hash_map::Entry::Occupied(mut slot) => slot.get_mut().push(row),
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Rows::One(row));
            }
        }
        self.used += 1;
        Ok(())
    }

    /// Removes the row covering exactly `[base, base + 2^k)`, returning
    /// its class. Drops the domain's map slot when its last row goes.
    fn remove_row(&mut self, pdid: Pdid, base: u64, k: u8) -> Option<PermClass> {
        let rows = self.rows.get_mut(&pdid)?;
        let (pc, now_empty) = match rows {
            Rows::One(row) => {
                if !row.is(base, k) {
                    return None;
                }
                (row.pc(), true)
            }
            Rows::Many(many) => {
                let i = many.iter().position(|r| r.is(base, k))?;
                let pc = many.swap_remove(i).pc();
                if many.len() == 1 {
                    let only = many[0];
                    *rows = Rows::One(only);
                }
                (pc, false)
            }
        };
        if now_empty {
            self.rows.remove(&pdid);
        }
        self.used -= 1;
        Some(pc)
    }

    /// The class of the row covering exactly `[base, base + 2^k)`, if
    /// installed.
    fn class_of(&self, pdid: Pdid, base: u64, k: u8) -> Option<PermClass> {
        self.rows
            .get(&pdid)?
            .iter()
            .find(|r| r.is(base, k))
            .map(|r| r.pc())
    }

    /// The domain's row covering `vaddr`, if any. Disjointness makes the
    /// first match the only match.
    fn matching(&self, pdid: Pdid, vaddr: u64) -> Option<Row> {
        self.rows
            .get(&pdid)?
            .iter()
            .copied()
            .find(|r| r.matches(vaddr))
    }

    /// Repeatedly merges `[base, base + 2^k)` with its buddy while both
    /// exist with the same permission class (§4.2 "coalesces adjacent
    /// entries"). Buddy/parent arithmetic matches [`TcamEntry::buddy`] /
    /// [`TcamEntry::parent`].
    fn coalesce_from(&mut self, pdid: Pdid, mut base: u64, mut k: u8) {
        loop {
            let Some(pc) = self.class_of(pdid, base, k) else {
                return;
            };
            let buddy = base ^ (1u64 << k);
            let Some(buddy_pc) = self.class_of(pdid, buddy, k) else {
                return;
            };
            if buddy_pc != pc {
                return;
            }
            self.remove_row(pdid, base, k);
            self.remove_row(pdid, buddy, k);
            base &= !(1u64 << k);
            k += 1;
            self.insert_row(pdid, Row::new(base, k, pc))
                .expect("merge frees two entries, parent always fits");
        }
    }

    /// Revokes the entries covering `<pdid, vma>`. Returns entries removed.
    ///
    /// The vma must have been granted as a whole (partial revocation of a
    /// coalesced entry re-splits it first).
    pub fn revoke(&mut self, pdid: Pdid, vma: Vma) -> usize {
        let mut removed = 0;
        for (base, k) in pow2_cover(vma.base, vma.len) {
            removed += self.revoke_range(pdid, base, k);
        }
        removed
    }

    fn revoke_range(&mut self, pdid: Pdid, base: u64, k: u8) -> usize {
        if self.remove_row(pdid, base, k).is_some() {
            return 1;
        }
        // The range may be covered by a coalesced ancestor: split it down.
        if let Some(covering) = self.matching(pdid, base) {
            if covering.size_log2() > k {
                let pc = covering.pc();
                self.remove_row(pdid, covering.base(), covering.size_log2());
                // Re-install the ancestor minus [base, base + 2^k).
                let (mut cur_base, mut cur_k) = (covering.base(), covering.size_log2());
                while cur_k > k {
                    cur_k -= 1;
                    let half = 1u64 << cur_k;
                    let (keep, descend) = if base & half == 0 {
                        (cur_base + half, cur_base)
                    } else {
                        (cur_base, cur_base + half)
                    };
                    self.insert_row(pdid, Row::new(keep, cur_k, pc))
                        .expect("split of removed entry fits");
                    cur_base = descend;
                }
                return 1;
            }
        }
        0
    }

    /// Checks whether `<pdid>` may perform `kind` at `vaddr` — the data-
    /// plane TCAM parallel range match.
    pub fn check(&mut self, pdid: Pdid, vaddr: u64, kind: AccessKind) -> bool {
        self.check_resolve(pdid, vaddr, kind).0
    }

    /// [`check`] that also returns the matched grant, so a batched
    /// datapath can memoize the entry and serve later ops in the same
    /// range without repeating the TCAM walk. Counter behaviour is
    /// identical to [`check`].
    ///
    /// [`check`]: ProtectionTable::check
    pub fn check_resolve(
        &mut self,
        pdid: Pdid,
        vaddr: u64,
        kind: AccessKind,
    ) -> (bool, Option<(TcamEntry, PermClass)>) {
        self.checks += 1;
        match self.matching(pdid, vaddr) {
            Some(row) => {
                let allowed = row.pc().allows(kind);
                if !allowed {
                    self.denials += 1;
                }
                (allowed, Some((row.entry(pdid), row.pc())))
            }
            None => {
                self.denials += 1;
                (false, None)
            }
        }
    }

    /// Counter-free grant resolution: the entry and class covering
    /// `<pdid, vaddr>`, if any, without recording a check. Used to
    /// pre-resolve a batch's grants; per-op accounting then goes through
    /// [`ProtectionTable::note_memoized_check`].
    pub fn resolve_grant(&self, pdid: Pdid, vaddr: u64) -> Option<(TcamEntry, PermClass)> {
        self.matching(pdid, vaddr)
            .map(|row| (row.entry(pdid), row.pc()))
    }

    /// Accounts one check served from a batch's memoized grant, keeping
    /// the `checks`/`denials` counters identical to the scalar path.
    pub fn note_memoized_check(&mut self, allowed: bool) {
        self.checks += 1;
        if !allowed {
            self.denials += 1;
        }
    }

    /// Installed TCAM entries (Figure 8 center counts these).
    pub fn rule_count(&self) -> usize {
        self.used
    }

    /// Installed TCAM entries belonging to one protection domain — the
    /// quantity a multi-tenant control plane must drive back to zero when
    /// the domain's owner departs.
    pub fn entries_for(&self, pdid: Pdid) -> usize {
        self.rows.get(&pdid).map_or(0, Rows::len)
    }

    /// Checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Checks denied.
    pub fn denials(&self) -> u64 {
        self.denials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_class_semantics() {
        assert!(PermClass::ReadWrite.allows(AccessKind::Write));
        assert!(PermClass::ReadWrite.allows(AccessKind::Read));
        assert!(PermClass::ReadOnly.allows(AccessKind::Read));
        assert!(!PermClass::ReadOnly.allows(AccessKind::Write));
        assert!(!PermClass::None.allows(AccessKind::Read));
    }

    #[test]
    fn row_packing_round_trips() {
        for &(base, k, pc) in &[
            (0u64, 0u8, PermClass::None),
            (0x4000, 12, PermClass::ReadOnly),
            ((1u64 << VA_BITS) - (1 << 20), 20, PermClass::ReadWrite),
            (0, VA_BITS, PermClass::ReadWrite),
        ] {
            let row = Row::new(base, k, pc);
            assert_eq!(row.base(), base);
            assert_eq!(row.size_log2(), k);
            assert_eq!(row.pc(), pc);
            assert_eq!(row.entry(7), TcamEntry::new(7, base, k));
        }
    }

    #[test]
    fn grant_and_check_basic() {
        let mut p = ProtectionTable::new(64);
        p.grant(7, Vma::new(0x4000, 0x4000), PermClass::ReadWrite)
            .unwrap();
        assert!(p.check(7, 0x4000, AccessKind::Write));
        assert!(p.check(7, 0x7FFF, AccessKind::Read));
        assert!(!p.check(7, 0x8000, AccessKind::Read), "past the vma");
        assert!(!p.check(8, 0x4000, AccessKind::Read), "other domain");
        assert_eq!(p.denials(), 2);
        assert_eq!(p.checks(), 4);
    }

    #[test]
    fn pow2_vma_is_single_entry() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x10_0000, 1 << 20), PermClass::ReadOnly)
            .unwrap();
        assert_eq!(p.rule_count(), 1);
    }

    #[test]
    fn unaligned_vma_splits_bounded() {
        let mut p = ProtectionTable::new(64);
        // 12 KB = 4K + 8K pieces = 2 entries <= ceil(log2(12K)).
        p.grant(1, Vma::new(0x1000, 0x3000), PermClass::ReadWrite)
            .unwrap();
        assert!(p.rule_count() <= 14);
        assert!(p.check(1, 0x1000, AccessKind::Write));
        assert!(p.check(1, 0x3FFF, AccessKind::Write));
        assert!(!p.check(1, 0x4000, AccessKind::Read));
    }

    #[test]
    fn adjacent_grants_coalesce() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(1, Vma::new(0x9000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        assert_eq!(p.rule_count(), 1, "buddies merged into one 8K entry");
        assert!(p.check(1, 0x8000, AccessKind::Write));
        assert!(p.check(1, 0x9FFF, AccessKind::Write));
    }

    #[test]
    fn coalescing_cascades() {
        let mut p = ProtectionTable::new(64);
        for i in 0..4u64 {
            p.grant(
                1,
                Vma::new(0x1_0000 + i * 0x1000, 0x1000),
                PermClass::ReadOnly,
            )
            .unwrap();
        }
        assert_eq!(p.rule_count(), 1, "four 4K buddies -> one 16K entry");
    }

    #[test]
    fn different_classes_do_not_coalesce() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(1, Vma::new(0x9000, 0x1000), PermClass::ReadOnly)
            .unwrap();
        assert_eq!(p.rule_count(), 2);
        assert!(p.check(1, 0x8000, AccessKind::Write));
        assert!(!p.check(1, 0x9000, AccessKind::Write));
    }

    #[test]
    fn different_domains_do_not_coalesce() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(2, Vma::new(0x9000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        assert_eq!(p.rule_count(), 2);
    }

    #[test]
    fn revoke_removes_access() {
        let mut p = ProtectionTable::new(64);
        let vma = Vma::new(0x4000, 0x4000);
        p.grant(1, vma, PermClass::ReadWrite).unwrap();
        assert_eq!(p.revoke(1, vma), 1);
        assert!(!p.check(1, 0x4000, AccessKind::Read));
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn revoke_part_of_coalesced_entry_resplits() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x8000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        p.grant(1, Vma::new(0x9000, 0x1000), PermClass::ReadWrite)
            .unwrap();
        assert_eq!(p.rule_count(), 1);
        // Revoke just the first page: the 8K entry must split.
        assert_eq!(p.revoke(1, Vma::new(0x8000, 0x1000)), 1);
        assert!(!p.check(1, 0x8000, AccessKind::Read));
        assert!(p.check(1, 0x9000, AccessKind::Write), "other half intact");
    }

    #[test]
    fn session_isolation_use_case() {
        // A database assigns one domain per client session (§4.2).
        let mut p = ProtectionTable::new(64);
        let session_a = 100;
        let session_b = 101;
        let buf_a = Vma::new(0x10_0000, 1 << 16);
        let buf_b = Vma::new(0x20_0000, 1 << 16);
        p.grant(session_a, buf_a, PermClass::ReadWrite).unwrap();
        p.grant(session_b, buf_b, PermClass::ReadWrite).unwrap();
        assert!(p.check(session_a, buf_a.base, AccessKind::Write));
        assert!(!p.check(session_a, buf_b.base, AccessKind::Read));
        assert!(!p.check(session_b, buf_a.base, AccessKind::Read));
    }

    #[test]
    fn resolve_grant_and_memoized_check_mirror_scalar_counters() {
        let mut p = ProtectionTable::new(64);
        let vma = Vma::new(0x4000, 0x4000);
        p.grant(7, vma, PermClass::ReadOnly).unwrap();
        // Counter-free resolution returns the covering entry.
        let (entry, pc) = p.resolve_grant(7, 0x5000).unwrap();
        assert!(entry.matches(0x4000) && entry.matches(0x7FFF));
        assert_eq!(pc, PermClass::ReadOnly);
        assert_eq!(p.checks(), 0, "resolve_grant records no check");
        assert!(p.resolve_grant(8, 0x5000).is_none(), "other domain");
        // A memoized check accounts exactly like a scalar one.
        p.note_memoized_check(pc.allows(AccessKind::Read));
        p.note_memoized_check(pc.allows(AccessKind::Write));
        let mut scalar = ProtectionTable::new(64);
        scalar.grant(7, vma, PermClass::ReadOnly).unwrap();
        scalar.check(7, 0x5000, AccessKind::Read);
        scalar.check(7, 0x5000, AccessKind::Write);
        assert_eq!((p.checks(), p.denials()), (scalar.checks(), scalar.denials()));
        // check_resolve is check plus the matched grant.
        let (allowed, grant) = scalar.check_resolve(7, 0x5000, AccessKind::Read);
        assert!(allowed);
        assert_eq!(grant, Some((entry, pc)));
        let (allowed, grant) = scalar.check_resolve(9, 0x5000, AccessKind::Read);
        assert!(!allowed);
        assert_eq!(grant, None);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn nested_grant_rejected() {
        // The batched datapath's grant memo relies on per-domain grants
        // being disjoint; stacking a nested entry must be refused loudly
        // rather than silently shadowing LPM.
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x0, 1 << 20), PermClass::ReadOnly).unwrap();
        let _ = p.grant(1, Vma::new(0x4000, 0x4000), PermClass::ReadWrite);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn enclosing_grant_rejected() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x4000, 0x4000), PermClass::ReadWrite).unwrap();
        let _ = p.grant(1, Vma::new(0x0, 1 << 20), PermClass::ReadOnly);
    }

    #[test]
    fn disjoint_and_cross_domain_grants_accepted() {
        let mut p = ProtectionTable::new(64);
        p.grant(1, Vma::new(0x0, 0x4000), PermClass::ReadWrite).unwrap();
        p.grant(1, Vma::new(0x4000, 0x4000), PermClass::ReadOnly).unwrap();
        // Same range under another domain is not an overlap.
        p.grant(2, Vma::new(0x0, 0x4000), PermClass::ReadWrite).unwrap();
        // Revoke + re-grant is the sanctioned way to change a range.
        p.revoke(1, Vma::new(0x0, 0x4000));
        p.grant(1, Vma::new(0x0, 0x4000), PermClass::ReadOnly).unwrap();
        assert!(!p.check(1, 0x0, AccessKind::Write));
    }

    #[test]
    fn tcam_exhaustion_rolls_back_grant() {
        let mut p = ProtectionTable::new(1);
        // Requires 2 entries.
        let err = p.grant(1, Vma::new(0x1000, 0x3000), PermClass::ReadOnly);
        assert!(err.is_err());
        assert_eq!(p.rule_count(), 0);
    }

    #[test]
    fn departure_drops_every_row_and_the_domain_slot() {
        // A churn workload's whole-domain teardown: grant a few disjoint
        // vmas, revoke them all, and both the per-domain and global entry
        // counts return exactly to zero.
        let mut p = ProtectionTable::new(64);
        let vmas = [
            Vma::new(0x1_0000, 0x1000),
            Vma::new(0x4_0000, 0x3000),
            Vma::new(0x8_0000, 0x8000),
        ];
        for vma in vmas {
            p.grant(9, vma, PermClass::ReadWrite).unwrap();
        }
        assert!(p.entries_for(9) >= 3);
        for vma in vmas {
            assert!(p.revoke(9, vma) >= 1);
        }
        assert_eq!(p.entries_for(9), 0);
        assert_eq!(p.rule_count(), 0);
    }
}
