//! Storage-efficient in-network address translation (paper §4.1).
//!
//! Because the global VA space is range-partitioned across memory blades
//! with a one-to-one VA↔PA mapping inside each partition, translation needs
//! just **one entry per memory blade**: any address in a blade's range is
//! routed to that blade at `offset = vaddr - partition_base`.
//!
//! Two exceptions need *outlier entries*, stored in switch TCAM where
//! longest-prefix matching guarantees the most specific entry wins:
//!
//! - static virtual addresses embedded in unmodified binaries, and
//! - pages migrated between memory blades.

use mind_switch::tcam::{pow2_cover, Tcam, TcamEntry, TcamFull};

use crate::addr::{PhysAddr, VA_BASE};

/// An outlier translation target: the range maps to `blade` starting at
/// `pa_base` (physical offset of the range's first byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutlierTarget {
    /// Destination memory blade.
    pub blade: u16,
    /// Physical offset of the first byte of the matched range.
    pub pa_base: u64,
}

/// The translation module installed in the switch data plane.
#[derive(Debug, Clone)]
pub struct TranslationTable {
    n_blades: u16,
    blade_span: u64,
    outliers: Tcam<OutlierTarget>,
}

impl TranslationTable {
    /// Creates the table for `n_blades` partitions of `blade_span` bytes,
    /// with `tcam_capacity` outlier entries available.
    pub fn new(n_blades: u16, blade_span: u64, tcam_capacity: usize) -> Self {
        assert!(blade_span.is_power_of_two(), "blade span must be pow2");
        TranslationTable {
            n_blades,
            blade_span,
            outliers: Tcam::new(tcam_capacity),
        }
    }

    /// Translates a global virtual address to its physical location.
    ///
    /// Outlier TCAM entries (most specific) take precedence over the
    /// blade-range partition. Returns `None` for addresses outside the
    /// space.
    pub fn translate(&mut self, vaddr: u64) -> Option<PhysAddr> {
        if let Some((entry, target)) = self.outliers.lookup(0, vaddr) {
            let within = vaddr - entry.base;
            return Some(PhysAddr {
                blade: target.blade,
                offset: target.pa_base + within,
            });
        }
        self.partition_of(vaddr)
    }

    /// The range-partition translation alone — pure arithmetic, no TCAM.
    ///
    /// Equals [`TranslationTable::translate`] whenever no outlier entry
    /// covers `vaddr`; MIND's batched datapath uses it to amortize the
    /// TCAM walk across a batch after checking once that the outlier
    /// store is empty.
    #[inline]
    pub fn partition_of(&self, vaddr: u64) -> Option<PhysAddr> {
        if vaddr < VA_BASE {
            return None;
        }
        let rel = vaddr - VA_BASE;
        let blade = rel / self.blade_span;
        if blade >= self.n_blades as u64 {
            return None;
        }
        Some(PhysAddr {
            blade: blade as u16,
            offset: rel % self.blade_span,
        })
    }

    /// Installs outlier entries mapping `[va_base, va_base + len)` to
    /// `blade` at physical offset `pa_base` (page migration §4.1, or a
    /// static binary address range).
    ///
    /// The range is decomposed into power-of-two TCAM entries; on TCAM
    /// exhaustion, already-installed pieces are rolled back.
    pub fn add_outlier(
        &mut self,
        va_base: u64,
        len: u64,
        blade: u16,
        pa_base: u64,
    ) -> Result<usize, TcamFull> {
        let pieces = pow2_cover(va_base, len);
        let mut installed = Vec::new();
        for &(base, k) in &pieces {
            let entry = TcamEntry::new(0, base, k);
            let target = OutlierTarget {
                blade,
                pa_base: pa_base + (base - va_base),
            };
            match self.outliers.insert(entry, target) {
                Ok(_) => installed.push(entry),
                Err(full) => {
                    for e in installed {
                        self.outliers.remove(&e);
                    }
                    return Err(full);
                }
            }
        }
        Ok(pieces.len())
    }

    /// Removes the outlier entries covering `[va_base, va_base + len)`.
    /// Returns the number of entries removed.
    pub fn remove_outlier(&mut self, va_base: u64, len: u64) -> usize {
        pow2_cover(va_base, len)
            .into_iter()
            .filter(|&(base, k)| self.outliers.remove(&TcamEntry::new(0, base, k)).is_some())
            .count()
    }

    /// Total match-action rules consumed by translation: one per blade
    /// partition plus the outlier TCAM entries (Figure 8 center counts
    /// these).
    pub fn rule_count(&self) -> usize {
        self.n_blades as usize + self.outliers.used()
    }

    /// Outlier entries installed.
    pub fn outlier_count(&self) -> usize {
        self.outliers.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TranslationTable {
        TranslationTable::new(4, 1 << 30, 64)
    }

    #[test]
    fn range_partition_translation() {
        let mut t = table();
        let pa = t.translate(VA_BASE + 5).unwrap();
        assert_eq!(
            pa,
            PhysAddr {
                blade: 0,
                offset: 5
            }
        );
        let pa = t.translate(VA_BASE + (1 << 30) + 0x2000).unwrap();
        assert_eq!(
            pa,
            PhysAddr {
                blade: 1,
                offset: 0x2000
            }
        );
        let pa = t.translate(VA_BASE + 3 * (1 << 30)).unwrap();
        assert_eq!(pa.blade, 3);
    }

    #[test]
    fn partition_of_matches_translate_without_outliers() {
        let mut t = table();
        for addr in [0, VA_BASE - 1, VA_BASE + 5, VA_BASE + 3 * (1 << 30), VA_BASE + 4 * (1 << 30)] {
            assert_eq!(t.partition_of(addr), t.translate(addr));
        }
        // With an outlier installed, translate diverges (LPM wins) while
        // partition_of keeps reporting the underlying partition.
        let va = VA_BASE + 0x10_0000;
        t.add_outlier(va, 1 << 14, 2, 0x5000).unwrap();
        assert_eq!(t.translate(va).unwrap().blade, 2);
        assert_eq!(t.partition_of(va).unwrap().blade, 0);
    }

    #[test]
    fn out_of_space_addresses_fail() {
        let mut t = table();
        assert!(t.translate(0).is_none());
        assert!(t.translate(VA_BASE - 1).is_none());
        assert!(t.translate(VA_BASE + 4 * (1 << 30)).is_none());
    }

    #[test]
    fn one_rule_per_blade_without_outliers() {
        let t = table();
        assert_eq!(t.rule_count(), 4);
    }

    #[test]
    fn outlier_overrides_partition() {
        let mut t = table();
        // Migrate a 16 KB range from blade 0's partition to blade 2.
        let va = VA_BASE + 0x10_0000;
        t.add_outlier(va, 1 << 14, 2, 0x5000).unwrap();
        let pa = t.translate(va + 0x1234).unwrap();
        assert_eq!(
            pa,
            PhysAddr {
                blade: 2,
                offset: 0x5000 + 0x1234
            }
        );
        // Outside the migrated range, the partition still applies.
        let pa = t.translate(va + (1 << 14)).unwrap();
        assert_eq!(pa.blade, 0);
        assert_eq!(t.rule_count(), 5);
    }

    #[test]
    fn lpm_prefers_nested_outlier() {
        let mut t = table();
        let va = VA_BASE + 0x20_0000;
        t.add_outlier(va, 1 << 20, 1, 0).unwrap(); // 1 MB to blade 1.
        t.add_outlier(va + 0x4000, 1 << 12, 3, 0x9000).unwrap(); // 4 KB hole to blade 3.
        assert_eq!(t.translate(va).unwrap().blade, 1);
        assert_eq!(t.translate(va + 0x4000).unwrap().blade, 3);
        assert_eq!(t.translate(va + 0x5000).unwrap().blade, 1);
    }

    #[test]
    fn remove_outlier_restores_partition() {
        let mut t = table();
        let va = VA_BASE + 0x40_0000;
        t.add_outlier(va, 1 << 13, 2, 0).unwrap();
        assert_eq!(t.translate(va).unwrap().blade, 2);
        assert_eq!(t.remove_outlier(va, 1 << 13), 1);
        assert_eq!(t.translate(va).unwrap().blade, 0);
        assert_eq!(t.outlier_count(), 0);
    }

    #[test]
    fn unaligned_outlier_splits_into_pieces() {
        let mut t = table();
        let va = VA_BASE + 0x1000;
        // 12 KB at a 4 KB-aligned base: 4K + 8K pieces.
        let n = t.add_outlier(va, 0x3000, 1, 0x100_0000).unwrap();
        assert_eq!(n, 2);
        // Physical contiguity across pieces.
        let a = t.translate(va + 0x0FFF).unwrap();
        let b = t.translate(va + 0x1000).unwrap();
        assert_eq!(a.offset, 0x100_0000 + 0x0FFF);
        assert_eq!(b.offset, 0x100_0000 + 0x1000);
    }

    #[test]
    fn tcam_exhaustion_rolls_back() {
        let mut t = TranslationTable::new(1, 1 << 30, 1);
        let va = VA_BASE + 0x1000;
        // Needs 2 entries, capacity is 1: must fail cleanly.
        assert!(t.add_outlier(va, 0x3000, 0, 0).is_err());
        assert_eq!(t.outlier_count(), 0, "partial install rolled back");
        // A single-entry outlier still fits.
        assert!(t.add_outlier(va, 0x1000, 0, 0).is_ok());
    }
}
