//! The common interface evaluated systems implement.
//!
//! MIND, GAM, and FastSwap are compared by replaying identical memory-access
//! traces against each (the paper captures accesses with Intel PIN and
//! replays them through an emulator, §7). [`MemorySystem`] is that replay
//! interface: an access at a simulated time returns a latency breakdown the
//! harness uses to advance per-thread clocks.

use mind_sim::stats::Metrics;
use mind_sim::SimTime;

/// The type of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A LOAD.
    Read,
    /// A STORE.
    Write,
}

impl AccessKind {
    /// Whether this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Memory consistency model in force at the compute blades (paper §6.1, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyModel {
    /// Total Store Order — MIND's default. The page-fault implementation on
    /// x86 forces every write miss to block the thread.
    #[default]
    Tso,
    /// Process Store Order — writes propagate asynchronously (simulated as
    /// in the paper's MIND-PSO configuration).
    Pso,
    /// PSO plus an effectively infinite switch directory (MIND-PSO+),
    /// eliminating capacity-forced false invalidations.
    PsoPlus,
}

impl ConsistencyModel {
    /// Whether writes may complete asynchronously.
    pub fn async_writes(self) -> bool {
        !matches!(self, ConsistencyModel::Tso)
    }

    /// Whether the directory is modelled as unbounded.
    pub fn infinite_directory(self) -> bool {
        matches!(self, ConsistencyModel::PsoPlus)
    }
}

/// Where the cycles of one access went (Figure 7 right's breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Page-fault handler entry/exit and PTE setup.
    pub fault: SimTime,
    /// Network transfer + switch pipeline + memory-blade service.
    pub network: SimTime,
    /// Waiting for invalidation handlers at other blades (queueing).
    pub inv_queue: SimTime,
    /// Synchronous TLB shootdowns at invalidated blades.
    pub inv_tlb: SimTime,
    /// Local DRAM access.
    pub dram: SimTime,
    /// Software overhead (GAM's per-access user-level library checks).
    pub software: SimTime,
}

impl LatencyBreakdown {
    /// Total latency of the access.
    pub fn total(&self) -> SimTime {
        self.fault + self.network + self.inv_queue + self.inv_tlb + self.dram + self.software
    }

    /// A pure local-DRAM hit.
    pub fn local(dram: SimTime) -> Self {
        LatencyBreakdown {
            dram,
            ..Default::default()
        }
    }
}

/// Result of one memory access against a [`MemorySystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessOutcome {
    /// Latency attribution; `latency.total()` advances the thread clock.
    pub latency: LatencyBreakdown,
    /// Whether the access left the blade (page fault to remote memory).
    pub remote: bool,
    /// Invalidation requests this access triggered at other blades.
    pub invalidations: u32,
    /// Dirty pages flushed at other blades because of this access.
    pub flushed_pages: u32,
    /// Of those, pages invalidated *falsely* — dirty pages sharing the
    /// directory region but not actually requested (§4.3.1).
    pub false_invalidations: u32,
}

/// A system that can replay a memory-access trace.
///
/// Implementations: `MindCluster` (this crate), `GamSystem` and
/// `FastSwapSystem` (the `mind-baselines` crate).
pub trait MemorySystem {
    /// Performs one access by `thread` running on `blade` at time `now`.
    ///
    /// `now` is the issuing thread's clock; implementations may use it for
    /// queueing decisions. Returns the outcome whose latency the caller adds
    /// to the thread clock.
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome;

    /// Number of compute blades in the rack.
    fn n_compute(&self) -> u16;

    /// Snapshot of system-wide metrics (invalidations, remote accesses,
    /// flushed pages, directory occupancy, ...).
    fn metrics(&self) -> Metrics;

    /// Allocates a shared region of `len` bytes and returns its base
    /// virtual address. Used by the trace runner so every compared system
    /// replays the same addresses (the paper's PIN-trace methodology, §7).
    fn alloc(&mut self, len: u64) -> u64;

    /// Gives the system an opportunity to run periodic work (e.g. MIND's
    /// bounded-splitting epoch) up to time `now`.
    fn advance_to(&mut self, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write_flag() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn consistency_model_flags() {
        assert!(!ConsistencyModel::Tso.async_writes());
        assert!(ConsistencyModel::Pso.async_writes());
        assert!(ConsistencyModel::PsoPlus.async_writes());
        assert!(ConsistencyModel::PsoPlus.infinite_directory());
        assert!(!ConsistencyModel::Pso.infinite_directory());
        assert_eq!(ConsistencyModel::default(), ConsistencyModel::Tso);
    }

    #[test]
    fn breakdown_totals() {
        let b = LatencyBreakdown {
            fault: SimTime::from_nanos(500),
            network: SimTime::from_micros(8),
            inv_queue: SimTime::from_micros(2),
            inv_tlb: SimTime::from_micros(4),
            dram: SimTime::from_nanos(80),
            software: SimTime::ZERO,
        };
        assert_eq!(b.total().as_nanos(), 500 + 8_000 + 2_000 + 4_000 + 80);
    }

    #[test]
    fn local_breakdown_is_dram_only() {
        let b = LatencyBreakdown::local(SimTime::from_nanos(80));
        assert_eq!(b.total(), SimTime::from_nanos(80));
        assert_eq!(b.network, SimTime::ZERO);
    }
}
