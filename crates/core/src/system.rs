//! The common interface evaluated systems implement.
//!
//! MIND, GAM, and FastSwap are compared by replaying identical memory-access
//! traces against each (the paper captures accesses with Intel PIN and
//! replays them through an emulator, §7). [`MemorySystem`] is that replay
//! interface: an access at a simulated time returns a latency breakdown the
//! harness uses to advance per-thread clocks.

use mind_sim::stats::Metrics;
use mind_sim::SimTime;

use crate::coherence::AccessError;
use crate::engine::{ClusterEngine, ClusterStep};
use crate::protect::Pdid;

/// The type of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A LOAD.
    Read,
    /// A STORE.
    Write,
}

impl AccessKind {
    /// Whether this is a write.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// Memory consistency model in force at the compute blades (paper §6.1, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyModel {
    /// Total Store Order — MIND's default. The page-fault implementation on
    /// x86 forces every write miss to block the thread.
    #[default]
    Tso,
    /// Process Store Order — writes propagate asynchronously (simulated as
    /// in the paper's MIND-PSO configuration).
    Pso,
    /// PSO plus an effectively infinite switch directory (MIND-PSO+),
    /// eliminating capacity-forced false invalidations.
    PsoPlus,
}

impl ConsistencyModel {
    /// Whether writes may complete asynchronously.
    pub fn async_writes(self) -> bool {
        !matches!(self, ConsistencyModel::Tso)
    }

    /// Whether the directory is modelled as unbounded.
    pub fn infinite_directory(self) -> bool {
        matches!(self, ConsistencyModel::PsoPlus)
    }
}

/// Where the cycles of one access went (Figure 7 right's breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Page-fault handler entry/exit and PTE setup.
    pub fault: SimTime,
    /// Network transfer + switch pipeline + memory-blade service.
    pub network: SimTime,
    /// Waiting for invalidation handlers at other blades (queueing).
    pub inv_queue: SimTime,
    /// Synchronous TLB shootdowns at invalidated blades.
    pub inv_tlb: SimTime,
    /// Local DRAM access.
    pub dram: SimTime,
    /// Software overhead (GAM's per-access user-level library checks).
    pub software: SimTime,
    /// Fabric time hidden behind earlier in-flight operations of the same
    /// batch (memory-level parallelism under the issue/complete datapath's
    /// in-flight window). The serialized path always reports zero; under
    /// overlap the hidden share of `network` moves here, so the visible
    /// components still sum to the op's issue→complete latency and
    /// breakdowns stay additive in the BENCH reports.
    pub overlapped: SimTime,
}

impl LatencyBreakdown {
    /// Total latency of the access — the sum of every visible component
    /// (including [`LatencyBreakdown::overlapped`], which is carved *out
    /// of* `network`, never added on top).
    pub fn total(&self) -> SimTime {
        self.fault
            + self.network
            + self.inv_queue
            + self.inv_tlb
            + self.dram
            + self.software
            + self.overlapped
    }

    /// A pure local-DRAM hit.
    pub fn local(dram: SimTime) -> Self {
        LatencyBreakdown {
            dram,
            ..Default::default()
        }
    }
}

/// Result of one memory access against a [`MemorySystem`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessOutcome {
    /// Latency attribution; `latency.total()` advances the thread clock.
    pub latency: LatencyBreakdown,
    /// Whether the access left the blade (page fault to remote memory).
    pub remote: bool,
    /// Invalidation requests this access triggered at other blades.
    pub invalidations: u32,
    /// Dirty pages flushed at other blades because of this access.
    pub flushed_pages: u32,
    /// Of those, pages invalidated *falsely* — dirty pages sharing the
    /// directory region but not actually requested (§4.3.1).
    pub false_invalidations: u32,
}

/// One operation of an [`OpBatch`].
///
/// The operation addresses the system exactly like a scalar
/// [`MemorySystem::access`] call; `pdid` optionally names the protection
/// domain (tenant) issuing it — `None` means the system's default replay
/// domain.
#[derive(Debug, Clone, Copy)]
pub struct MemOp {
    /// Issue time. For *fixed* batches the caller sets it; for *chained*
    /// batches the executor fills in the actual issue time as the batch
    /// runs (op `i + 1` issues when op `i` completes plus the batch gap).
    pub at: SimTime,
    /// Compute blade issuing the operation.
    pub blade: u16,
    /// Protection domain, or `None` for the system's default domain.
    pub pdid: Option<Pdid>,
    /// Global virtual address.
    pub vaddr: u64,
    /// LOAD or STORE.
    pub kind: AccessKind,
}

/// A batch of memory operations pushed through the datapath in one call.
///
/// Two issue disciplines cover the workloads in this repo:
///
/// - **chained** (trace replay): ops belong to one issuing thread; op
///   `i + 1` issues when op `i` completes, plus a fixed inter-op `gap`
///   (think time). The executor records each op's actual issue time back
///   into [`MemOp::at`].
/// - **fixed** (serving quanta): every op issues at its preset
///   [`MemOp::at`] — the discipline of a dispatcher draining queues at a
///   quantum boundary.
///
/// Outcomes land in a parallel result vector; a batch is reusable across
/// rounds via [`OpBatch::clear`], which keeps both allocations.
///
/// The **in-flight window** (`window`, default 1) is the batch's
/// memory-level-parallelism depth: how many operations the issuing blade
/// may keep in flight at once. At 1 the batch runs with the serialized
/// semantics every pre-window release used (chained ops issue at their
/// predecessor's completion, fixed ops at their preset time) —
/// byte-identical reports. At `W > 1`, executors with an issue/complete
/// datapath (MIND) overlap up to `W` independent fabric round trips while
/// same-region directory transitions still serialize; executors without
/// one (the default scalar loop, GAM, FastSwap) ignore the window and run
/// serialized.
#[derive(Debug, Default)]
pub struct OpBatch {
    ops: Vec<MemOp>,
    results: Vec<Result<AccessOutcome, AccessError>>,
    /// Directory region each op transitioned (recorded by issue/complete
    /// executors; `None` for local hits, bypasses, and the scalar loop).
    regions: Vec<Option<(u64, u8)>>,
    gap: SimTime,
    chained: bool,
    window: u32,
}

impl OpBatch {
    /// A chained batch: each op issues when its predecessor completes,
    /// plus `gap` (the runner's per-op think time).
    pub fn chained(gap: SimTime) -> Self {
        OpBatch {
            gap,
            chained: true,
            ..Default::default()
        }
    }

    /// A fixed batch: each op issues at its preset [`MemOp::at`].
    pub fn fixed() -> Self {
        OpBatch::default()
    }

    /// Whether this batch chains issue times.
    pub fn is_chained(&self) -> bool {
        self.chained
    }

    /// The inter-op gap of a chained batch.
    pub fn gap(&self) -> SimTime {
        self.gap
    }

    /// Sets the in-flight window depth (builder-style). `0` and `1` both
    /// mean the serialized semantics.
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// The in-flight window depth (at least 1).
    pub fn window(&self) -> u32 {
        self.window.max(1)
    }

    /// Appends an operation.
    pub fn push(&mut self, op: MemOp) {
        self.ops.push(op);
    }

    /// Drops all ops and results, keeping the allocations (and the issue
    /// mode and window depth).
    pub fn clear(&mut self) {
        self.ops.clear();
        self.results.clear();
        self.regions.clear();
    }

    /// Operations queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The `i`-th operation (with its recorded issue time, once executed).
    pub fn op(&self, i: usize) -> MemOp {
        self.ops[i]
    }

    /// All operations (with recorded issue times, once executed).
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// All recorded results, in op order (empty until executed).
    pub fn results(&self) -> &[Result<AccessOutcome, AccessError>] {
        &self.results
    }

    /// Records the `i`-th op's issue time and result. Executors must
    /// record ops in order, exactly once each.
    pub fn record(&mut self, i: usize, at: SimTime, result: Result<AccessOutcome, AccessError>) {
        self.record_with_region(i, at, result, None);
    }

    /// [`OpBatch::record`] plus the directory region the op transitioned —
    /// the issue/complete executors' form, which lets callers audit the
    /// window's same-region serialization from the batch records alone.
    pub fn record_with_region(
        &mut self,
        i: usize,
        at: SimTime,
        result: Result<AccessOutcome, AccessError>,
        region: Option<(u64, u8)>,
    ) {
        debug_assert_eq!(i, self.results.len(), "results recorded in op order");
        self.ops[i].at = at;
        self.results.push(result);
        self.regions.push(region);
    }

    /// The directory region `(base, size_log2)` the `i`-th op transitioned,
    /// if the executor recorded one.
    ///
    /// # Panics
    ///
    /// Panics if the batch has not been executed through op `i`.
    pub fn region(&self, i: usize) -> Option<(u64, u8)> {
        self.regions[i]
    }

    /// The `i`-th op's completion time: its recorded issue time plus its
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if the op failed or was not executed (see
    /// [`OpBatch::outcome`]).
    pub fn completion(&self, i: usize) -> SimTime {
        self.ops[i].at + self.outcome(i).latency.total()
    }

    /// The `i`-th result.
    ///
    /// # Panics
    ///
    /// Panics if the batch has not been executed through op `i`.
    pub fn result(&self, i: usize) -> &Result<AccessOutcome, AccessError> {
        &self.results[i]
    }

    /// The `i`-th outcome, for callers that treat refusals as fatal (the
    /// trace-replay contract of [`MemorySystem::access`]).
    ///
    /// # Panics
    ///
    /// Panics if the op failed or was not executed.
    pub fn outcome(&self, i: usize) -> AccessOutcome {
        match &self.results[i] {
            Ok(outcome) => *outcome,
            Err(e) => panic!("batched access failed at {:#x}: {e}", self.ops[i].vaddr),
        }
    }
}

impl<T: MemorySystem + ?Sized> MemorySystem for Box<T> {
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome {
        (**self).access(now, blade, vaddr, kind)
    }

    fn n_compute(&self) -> u16 {
        (**self).n_compute()
    }

    fn metrics(&self) -> Metrics {
        (**self).metrics()
    }

    fn alloc(&mut self, len: u64) -> u64 {
        (**self).alloc(len)
    }

    fn advance_to(&mut self, now: SimTime) {
        (**self).advance_to(now)
    }

    /// Forwards to the inner system's implementation, preserving batched
    /// overrides through trait objects.
    fn execute_batch(&mut self, now: SimTime, batch: &mut OpBatch) {
        (**self).execute_batch(now, batch)
    }

    fn take_trace(&mut self) -> Option<mind_obs::TraceData> {
        (**self).take_trace()
    }

    fn cluster_engine(&self, window: u32, sources: u32) -> Option<ClusterEngine> {
        (**self).cluster_engine(window, sources)
    }

    fn cluster_issue(
        &mut self,
        eng: &mut ClusterEngine,
        now: SimTime,
        ready0: SimTime,
        op: &MemOp,
    ) -> Option<ClusterStep> {
        (**self).cluster_issue(eng, now, ready0, op)
    }
}

/// Adapter that forwards a system's scalar surface but keeps the trait's
/// *default* [`MemorySystem::execute_batch`] — the scalar loop — even when
/// the inner system overrides it with a batched pipeline.
///
/// This is the reference half of the datapath-equivalence story: running
/// the same schedule through `ScalarLoop<MindCluster>` and a bare
/// `MindCluster` must produce byte-identical reports (asserted by the
/// batch-equivalence suite), and the wall-clock gap between the two is the
/// batched pipeline's amortization, measured on identical simulated work
/// (the `datapath` figure). The cluster-engine methods likewise keep their
/// `None` defaults, so a `ScalarLoop` always replays turnwise — serialized
/// references stay serialized even under cluster concurrency.
pub struct ScalarLoop<S>(pub S);

impl<S: MemorySystem> MemorySystem for ScalarLoop<S> {
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome {
        self.0.access(now, blade, vaddr, kind)
    }

    fn n_compute(&self) -> u16 {
        self.0.n_compute()
    }

    fn metrics(&self) -> Metrics {
        self.0.metrics()
    }

    fn alloc(&mut self, len: u64) -> u64 {
        self.0.alloc(len)
    }

    fn advance_to(&mut self, now: SimTime) {
        self.0.advance_to(now)
    }

    fn take_trace(&mut self) -> Option<mind_obs::TraceData> {
        self.0.take_trace()
    }
}

/// A system that can replay a memory-access trace.
///
/// Implementations: `MindCluster` (this crate), `GamSystem` and
/// `FastSwapSystem` (the `mind-baselines` crate).
pub trait MemorySystem {
    /// Performs one access by `thread` running on `blade` at time `now`.
    ///
    /// `now` is the issuing thread's clock; implementations may use it for
    /// queueing decisions. Returns the outcome whose latency the caller adds
    /// to the thread clock.
    fn access(&mut self, now: SimTime, blade: u16, vaddr: u64, kind: AccessKind) -> AccessOutcome;

    /// Number of compute blades in the rack.
    fn n_compute(&self) -> u16;

    /// Snapshot of system-wide metrics (invalidations, remote accesses,
    /// flushed pages, directory occupancy, ...).
    fn metrics(&self) -> Metrics;

    /// Allocates a shared region of `len` bytes and returns its base
    /// virtual address. Used by the trace runner so every compared system
    /// replays the same addresses (the paper's PIN-trace methodology, §7).
    fn alloc(&mut self, len: u64) -> u64;

    /// Gives the system an opportunity to run periodic work (e.g. MIND's
    /// bounded-splitting epoch) up to time `now`.
    fn advance_to(&mut self, _now: SimTime) {}

    /// Executes a batch of operations starting at `now`, recording each
    /// op's issue time and outcome into the batch.
    ///
    /// The default implementation loops the scalar [`access`] path —
    /// op-for-op identical to a caller issuing each operation itself — so
    /// systems without a batched datapath (GAM, FastSwap) work unmodified;
    /// it runs serialized regardless of the batch's in-flight window
    /// (overlap is an issue/complete-datapath feature). Systems overriding
    /// this (MIND's op-batch pipeline) must preserve that contract exactly
    /// at `window <= 1`: identical per-op outcomes, issue times, and
    /// metrics as the scalar loop.
    ///
    /// Drains the system's deterministic trace, if it records one.
    ///
    /// `None` means tracing is off (or unsupported — the default); the
    /// scalar loop and baselines never trace, so comparisons stay cheap.
    fn take_trace(&mut self) -> Option<mind_obs::TraceData> {
        None
    }

    /// [`access`]: MemorySystem::access
    fn execute_batch(&mut self, now: SimTime, batch: &mut OpBatch) {
        let mut t = now;
        for i in 0..batch.len() {
            let op = batch.op(i);
            let at = if batch.is_chained() { t } else { op.at };
            self.advance_to(at);
            let outcome = self.access(at, op.blade, op.vaddr, op.kind);
            batch.record(i, at, Ok(outcome));
            t = at + outcome.latency.total() + batch.gap();
        }
    }

    /// Builds the system's cluster-wide event-driven issue engine for
    /// `sources` concurrent streams with a per-source window of `window`
    /// (see [`crate::engine`]), injecting the system's own per-NIC queue
    /// depth.
    ///
    /// `None` — the default — means the system has no issue/complete
    /// datapath to arbitrate (the scalar loop, the baselines); the runner
    /// then keeps the turnwise discipline even when cluster mode is
    /// requested.
    fn cluster_engine(&self, window: u32, sources: u32) -> Option<ClusterEngine> {
        let _ = (window, sources);
        None
    }

    /// One engine step: offers `op` — a source's next operation, ready
    /// ungated since `ready0` — to the issue gates at popped time `now`,
    /// either issuing it or reporting when to re-offer. `None` mirrors
    /// [`cluster_engine`](MemorySystem::cluster_engine)'s "no engine".
    fn cluster_issue(
        &mut self,
        eng: &mut ClusterEngine,
        now: SimTime,
        ready0: SimTime,
        op: &MemOp,
    ) -> Option<ClusterStep> {
        let _ = (eng, now, ready0, op);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write_flag() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn consistency_model_flags() {
        assert!(!ConsistencyModel::Tso.async_writes());
        assert!(ConsistencyModel::Pso.async_writes());
        assert!(ConsistencyModel::PsoPlus.async_writes());
        assert!(ConsistencyModel::PsoPlus.infinite_directory());
        assert!(!ConsistencyModel::Pso.infinite_directory());
        assert_eq!(ConsistencyModel::default(), ConsistencyModel::Tso);
    }

    #[test]
    fn breakdown_totals() {
        let b = LatencyBreakdown {
            fault: SimTime::from_nanos(500),
            network: SimTime::from_micros(8),
            inv_queue: SimTime::from_micros(2),
            inv_tlb: SimTime::from_micros(4),
            dram: SimTime::from_nanos(80),
            software: SimTime::ZERO,
            overlapped: SimTime::ZERO,
        };
        assert_eq!(b.total().as_nanos(), 500 + 8_000 + 2_000 + 4_000 + 80);
    }

    /// The additivity contract behind the BENCH breakdowns: `total()` is
    /// exactly the sum of every visible component, `overlapped` included —
    /// moving fabric time from `network` into `overlapped` (what the
    /// in-flight window does) never changes the total.
    #[test]
    fn breakdown_stays_additive_with_overlap() {
        let mut b = LatencyBreakdown {
            fault: SimTime::from_nanos(1),
            network: SimTime::from_nanos(2),
            inv_queue: SimTime::from_nanos(4),
            inv_tlb: SimTime::from_nanos(8),
            dram: SimTime::from_nanos(16),
            software: SimTime::from_nanos(32),
            overlapped: SimTime::from_nanos(64),
        };
        assert_eq!(
            b.total(),
            b.fault + b.network + b.inv_queue + b.inv_tlb + b.dram + b.software + b.overlapped,
            "total is the sum of all visible components"
        );
        let before = b.total();
        // Hide half the remaining network time behind earlier in-flight ops.
        let hidden = SimTime::from_nanos(1);
        b.network = b.network.saturating_sub(hidden);
        b.overlapped += hidden;
        assert_eq!(b.total(), before, "overlap attribution preserves the total");
    }

    #[test]
    fn local_breakdown_is_dram_only() {
        let b = LatencyBreakdown::local(SimTime::from_nanos(80));
        assert_eq!(b.total(), SimTime::from_nanos(80));
        assert_eq!(b.network, SimTime::ZERO);
    }

    fn op(vaddr: u64) -> MemOp {
        MemOp {
            at: SimTime::ZERO,
            blade: 0,
            pdid: None,
            vaddr,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn op_batch_clear_keeps_mode() {
        let mut b = OpBatch::chained(SimTime::from_nanos(100));
        assert!(b.is_chained());
        assert_eq!(b.gap(), SimTime::from_nanos(100));
        b.push(op(0x1000));
        b.record(0, SimTime::from_nanos(5), Ok(AccessOutcome::default()));
        assert_eq!(b.op(0).at, SimTime::from_nanos(5), "issue time recorded");
        b.clear();
        assert!(b.is_empty());
        assert!(b.is_chained(), "mode survives clear");
        assert!(!OpBatch::fixed().is_chained());
    }

    #[test]
    fn op_batch_window_defaults_serialized_and_survives_clear() {
        let mut b = OpBatch::chained(SimTime::ZERO);
        assert_eq!(b.window(), 1, "default is the serialized semantics");
        b = b.with_window(0);
        assert_eq!(b.window(), 1, "0 means serialized too");
        b = b.with_window(16);
        assert_eq!(b.window(), 16);
        b.push(op(0x1000));
        b.record_with_region(0, SimTime::ZERO, Ok(AccessOutcome::default()), Some((0x1000, 14)));
        assert_eq!(b.region(0), Some((0x1000, 14)));
        assert_eq!(b.completion(0), SimTime::ZERO);
        b.clear();
        assert_eq!(b.window(), 16, "window survives clear");
    }

    #[test]
    fn op_batch_outcome_unwraps() {
        let mut b = OpBatch::fixed();
        b.push(op(0x2000));
        let outcome = AccessOutcome {
            remote: true,
            ..Default::default()
        };
        b.record(0, SimTime::ZERO, Ok(outcome));
        assert!(b.outcome(0).remote);
        assert!(b.result(0).is_ok());
    }

    #[test]
    #[should_panic(expected = "batched access failed at 0x3000")]
    fn op_batch_outcome_panics_on_error() {
        let mut b = OpBatch::fixed();
        b.push(op(0x3000));
        b.record(0, SimTime::ZERO, Err(AccessError::PermissionDenied));
        b.outcome(0);
    }
}
