//! # MIND: in-network memory management for disaggregated data centers
//!
//! A full reproduction of the SOSP 2021 paper's system as a deterministic
//! simulation. MIND places *all* memory-management logic and metadata in the
//! rack's network fabric: the programmable top-of-rack switch performs
//! address translation, memory protection, and directory-based MSI cache
//! coherence at line rate, while compute blades keep only a local DRAM page
//! cache and memory blades are passive one-sided-RDMA page stores.
//!
//! The crate mirrors the paper's structure:
//!
//! - [`addr`]: the single global virtual address space, range-partitioned
//!   across memory blades (§4.1);
//! - [`galloc`]: load-balanced, fragmentation-minimizing memory allocation
//!   at the switch control plane (§4.1);
//! - [`translate`]: storage-efficient blade-granularity address translation
//!   with TCAM "outlier" entries for migrated/static ranges (§4.1);
//! - [`protect`]: domain-based `<PDID, vma> → permission-class` protection,
//!   decoupled from translation (§4.2);
//! - [`directory`]: the region-granularity cache directory held in switch
//!   SRAM slots (§4.3, §6.3);
//! - [`split`]: the Bounded Splitting algorithm that dynamically sizes the
//!   regions each directory entry tracks (§5);
//! - [`coherence`]: the in-network MSI protocol with multicast
//!   invalidations, two-MAU recirculated transitions, and false-invalidation
//!   accounting (§4.3.2, §6.3);
//! - [`controller`]: the switch control plane — processes, system-call
//!   intercepts, epoch driver (§6.3);
//! - [`failure`]: ACK/timeout/reset handling (§4.4);
//! - [`cluster`]: [`cluster::MindCluster`], the top-level public API tying a
//!   simulated rack together;
//! - [`system`]: the [`system::MemorySystem`] trait shared with the
//!   baseline systems (GAM, FastSwap) for apples-to-apples evaluation;
//! - [`window`]: the per-batch in-flight window that lets the
//!   issue/complete datapath overlap independent page-fault round trips
//!   (memory-level parallelism) while same-region transitions serialize;
//! - [`engine`]: the cluster-wide event-driven issue engine that
//!   generalizes the window's arbitration across every compute thread at
//!   once — slot pool, cluster-wide region serialization, and a per-NIC
//!   issue-bandwidth gate;
//! - [`shard`]: blade-slice partition layout and sub-cluster configs for
//!   the deterministic sharded simulation (see `mind_workloads::shard`).
//!
//! ## Quick start
//!
//! ```
//! use mind_core::cluster::{MindCluster, MindConfig};
//! use mind_core::system::AccessKind;
//! use mind_sim::SimTime;
//!
//! // A rack: 2 compute blades, 2 memory blades, default calibration.
//! let mut cluster = MindCluster::new(MindConfig::small());
//! let pid = cluster.exec().unwrap();
//! let vaddr = cluster.mmap(pid, 1 << 20).unwrap(); // 1 MB shared region.
//!
//! // Thread on blade 0 writes, thread on blade 1 reads — transparently
//! // coherent through the switch.
//! cluster.write_bytes(SimTime::ZERO, 0, pid, vaddr, b"hello rack").unwrap();
//! let out = cluster
//!     .read_bytes(SimTime::from_micros(50), 1, pid, vaddr, 10)
//!     .unwrap();
//! assert_eq!(&out, b"hello rack");
//! # let _ = AccessKind::Read;
//! ```

pub mod addr;
pub mod cluster;
pub mod coherence;
pub mod controller;
pub mod directory;
pub mod engine;
pub mod failure;
pub mod galloc;
pub mod protect;
pub mod shard;
pub mod split;
pub mod stt;
pub mod system;
pub mod translate;
pub mod window;

pub use addr::{PhysAddr, Vma};
pub use cluster::{MindCluster, MindConfig, CX5_NIC_DEPTH};
pub use engine::{ClusterEngine, ClusterStep};
pub use system::{
    AccessKind, AccessOutcome, ConsistencyModel, LatencyBreakdown, MemOp, MemorySystem, OpBatch,
    ScalarLoop,
};
pub use window::InFlightWindow;
