//! The Bounded Splitting algorithm (paper §5).
//!
//! Works in fixed-length epochs (100 ms default). Each epoch it examines the
//! false-invalidation count `f` of every region and:
//!
//! - **splits** any region with `f > t` into two halves (one level per
//!   epoch, never below the 4 KB page size), where the threshold
//!   `t = Σf / (c·N)` is a fraction of the mean false-invalidation count;
//! - **merges** buddy pairs whose combined count stays well below `t`
//!   (the equivalent merge-based formulation, §5.2);
//! - **adapts `c`** so switch SRAM utilization stays below the 95 % target —
//!   raising `t` (fewer, coarser regions) under pressure and lowering it
//!   when there is headroom.
//!
//! The worst-case region count is `c·N·(1 + log₂ M)` (Theorem 5.1 /
//! "Bounding the total number of regions"); the property tests in
//! `tests/prop_invariants.rs` check the per-region bound
//! `S ≤ (⌈f/t⌉ − 1)(1 + log₂ M)`.

use mind_blade::PAGE_SHIFT;
use mind_sim::stats::TimeSeries;
use mind_sim::SimTime;

use crate::directory::RegionDirectory;

/// Tunables for bounded splitting.
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Initial region size (log2 bytes); 16 KB default (§5 "From theory to
    /// practice" / §7.3).
    pub initial_region_log2: u8,
    /// Epoch length; 100 ms default (§7.3).
    pub epoch_len: SimTime,
    /// Initial threshold constant `c` in `t = Σf / (c·N)`.
    pub c: f64,
    /// SRAM utilization ceiling before `c` is raised (0.95 in the paper).
    pub target_utilization: f64,
    /// Whether the merge pass runs (disable to study pure splitting).
    pub enable_merge: bool,
    /// Whether the split pass runs (disable together with merging to pin
    /// regions at the initial size — the fixed-granularity points of
    /// Figure 9 left).
    pub enable_split: bool,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            initial_region_log2: 14,
            epoch_len: SimTime::from_millis(100),
            c: 1.0,
            target_utilization: 0.95,
            enable_merge: true,
            enable_split: true,
        }
    }
}

impl SplitConfig {
    /// A configuration that pins every region at `size_log2` (no splits, no
    /// merges) — the fixed-granularity baselines of Figure 9 (left).
    pub fn fixed(size_log2: u8) -> Self {
        SplitConfig {
            initial_region_log2: size_log2,
            enable_merge: false,
            enable_split: false,
            ..Default::default()
        }
    }
}

/// Per-epoch outcome, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochReport {
    /// Regions split this epoch.
    pub splits: u32,
    /// Buddy pairs merged this epoch.
    pub merges: u32,
    /// The threshold `t` used.
    pub threshold: f64,
    /// Total false invalidations observed in the epoch.
    pub false_invalidations: u64,
    /// Directory entries after the epoch.
    pub entries: usize,
}

/// The epoch driver.
#[derive(Debug, Clone)]
pub struct BoundedSplitting {
    cfg: SplitConfig,
    c: f64,
    next_epoch: SimTime,
    epochs_run: u64,
    entries_series: TimeSeries,
    false_inv_series: TimeSeries,
    last_report: EpochReport,
}

impl BoundedSplitting {
    /// Creates a driver; the first epoch ends at `epoch_len`.
    pub fn new(cfg: SplitConfig) -> Self {
        BoundedSplitting {
            c: cfg.c,
            next_epoch: cfg.epoch_len,
            cfg,
            epochs_run: 0,
            entries_series: TimeSeries::new(),
            false_inv_series: TimeSeries::new(),
            last_report: EpochReport::default(),
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &SplitConfig {
        &self.cfg
    }

    /// Current adaptive `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Runs any epochs that have elapsed by `now`. Returns the number run.
    pub fn advance_to(&mut self, now: SimTime, dir: &mut RegionDirectory) -> u32 {
        let mut ran = 0;
        while now >= self.next_epoch {
            let at = self.next_epoch;
            self.run_epoch(at, dir);
            self.next_epoch += self.cfg.epoch_len;
            ran += 1;
        }
        ran
    }

    /// Executes one epoch at time `at` (public for targeted tests/benches).
    pub fn run_epoch(&mut self, at: SimTime, dir: &mut RegionDirectory) -> EpochReport {
        self.epochs_run += 1;
        // `counters` lists only regions with activity this epoch; idle
        // regions contribute zero to Σf and can never exceed t (≥ 1), so
        // the split scan over it is exhaustive. N in t = Σf / (c·N) is the
        // total region count, per §5.
        let counters = dir.drain_epoch_counters();
        let n = dir.entries().max(1);
        let total_f: u64 = counters.iter().map(|c| c.false_inv as u64).sum();

        // t = Σf / (c·N), at least 1 so zero-traffic epochs are stable.
        let threshold = (total_f as f64 / (self.c * n as f64)).max(1.0);

        // Split phase: regions whose false-invalidation count exceeded t,
        // hottest first so limited SRAM goes to the worst offenders.
        let mut splits = 0;
        if self.cfg.enable_split {
            let mut hot: Vec<(u32, u64, u8)> = counters
                .iter()
                .filter(|c| c.false_inv as f64 > threshold && c.size_log2 > PAGE_SHIFT)
                .map(|c| (c.false_inv, c.base, c.size_log2))
                .collect();
            hot.sort_unstable_by(|a, b| b.cmp(a));
            for (_, base, _) in hot {
                if dir.utilization() >= self.cfg.target_utilization {
                    break;
                }
                if dir.split(base).is_ok() {
                    splits += 1;
                }
            }
        }

        // Merge phase (the merge-based equivalent, §5.2): reclaim SRAM by
        // coalescing buddies — but only when reclaiming matters (the store
        // is at least half full) and only regions that saw *no coherence
        // activity at all* this epoch. Merging by false-invalidation count
        // alone would coalesce regions that are invalidated often but
        // precisely (zero false invalidations) — and the very next
        // invalidation of the merged giant would wipe entire cached working
        // sets.
        let mut merges = 0;
        if self.cfg.enable_merge && dir.utilization() > 0.5 {
            // Regions are disjoint, so when both halves of a buddy pair
            // exist they are adjacent in base order: one ordered pass finds
            // every candidate pair. A pair merges (one level per epoch)
            // only when neither half appears in the active list — `active`
            // is sorted by base, so membership is a binary search. Cost is
            // a cheap linear walk plus real work only on actual merges.
            let active: Vec<u64> = counters.iter().map(|c| c.base).collect();
            let mut candidates: Vec<u64> = Vec::new();
            let mut prev: Option<(u64, u8)> = None;
            for (base, k) in dir.regions_iter() {
                if let Some((pb, pk)) = prev {
                    if pk == k
                        && pb & (1u64 << k) == 0
                        && base == pb + (1u64 << k)
                        && active.binary_search(&pb).is_err()
                        && active.binary_search(&base).is_err()
                    {
                        candidates.push(pb);
                        prev = None; // Pair consumed.
                        continue;
                    }
                }
                prev = Some((base, k));
            }
            for base in candidates {
                // `merge` re-checks coherence compatibility (M/O states).
                if dir.merge(base).is_some() {
                    merges += 1;
                }
            }
        }

        // Adapt c to SRAM pressure: raise t when close to capacity, relax
        // back toward the configured value when there is room.
        let util = dir.utilization();
        if util > self.cfg.target_utilization * 0.9 {
            self.c *= 1.5;
        } else if util < self.cfg.target_utilization * 0.5 && self.c > self.cfg.c {
            self.c = (self.c / 1.5).max(self.cfg.c);
        }

        self.entries_series.push(at, dir.entries() as f64);
        self.false_inv_series.push(at, total_f as f64);
        self.last_report = EpochReport {
            splits,
            merges,
            threshold,
            false_invalidations: total_f,
            entries: dir.entries(),
        };
        self.last_report
    }

    /// Epochs executed.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Directory-entry count per epoch (Figure 8 left).
    pub fn entries_series(&self) -> &TimeSeries {
        &self.entries_series
    }

    /// False invalidations per epoch (Figure 9).
    pub fn false_inv_series(&self) -> &TimeSeries {
        &self.false_inv_series
    }

    /// The most recent epoch's report.
    pub fn last_report(&self) -> EpochReport {
        self.last_report
    }

    /// Theorem 5.1 bound on sub-regions from one region with count `f`
    /// under threshold `t` and initial size `M` bytes:
    /// `S = (⌈f/t⌉ − 1) · (1 + log₂(M / 4 KB))`, and 1 when `f ≤ t`.
    pub fn theorem_bound(f: u64, t: f64, region_log2: u8) -> u64 {
        if f as f64 <= t {
            return 1;
        }
        let k = (f as f64 / t).ceil() as u64;
        let levels = (region_log2 - PAGE_SHIFT) as u64;
        (k - 1) * (1 + levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(epoch_ms: u64) -> BoundedSplitting {
        BoundedSplitting::new(SplitConfig {
            epoch_len: SimTime::from_millis(epoch_ms),
            ..Default::default()
        })
    }

    fn dir_with_regions(n: u64) -> RegionDirectory {
        let mut d = RegionDirectory::new(10_000, 14);
        for i in 0..n {
            d.ensure_region(i << 14).unwrap();
        }
        d
    }

    #[test]
    fn hot_region_splits() {
        let mut bs = driver(100);
        let mut d = dir_with_regions(4);
        // Region 0 takes all the false invalidations.
        d.record_invalidation(0, 100);
        let report = bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert!(report.splits >= 1, "hot region split: {report:?}");
        // Region 0 is now two 8 KB halves.
        assert_eq!(d.region_of(0x0).unwrap().1, 13);
        assert_eq!(d.region_of(0x2000).unwrap().1, 13);
    }

    #[test]
    fn uniform_load_below_threshold_no_splits() {
        let mut bs = driver(100);
        let mut d = dir_with_regions(8);
        // All equal counts: f_i == mean == t (with c=1), never strictly above.
        for i in 0..8u64 {
            d.record_invalidation(i << 14, 10);
        }
        let report = bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert_eq!(report.splits, 0);
    }

    #[test]
    fn cold_buddies_merge_under_pressure() {
        let mut bs = driver(100);
        // A small store: 4 buddy-paired 16 KB regions fill it past 50%.
        let mut d = RegionDirectory::new(6, 14);
        for i in 0..4u64 {
            d.ensure_region(i << 14).unwrap();
        }
        assert!(d.utilization() > 0.5);
        // Nothing was invalidated this epoch: cold buddies coalesce.
        let r = bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert!(r.merges >= 1, "cold halves merged: {r:?}");
        assert!(d.entries() < 4);
    }

    #[test]
    fn active_regions_do_not_merge() {
        let mut bs = driver(100);
        let mut d = RegionDirectory::new(6, 14);
        for i in 0..4u64 {
            d.ensure_region(i << 14).unwrap();
        }
        // Every region saw invalidation traffic (even with zero *false*
        // invalidations): none may merge — a merged giant would couple
        // actively-shared pages.
        for i in 0..4u64 {
            d.record_invalidation(i << 14, 0);
        }
        let r = bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert_eq!(r.merges, 0, "{r:?}");
    }

    #[test]
    fn split_floor_is_page_size() {
        let mut bs = BoundedSplitting::new(SplitConfig {
            initial_region_log2: 13,
            enable_merge: false,
            ..Default::default()
        });
        let mut d = RegionDirectory::new(1000, 13);
        d.ensure_region(0).unwrap();
        // A second, cold region keeps the mean (and thus t) below the hot
        // region's count — a lone region always sits exactly at the mean
        // and never splits.
        d.ensure_region(0x10_0000).unwrap();
        for epoch in 1..=6 {
            // Keep hammering whatever region covers address 0.
            let (base, _) = d.region_of(0).unwrap();
            d.record_invalidation(base, 1_000);
            bs.run_epoch(SimTime::from_millis(epoch * 100), &mut d);
        }
        let (_, k) = d.region_of(0).unwrap();
        assert_eq!(k, PAGE_SHIFT, "stabilized at page size, never below");
    }

    #[test]
    fn advance_runs_elapsed_epochs() {
        let mut bs = driver(100);
        let mut d = dir_with_regions(1);
        assert_eq!(bs.advance_to(SimTime::from_millis(99), &mut d), 0);
        assert_eq!(bs.advance_to(SimTime::from_millis(100), &mut d), 1);
        assert_eq!(bs.advance_to(SimTime::from_millis(350), &mut d), 2);
        assert_eq!(bs.epochs_run(), 3);
        assert_eq!(bs.entries_series().points().len(), 3);
    }

    #[test]
    fn c_rises_under_sram_pressure() {
        // Merging is the first pressure valve; disable it so the c
        // adjustment is observable in isolation.
        let mut bs = BoundedSplitting::new(SplitConfig {
            epoch_len: SimTime::from_millis(100),
            enable_merge: false,
            ..Default::default()
        });
        let mut d = RegionDirectory::new(8, 14);
        // Far-apart regions: pressure-adaptive creation cannot coalesce
        // them into fewer entries.
        for i in 0..8u64 {
            d.ensure_region(i << 32).unwrap();
        }
        assert!(d.utilization() >= 0.9);
        let c0 = bs.c();
        bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert!(bs.c() > c0, "c raised under pressure");
    }

    #[test]
    fn c_relaxes_with_headroom() {
        let mut bs = driver(100);
        let mut d = RegionDirectory::new(10_000, 14);
        d.ensure_region(0).unwrap();
        // Induce pressure artificially by raising c, then give headroom.
        bs.c = 10.0;
        bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert!(bs.c() < 10.0, "c relaxes toward configured value");
        for epoch in 2..50 {
            bs.run_epoch(SimTime::from_millis(epoch * 100), &mut d);
        }
        assert!((bs.c() - 1.0).abs() < 1e-9, "c floors at configured value");
    }

    #[test]
    fn theorem_bound_shape() {
        // f <= t: single region.
        assert_eq!(BoundedSplitting::theorem_bound(5, 10.0, 21), 1);
        // t < f <= 2t: 1 + log2(M/4K) regions (Case 2). M = 2 MB -> 10.
        assert_eq!(BoundedSplitting::theorem_bound(20, 10.0, 21), 10);
        // 2t < f <= 3t: (3-1)(1+9) = 20 (Case 3).
        assert_eq!(BoundedSplitting::theorem_bound(30, 10.0, 21), 20);
    }

    #[test]
    fn splitting_respects_theorem_bound_single_region() {
        // Drive one 2 MB region with a fixed per-epoch count and check the
        // final region count against Theorem 5.1 with t computed per epoch.
        let mut bs = BoundedSplitting::new(SplitConfig {
            initial_region_log2: 21,
            enable_merge: false,
            c: 1.0,
            ..Default::default()
        });
        let mut d = RegionDirectory::new(100_000, 21);
        d.ensure_region(0).unwrap();
        // Every epoch, charge the region containing address 0 with f = 3t
        // -> worst-case k = 3.
        for epoch in 1..=12u64 {
            for base in d.bases_sorted() {
                d.record_invalidation(base, 3);
            }
            bs.run_epoch(SimTime::from_millis(epoch * 100), &mut d);
        }
        let bound = BoundedSplitting::theorem_bound(3 * 512, 512.0, 21);
        assert!(
            d.entries() as u64 <= bound.max(1 + 9),
            "entries {} exceed theorem envelope {}",
            d.entries(),
            bound
        );
    }

    /// Collects `(base, size)` for every region and asserts the §5
    /// structural invariants: power-of-two sized, naturally aligned, and
    /// mutually disjoint.
    fn check_partition(d: &RegionDirectory) -> Vec<(u64, u64)> {
        let mut regions = Vec::new();
        let mut prev_end = 0u64;
        for base in d.bases_sorted() {
            let e = d.entry(base).unwrap();
            let size = 1u64 << e.size_log2;
            assert_eq!(base % size, 0, "region {base:#x} not aligned to {size:#x}");
            assert!(
                base >= prev_end,
                "region {base:#x} overlaps previous end {prev_end:#x}"
            );
            prev_end = base + size;
            regions.push((base, size));
        }
        regions
    }

    /// Splitting and merging under sustained churn must be cover-preserving:
    /// every byte of the initially registered regions stays tracked by
    /// exactly one region, and no region ever strays outside the initial
    /// footprint. (A lost range would silently drop coherence for its pages;
    /// an overlap would give two directory entries authority over one page.)
    #[test]
    fn epoch_churn_preserves_cover_and_disjointness() {
        let mut bs = BoundedSplitting::new(SplitConfig {
            initial_region_log2: 16,
            ..Default::default()
        });
        let mut d = RegionDirectory::new(4_096, 16);
        let n_regions = 8u64;
        for i in 0..n_regions {
            d.ensure_region(i << 16).unwrap();
        }
        let footprint = n_regions << 16;

        let mut rng = mind_sim::SimRng::new(0x5EED);
        for epoch in 1..=40u64 {
            // Concentrate churn on a few pseudo-random addresses so some
            // regions split while others go cold and merge.
            for _ in 0..4 {
                let addr = rng.gen_below(footprint);
                let (base, _) = d.region_of(addr).unwrap();
                d.record_invalidation(base, 1 + rng.gen_below(64) as u32);
            }
            bs.run_epoch(SimTime::from_millis(epoch * 100), &mut d);

            let regions = check_partition(&d);
            let covered: u64 = regions.iter().map(|&(_, s)| s).sum();
            assert_eq!(covered, footprint, "cover gained or lost bytes");
            assert!(
                regions.iter().all(|&(b, s)| b + s <= footprint),
                "region escaped the initial footprint"
            );
            // Exact-cover double check: every page of the footprint resolves
            // to a region that contains it.
            for page in (0..footprint).step_by(1 << PAGE_SHIFT) {
                let (b, k) = d.region_of(page).unwrap();
                assert!(b <= page && page < b + (1u64 << k));
            }
        }
    }

    /// The split phase must respect the directory-slot budget: with far more
    /// split pressure than SRAM, entries never exceed capacity and splitting
    /// stops at the configured utilization target (modulo the one entry a
    /// final split adds) instead of erroring out on a full store.
    #[test]
    fn split_storm_respects_slot_budget() {
        let capacity = 64usize;
        let target = 0.95;
        let mut bs = BoundedSplitting::new(SplitConfig {
            initial_region_log2: 21, // 2 MB: 512 potential 4 KB leaves each.
            enable_merge: false,
            target_utilization: target,
            ..Default::default()
        });
        let mut d = RegionDirectory::new(capacity, 21);
        for i in 0..4u64 {
            d.ensure_region(i << 21).unwrap();
        }

        for epoch in 1..=30u64 {
            // Skewed hammering: the upper half of the regions sits well
            // above the mean every epoch (equal counts would tie the
            // threshold exactly and never split), so split pressure vastly
            // outstrips the 64-slot budget.
            for (j, base) in d.bases_sorted().into_iter().enumerate() {
                d.record_invalidation(base, 100 * (1 + j as u32));
            }
            bs.run_epoch(SimTime::from_millis(epoch * 100), &mut d);
            assert!(
                d.entries() <= capacity,
                "directory exceeded its slot budget: {} > {capacity}",
                d.entries()
            );
            assert!(
                d.utilization() <= target + 1.0 / capacity as f64 + f64::EPSILON,
                "splitting blew through the utilization target: {}",
                d.utilization()
            );
            check_partition(&d);
        }
        // The storm actually used the budget (the bound above is not
        // vacuous) and pressure pushed c upward.
        assert!(d.entries() > 4, "no splits happened at all");
        assert!(bs.c() > bs.config().c, "c never adapted under pressure");
    }

    #[test]
    fn epoch_report_exposed() {
        let mut bs = driver(100);
        let mut d = dir_with_regions(2);
        d.record_invalidation(0, 50);
        let r = bs.run_epoch(SimTime::from_millis(100), &mut d);
        assert_eq!(bs.last_report(), r);
        assert_eq!(r.false_invalidations, 50);
        assert!(r.threshold > 0.0);
        assert_eq!(r.entries, d.entries());
    }
}
