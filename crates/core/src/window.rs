//! The in-flight window: per-batch memory-level-parallelism arbitration
//! for the issue/complete datapath.
//!
//! MIND's premise is that disaggregated memory is viable because the RDMA
//! NICs and the in-network directory keep many page-fault round trips in
//! flight at once (paper §3, §7): while one fault's fabric RTT is
//! outstanding, the blade issues the next. This module is the explicit
//! arbitration layer for that overlap. A window of depth `W` admits up to
//! `W` concurrently in-flight operations; an op that would exceed the
//! depth waits for the earliest in-flight completion, and an op that
//! touches the *directory region* of an in-flight op waits for that op to
//! complete — same-region transitions serialize (the region's `busy_until`
//! already orders them inside the switch; the window keeps the *issue*
//! side honest so a blade never has two transitions of one region
//! outstanding).
//!
//! The window is pure bookkeeping over completion records
//! ([`mind_core::coherence::IssuedAccess`](crate::coherence::IssuedAccess)
//! supplies them); it performs no simulation itself, which is what makes
//! the `window = 1` configuration byte-identical to the serialized
//! datapath.

use mind_sim::SimTime;

/// One in-flight operation: when it completes, which directory region
/// (if any) its transition holds, and which compute blade's RNIC carries
/// it.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    complete_at: SimTime,
    region: Option<(u64, u8)>,
    blade: u16,
}

/// A fixed-depth window of in-flight operations.
#[derive(Debug)]
pub struct InFlightWindow {
    depth: usize,
    /// Per-blade RNIC queue depth: how many of the in-flight ops may
    /// belong to one issuing blade at once. `0` models an unbounded NIC
    /// queue (the pre-NIC-gate behaviour, byte-identical).
    nic_depth: usize,
    slots: Vec<InFlight>,
    /// Latest completion among every op ever issued through this window —
    /// the overlap frontier used to attribute hidden fabric time.
    frontier: SimTime,
}

impl InFlightWindow {
    /// A window admitting up to `depth` concurrent operations (`depth` is
    /// clamped to at least 1). The per-NIC gate starts unbounded; see
    /// [`InFlightWindow::with_nic_depth`].
    pub fn new(depth: usize) -> Self {
        let depth = depth.max(1);
        InFlightWindow {
            depth,
            nic_depth: 0,
            slots: Vec::with_capacity(depth),
            frontier: SimTime::ZERO,
        }
    }

    /// Bounds each issuing blade's RNIC to `depth` concurrent operations
    /// (builder-style). `0` — the default — models an unbounded NIC queue
    /// and changes nothing.
    pub fn with_nic_depth(mut self, depth: u32) -> Self {
        self.nic_depth = depth as usize;
        self
    }

    /// The window depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The per-blade RNIC queue depth (`0` = unbounded).
    pub fn nic_depth(&self) -> usize {
        self.nic_depth
    }

    /// Operations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Earliest time a new operation can claim a slot: [`SimTime::ZERO`]
    /// (no constraint) while a slot is free, otherwise the earliest
    /// in-flight completion.
    pub fn slot_free_at(&self) -> SimTime {
        if self.slots.len() < self.depth {
            SimTime::ZERO
        } else {
            self.slots
                .iter()
                .map(|s| s.complete_at)
                .min()
                .expect("a full window is non-empty")
        }
    }

    /// When an operation on the page at `addr` may issue without
    /// overlapping an in-flight transition of the same directory region:
    /// the latest completion among in-flight ops whose region contains
    /// `addr` ([`SimTime::ZERO`] when none does).
    pub fn region_release(&self, addr: u64) -> SimTime {
        self.slots
            .iter()
            .filter(|s| {
                s.region
                    .is_some_and(|(base, k)| addr >= base && addr - base < 1u64 << k)
            })
            .map(|s| s.complete_at)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// In-flight operations issued by `blade`'s RNIC.
    pub fn nic_in_flight(&self, blade: u16) -> usize {
        self.slots.iter().filter(|s| s.blade == blade).count()
    }

    /// Earliest time `blade` may issue another operation through its RNIC:
    /// [`SimTime::ZERO`] (no constraint) while the blade's queue has a free
    /// entry or the NIC is unbounded, otherwise the earliest completion
    /// among the blade's in-flight ops.
    pub fn nic_free_at(&self, blade: u16) -> SimTime {
        if self.nic_depth == 0 {
            return SimTime::ZERO;
        }
        let mut in_flight = 0usize;
        let mut earliest = SimTime::MAX;
        for s in self.slots.iter().filter(|s| s.blade == blade) {
            in_flight += 1;
            earliest = earliest.min(s.complete_at);
        }
        if in_flight < self.nic_depth {
            SimTime::ZERO
        } else {
            earliest
        }
    }

    /// Retires every operation that completed at or before `now`.
    pub fn retire_through(&mut self, now: SimTime) {
        self.slots.retain(|s| s.complete_at > now);
    }

    /// Admits an operation issued by `blade` occupying a slot until
    /// `complete_at`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full — callers must gate issue on
    /// [`InFlightWindow::slot_free_at`] and retire first — and, in debug
    /// builds, if `blade`'s RNIC queue is already at its depth (gate on
    /// [`InFlightWindow::nic_free_at`]).
    pub fn admit(&mut self, complete_at: SimTime, region: Option<(u64, u8)>, blade: u16) {
        assert!(self.slots.len() < self.depth, "in-flight window overflow");
        debug_assert!(
            self.nic_depth == 0 || self.nic_in_flight(blade) < self.nic_depth,
            "per-NIC queue overflow on blade {blade}"
        );
        self.slots.push(InFlight {
            complete_at,
            region,
            blade,
        });
        self.frontier = self.frontier.max(complete_at);
    }

    /// The overlap frontier: the latest completion among every op issued
    /// through this window so far (retired or not). An op's fabric time
    /// spent below the frontier ran concurrently with earlier in-flight
    /// work.
    pub fn frontier(&self) -> SimTime {
        self.frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn depth_clamps_to_one() {
        assert_eq!(InFlightWindow::new(0).depth(), 1);
        assert_eq!(InFlightWindow::new(4).depth(), 4);
    }

    #[test]
    fn slot_gate_frees_at_earliest_completion() {
        let mut w = InFlightWindow::new(2);
        assert_eq!(w.slot_free_at(), SimTime::ZERO, "empty window is free");
        w.admit(ns(100), None, 0);
        assert_eq!(w.slot_free_at(), SimTime::ZERO, "one slot still free");
        w.admit(ns(60), None, 0);
        assert_eq!(w.slot_free_at(), ns(60), "full: earliest completion");
        w.retire_through(ns(60));
        assert_eq!(w.in_flight(), 1);
        assert_eq!(w.slot_free_at(), SimTime::ZERO);
    }

    #[test]
    fn region_release_serializes_containing_region_only() {
        let mut w = InFlightWindow::new(4);
        w.admit(ns(500), Some((0x1_0000, 14)), 0); // [0x10000, 0x14000)
        w.admit(ns(300), Some((0x4_0000, 13)), 0); // [0x40000, 0x42000)
        w.admit(ns(900), None, 0); // Local hit: holds no region.
        assert_eq!(w.region_release(0x1_3FFF), ns(500), "inside first");
        assert_eq!(w.region_release(0x1_4000), SimTime::ZERO, "just past it");
        assert_eq!(w.region_release(0x4_1000), ns(300), "inside second");
        assert_eq!(w.region_release(0x9_0000), SimTime::ZERO, "untracked");
        // Two holders of nested ranges: the latest completion wins.
        w.admit(ns(800), Some((0x1_0000, 16)), 0);
        assert_eq!(w.region_release(0x1_2000), ns(800));
    }

    #[test]
    fn frontier_tracks_all_issued_ops() {
        let mut w = InFlightWindow::new(2);
        assert_eq!(w.frontier(), SimTime::ZERO);
        w.admit(ns(400), None, 0);
        w.admit(ns(200), None, 0);
        assert_eq!(w.frontier(), ns(400));
        w.retire_through(ns(1_000));
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.frontier(), ns(400), "retirement keeps the frontier");
    }

    #[test]
    #[should_panic(expected = "in-flight window overflow")]
    fn admit_beyond_depth_panics() {
        let mut w = InFlightWindow::new(1);
        w.admit(ns(10), None, 0);
        w.admit(ns(20), None, 0);
    }

    #[test]
    fn nic_gate_is_unbounded_by_default() {
        let mut w = InFlightWindow::new(4);
        assert_eq!(w.nic_depth(), 0);
        w.admit(ns(100), None, 3);
        w.admit(ns(200), None, 3);
        assert_eq!(w.nic_in_flight(3), 2);
        assert_eq!(w.nic_free_at(3), SimTime::ZERO, "depth 0 never gates");
    }

    #[test]
    fn nic_gate_frees_at_the_blades_earliest_completion() {
        let mut w = InFlightWindow::new(8).with_nic_depth(2);
        assert_eq!(w.nic_depth(), 2);
        w.admit(ns(100), None, 0);
        w.admit(ns(60), None, 1);
        assert_eq!(w.nic_free_at(0), SimTime::ZERO, "one entry left");
        w.admit(ns(40), None, 0);
        assert_eq!(w.nic_free_at(0), ns(40), "blade 0 full: its earliest");
        assert_eq!(w.nic_free_at(1), SimTime::ZERO, "blade 1 unaffected");
        w.retire_through(ns(40));
        assert_eq!(w.nic_in_flight(0), 1);
        assert_eq!(w.nic_free_at(0), SimTime::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "per-NIC queue overflow")]
    fn admit_beyond_nic_depth_panics() {
        let mut w = InFlightWindow::new(8).with_nic_depth(1);
        w.admit(ns(10), None, 2);
        w.admit(ns(20), None, 2);
    }
}
