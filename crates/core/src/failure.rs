//! Failure handling (paper §4.4).
//!
//! Three mechanisms cooperate:
//!
//! 1. **Communication failures**: ACK/timeout retransmission lives in
//!    `mind_net::reliability` and is driven by the coherence engine's
//!    invalidation rounds; after the retry budget a *reset* flushes every
//!    blade's data for the address and removes the directory entry,
//!    preventing deadlock when a blade dies mid-transition.
//! 2. **Compute-blade failures**: injected via
//!    [`crate::coherence::CoherenceEngine::fail_blade`]; a failed blade
//!    stops ACKing, which funnels into the reset path.
//! 3. **Switch failures**: the control plane replicates to a backup switch;
//!    on failover the data plane is *reconstructed from control-plane
//!    state* — translation and protection rules are replayed from the grant
//!    log, while coherence state restarts cold (all blades flush, directory
//!    empty). Control-plane state changes only on metadata operations, so
//!    replication overhead is minimal.
//!
//! This module implements the switch-failover reconstruction and the
//! plan-level helpers; the engine hooks are exercised in
//! `tests/integration_failures.rs`.

use mind_sim::SimTime;

use crate::coherence::CoherenceEngine;
use crate::controller::Controller;

/// Outcome of a switch failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// Protection/translation rules replayed into the backup's data plane.
    pub rules_replayed: usize,
    /// Directory entries dropped (coherence restarts cold).
    pub directory_entries_dropped: usize,
    /// Dirty pages flushed by blades during the cold restart.
    pub pages_flushed: u64,
    /// Whether the backup was current when the primary failed (replication
    /// lag = 0).
    pub backup_was_current: bool,
}

/// Fails over from the primary switch to the backup: replays control-plane
/// state into a fresh data plane and cold-starts coherence.
///
/// `engine` is mutated in place to represent the backup switch's data plane
/// after reconstruction: same translation partition, protection rules
/// replayed from the controller's grant log, empty directory, and all
/// compute-blade caches flushed (their dirty data written back so no updates
/// are lost).
pub fn switch_failover(
    controller: &mut Controller,
    engine: &mut CoherenceEngine,
    now: SimTime,
) -> FailoverReport {
    let backup_was_current = controller.control_plane().backup_is_current();
    controller.control_plane_mut().replicate_to_backup();

    // Cold-start coherence: every region entry is dropped after forcing the
    // blades holding it to flush. Iterate over a snapshot of bases since
    // reset_region mutates the directory.
    let bases: Vec<(u64, u8)> = engine
        .directory()
        .bases_sorted()
        .into_iter()
        .map(|b| {
            let k = engine
                .directory()
                .entry(b)
                .expect("listed entry exists")
                .size_log2;
            (b, k)
        })
        .collect();
    let flushed_before = engine.metrics().get("flushed_pages");
    let dropped = bases.len();
    for (base, k) in bases {
        engine.reset_region(now, base, k);
    }
    let pages_flushed = engine.metrics().get("flushed_pages") - flushed_before;

    // Replay protection rules from the replicated grant log. (Translation
    // needs no replay: the blade-range partition is config, not state.)
    let mut replayed = 0;
    for g in controller.grants().to_vec() {
        // The grant may target a TCAM that already holds the entry (we reuse
        // the same engine object as "the backup"); revoke first for
        // idempotence.
        engine.protection.revoke(g.pdid, g.vma);
        engine
            .protection
            .grant(g.pdid, g.vma, g.pc)
            .expect("backup TCAM has the same capacity as the primary");
        replayed += 1;
    }

    FailoverReport {
        rules_replayed: replayed,
        directory_entries_dropped: dropped,
        pages_flushed,
        backup_was_current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_net::link::LatencyConfig;
    use mind_sim::SimTime;

    use crate::coherence::CoherenceConfig;
    use crate::protect::PermClass;
    use crate::system::AccessKind;

    fn setup() -> (Controller, CoherenceEngine) {
        let ctl = Controller::new(
            2,
            2,
            1 << 30,
            SimTime::from_micros(15),
            SimTime::from_micros(2),
        );
        let engine = CoherenceEngine::new(
            2,
            2,
            256,
            1 << 30,
            1 << 30,
            1000,
            14,
            1000,
            LatencyConfig::default(),
            CoherenceConfig::default(),
        );
        (ctl, engine)
    }

    #[test]
    fn failover_preserves_protection_and_drops_directory() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        let vma = ctl
            .mmap(&mut eng, pid, 1 << 16, PermClass::ReadWrite)
            .unwrap();
        // Dirty a page on blade 0.
        eng.access(SimTime::ZERO, 0, pid, vma.base, AccessKind::Write)
            .unwrap();
        assert!(eng.directory().entries() > 0);

        let report = switch_failover(&mut ctl, &mut eng, SimTime::from_millis(5));
        assert_eq!(report.rules_replayed, 1);
        assert!(report.directory_entries_dropped >= 1);
        assert!(report.pages_flushed >= 1, "dirty page not lost");
        assert_eq!(eng.directory().entries(), 0);

        // Post-failover: permissions still enforced, accesses still work.
        assert!(eng.protection.check(pid, vma.base, AccessKind::Write));
        let out = eng
            .access(SimTime::from_millis(6), 1, pid, vma.base, AccessKind::Read)
            .unwrap();
        assert!(out.remote);
    }

    #[test]
    fn failover_reports_replication_lag() {
        let (mut ctl, mut eng) = setup();
        let pid = ctl.exec();
        // Replicate, then mutate: backup is stale at failure time.
        ctl.control_plane_mut().replicate_to_backup();
        ctl.mmap(&mut eng, pid, 4096, PermClass::ReadOnly).unwrap();
        let report = switch_failover(&mut ctl, &mut eng, SimTime::ZERO);
        assert!(!report.backup_was_current);
        // A second failover right after is current.
        let report2 = switch_failover(&mut ctl, &mut eng, SimTime::ZERO);
        assert!(report2.backup_was_current);
    }

    #[test]
    fn failover_on_idle_system_is_trivial() {
        let (mut ctl, mut eng) = setup();
        let report = switch_failover(&mut ctl, &mut eng, SimTime::ZERO);
        assert_eq!(report.rules_replayed, 0);
        assert_eq!(report.directory_entries_dropped, 0);
        assert_eq!(report.pages_flushed, 0);
    }
}
