//! Packets carried by the rack fabric.
//!
//! MIND compute blades issue one-sided RDMA requests addressed by *virtual*
//! address; the switch data plane intercepts them, runs coherence/protection/
//! translation, rewrites the headers, and forwards to the right memory blade
//! (paper §6.3 "Virtualizing RDMA connections"). Invalidation requests embed
//! the sharer list so the egress pipeline can prune multicast copies
//! (§4.3.2).

use crate::node::{BladeSet, NodeId};

/// RDMA/coherence packet payloads.
///
/// Byte sizes below follow RoCEv2 framing: ~58 B of Ethernet/IP/UDP/BTH
/// headers per packet, plus the application payload (a 4 KB page for data
/// responses and write requests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketKind {
    /// One-sided RDMA read of `len` bytes at virtual address `vaddr`
    /// (compute blade → switch → memory blade).
    RdmaReadReq {
        /// Global virtual address being read.
        vaddr: u64,
        /// Requested length in bytes (page-sized in MIND).
        len: u32,
    },
    /// RDMA read response carrying data back to the requester.
    RdmaReadResp {
        /// Global virtual address read.
        vaddr: u64,
        /// Length of returned data.
        len: u32,
    },
    /// One-sided RDMA write (dirty-page flush or eviction write-back).
    RdmaWriteReq {
        /// Global virtual address being written.
        vaddr: u64,
        /// Length written.
        len: u32,
    },
    /// RDMA write completion.
    RdmaWriteResp {
        /// Global virtual address written.
        vaddr: u64,
    },
    /// Cache invalidation request multicast to sharers; carries the sharer
    /// list for egress pruning (§4.3.2).
    Invalidate {
        /// Base virtual address of the directory region being invalidated.
        region_base: u64,
        /// log2 of the region size in bytes.
        region_size_log2: u8,
        /// Compute blades that must invalidate (embedded sharer list).
        sharers: BladeSet,
        /// Whether the new permission downgrades to read-only (M→S) rather
        /// than fully invalid (→I / →M elsewhere).
        downgrade_to_shared: bool,
    },
    /// Acknowledgement that a blade completed an invalidation, reporting how
    /// many dirty pages it flushed back to memory.
    InvalidateAck {
        /// Base virtual address of the invalidated region.
        region_base: u64,
        /// Number of dirty pages flushed during the invalidation.
        flushed_pages: u32,
    },
    /// Control-plane system-call intercept (mmap/munmap/brk/exec/exit) sent
    /// over the reliable control channel to the switch CPU.
    CtrlSyscall {
        /// Opaque syscall identifier for accounting.
        call: u32,
    },
    /// Control-plane response with a Linux-compatible return value.
    CtrlResp {
        /// Return value (negative errno on failure).
        ret: i64,
    },
    /// Reset message for a virtual address after repeated ACK timeouts;
    /// forces all blades to flush and drops the directory entry (§4.4).
    Reset {
        /// Virtual address whose coherence state is being reset.
        vaddr: u64,
    },
}

impl PacketKind {
    /// Total wire size in bytes (headers + payload) for bandwidth accounting.
    pub fn wire_bytes(&self) -> u32 {
        const HDR: u32 = 58;
        match self {
            PacketKind::RdmaReadReq { .. } => HDR + 16,
            PacketKind::RdmaReadResp { len, .. } => HDR + len,
            PacketKind::RdmaWriteReq { len, .. } => HDR + len,
            PacketKind::RdmaWriteResp { .. } => HDR + 8,
            PacketKind::Invalidate { .. } => HDR + 24,
            PacketKind::InvalidateAck { .. } => HDR + 12,
            PacketKind::CtrlSyscall { .. } => HDR + 64,
            PacketKind::CtrlResp { .. } => HDR + 8,
            PacketKind::Reset { .. } => HDR + 8,
        }
    }

    /// Whether this packet must traverse the switch ASIC match-action
    /// pipeline (data-plane packets) as opposed to the control-plane CPU.
    pub fn is_data_plane(&self) -> bool {
        !matches!(
            self,
            PacketKind::CtrlSyscall { .. } | PacketKind::CtrlResp { .. }
        )
    }
}

/// A packet in flight on the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sender.
    pub src: NodeId,
    /// Receiver (after any switch rewriting).
    pub dst: NodeId,
    /// Payload.
    pub kind: PacketKind,
}

impl Packet {
    /// Creates a packet.
    pub fn new(src: NodeId, dst: NodeId, kind: PacketKind) -> Self {
        Packet { src, dst, kind }
    }

    /// Wire size in bytes.
    pub fn wire_bytes(&self) -> u32 {
        self.kind.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_response_dominates_wire_size() {
        let req = PacketKind::RdmaReadReq {
            vaddr: 0x1000,
            len: 4096,
        };
        let resp = PacketKind::RdmaReadResp {
            vaddr: 0x1000,
            len: 4096,
        };
        assert!(resp.wire_bytes() > 4096);
        assert!(req.wire_bytes() < 128, "request is header-sized");
    }

    #[test]
    fn control_plane_classification() {
        assert!(!PacketKind::CtrlSyscall { call: 9 }.is_data_plane());
        assert!(!PacketKind::CtrlResp { ret: 0 }.is_data_plane());
        assert!(PacketKind::RdmaReadReq {
            vaddr: 0,
            len: 4096
        }
        .is_data_plane());
        assert!(PacketKind::Invalidate {
            region_base: 0,
            region_size_log2: 14,
            sharers: BladeSet::EMPTY,
            downgrade_to_shared: false,
        }
        .is_data_plane());
    }

    #[test]
    fn packet_carries_endpoints() {
        let p = Packet::new(
            NodeId::Compute(1),
            NodeId::Switch,
            PacketKind::Reset { vaddr: 0x2000 },
        );
        assert_eq!(p.src, NodeId::Compute(1));
        assert_eq!(p.dst, NodeId::Switch);
        assert_eq!(p.wire_bytes(), 58 + 8);
    }

    #[test]
    fn invalidate_embeds_sharers() {
        let sharers: BladeSet = [0u16, 3].into_iter().collect();
        let kind = PacketKind::Invalidate {
            region_base: 0x4000,
            region_size_log2: 14,
            sharers,
            downgrade_to_shared: true,
        };
        if let PacketKind::Invalidate { sharers: s, .. } = kind {
            assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        } else {
            unreachable!();
        }
    }
}
