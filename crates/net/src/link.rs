//! Point-to-point link model with propagation latency, bandwidth-derived
//! serialization delay, and FIFO queueing.
//!
//! Each blade↔switch link is full-duplex 100 Gbps (the paper gives every
//! blade VM a dedicated CX-5 100 Gbps NIC). A transfer's arrival time is:
//!
//! ```text
//! depart = max(now, link_free)        // FIFO queueing behind earlier sends
//! arrive = depart + bytes/bandwidth   // serialization
//!          + propagation              // wire + NIC DMA latency
//! ```

use mind_sim::SimTime;

/// Calibrated latency constants for the simulated rack.
///
/// These are chosen so the end-to-end composition reproduces the paper's
/// §7.2 measurements: an uncontended one-sided RDMA 4 KB page fetch through
/// the switch costs ≈9 µs and an invalidate-then-fetch (M-state) costs
/// ≈18 µs (Figure 7 left). Local DRAM cache hits cost ≈80 ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyConfig {
    /// One-way wire propagation + NIC DMA latency per hop (blade↔switch).
    pub hop_latency: SimTime,
    /// Link bandwidth in bytes per nanosecond (100 Gbps = 12.5 B/ns).
    pub bandwidth_bytes_per_ns: f64,
    /// Switch ASIC pipeline traversal (parser + MAU stages + deparser).
    pub switch_pipeline: SimTime,
    /// Extra pipeline pass when a packet is recirculated (directory update,
    /// §6.3 step 2).
    pub switch_recirculation: SimTime,
    /// Memory-blade NIC servicing a one-sided RDMA request (no CPU!).
    pub memory_service: SimTime,
    /// Compute-blade page-fault handler entry/exit + PTE installation.
    pub fault_handler: SimTime,
    /// Local DRAM access on a compute-blade cache hit.
    pub local_dram: SimTime,
    /// Synchronous TLB shootdown on an invalidated mapping, per affected
    /// page ("several microseconds", §7.2 / LATR).
    pub tlb_shootdown: SimTime,
    /// Invalidation-handler service time per request at a compute blade
    /// (used for the queueing-delay component in Figure 7 right).
    pub invalidation_service: SimTime,
    /// Control-plane CPU handling of one intercepted system call.
    pub ctrl_syscall: SimTime,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            hop_latency: SimTime::from_nanos(1_300),
            bandwidth_bytes_per_ns: 12.5,
            switch_pipeline: SimTime::from_nanos(400),
            switch_recirculation: SimTime::from_nanos(600),
            memory_service: SimTime::from_nanos(1_000),
            fault_handler: SimTime::from_nanos(500),
            local_dram: SimTime::from_nanos(80),
            tlb_shootdown: SimTime::from_nanos(2_500),
            invalidation_service: SimTime::from_nanos(800),
            ctrl_syscall: SimTime::from_micros(15),
        }
    }
}

impl LatencyConfig {
    /// Serialization delay for `bytes` on a link of this bandwidth.
    pub fn serialization(&self, bytes: u32) -> SimTime {
        SimTime::from_nanos((bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as u64)
    }

    /// Uncontended one-way latency for `bytes` over one hop.
    pub fn hop(&self, bytes: u32) -> SimTime {
        self.hop_latency + self.serialization(bytes)
    }
}

/// One direction of a full-duplex link.
#[derive(Debug, Clone)]
pub struct Link {
    latency: SimTime,
    bandwidth_bytes_per_ns: f64,
    free_at: SimTime,
    bytes_carried: u64,
    packets_carried: u64,
}

impl Link {
    /// Creates a link with the given propagation latency and bandwidth.
    pub fn new(latency: SimTime, bandwidth_bytes_per_ns: f64) -> Self {
        assert!(bandwidth_bytes_per_ns > 0.0, "bandwidth must be positive");
        Link {
            latency,
            bandwidth_bytes_per_ns,
            free_at: SimTime::ZERO,
            bytes_carried: 0,
            packets_carried: 0,
        }
    }

    /// Creates a link from a [`LatencyConfig`].
    pub fn from_config(cfg: &LatencyConfig) -> Self {
        Link::new(cfg.hop_latency, cfg.bandwidth_bytes_per_ns)
    }

    /// Enqueues a transfer of `bytes` at time `now`; returns the arrival
    /// time at the far end. Transfers queue FIFO behind earlier ones.
    pub fn transfer(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let depart = now.max(self.free_at);
        let serialize =
            SimTime::from_nanos((bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as u64);
        // The link is busy while the packet serializes onto the wire.
        self.free_at = depart + serialize;
        self.bytes_carried += bytes as u64;
        self.packets_carried += 1;
        depart + serialize + self.latency
    }

    /// Earliest time a new transfer could start serializing.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes carried (for utilization reporting).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total packets carried.
    pub fn packets_carried(&self) -> u64 {
        self.packets_carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_nine_microsecond_fetch() {
        // Compose an uncontended page fetch the way `Fabric::rdma_read` does:
        // req: cb→switch hop + pipeline + switch→mb hop + memory service
        // resp: mb→switch hop (4KB) + pipeline + switch→cb hop (4KB)
        // plus the compute-blade fault handler.
        let cfg = LatencyConfig::default();
        let req = cfg.hop(74) + cfg.switch_pipeline + cfg.hop(74) + cfg.memory_service;
        let resp = cfg.hop(4154) + cfg.switch_pipeline + cfg.hop(4154);
        let total = cfg.fault_handler + req + resp;
        let us = total.as_micros_f64();
        assert!((8.0..10.0).contains(&us), "page fetch = {us:.2}us");
    }

    #[test]
    fn serialization_scales_with_bytes() {
        let cfg = LatencyConfig::default();
        assert_eq!(cfg.serialization(125).as_nanos(), 10);
        let page = cfg.serialization(4096).as_nanos();
        assert!((320..340).contains(&page), "4KB serialization = {page}ns");
    }

    #[test]
    fn uncontended_transfer_is_latency_plus_serialization() {
        let mut link = Link::new(SimTime::from_nanos(1_000), 1.0);
        let arrive = link.transfer(SimTime::from_nanos(100), 50);
        assert_eq!(arrive.as_nanos(), 100 + 50 + 1_000);
    }

    #[test]
    fn back_to_back_transfers_queue_fifo() {
        let mut link = Link::new(SimTime::from_nanos(1_000), 1.0);
        let now = SimTime::ZERO;
        let a = link.transfer(now, 100);
        let b = link.transfer(now, 100);
        // Second transfer waits for the first to finish serializing.
        assert_eq!(a.as_nanos(), 100 + 1_000);
        assert_eq!(b.as_nanos(), 200 + 1_000);
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut link = Link::new(SimTime::from_nanos(10), 1.0);
        link.transfer(SimTime::ZERO, 100);
        // Long after the first transfer drained.
        let late = link.transfer(SimTime::from_nanos(10_000), 100);
        assert_eq!(late.as_nanos(), 10_000 + 100 + 10);
    }

    #[test]
    fn link_accounts_traffic() {
        let mut link = Link::new(SimTime::ZERO, 12.5);
        link.transfer(SimTime::ZERO, 4096);
        link.transfer(SimTime::ZERO, 58);
        assert_eq!(link.bytes_carried(), 4154);
        assert_eq!(link.packets_carried(), 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Link::new(SimTime::ZERO, 0.0);
    }
}
