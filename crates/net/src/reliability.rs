//! ACK/timeout reliability and the reset protocol (paper §4.4).
//!
//! When a memory access triggers invalidations, the requesting compute blade
//! waits for ACKs from all sharers and retransmits on timeout. After a
//! predefined number of retransmissions it sends a *reset* for the virtual
//! address to the switch control plane, which forces all blades to flush
//! their data for that address and removes the directory entry — preventing
//! deadlock when a blade fails mid-transition.

use mind_sim::hash::FastMap;
use mind_sim::SimTime;

use crate::node::BladeSet;

/// Identifier for an in-flight invalidation round.
pub type RoundId = u64;

/// What the reliability layer wants the caller to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliabilityAction {
    /// Retransmit the invalidation to the still-unacked sharers.
    Retransmit {
        /// The round to retransmit.
        round: RoundId,
        /// Sharers that have not yet acknowledged.
        pending: BladeSet,
    },
    /// Give up and send a reset for this address to the control plane.
    Reset {
        /// The abandoned round.
        round: RoundId,
        /// Virtual address whose coherence state must be reset.
        vaddr: u64,
    },
}

#[derive(Debug, Clone)]
struct Round {
    vaddr: u64,
    pending: BladeSet,
    deadline: SimTime,
    retries_left: u32,
}

/// Tracks outstanding invalidation rounds awaiting ACKs.
#[derive(Debug, Clone)]
pub struct AckTracker {
    timeout: SimTime,
    max_retries: u32,
    rounds: FastMap<RoundId, Round>,
    next_round: RoundId,
    retransmissions: u64,
    resets: u64,
}

impl AckTracker {
    /// Creates a tracker with the given per-round timeout and retry budget.
    pub fn new(timeout: SimTime, max_retries: u32) -> Self {
        AckTracker {
            timeout,
            max_retries,
            rounds: FastMap::default(),
            next_round: 0,
            retransmissions: 0,
            resets: 0,
        }
    }

    /// Begins tracking an invalidation round covering `sharers` for `vaddr`.
    /// Returns the round id carried in the invalidation packets.
    ///
    /// # Panics
    ///
    /// Panics if `sharers` is empty — a round with nothing to wait for must
    /// not be opened.
    pub fn begin(&mut self, now: SimTime, vaddr: u64, sharers: BladeSet) -> RoundId {
        assert!(!sharers.is_empty(), "invalidation round with no sharers");
        let id = self.next_round;
        self.next_round += 1;
        self.rounds.insert(
            id,
            Round {
                vaddr,
                pending: sharers,
                deadline: now + self.timeout,
                retries_left: self.max_retries,
            },
        );
        id
    }

    /// Records an ACK from `blade`; returns `true` when the round completed
    /// (all sharers acknowledged).
    pub fn ack(&mut self, round: RoundId, blade: u16) -> bool {
        let Some(r) = self.rounds.get_mut(&round) else {
            return false; // Stale ACK after reset; ignore.
        };
        r.pending.remove(blade);
        if r.pending.is_empty() {
            self.rounds.remove(&round);
            true
        } else {
            false
        }
    }

    /// Whether a round is still outstanding.
    pub fn is_pending(&self, round: RoundId) -> bool {
        self.rounds.contains_key(&round)
    }

    /// Sharers still unacknowledged for `round` (empty if unknown).
    pub fn pending_sharers(&self, round: RoundId) -> BladeSet {
        self.rounds
            .get(&round)
            .map(|r| r.pending)
            .unwrap_or(BladeSet::EMPTY)
    }

    /// Advances time to `now`, expiring rounds whose deadline passed.
    /// Expired rounds either schedule a retransmission (extending the
    /// deadline) or — once out of retries — are abandoned with a reset.
    pub fn poll(&mut self, now: SimTime) -> Vec<ReliabilityAction> {
        let mut actions = Vec::new();
        let mut expired: Vec<RoundId> = self
            .rounds
            .iter()
            .filter(|(_, r)| r.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        expired.sort_unstable(); // Deterministic order.
        for id in expired {
            let r = self.rounds.get_mut(&id).expect("expired round exists");
            if r.retries_left == 0 {
                let vaddr = r.vaddr;
                self.rounds.remove(&id);
                self.resets += 1;
                actions.push(ReliabilityAction::Reset { round: id, vaddr });
            } else {
                r.retries_left -= 1;
                r.deadline = now + self.timeout;
                self.retransmissions += 1;
                actions.push(ReliabilityAction::Retransmit {
                    round: id,
                    pending: r.pending,
                });
            }
        }
        actions
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total resets issued.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Number of rounds in flight.
    pub fn in_flight(&self) -> usize {
        self.rounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharers(blades: &[u16]) -> BladeSet {
        blades.iter().copied().collect()
    }

    #[test]
    fn round_completes_when_all_ack() {
        let mut t = AckTracker::new(SimTime::from_micros(100), 3);
        let id = t.begin(SimTime::ZERO, 0x1000, sharers(&[0, 1, 2]));
        assert!(!t.ack(id, 0));
        assert!(!t.ack(id, 1));
        assert!(t.ack(id, 2), "last ACK completes the round");
        assert!(!t.is_pending(id));
    }

    #[test]
    fn duplicate_acks_are_idempotent() {
        let mut t = AckTracker::new(SimTime::from_micros(100), 3);
        let id = t.begin(SimTime::ZERO, 0x1000, sharers(&[0, 1]));
        assert!(!t.ack(id, 0));
        assert!(!t.ack(id, 0), "duplicate ACK does not complete");
        assert!(t.ack(id, 1));
    }

    #[test]
    fn stale_ack_after_completion_ignored() {
        let mut t = AckTracker::new(SimTime::from_micros(100), 3);
        let id = t.begin(SimTime::ZERO, 0x1000, sharers(&[0]));
        assert!(t.ack(id, 0));
        assert!(!t.ack(id, 0), "round already closed");
    }

    #[test]
    fn timeout_triggers_retransmit_to_pending_only() {
        let mut t = AckTracker::new(SimTime::from_micros(10), 3);
        let id = t.begin(SimTime::ZERO, 0x2000, sharers(&[0, 1, 2]));
        t.ack(id, 1);
        let actions = t.poll(SimTime::from_micros(10));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            ReliabilityAction::Retransmit { round, pending } => {
                assert_eq!(*round, id);
                assert_eq!(pending.iter().collect::<Vec<_>>(), vec![0, 2]);
            }
            other => panic!("expected retransmit, got {other:?}"),
        }
        assert_eq!(t.retransmissions(), 1);
    }

    #[test]
    fn poll_before_deadline_is_quiet() {
        let mut t = AckTracker::new(SimTime::from_micros(10), 3);
        t.begin(SimTime::ZERO, 0x2000, sharers(&[0]));
        assert!(t.poll(SimTime::from_micros(9)).is_empty());
    }

    #[test]
    fn exhausted_retries_produce_reset() {
        let mut t = AckTracker::new(SimTime::from_micros(10), 2);
        let id = t.begin(SimTime::ZERO, 0xABC000, sharers(&[3]));
        let mut now = SimTime::ZERO;
        // Two retransmissions...
        for _ in 0..2 {
            now += SimTime::from_micros(10);
            let actions = t.poll(now);
            assert!(matches!(actions[0], ReliabilityAction::Retransmit { .. }));
        }
        // ...then the reset.
        now += SimTime::from_micros(10);
        let actions = t.poll(now);
        assert_eq!(
            actions,
            vec![ReliabilityAction::Reset {
                round: id,
                vaddr: 0xABC000
            }]
        );
        assert!(!t.is_pending(id));
        assert_eq!(t.resets(), 1);
    }

    #[test]
    fn retransmit_extends_deadline() {
        let mut t = AckTracker::new(SimTime::from_micros(10), 5);
        let id = t.begin(SimTime::ZERO, 0x1, sharers(&[0]));
        assert_eq!(t.poll(SimTime::from_micros(10)).len(), 1);
        // Immediately after, deadline has moved; nothing expires.
        assert!(t.poll(SimTime::from_micros(15)).is_empty());
        assert!(t.is_pending(id));
    }

    #[test]
    fn multiple_rounds_expire_deterministically() {
        let mut t = AckTracker::new(SimTime::from_micros(10), 1);
        let a = t.begin(SimTime::ZERO, 0xA, sharers(&[0]));
        let b = t.begin(SimTime::ZERO, 0xB, sharers(&[1]));
        let actions = t.poll(SimTime::from_micros(10));
        let rounds: Vec<RoundId> = actions
            .iter()
            .map(|x| match x {
                ReliabilityAction::Retransmit { round, .. } => *round,
                ReliabilityAction::Reset { round, .. } => *round,
            })
            .collect();
        assert_eq!(rounds, vec![a, b], "expiry order is round-id order");
        assert_eq!(t.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "no sharers")]
    fn empty_round_rejected() {
        let mut t = AckTracker::new(SimTime::from_micros(10), 1);
        t.begin(SimTime::ZERO, 0x1, BladeSet::EMPTY);
    }
}
