//! The rack's star topology: every blade connects to the single
//! programmable switch by a dedicated full-duplex link.
//!
//! The fabric routes unicast packets through the switch (two hops plus one
//! pipeline traversal) and supports native multicast: the switch replicates
//! an invalidation to its egress ports and *prunes* copies whose port does
//! not lead to a blade in the embedded sharer list, so non-sharers consume
//! no bandwidth (paper §4.3.2).

use mind_sim::{SimRng, SimTime};

use crate::link::{LatencyConfig, Link};
use crate::node::{BladeSet, NodeId};
use crate::packet::Packet;

/// Outcome of a (possibly lossy) packet send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Arrives at the destination at the given time.
    Delivered(SimTime),
    /// Dropped in the fabric (loss injection); never arrives.
    Lost,
}

impl Delivery {
    /// The arrival time, if delivered.
    pub fn arrival(self) -> Option<SimTime> {
        match self {
            Delivery::Delivered(t) => Some(t),
            Delivery::Lost => None,
        }
    }
}

/// A named multicast group (the rack keeps one for "all compute blades").
#[derive(Debug, Clone, Default)]
pub struct MulticastGroup {
    members: BladeSet,
}

impl MulticastGroup {
    /// Creates a group over the given compute blades.
    pub fn new(members: BladeSet) -> Self {
        MulticastGroup { members }
    }

    /// Group membership.
    pub fn members(&self) -> BladeSet {
        self.members
    }
}

/// Per-node pair of directed links (to and from the switch).
#[derive(Debug, Clone)]
struct NodeLinks {
    up: Link,
    down: Link,
}

/// The rack fabric.
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: LatencyConfig,
    compute: Vec<NodeLinks>,
    memory: Vec<NodeLinks>,
    all_compute_group: MulticastGroup,
    loss_rate: f64,
    loss_rng: SimRng,
    packets_sent: u64,
    packets_lost: u64,
    multicast_copies: u64,
    multicast_pruned: u64,
}

impl Fabric {
    /// Builds a rack with `n_compute` compute blades and `n_memory` memory
    /// blades around one switch.
    ///
    /// # Panics
    ///
    /// Panics if `n_compute` exceeds [`BladeSet::CAPACITY`].
    pub fn new(n_compute: u16, n_memory: u16, cfg: LatencyConfig) -> Self {
        assert!(n_compute <= BladeSet::CAPACITY, "too many compute blades");
        let mk = || NodeLinks {
            up: Link::from_config(&cfg),
            down: Link::from_config(&cfg),
        };
        let members: BladeSet = (0..n_compute).collect();
        Fabric {
            cfg,
            compute: (0..n_compute).map(|_| mk()).collect(),
            memory: (0..n_memory).map(|_| mk()).collect(),
            all_compute_group: MulticastGroup::new(members),
            loss_rate: 0.0,
            loss_rng: SimRng::new(0),
            packets_sent: 0,
            packets_lost: 0,
            multicast_copies: 0,
            multicast_pruned: 0,
        }
    }

    /// The latency configuration in force.
    pub fn config(&self) -> &LatencyConfig {
        &self.cfg
    }

    /// Number of compute blades.
    pub fn n_compute(&self) -> u16 {
        self.compute.len() as u16
    }

    /// Number of memory blades.
    pub fn n_memory(&self) -> u16 {
        self.memory.len() as u16
    }

    /// Enables random packet loss with probability `rate` (for testing the
    /// §4.4 reliability machinery).
    pub fn set_loss(&mut self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate out of range");
        self.loss_rate = rate;
        self.loss_rng = SimRng::new(seed);
    }

    /// The earliest time a new transfer from `node` could start
    /// serializing onto its up-link — the node's NIC TX backlog. A node
    /// whose up-link is booked into the future (e.g. behind a bulk dirty
    /// flush) cannot put a new request on the wire before this.
    pub fn tx_free_at(&self, node: NodeId) -> SimTime {
        let links = match node {
            NodeId::Compute(i) => self.compute.get(i as usize),
            NodeId::Memory(i) => self.memory.get(i as usize),
            NodeId::Switch => None,
        };
        links.map(|l| l.up.free_at()).unwrap_or(SimTime::ZERO)
    }

    fn links_mut(&mut self, node: NodeId) -> Option<&mut NodeLinks> {
        match node {
            NodeId::Compute(i) => self.compute.get_mut(i as usize),
            NodeId::Memory(i) => self.memory.get_mut(i as usize),
            NodeId::Switch => None,
        }
    }

    /// Sends `packet` at time `now`, charging link serialization/queueing and
    /// the switch pipeline; returns the arrival time at the destination.
    ///
    /// Blade→blade packets take two hops through the switch; blade↔switch
    /// packets take one hop. `send` models reliably-connected RDMA
    /// transfers (link-level retransmission is transparent), so it is
    /// exempt from loss injection; use [`Fabric::try_send`] for the
    /// datagram-style coherence messages §4.4's ACK/timeout machinery
    /// protects.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint blade index does not exist in the rack.
    pub fn send(&mut self, now: SimTime, packet: &Packet) -> SimTime {
        self.packets_sent += 1;
        self.deliver(now, packet)
    }

    /// Like [`Fabric::send`] but subject to loss injection.
    pub fn try_send(&mut self, now: SimTime, packet: &Packet) -> Delivery {
        self.packets_sent += 1;
        if self.loss_rate > 0.0 && self.loss_rng.gen_bool(self.loss_rate) {
            self.packets_lost += 1;
            return Delivery::Lost;
        }
        Delivery::Delivered(self.deliver(now, packet))
    }

    fn deliver(&mut self, now: SimTime, packet: &Packet) -> SimTime {
        let bytes = packet.wire_bytes();
        let pipeline = self.cfg.switch_pipeline;

        let mut t = now;
        // First hop: src → switch (unless the switch itself originates).
        if packet.src != NodeId::Switch {
            let links = self
                .links_mut(packet.src)
                .expect("source blade exists in rack");
            t = links.up.transfer(t, bytes);
        }
        // Pipeline traversal for any packet passing the ASIC.
        if packet.kind.is_data_plane() {
            t += pipeline;
        }
        // Second hop: switch → dst (unless destined to the switch).
        if packet.dst != NodeId::Switch {
            let links = self
                .links_mut(packet.dst)
                .expect("destination blade exists in rack");
            t = links.down.transfer(t, bytes);
        }
        t
    }

    /// Multicasts an invalidation from the switch to the all-compute group,
    /// pruning copies for blades outside `sharers` in the egress pipeline.
    ///
    /// Returns `(blade, arrival)` for every blade that actually receives a
    /// copy. Pruned copies consume no link bandwidth.
    pub fn multicast_from_switch(
        &mut self,
        now: SimTime,
        sharers: BladeSet,
        bytes: u32,
    ) -> Vec<(u16, SimTime)> {
        let mut deliveries = Vec::new();
        self.multicast_from_switch_into(now, sharers, bytes, &mut deliveries);
        deliveries
    }

    /// [`Fabric::multicast_from_switch`] writing into a reusable delivery
    /// buffer (cleared first) instead of allocating one per round.
    pub fn multicast_from_switch_into(
        &mut self,
        now: SimTime,
        sharers: BladeSet,
        bytes: u32,
        deliveries: &mut Vec<(u16, SimTime)>,
    ) {
        deliveries.clear();
        let after_pipeline = now + self.cfg.switch_pipeline;
        let members = self.all_compute_group.members();
        for blade in members.iter() {
            if sharers.contains(blade) {
                self.packets_sent += 1;
                // Loss injection applies per replicated copy.
                if self.loss_rate > 0.0 && self.loss_rng.gen_bool(self.loss_rate) {
                    self.packets_lost += 1;
                    continue;
                }
                let links = &mut self.compute[blade as usize];
                let arrive = links.down.transfer(after_pipeline, bytes);
                self.multicast_copies += 1;
                deliveries.push((blade, arrive));
            } else {
                self.multicast_pruned += 1;
            }
        }
    }

    /// The rack-wide "all compute blades" multicast group.
    pub fn all_compute_group(&self) -> &MulticastGroup {
        &self.all_compute_group
    }

    /// Total packets offered to the fabric.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Packets dropped by loss injection.
    pub fn packets_lost(&self) -> u64 {
        self.packets_lost
    }

    /// Multicast copies delivered (post-pruning).
    pub fn multicast_copies(&self) -> u64 {
        self.multicast_copies
    }

    /// Multicast copies pruned in the egress pipeline.
    pub fn multicast_pruned(&self) -> u64 {
        self.multicast_pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn read_req(src: NodeId, dst: NodeId) -> Packet {
        Packet::new(
            src,
            dst,
            PacketKind::RdmaReadReq {
                vaddr: 0x1000,
                len: 4096,
            },
        )
    }

    #[test]
    fn unicast_through_switch_charges_two_hops() {
        let cfg = LatencyConfig::default();
        let mut fabric = Fabric::new(2, 2, cfg);
        let pkt = read_req(NodeId::Compute(0), NodeId::Memory(1));
        let arrive = fabric.send(SimTime::ZERO, &pkt);
        let expect = cfg.hop(pkt.wire_bytes()) + cfg.switch_pipeline + cfg.hop(pkt.wire_bytes());
        assert_eq!(arrive, expect);
    }

    #[test]
    fn blade_to_switch_is_one_hop() {
        let cfg = LatencyConfig::default();
        let mut fabric = Fabric::new(1, 1, cfg);
        let pkt = read_req(NodeId::Compute(0), NodeId::Switch);
        let arrive = fabric.send(SimTime::ZERO, &pkt);
        assert_eq!(arrive, cfg.hop(pkt.wire_bytes()) + cfg.switch_pipeline);
    }

    #[test]
    fn control_plane_packets_skip_pipeline() {
        let cfg = LatencyConfig::default();
        let mut fabric = Fabric::new(1, 1, cfg);
        let pkt = Packet::new(
            NodeId::Compute(0),
            NodeId::Switch,
            PacketKind::CtrlSyscall { call: 1 },
        );
        let arrive = fabric.send(SimTime::ZERO, &pkt);
        assert_eq!(arrive, cfg.hop(pkt.wire_bytes()));
    }

    #[test]
    fn multicast_prunes_non_sharers() {
        let mut fabric = Fabric::new(4, 1, LatencyConfig::default());
        let sharers: BladeSet = [1u16, 3].into_iter().collect();
        let deliveries = fabric.multicast_from_switch(SimTime::ZERO, sharers, 82);
        let blades: Vec<u16> = deliveries.iter().map(|&(b, _)| b).collect();
        assert_eq!(blades, vec![1, 3]);
        assert_eq!(fabric.multicast_copies(), 2);
        assert_eq!(fabric.multicast_pruned(), 2);
    }

    #[test]
    fn multicast_arrivals_share_pipeline_cost() {
        let cfg = LatencyConfig::default();
        let mut fabric = Fabric::new(2, 1, cfg);
        let sharers: BladeSet = [0u16, 1].into_iter().collect();
        let deliveries = fabric.multicast_from_switch(SimTime::ZERO, sharers, 82);
        // Replication happens in the egress stage: both copies see the same
        // single pipeline traversal, then independent down-links.
        let expect = cfg.switch_pipeline + cfg.hop(82);
        assert!(deliveries.iter().all(|&(_, t)| t == expect));
    }

    #[test]
    fn concurrent_sends_to_same_destination_queue() {
        let cfg = LatencyConfig::default();
        let mut fabric = Fabric::new(1, 1, cfg);
        let pkt = Packet::new(
            NodeId::Memory(0),
            NodeId::Compute(0),
            PacketKind::RdmaReadResp {
                vaddr: 0,
                len: 4096,
            },
        );
        let a = fabric.send(SimTime::ZERO, &pkt);
        let b = fabric.send(SimTime::ZERO, &pkt);
        assert!(b > a, "second page response queues behind the first");
        let gap = (b - a).as_nanos();
        let serialize = cfg.serialization(pkt.wire_bytes()).as_nanos();
        assert_eq!(gap, serialize);
    }

    #[test]
    fn loss_injection_drops_packets() {
        let mut fabric = Fabric::new(1, 1, LatencyConfig::default());
        fabric.set_loss(1.0, 42);
        let pkt = read_req(NodeId::Compute(0), NodeId::Memory(0));
        assert_eq!(fabric.try_send(SimTime::ZERO, &pkt), Delivery::Lost);
        assert_eq!(fabric.packets_lost(), 1);
    }

    #[test]
    fn loss_rate_roughly_respected() {
        let mut fabric = Fabric::new(1, 1, LatencyConfig::default());
        fabric.set_loss(0.25, 7);
        let pkt = read_req(NodeId::Compute(0), NodeId::Memory(0));
        let lost = (0..10_000)
            .filter(|_| fabric.try_send(SimTime::ZERO, &pkt) == Delivery::Lost)
            .count();
        let frac = lost as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "loss fraction {frac}");
    }

    #[test]
    fn delivery_arrival_accessor() {
        assert_eq!(Delivery::Lost.arrival(), None);
        assert_eq!(
            Delivery::Delivered(SimTime::from_nanos(5)).arrival(),
            Some(SimTime::from_nanos(5))
        );
    }

    #[test]
    #[should_panic(expected = "destination blade exists")]
    fn unknown_destination_panics() {
        let mut fabric = Fabric::new(1, 1, LatencyConfig::default());
        let pkt = read_req(NodeId::Compute(0), NodeId::Memory(9));
        fabric.send(SimTime::ZERO, &pkt);
    }
}
