//! Simulated rack network fabric.
//!
//! MIND's prototype connects compute and memory blades through a single
//! programmable top-of-rack switch over 100 Gbps RDMA links. This crate
//! models that fabric: node identities ([`node::NodeId`]), packets carrying
//! RDMA verbs and coherence messages ([`packet`]), links with propagation
//! latency plus bandwidth-derived serialization and queueing ([`link`]), the
//! star topology with native multicast and sharer-list egress pruning
//! ([`fabric`]), and the ACK/timeout/retransmit reliability layer from paper
//! §4.4 ([`reliability`]).
//!
//! Latencies are calibrated against the paper's §7.2 measurements via
//! [`link::LatencyConfig`]: a one-sided RDMA 4 KB page fetch through the
//! switch lands at ≈9 µs end-to-end and a sequential invalidate-then-fetch
//! at ≈18 µs, matching Figure 7 (left).

pub mod fabric;
pub mod link;
pub mod node;
pub mod packet;
pub mod reliability;

pub use fabric::{Fabric, MulticastGroup};
pub use link::{LatencyConfig, Link};
pub use node::NodeId;
pub use packet::{Packet, PacketKind};
