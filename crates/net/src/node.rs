//! Node identities in the disaggregated rack.

use std::fmt;

/// Identifies a network-attached entity in the rack.
///
/// The rack is a star: every blade connects to the single programmable
/// switch. Compute and memory blades are numbered independently, mirroring
/// the paper's topology of up to 8 compute-blade VMs and multiple
/// memory-blade VMs behind one Tofino switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// A compute blade (runs threads, holds the local DRAM cache).
    Compute(u16),
    /// A memory blade (passive page store served by one-sided RDMA).
    Memory(u16),
    /// The programmable top-of-rack switch.
    Switch,
}

impl NodeId {
    /// Whether this is a compute blade.
    pub fn is_compute(self) -> bool {
        matches!(self, NodeId::Compute(_))
    }

    /// Whether this is a memory blade.
    pub fn is_memory(self) -> bool {
        matches!(self, NodeId::Memory(_))
    }

    /// The blade index, if this is a blade.
    pub fn blade_index(self) -> Option<u16> {
        match self {
            NodeId::Compute(i) | NodeId::Memory(i) => Some(i),
            NodeId::Switch => None,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Compute(i) => write!(f, "cb{i}"),
            NodeId::Memory(i) => write!(f, "mb{i}"),
            NodeId::Switch => write!(f, "switch"),
        }
    }
}

/// A compact bitmap over compute blades, used for coherence sharer lists.
///
/// The paper's rack has at most 8 compute blades; we allow up to 64 so the
/// sharer list fits in a register-sized value — exactly the representation a
/// switch ASIC would embed in an invalidation packet (§4.3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct BladeSet(u64);

impl BladeSet {
    /// Maximum number of compute blades representable.
    pub const CAPACITY: u16 = 64;

    /// The empty set.
    pub const EMPTY: BladeSet = BladeSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        BladeSet(0)
    }

    /// Creates a set containing a single blade.
    pub fn singleton(blade: u16) -> Self {
        let mut s = BladeSet::new();
        s.insert(blade);
        s
    }

    /// Inserts a blade.
    ///
    /// # Panics
    ///
    /// Panics if `blade >= 64`.
    pub fn insert(&mut self, blade: u16) {
        assert!(blade < Self::CAPACITY, "blade index out of range");
        self.0 |= 1 << blade;
    }

    /// Removes a blade; no-op if absent.
    pub fn remove(&mut self, blade: u16) {
        if blade < Self::CAPACITY {
            self.0 &= !(1 << blade);
        }
    }

    /// Whether `blade` is in the set.
    pub fn contains(self, blade: u16) -> bool {
        blade < Self::CAPACITY && self.0 & (1 << blade) != 0
    }

    /// Number of blades in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Clears the set.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates blade indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u16> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Set union.
    pub fn union(self, other: BladeSet) -> BladeSet {
        BladeSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: BladeSet) -> BladeSet {
        BladeSet(self.0 & !other.0)
    }

    /// If the set holds exactly one blade, returns it.
    pub fn sole_member(self) -> Option<u16> {
        if self.len() == 1 {
            Some(self.0.trailing_zeros() as u16)
        } else {
            None
        }
    }

    /// Raw bit representation, as embedded in invalidation packets.
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl FromIterator<u16> for BladeSet {
    fn from_iter<I: IntoIterator<Item = u16>>(iter: I) -> Self {
        let mut s = BladeSet::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl fmt::Display for BladeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, b) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "cb{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_classification() {
        assert!(NodeId::Compute(0).is_compute());
        assert!(!NodeId::Compute(0).is_memory());
        assert!(NodeId::Memory(3).is_memory());
        assert_eq!(NodeId::Memory(3).blade_index(), Some(3));
        assert_eq!(NodeId::Switch.blade_index(), None);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::Compute(2).to_string(), "cb2");
        assert_eq!(NodeId::Memory(0).to_string(), "mb0");
        assert_eq!(NodeId::Switch.to_string(), "switch");
    }

    #[test]
    fn bladeset_insert_remove_contains() {
        let mut s = BladeSet::new();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(7);
        s.insert(63);
        assert!(s.contains(0) && s.contains(7) && s.contains(63));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        s.remove(7);
        assert!(!s.contains(7));
        assert_eq!(s.len(), 2);
        s.remove(50); // absent: no-op
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bladeset_insert_out_of_range_panics() {
        BladeSet::new().insert(64);
    }

    #[test]
    fn bladeset_iter_ascending() {
        let s: BladeSet = [5u16, 1, 9].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn bladeset_union_difference() {
        let a: BladeSet = [1u16, 2, 3].into_iter().collect();
        let b: BladeSet = [3u16, 4].into_iter().collect();
        assert_eq!(a.union(b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn bladeset_sole_member() {
        assert_eq!(BladeSet::singleton(4).sole_member(), Some(4));
        let two: BladeSet = [1u16, 2].into_iter().collect();
        assert_eq!(two.sole_member(), None);
        assert_eq!(BladeSet::EMPTY.sole_member(), None);
    }

    #[test]
    fn bladeset_display() {
        let s: BladeSet = [0u16, 2].into_iter().collect();
        assert_eq!(s.to_string(), "{cb0,cb2}");
        assert_eq!(BladeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn bladeset_clear() {
        let mut s = BladeSet::singleton(3);
        s.clear();
        assert!(s.is_empty());
    }
}
