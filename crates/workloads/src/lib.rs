//! Workload generators and the trace-replay runner (paper §7 methodology).
//!
//! The paper captures memory accesses from real applications with Intel PIN
//! and replays identical traces against MIND, GAM, and FastSwap. Here each
//! workload is a deterministic *generator* parameterised to match the
//! published access-pattern statistics of its application:
//!
//! - [`tf`]: TensorFlow/ResNet-50 — large read-mostly weight tensors,
//!   per-thread activations, rare shared parameter updates; scales well.
//! - [`gc`]: GraphChi/PageRank on a social graph — random, contended access
//!   to shared rank state; writes ~2.5× more shared data than TF.
//! - [`memcached`]: Memcached under YCSB-A (50/50) and YCSB-C (read-only),
//!   with the shared LRU/metadata writes memcached performs on *every*
//!   operation — the reason even read-only M_C triggers invalidation storms.
//! - [`kvs`]: Native-KVS — a partitioned key-value store whose state splits
//!   cleanly across blades (scales better than memcached, Figure 5 right).
//! - [`micro`]: the §7.2 microbenchmark — 400 k-page working set, uniform
//!   random, swept over read ratio × sharing ratio.
//!
//! [`runner`] replays any [`trace::Workload`] against any
//! [`mind_core::system::MemorySystem`], maintaining per-thread virtual
//! clocks and aggregating the latency breakdowns the figures report.
//! [`shard`] scales that replay to partitioned multi-tenant scenarios: a
//! fused serialized reference and a deterministic sharded executor over
//! per-partition sub-clusters, merged exactly.

pub mod gc;
pub mod kvs;
pub mod memcached;
pub mod micro;
pub mod runner;
pub mod shard;
pub mod tf;
pub mod trace;

pub use runner::{merge_reports, run, Concurrency, ReportMerger, RunConfig, RunReport};
pub use shard::{
    run_group, run_sharded, run_sharded_threads, GroupRun, ShardError, ShardSpec, StreamedMerge,
    SHARD_THREADS_ENV,
};
pub use trace::{TraceOp, Workload};
