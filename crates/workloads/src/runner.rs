//! The trace-replay runner.
//!
//! Replays a [`Workload`] against a [`MemorySystem`], maintaining one
//! virtual clock per thread: at each step the thread with the earliest
//! clock issues its next *run* of operations at that time — a batch of up
//! to [`RunConfig::batch_ops`] consecutive ops pushed through
//! [`MemorySystem::execute_batch`] — and its clock advances by the chained
//! access latencies plus a small per-op compute gap. At `batch_ops: 1`
//! (the default) this is exactly the scalar op-at-a-time discipline; larger
//! batches issue each thread's ops in quanta, letting a batched datapath
//! amortize per-op table walks. The run's *runtime* is the maximum thread
//! clock — the quantity Figure 5 reports (as inverse, normalized
//! performance).

use mind_core::engine::{ClusterEngine, ClusterStep};
use mind_core::system::{AccessOutcome, MemOp, MemorySystem, OpBatch};
use mind_obs::{TraceConfig, TraceData, WindowSeries};
use mind_sim::stats::{Histogram, Metrics};
use mind_sim::{EventQueue, SimTime};

use crate::trace::{TraceOp, Workload};

/// How concurrently-running threads' operations interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// Lockstep scheduling turns: the earliest thread issues its next
    /// batch and drains it before its next turn, so in-flight overlap
    /// forms only *within* one thread's batch. The default, and the
    /// byte-identical reference discipline.
    #[default]
    Turnwise,
    /// The cluster-wide event-driven engine (`mind_core::engine`): every
    /// thread is a continuous issue stream, faults from different threads
    /// overlap each other's fabric RTTs, same-region transitions
    /// serialize cluster-wide, and each blade's RNIC issue bandwidth
    /// gates its threads. Takes effect when `window > 1` *and* the system
    /// has an issue/complete datapath; otherwise the run stays turnwise
    /// (so a `window <= 1` cluster run replays the serialized reference
    /// byte-identically).
    Cluster,
}

/// Runner parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Operations each thread executes in the measured phase.
    pub ops_per_thread: u64,
    /// Untimed operations each thread executes first, to populate caches
    /// and let bounded splitting stabilize (excluded from every reported
    /// number).
    pub warmup_ops_per_thread: u64,
    /// Threads co-located per compute blade (the paper uses 10 for
    /// inter-blade scaling); thread `t` runs on blade `t / threads_per_blade`.
    pub threads_per_blade: u16,
    /// Non-memory compute time between operations.
    pub think_time: SimTime,
    /// Thread→blade mapping: `false` groups consecutive threads per blade
    /// (`t / threads_per_blade`, the paper's round-robin process
    /// placement); `true` interleaves (`t % n_blades`) — used by the §8
    /// thread-placement ablation to co-locate or separate sharers.
    pub interleave: bool,
    /// Consecutive operations a thread issues per scheduling turn, pushed
    /// through the system as one [`OpBatch`]. `1` (the default) preserves
    /// the scalar op-at-a-time semantics exactly; larger values trade
    /// scheduling granularity for datapath amortization. For any fixed
    /// value, scalar and batched datapaths produce identical reports.
    pub batch_ops: u64,
    /// In-flight window depth per batch (memory-level parallelism): how
    /// many independent faults a thread's blade keeps in flight at once.
    /// `1` (the default) is the serialized issue discipline — every RTT
    /// completes before the next op issues — and reproduces the
    /// pre-window reports byte-identically. Larger values overlap fabric
    /// round trips on systems with an issue/complete datapath (MIND);
    /// systems without one run serialized regardless.
    pub window: u32,
    /// Observability: whether to record the windowed telemetry series
    /// (and its bucket width). Defaults to resolving `MIND_TRACE`, so an
    /// untraced run carries no series and its report is unchanged.
    pub trace: TraceConfig,
    /// Cross-thread scheduling discipline; see [`Concurrency`].
    pub concurrency: Concurrency,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            ops_per_thread: 10_000,
            warmup_ops_per_thread: 0,
            threads_per_blade: 1,
            think_time: SimTime::from_nanos(100),
            interleave: false,
            batch_ops: 1,
            window: 1,
            trace: TraceConfig::default(),
            concurrency: Concurrency::Turnwise,
        }
    }
}

impl RunConfig {
    /// This configuration with the given batch size (builder-style, for
    /// sweep tables).
    pub fn with_batch_ops(mut self, batch_ops: u64) -> Self {
        self.batch_ops = batch_ops;
        self
    }

    /// This configuration with the given in-flight window depth
    /// (builder-style, for sweep tables).
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// This configuration with the given trace settings (builder-style;
    /// tests pin a [`mind_obs::TraceMode`] to override the environment).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// This configuration with the given cross-thread scheduling
    /// discipline (builder-style).
    pub fn with_concurrency(mut self, concurrency: Concurrency) -> Self {
        self.concurrency = concurrency;
        self
    }
}

/// Aggregated results of one replay.
///
/// All rates and means are derived from the integer fields below by
/// [`merge_reports`]' shared arithmetic, so reports over disjoint
/// partitions merge exactly: integers add, histograms and metrics merge
/// bucket-wise, and the floats are recomputed from the sums.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload name; owned so swept scenarios carry their parameters.
    pub name: String,
    /// Max thread clock at completion.
    pub runtime: SimTime,
    /// When the warmup phase ended (absolute sim time); the measured
    /// window is `[warmup_end, warmup_end + runtime]`.
    pub warmup_end: SimTime,
    /// Total operations executed.
    pub total_ops: u64,
    /// Measured operations that went remote (page faults).
    pub remote_ops: u64,
    /// Invalidation messages during the measured window.
    pub invalidations: u64,
    /// Pages flushed during the measured window.
    pub flushed_pages: u64,
    /// Total latency of remote accesses (ns); `mean_remote_ns`'s numerator.
    pub sum_remote_lat_ns: u128,
    /// Million operations per second (aggregate).
    pub mops: f64,
    /// Remote accesses (page faults) per operation.
    pub remote_per_op: f64,
    /// Invalidation messages per operation.
    pub invalidations_per_op: f64,
    /// Pages flushed per operation.
    pub flushed_per_op: f64,
    /// Sum of per-access latency components, for breakdown reporting (ns).
    pub sum_fault_ns: u128,
    /// Network component total (ns).
    pub sum_network_ns: u128,
    /// Invalidation queueing component total (ns).
    pub sum_inv_queue_ns: u128,
    /// TLB shootdown component total (ns).
    pub sum_inv_tlb_ns: u128,
    /// Software (library) component total (ns).
    pub sum_software_ns: u128,
    /// Fabric time hidden by intra-batch RTT overlap (ns); zero whenever
    /// [`RunConfig::window`] is 1.
    pub sum_overlapped_ns: u128,
    /// Mean latency of *remote* accesses only (ns).
    pub mean_remote_ns: f64,
    /// Per-operation latency distribution over the measured window; tail
    /// SLOs (p99, p99.9) are cut from it in the perf reports.
    pub latency: Histogram,
    /// System metrics snapshot at completion (lifetime, includes warmup).
    pub metrics: Metrics,
    /// Metrics accumulated during the measured window only.
    pub window_metrics: Metrics,
    /// Windowed telemetry over the measured phase, bucketed by virtual
    /// completion time; `None` when tracing is off (so untraced reports
    /// are unchanged by this field's existence).
    pub timeseries: Option<WindowSeries>,
    /// The system's deterministic event trace (shard-local lanes already
    /// rebased to global blade indices); `None` when tracing is off.
    pub trace: Option<TraceData>,
}

impl RunReport {
    /// Performance as inverse runtime, normalized against `baseline`
    /// (Figure 5's y-axis).
    pub fn normalized_perf(&self, baseline: &RunReport) -> f64 {
        baseline.runtime.as_nanos() as f64 / self.runtime.as_nanos() as f64
    }
}

/// The thread→blade mapping under the configured placement.
fn blade_of(thread: u16, cfg: RunConfig, n_blades: u16) -> u16 {
    if cfg.interleave {
        thread % n_blades
    } else {
        thread / cfg.threads_per_blade
    }
}

/// Integer accumulators for one measured window — the exact state two
/// partitioned runs merge by addition.
#[derive(Debug)]
pub(crate) struct Accum {
    pub(crate) total_ops: u64,
    pub(crate) remote: u64,
    pub(crate) invals: u64,
    pub(crate) flushed: u64,
    pub(crate) sum_fault: u128,
    pub(crate) sum_network: u128,
    pub(crate) sum_inv_queue: u128,
    pub(crate) sum_inv_tlb: u128,
    pub(crate) sum_software: u128,
    pub(crate) sum_overlapped: u128,
    pub(crate) sum_remote_lat: u128,
    pub(crate) latency: Histogram,
    /// Windowed telemetry, present only when the run traces.
    pub(crate) series: Option<WindowSeries>,
}

impl Accum {
    pub(crate) fn new() -> Self {
        Accum {
            total_ops: 0,
            remote: 0,
            invals: 0,
            flushed: 0,
            sum_fault: 0,
            sum_network: 0,
            sum_inv_queue: 0,
            sum_inv_tlb: 0,
            sum_software: 0,
            sum_overlapped: 0,
            sum_remote_lat: 0,
            latency: Histogram::new(),
            series: None,
        }
    }

    /// Accumulators that additionally record the windowed telemetry
    /// series when `trace` is enabled.
    pub(crate) fn with_trace(trace: TraceConfig) -> Self {
        let mut acc = Accum::new();
        if trace.enabled() {
            acc.series = Some(WindowSeries::new(trace.interval));
        }
        acc
    }

    /// Folds one executed batch into the accumulators, in op order.
    ///
    /// # Panics
    ///
    /// Panics if any op of the batch failed (callers reject failures
    /// before accounting).
    pub(crate) fn record_batch(&mut self, batch: &OpBatch) {
        for (i, result) in batch.results().iter().enumerate() {
            let outcome = result.as_ref().expect("callers reject failures");
            self.record_op(outcome, batch.completion(i));
        }
    }

    /// Folds one completed operation into the accumulators — the per-op
    /// half of [`record_batch`](Self::record_batch), used directly by the
    /// cluster engine's driver where ops complete stream-wise rather than
    /// batch-wise.
    pub(crate) fn record_op(&mut self, outcome: &AccessOutcome, complete_at: SimTime) {
        let total_ns = outcome.latency.total().as_nanos();
        self.total_ops += 1;
        if outcome.remote {
            self.remote += 1;
            self.sum_remote_lat += total_ns as u128;
        }
        self.latency.record(total_ns);
        self.invals += outcome.invalidations as u64;
        self.flushed += outcome.flushed_pages as u64;
        self.sum_fault += outcome.latency.fault.as_nanos() as u128;
        self.sum_network += outcome.latency.network.as_nanos() as u128;
        self.sum_inv_queue += outcome.latency.inv_queue.as_nanos() as u128;
        self.sum_inv_tlb += outcome.latency.inv_tlb.as_nanos() as u128;
        self.sum_software += outcome.latency.software.as_nanos() as u128;
        self.sum_overlapped += outcome.latency.overlapped.as_nanos() as u128;
        if let Some(series) = &mut self.series {
            // Bucket by virtual completion time (identical across
            // execution cells); stall = the directory-busy share.
            let stall = outcome.latency.inv_queue + outcome.latency.inv_tlb;
            series.record(
                complete_at,
                total_ns,
                outcome.remote,
                outcome.invalidations,
                stall.as_nanos(),
            );
        }
    }

    /// Records nanoseconds an issue waited on its blade's RNIC queue into
    /// the telemetry series (no-op when the run is untraced).
    pub(crate) fn record_nic_stall(&mut self, at: SimTime, stall: SimTime) {
        if let Some(series) = &mut self.series {
            series.record_nic_stall(at, stall.as_nanos());
        }
    }
}

/// Builds the report from accumulated integers — the single place the
/// derived floats are computed, shared by [`run`], the sharded executor,
/// and [`merge_reports`] so a merge of one report reproduces it exactly.
pub(crate) fn finish_report(
    name: String,
    warmup_end: SimTime,
    end_clock: SimTime,
    acc: Accum,
    metrics: Metrics,
    window_metrics: Metrics,
) -> RunReport {
    let runtime = end_clock.saturating_sub(warmup_end);
    let secs = runtime.as_secs_f64().max(1e-12);
    let mut acc = acc;
    let timeseries = acc.series.take();
    RunReport {
        name,
        runtime,
        warmup_end,
        total_ops: acc.total_ops,
        remote_ops: acc.remote,
        invalidations: acc.invals,
        flushed_pages: acc.flushed,
        sum_remote_lat_ns: acc.sum_remote_lat,
        mops: acc.total_ops as f64 / secs / 1e6,
        remote_per_op: acc.remote as f64 / acc.total_ops as f64,
        invalidations_per_op: acc.invals as f64 / acc.total_ops as f64,
        flushed_per_op: acc.flushed as f64 / acc.total_ops as f64,
        sum_fault_ns: acc.sum_fault,
        sum_network_ns: acc.sum_network,
        sum_inv_queue_ns: acc.sum_inv_queue,
        sum_inv_tlb_ns: acc.sum_inv_tlb,
        sum_software_ns: acc.sum_software,
        sum_overlapped_ns: acc.sum_overlapped,
        mean_remote_ns: if acc.remote > 0 {
            acc.sum_remote_lat as f64 / acc.remote as f64
        } else {
            0.0
        },
        latency: acc.latency,
        metrics,
        window_metrics,
        timeseries,
        trace: None,
    }
}

/// Streaming accumulator behind [`merge_reports`]: reports from disjoint
/// partitions fold in one at a time and are *consumed*, so a caller
/// merging `n` partitions holds one accumulator plus at most one
/// in-flight report instead of all `n` — the constant-memory half of the
/// sharded executor's streamed merge.
///
/// The fold arithmetic is the byte-identity contract: integers and
/// histograms add, the measured window spans `[max warmup_end, max
/// end-of-run]` (max is commutative and associative, so fold order never
/// changes it), timeseries buckets add, and every derived rate is
/// recomputed from the folded integers by [`finish_report`]'s shared
/// arithmetic only at [`finish`](Self::finish). Trace merge *extends*
/// event vectors, so trace bytes depend on fold order — callers that
/// carry traces must fold in partition-index order (the sharded
/// executor's reorder buffer, `mind_workloads::shard::StreamedMerge`,
/// exists to guarantee exactly that).
#[derive(Debug)]
pub struct ReportMerger {
    name: String,
    folded: usize,
    warmup_end: SimTime,
    end_clock: SimTime,
    acc: Accum,
    metrics: Metrics,
    window_metrics: Metrics,
    trace: Option<TraceData>,
}

impl ReportMerger {
    /// An empty accumulator for the merged report named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ReportMerger {
            name: name.into(),
            folded: 0,
            warmup_end: SimTime::ZERO,
            end_clock: SimTime::ZERO,
            acc: Accum::new(),
            metrics: Metrics::new(),
            window_metrics: Metrics::new(),
            trace: None,
        }
    }

    /// Folds one partition's report into the accumulator, consuming it
    /// (the report's buffers — histogram, timeseries, trace — are either
    /// absorbed or freed here, never retained whole).
    pub fn fold(&mut self, r: RunReport) {
        self.warmup_end = self.warmup_end.max(r.warmup_end);
        self.end_clock = self.end_clock.max(r.warmup_end + r.runtime);
        self.acc.total_ops += r.total_ops;
        self.acc.remote += r.remote_ops;
        self.acc.invals += r.invalidations;
        self.acc.flushed += r.flushed_pages;
        self.acc.sum_fault += r.sum_fault_ns;
        self.acc.sum_network += r.sum_network_ns;
        self.acc.sum_inv_queue += r.sum_inv_queue_ns;
        self.acc.sum_inv_tlb += r.sum_inv_tlb_ns;
        self.acc.sum_software += r.sum_software_ns;
        self.acc.sum_overlapped += r.sum_overlapped_ns;
        self.acc.sum_remote_lat += r.sum_remote_lat_ns;
        self.acc.latency.merge(&r.latency);
        self.metrics.merge(&r.metrics);
        self.window_metrics.merge(&r.window_metrics);
        if let Some(series) = r.timeseries {
            match &mut self.acc.series {
                Some(mine) => mine.merge(&series),
                None => self.acc.series = Some(series),
            }
        }
        if let Some(t) = r.trace {
            match &mut self.trace {
                Some(mine) => mine.merge(t),
                None => self.trace = Some(t),
            }
        }
        self.folded += 1;
    }

    /// How many reports have been folded so far.
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Finishes the merge: recomputes every derived float from the folded
    /// integers through [`finish_report`]'s shared arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if nothing was folded.
    pub fn finish(self) -> RunReport {
        assert!(self.folded > 0, "nothing to merge");
        let mut merged = finish_report(
            self.name,
            self.warmup_end,
            self.end_clock,
            self.acc,
            self.metrics,
            self.window_metrics,
        );
        merged.trace = self.trace;
        merged
    }
}

/// Merges reports from disjoint partitions into the report the fused run
/// over their union would produce: integers and histograms add, the
/// measured window spans `[max warmup_end, max end-of-run]`, and every
/// derived rate is recomputed from the merged integers through the same
/// arithmetic as a direct run. Merging a single report reproduces it
/// exactly — the `shards = 1` identity the sharded executor is checked
/// against.
///
/// This is the in-memory reference form of [`ReportMerger`]: it folds the
/// slice element-by-element through the identical streaming arithmetic,
/// so the streamed and in-memory merges agree byte-for-byte by shared
/// code, not by parallel implementations.
///
/// # Panics
///
/// Panics if `reports` is empty.
pub fn merge_reports(name: impl Into<String>, reports: &[RunReport]) -> RunReport {
    assert!(!reports.is_empty(), "nothing to merge");
    let mut merger = ReportMerger::new(name);
    for r in reports {
        merger.fold(r.clone());
    }
    merger.finish()
}

/// Drives a set of issue streams (threads) through a system's
/// [`ClusterEngine`] — the cluster-mode counterpart of the turnwise
/// scheduling loops, shared by [`run`] and the sharded executor.
///
/// Each source is a continuous stream: its next op becomes ungated-ready
/// `think_time` after its previous *issue* (the issue pipeline's per-op
/// cost, same chaining rule as a turnwise batch — but with no per-turn
/// drain barrier, which is exactly the cross-turn overlap this engine
/// adds). Ops are generated `batch_ops` at a time into per-source buffers
/// through a caller-supplied `fill` closure, so workload generation order
/// per source is identical to the turnwise runner's.
///
/// The caller owns the phase protocol: pump [`advance_warmup`] to
/// completion, snapshot its baseline metrics, then [`start_measured`] and
/// pump [`advance_measured`]. Warmup ends at the latest warmup completion
/// (plus gap) and each source resumes the measured phase `gap` after its
/// last warmup issue — the same accounting boundaries as turnwise, with
/// in-flight window state (and the overlap frontier) persisting across
/// the phase line.
///
/// [`advance_warmup`]: ClusterDriver::advance_warmup
/// [`start_measured`]: ClusterDriver::start_measured
/// [`advance_measured`]: ClusterDriver::advance_measured
pub(crate) struct ClusterDriver {
    eng: ClusterEngine,
    bufs: Vec<Vec<MemOp>>,
    pos: Vec<usize>,
    /// Ops left to issue in the current phase, per source (buffered ops
    /// included — they decrement at issue).
    left: Vec<u64>,
    /// Per-source resume time for the measured phase: last warmup issue
    /// plus gap ([`SimTime::ZERO`] for sources without warmup).
    resume: Vec<SimTime>,
    measured_ops: u64,
    batch_ops: u64,
    gap: SimTime,
    measured_started: bool,
    /// Latest warmup completion + gap across sources.
    pub(crate) warmup_end: SimTime,
    /// Latest measured completion + gap across sources (primed to
    /// `warmup_end` by [`ClusterDriver::start_measured`]).
    pub(crate) end_clock: SimTime,
}

impl ClusterDriver {
    /// A driver over `sources` streams. Starts in the warmup phase (which
    /// is trivially complete when `warmup_ops_per_thread` is 0).
    pub(crate) fn new(eng: ClusterEngine, sources: u32, cfg: RunConfig) -> Self {
        let n = sources as usize;
        let mut driver = ClusterDriver {
            eng,
            bufs: vec![Vec::new(); n],
            pos: vec![0; n],
            left: vec![cfg.warmup_ops_per_thread; n],
            resume: vec![SimTime::ZERO; n],
            measured_ops: cfg.ops_per_thread,
            batch_ops: cfg.batch_ops.max(1),
            gap: cfg.think_time,
            measured_started: false,
            warmup_end: SimTime::ZERO,
            end_clock: SimTime::ZERO,
        };
        if cfg.warmup_ops_per_thread > 0 {
            for src in 0..sources {
                driver.eng.seed(SimTime::ZERO, src);
            }
        }
        driver
    }

    /// Pumps warmup events up to `horizon`; returns whether the warmup
    /// phase has fully drained (idempotently true thereafter).
    pub(crate) fn advance_warmup<S: MemorySystem + ?Sized>(
        &mut self,
        system: &mut S,
        horizon: SimTime,
        fill: &mut dyn FnMut(u32, usize, &mut Vec<MemOp>),
    ) -> bool {
        debug_assert!(!self.measured_started, "warmup after start_measured");
        self.pump(system, horizon, fill, None)
    }

    /// Seeds the measured phase: every source resumes `gap` after its
    /// last warmup issue, on a fresh event queue (resume times may
    /// precede the warmup queue's final pop). Call exactly once, after
    /// [`ClusterDriver::advance_warmup`] returns `true` and the caller
    /// snapshotted its baseline metrics.
    pub(crate) fn start_measured(&mut self) {
        debug_assert!(!self.measured_started, "start_measured called twice");
        self.measured_started = true;
        self.end_clock = self.warmup_end;
        self.left.fill(self.measured_ops);
        for buf in &mut self.bufs {
            buf.clear();
        }
        self.pos.fill(0);
        self.eng.begin_phase();
        if self.measured_ops > 0 {
            for src in 0..self.eng.sources() {
                self.eng.seed(self.resume[src as usize], src);
            }
        }
    }

    /// Pumps measured events up to `horizon`, accounting completed ops
    /// (and NIC stalls) into `acc`; returns whether the run is complete.
    pub(crate) fn advance_measured<S: MemorySystem + ?Sized>(
        &mut self,
        system: &mut S,
        horizon: SimTime,
        fill: &mut dyn FnMut(u32, usize, &mut Vec<MemOp>),
        acc: &mut Accum,
    ) -> bool {
        debug_assert!(self.measured_started, "measure before start_measured");
        self.pump(system, horizon, fill, Some(acc))
    }

    /// The event loop: pops ready sources in deterministic order, offers
    /// each source's next op to the system's gates, defers gated sources
    /// to their release times, and streams issued ops. `acc: None` is the
    /// warmup phase (completions advance `warmup_end`, nothing is
    /// recorded); `Some` is measured.
    fn pump<S: MemorySystem + ?Sized>(
        &mut self,
        system: &mut S,
        horizon: SimTime,
        fill: &mut dyn FnMut(u32, usize, &mut Vec<MemOp>),
        mut acc: Option<&mut Accum>,
    ) -> bool {
        while let Some(at) = self.eng.peek_time() {
            if at > horizon {
                return false;
            }
            let (now, src) = self.eng.next_ready().expect("peeked event exists");
            let s = src as usize;
            if self.pos[s] == self.bufs[s].len() {
                let n = self.batch_ops.min(self.left[s]) as usize;
                debug_assert!(n > 0, "exhausted source popped");
                self.bufs[s].clear();
                fill(src, n, &mut self.bufs[s]);
                debug_assert_eq!(self.bufs[s].len(), n, "fill produced {n} ops");
                self.pos[s] = 0;
            }
            let op = self.bufs[s][self.pos[s]];
            let ready0 = self.eng.ready0(src);
            let step = system
                .cluster_issue(&mut self.eng, now, ready0, &op)
                .expect("cluster support probed via cluster_engine");
            match step {
                ClusterStep::Gated { until, nic_stall } => {
                    if nic_stall > SimTime::ZERO {
                        if let Some(acc) = acc.as_deref_mut() {
                            acc.record_nic_stall(now, nic_stall);
                        }
                    }
                    self.eng.defer(until, src);
                }
                ClusterStep::Issued {
                    outcome,
                    complete_at,
                    region: _,
                } => {
                    self.pos[s] += 1;
                    self.left[s] -= 1;
                    let done = complete_at + self.gap;
                    match acc.as_deref_mut() {
                        Some(acc) => {
                            acc.record_op(&outcome, complete_at);
                            self.end_clock = self.end_clock.max(done);
                        }
                        None => self.warmup_end = self.warmup_end.max(done),
                    }
                    let next = now + self.gap;
                    if self.left[s] > 0 {
                        self.eng.seed(next, src);
                    } else {
                        self.resume[s] = next;
                    }
                }
            }
        }
        true
    }
}

/// Replays `ops_per_thread × n_threads` operations of `workload` against
/// `system`.
///
/// # Panics
///
/// Panics if the workload's threads do not fit on the system's compute
/// blades under `threads_per_blade`.
pub fn run<S: MemorySystem + ?Sized, W: Workload + ?Sized>(
    system: &mut S,
    workload: &mut W,
    cfg: RunConfig,
) -> RunReport {
    let n_threads = workload.n_threads();
    let blades_needed = n_threads.div_ceil(cfg.threads_per_blade);
    assert!(
        blades_needed <= system.n_compute(),
        "workload needs {blades_needed} blades, system has {}",
        system.n_compute()
    );

    // Resolve workload regions to system addresses.
    let bases: Vec<u64> = workload
        .regions()
        .into_iter()
        .map(|len| system.alloc(len))
        .collect();

    // Cluster mode: hand the whole thread set to the system's
    // event-driven issue engine, when it has one and the window actually
    // admits overlap. At `window <= 1` (or on engine-less systems) the
    // turnwise discipline below *is* the cluster semantics — one op in
    // flight per thread, serialized — so the reference replay stays
    // byte-identical.
    if cfg.concurrency == Concurrency::Cluster && cfg.window > 1 {
        if let Some(eng) = system.cluster_engine(cfg.window, n_threads as u32) {
            return run_cluster(system, workload, cfg, eng, &bases, n_threads, blades_needed);
        }
    }

    // Discrete-event schedule over threads: the earliest thread issues
    // next; ties resolve in scheduling order (insertion seq).
    let mut queue: EventQueue<u16> = EventQueue::new();
    for t in 0..n_threads {
        queue.schedule(SimTime::ZERO, t);
    }

    // One reusable batch (and generator scratch) for the whole run.
    let batch_ops = cfg.batch_ops.max(1);
    let mut batch = OpBatch::chained(cfg.think_time).with_window(cfg.window);
    let mut ops_buf: Vec<TraceOp> = Vec::new();

    // Fills and executes one scheduling turn for `thread`: up to
    // `batch_ops` consecutive ops as a single chained batch starting at
    // `clock`. Returns the thread's clock after its last completion.
    let mut issue_turn = |system: &mut S,
                          workload: &mut W,
                          batch: &mut OpBatch,
                          clock: SimTime,
                          thread: u16,
                          n: usize|
     -> SimTime {
        let blade = blade_of(thread, cfg, blades_needed);
        ops_buf.clear();
        workload.fill_ops(thread, n, &mut ops_buf);
        batch.clear();
        for op in &ops_buf {
            batch.push(MemOp {
                at: SimTime::ZERO,
                blade,
                pdid: None,
                vaddr: bases[op.region as usize] + op.offset,
                kind: op.kind,
            });
        }
        system.execute_batch(clock, batch);
        // Trace replay treats any refusal as fatal, whichever op of the
        // batch it hit — same visibility as the scalar loop, which panics
        // inside `access` on the first error (warmup included).
        for (op, result) in batch.ops().iter().zip(batch.results()) {
            if let Err(e) = result {
                panic!("batched access failed at {:#x}: {e}", op.vaddr);
            }
        }
        // The thread resumes when its whole turn has completed. Under the
        // serialized window the last op completes last (issue times
        // chain), so this is exactly the old last-op arithmetic; under
        // overlap the in-flight tail may finish out of order and the
        // *latest* completion gates the next turn.
        let turn_done = (0..batch.len())
            .map(|i| batch.completion(i))
            .max()
            .expect("turns are non-empty");
        turn_done + cfg.think_time
    };

    // Warmup phase: populate caches, stabilize regions; untimed. Threads
    // finishing warmup seed the measured queue at their post-warmup
    // clocks, in completion order.
    let mut warmup_end = SimTime::ZERO;
    let mut measured: EventQueue<u16> = EventQueue::new();
    if cfg.warmup_ops_per_thread > 0 {
        let mut left: Vec<u64> = vec![cfg.warmup_ops_per_thread; n_threads as usize];
        while let Some(ev) = queue.pop() {
            let (clock, thread) = (ev.at, ev.event);
            let n = batch_ops.min(left[thread as usize]);
            let next = issue_turn(system, workload, &mut batch, clock, thread, n as usize);
            warmup_end = warmup_end.max(next);
            left[thread as usize] -= n;
            if left[thread as usize] > 0 {
                queue.schedule(next, thread);
            } else {
                measured.schedule(next, thread);
            }
        }
    } else {
        measured = queue;
    }
    let baseline_metrics = system.metrics();

    let mut remaining: Vec<u64> = vec![cfg.ops_per_thread; n_threads as usize];
    let mut acc = Accum::with_trace(cfg.trace);
    let mut end_clock = warmup_end;

    while let Some(ev) = measured.pop() {
        let (clock, thread) = (ev.at, ev.event);
        let n = batch_ops.min(remaining[thread as usize]);
        let next_clock = issue_turn(system, workload, &mut batch, clock, thread, n as usize);

        // One accounting flush per batch, in op order (issue_turn already
        // rejected any failed op).
        acc.record_batch(&batch);

        end_clock = end_clock.max(next_clock);
        remaining[thread as usize] -= n;
        if remaining[thread as usize] > 0 {
            measured.schedule(next_clock, thread);
        }
    }

    // Report the measured window only.
    let window_metrics = system.metrics().diff(&baseline_metrics);
    let mut report = finish_report(
        workload.name(),
        warmup_end,
        end_clock,
        acc,
        system.metrics(),
        window_metrics,
    );
    report.trace = system.take_trace();
    report
}

/// The cluster-mode body of [`run`]: same workload schedule per thread,
/// same warmup/measured accounting boundaries, but issue arbitration runs
/// through the system's [`ClusterEngine`] so independent threads' fabric
/// RTTs overlap cluster-wide.
fn run_cluster<S: MemorySystem + ?Sized, W: Workload + ?Sized>(
    system: &mut S,
    workload: &mut W,
    cfg: RunConfig,
    eng: ClusterEngine,
    bases: &[u64],
    n_threads: u16,
    n_blades: u16,
) -> RunReport {
    let mut driver = ClusterDriver::new(eng, n_threads as u32, cfg);
    let mut ops_buf: Vec<TraceOp> = Vec::new();
    let mut fill = |src: u32, n: usize, out: &mut Vec<MemOp>| {
        let thread = src as u16;
        let blade = blade_of(thread, cfg, n_blades);
        ops_buf.clear();
        workload.fill_ops(thread, n, &mut ops_buf);
        for op in &ops_buf {
            out.push(MemOp {
                at: SimTime::ZERO,
                blade,
                pdid: None,
                vaddr: bases[op.region as usize] + op.offset,
                kind: op.kind,
            });
        }
    };

    let drained = driver.advance_warmup(system, SimTime::MAX, &mut fill);
    debug_assert!(drained, "an unbounded horizon drains warmup");
    let baseline_metrics = system.metrics();
    driver.start_measured();
    let mut acc = Accum::with_trace(cfg.trace);
    let done = driver.advance_measured(system, SimTime::MAX, &mut fill, &mut acc);
    debug_assert!(done, "an unbounded horizon completes the run");

    let window_metrics = system.metrics().diff(&baseline_metrics);
    let mut report = finish_report(
        workload.name(),
        driver.warmup_end,
        driver.end_clock,
        acc,
        system.metrics(),
        window_metrics,
    );
    report.trace = system.take_trace();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_core::cluster::{MindCluster, MindConfig};
    use mind_core::system::AccessKind;
    use mind_sim::SimRng;

    use crate::trace::TraceOp;

    /// A trivially deterministic workload for runner tests.
    struct PingPong {
        threads: u16,
        rng: SimRng,
    }

    impl Workload for PingPong {
        fn name(&self) -> String {
            "pingpong".to_string()
        }
        fn regions(&self) -> Vec<u64> {
            vec![1 << 20]
        }
        fn n_threads(&self) -> u16 {
            self.threads
        }
        fn next_op(&mut self, _thread: u16) -> TraceOp {
            let page = self.rng.gen_below(4);
            TraceOp {
                region: 0,
                offset: page << 12,
                kind: if self.rng.gen_bool(0.5) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }
        }
    }

    #[test]
    fn runner_executes_all_ops() {
        let mut sys = MindCluster::new(MindConfig::small());
        let mut wl = PingPong {
            threads: 2,
            rng: SimRng::new(1),
        };
        let report = run(
            &mut sys,
            &mut wl,
            RunConfig {
                ops_per_thread: 500,
                warmup_ops_per_thread: 100,
                threads_per_blade: 1,
                think_time: SimTime::from_nanos(100),
                interleave: false,
                batch_ops: 1,
                window: 1,
                ..Default::default()
            },
        );
        assert_eq!(report.total_ops, 1000);
        assert!(report.runtime > SimTime::ZERO);
        assert!(report.mops > 0.0);
        assert!(report.remote_per_op > 0.0, "ping-pong faults");
        assert!(
            report.invalidations_per_op > 0.0,
            "write contention invalidates"
        );
        assert_eq!(
            report.latency.count(),
            report.total_ops,
            "one latency sample per measured op"
        );
        let (p50, p99, p999) = (
            report.latency.quantile(0.5),
            report.latency.quantile(0.99),
            report.latency.quantile(0.999),
        );
        assert!(p50 <= p99 && p99 <= p999, "percentiles ordered");
        assert!(p999 > 0);
    }

    use mind_core::system::ScalarLoop;

    #[test]
    fn batched_run_executes_all_ops_with_partial_batches() {
        // 500 ops per thread at batch 64: the last turn per thread is a
        // partial batch of 500 % 64 = 52 ops; warmup (100) ends with 36.
        let mut sys = MindCluster::new(MindConfig::small());
        let mut wl = PingPong {
            threads: 2,
            rng: SimRng::new(1),
        };
        let report = run(
            &mut sys,
            &mut wl,
            RunConfig {
                ops_per_thread: 500,
                warmup_ops_per_thread: 100,
                ..Default::default()
            }
            .with_batch_ops(64),
        );
        assert_eq!(report.total_ops, 1000);
        assert_eq!(report.latency.count(), 1000, "one sample per measured op");
        assert!(report.runtime > SimTime::ZERO);
    }

    #[test]
    fn batched_datapath_matches_scalar_loop_at_every_batch_size() {
        // The equivalence guarantee at runner level: for each batch size,
        // MIND's batched execute_batch produces a report identical to the
        // trait's default scalar loop over the same schedule.
        for batch_ops in [1u64, 8, 64] {
            let cfg = RunConfig {
                ops_per_thread: 400,
                warmup_ops_per_thread: 50,
                ..Default::default()
            }
            .with_batch_ops(batch_ops);
            let batched = {
                let mut sys = MindCluster::new(MindConfig::small());
                let mut wl = PingPong {
                    threads: 2,
                    rng: SimRng::new(11),
                };
                run(&mut sys, &mut wl, cfg)
            };
            let scalar = {
                let mut sys = ScalarLoop(MindCluster::new(MindConfig::small()));
                let mut wl = PingPong {
                    threads: 2,
                    rng: SimRng::new(11),
                };
                run(&mut sys, &mut wl, cfg)
            };
            assert_eq!(batched.runtime, scalar.runtime, "batch_ops {batch_ops}");
            assert_eq!(batched.total_ops, scalar.total_ops);
            assert_eq!(batched.metrics, scalar.metrics, "batch_ops {batch_ops}");
            assert_eq!(batched.window_metrics, scalar.window_metrics);
            assert_eq!(
                batched.latency.quantile(0.999),
                scalar.latency.quantile(0.999)
            );
            assert_eq!(batched.sum_network_ns, scalar.sum_network_ns);
            assert_eq!(batched.sum_inv_queue_ns, scalar.sum_inv_queue_ns);
        }
    }

    /// A wide-footprint workload whose consecutive ops hit distinct
    /// directory regions — the independent faults an in-flight window can
    /// overlap.
    struct Strided {
        threads: u16,
        pages: u64,
        cursor: u64,
    }

    impl Workload for Strided {
        fn name(&self) -> String {
            "strided".to_string()
        }
        fn regions(&self) -> Vec<u64> {
            vec![self.pages << 12]
        }
        fn n_threads(&self) -> u16 {
            self.threads
        }
        fn next_op(&mut self, _thread: u16) -> TraceOp {
            // Stride by 8 pages (two 16 KB initial regions) so successive
            // faults land in different regions.
            let page = (self.cursor * 8) % self.pages;
            self.cursor += 1;
            TraceOp {
                region: 0,
                offset: page << 12,
                kind: AccessKind::Read,
            }
        }
    }

    #[test]
    fn windowed_run_overlaps_fabric_time_and_never_slows() {
        let mk = |window: u32| {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = Strided {
                threads: 1,
                pages: 4096,
                cursor: 0,
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: 512,
                    ..Default::default()
                }
                .with_batch_ops(32)
                .with_window(window),
            )
        };
        let serialized = mk(1);
        let overlapped = mk(8);
        assert_eq!(serialized.sum_overlapped_ns, 0, "window 1 hides nothing");
        assert_eq!(overlapped.total_ops, serialized.total_ops);
        assert!(
            overlapped.sum_overlapped_ns > 0,
            "independent faults overlapped their RTTs"
        );
        assert!(
            overlapped.runtime < serialized.runtime,
            "overlap hides latency: {} vs {}",
            overlapped.runtime.as_nanos(),
            serialized.runtime.as_nanos()
        );
        // The same accesses fault either way: the window changes timing,
        // not what the protocol does.
        assert_eq!(
            overlapped.metrics.get("remote_accesses"),
            serialized.metrics.get("remote_accesses")
        );
    }

    #[test]
    fn cluster_mode_overlaps_across_threads_and_never_loses_work() {
        // Four threads of independent strided faults: the turnwise
        // discipline drains each thread's batch before its next turn,
        // the cluster engine streams all four continuously.
        let mk = |concurrency: Concurrency| {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = Strided {
                threads: 2,
                pages: 4096,
                cursor: 0,
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: 512,
                    warmup_ops_per_thread: 64,
                    threads_per_blade: 1,
                    ..Default::default()
                }
                .with_batch_ops(32)
                .with_window(8)
                .with_concurrency(concurrency),
            )
        };
        let turnwise = mk(Concurrency::Turnwise);
        let cluster = mk(Concurrency::Cluster);
        assert_eq!(cluster.total_ops, turnwise.total_ops, "no op lost");
        assert_eq!(
            cluster.latency.count(),
            cluster.total_ops,
            "one sample per measured op"
        );
        assert!(cluster.sum_overlapped_ns > 0, "fabric time hidden");
        assert!(
            cluster.runtime < turnwise.runtime,
            "cross-turn overlap beats per-batch windows on independent \
             faults: {} vs {}",
            cluster.runtime.as_nanos(),
            turnwise.runtime.as_nanos()
        );
    }

    #[test]
    fn cluster_mode_at_window_one_is_the_turnwise_reference() {
        // The degenerate contract: window <= 1 keeps the turnwise path,
        // so a serialized cluster run is byte-identical to the reference.
        let mk = |concurrency: Concurrency| {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = PingPong {
                threads: 2,
                rng: SimRng::new(9),
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: 400,
                    warmup_ops_per_thread: 50,
                    ..Default::default()
                }
                .with_batch_ops(16)
                .with_concurrency(concurrency),
            )
        };
        let a = mk(Concurrency::Turnwise);
        let b = mk(Concurrency::Cluster);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.warmup_end, b.warmup_end);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.window_metrics, b.window_metrics);
        assert_eq!(a.mops.to_bits(), b.mops.to_bits());
        assert_eq!(a.latency.quantile(0.999), b.latency.quantile(0.999));
    }

    #[test]
    fn cluster_mode_is_deterministic() {
        let mk = || {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = PingPong {
                threads: 2,
                rng: SimRng::new(7),
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig {
                    warmup_ops_per_thread: 100,
                    ..Default::default()
                }
                .with_batch_ops(16)
                .with_window(4)
                .with_concurrency(Concurrency::Cluster),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.warmup_end, b.warmup_end);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.sum_overlapped_ns, b.sum_overlapped_ns);
        assert_eq!(a.mops.to_bits(), b.mops.to_bits());
    }

    #[test]
    fn nic_depth_bounds_cluster_throughput() {
        // With every thread on one blade, a NIC depth of 1 serializes the
        // blade's fabric traffic: deeper NICs must be strictly faster on
        // independent faults, and unbounded (0) at least as fast as any.
        let mk = |nic_depth: u32| {
            let mut sys = MindCluster::new(MindConfig {
                nic_depth,
                ..MindConfig::small()
            });
            let mut wl = Strided {
                threads: 2,
                pages: 4096,
                cursor: 0,
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: 512,
                    threads_per_blade: 2,
                    ..Default::default()
                }
                .with_batch_ops(32)
                .with_window(8)
                .with_concurrency(Concurrency::Cluster),
            )
        };
        let choked = mk(1);
        let deep = mk(8);
        let unbounded = mk(0);
        assert_eq!(choked.total_ops, deep.total_ops);
        assert!(
            choked.runtime > deep.runtime,
            "a depth-1 RNIC serializes the blade: {} vs {}",
            choked.runtime.as_nanos(),
            deep.runtime.as_nanos()
        );
        assert!(unbounded.runtime <= deep.runtime, "depth 0 never gates");
    }

    #[test]
    fn windowed_run_is_deterministic() {
        let mk = || {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = PingPong {
                threads: 2,
                rng: SimRng::new(7),
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig::default().with_batch_ops(16).with_window(4),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.sum_overlapped_ns, b.sum_overlapped_ns);
    }

    #[test]
    fn runner_is_deterministic() {
        let mk = || {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = PingPong {
                threads: 2,
                rng: SimRng::new(7),
            };
            run(&mut sys, &mut wl, RunConfig::default())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(
            a.metrics.get("invalidation_requests"),
            b.metrics.get("invalidation_requests")
        );
    }

    #[test]
    #[should_panic(expected = "blades")]
    fn too_many_threads_rejected() {
        let mut sys = MindCluster::new(MindConfig::small()); // 2 blades.
        let mut wl = PingPong {
            threads: 6,
            rng: SimRng::new(1),
        };
        run(
            &mut sys,
            &mut wl,
            RunConfig {
                threads_per_blade: 1,
                ..Default::default()
            },
        );
    }

    #[test]
    fn merge_of_one_report_is_identity() {
        let mut sys = MindCluster::new(MindConfig::small());
        let mut wl = PingPong {
            threads: 2,
            rng: SimRng::new(5),
        };
        let cfg = RunConfig {
            ops_per_thread: 300,
            warmup_ops_per_thread: 50,
            ..Default::default()
        };
        let a = run(&mut sys, &mut wl, cfg);
        let m = merge_reports(a.name.clone(), std::slice::from_ref(&a));
        assert_eq!(m.runtime, a.runtime);
        assert_eq!(m.warmup_end, a.warmup_end);
        assert_eq!(m.total_ops, a.total_ops);
        assert_eq!(m.remote_ops, a.remote_ops);
        assert_eq!(m.mops.to_bits(), a.mops.to_bits(), "floats recomputed bit-identically");
        assert_eq!(m.mean_remote_ns.to_bits(), a.mean_remote_ns.to_bits());
        assert_eq!(m.remote_per_op.to_bits(), a.remote_per_op.to_bits());
        assert_eq!(m.latency.quantile(0.999), a.latency.quantile(0.999));
        assert_eq!(m.metrics, a.metrics);
        assert_eq!(m.window_metrics, a.window_metrics);
    }

    #[test]
    fn merge_sums_integers_and_spans_windows() {
        let mk = |seed: u64, ops: u64| {
            let mut sys = MindCluster::new(MindConfig::small());
            let mut wl = PingPong {
                threads: 1,
                rng: SimRng::new(seed),
            };
            run(
                &mut sys,
                &mut wl,
                RunConfig {
                    ops_per_thread: ops,
                    warmup_ops_per_thread: 20,
                    ..Default::default()
                },
            )
        };
        let a = mk(1, 200);
        let b = mk(2, 300);
        let m = merge_reports("merged", [a.clone(), b.clone()].as_slice());
        assert_eq!(m.name, "merged");
        assert_eq!(m.total_ops, a.total_ops + b.total_ops);
        assert_eq!(m.remote_ops, a.remote_ops + b.remote_ops);
        assert_eq!(m.invalidations, a.invalidations + b.invalidations);
        assert_eq!(m.latency.count(), a.latency.count() + b.latency.count());
        assert_eq!(m.warmup_end, a.warmup_end.max(b.warmup_end));
        assert_eq!(
            m.warmup_end + m.runtime,
            (a.warmup_end + a.runtime).max(b.warmup_end + b.runtime),
            "merged window ends at the latest partition end"
        );
        assert_eq!(
            m.metrics.get("accesses"),
            a.metrics.get("accesses") + b.metrics.get("accesses")
        );
    }

    #[test]
    fn normalized_perf_is_relative_runtime() {
        let mut sys = MindCluster::new(MindConfig::small());
        let mut wl = PingPong {
            threads: 1,
            rng: SimRng::new(3),
        };
        let a = run(&mut sys, &mut wl, RunConfig::default());
        let mut b = a.clone();
        b.runtime = a.runtime / 2;
        assert!((b.normalized_perf(&a) - 2.0).abs() < 1e-9);
    }
}
