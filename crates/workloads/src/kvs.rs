//! Native-KVS: a simple key-value store written *against* the transparent
//! shared-memory interface ("Native-KVS", Figure 5 right).
//!
//! Unlike memcached — whose global LRU/statistics structures couple all
//! threads — the native store partitions its state per thread, with only a
//! small fraction of operations crossing partitions. The paper attributes
//! its better YCSB-A scaling to exactly this partitioning, and YCSB-C
//! scales linearly across blades because a read-only workload with no
//! metadata writes triggers no invalidations at all.

use mind_core::system::AccessKind;
use mind_sim::rng::Zipfian;
use mind_sim::SimRng;

use crate::memcached::YcsbMix;
use crate::trace::{TraceOp, Workload};

/// Native-KVS parameters. The store has a fixed number of partitions
/// (footprint independent of thread count); thread `t` "owns" partition
/// `t % n_partitions`.
#[derive(Debug, Clone, Copy)]
pub struct KvsConfig {
    /// Client threads.
    pub n_threads: u16,
    /// Fixed store partitions.
    pub n_partitions: u16,
    /// YCSB mix (A or C).
    pub mix: YcsbMix,
    /// Pages per partition.
    pub partition_pages: u64,
    /// Fraction of ops that target the thread's own partition.
    pub locality: f64,
    /// Zipfian skew within a partition.
    pub zipf_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KvsConfig {
    /// Defaults for YCSB-A.
    pub fn ycsb_a(n_threads: u16) -> Self {
        KvsConfig {
            n_threads,
            n_partitions: 16,
            mix: YcsbMix::A,
            partition_pages: 4_096,
            locality: 0.95,
            zipf_theta: 0.99,
            seed: 17,
        }
    }

    /// Defaults for YCSB-C.
    pub fn ycsb_c(n_threads: u16) -> Self {
        KvsConfig {
            mix: YcsbMix::C,
            ..Self::ycsb_a(n_threads)
        }
    }
}

/// The Native-KVS generator.
#[derive(Debug)]
pub struct KvsWorkload {
    cfg: KvsConfig,
    zipf: Zipfian,
    rngs: Vec<SimRng>,
}

impl KvsWorkload {
    /// Creates the generator.
    pub fn new(cfg: KvsConfig) -> Self {
        let mut root = SimRng::new(cfg.seed);
        KvsWorkload {
            zipf: Zipfian::new(cfg.partition_pages, cfg.zipf_theta),
            rngs: (0..cfg.n_threads).map(|_| root.fork()).collect(),
            cfg,
        }
    }
}

impl Workload for KvsWorkload {
    fn name(&self) -> String {
        format!(
            "KVS-{}(p={})",
            match self.cfg.mix {
                YcsbMix::A => "A",
                YcsbMix::C => "C",
            },
            self.cfg.n_partitions
        )
    }

    fn regions(&self) -> Vec<u64> {
        (0..self.cfg.n_partitions)
            .map(|_| self.cfg.partition_pages << 12)
            .collect()
    }

    fn n_threads(&self) -> u16 {
        self.cfg.n_threads
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let rng = &mut self.rngs[thread as usize];
        let own = thread % self.cfg.n_partitions;
        let region = if rng.gen_bool(self.cfg.locality) || self.cfg.n_partitions == 1 {
            own
        } else {
            // Cross-partition access (remote key lookup).
            let mut other = rng.gen_below(self.cfg.n_partitions as u64) as u16;
            if other == own {
                other = (other + 1) % self.cfg.n_partitions;
            }
            other
        };
        let page = self.zipf.sample(rng);
        let kind = if rng.gen_bool(self.cfg.mix.update_fraction()) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        TraceOp {
            region,
            offset: page << 12,
            kind,
        }
    }

    fn fill_ops(&mut self, thread: u16, n: usize, out: &mut Vec<TraceOp>) {
        // Batched generation with the per-op borrows hoisted; RNG-call
        // order is identical to `n` scalar `next_op` calls.
        let cfg = self.cfg;
        let own = thread % cfg.n_partitions;
        let update_fraction = cfg.mix.update_fraction();
        let zipf = &self.zipf;
        let rng = &mut self.rngs[thread as usize];
        out.reserve(n);
        for _ in 0..n {
            let region = if rng.gen_bool(cfg.locality) || cfg.n_partitions == 1 {
                own
            } else {
                let mut other = rng.gen_below(cfg.n_partitions as u64) as u16;
                if other == own {
                    other = (other + 1) % cfg.n_partitions;
                }
                other
            };
            let page = zipf.sample(rng);
            let kind = if rng.gen_bool(update_fraction) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            out.push(TraceOp {
                region,
                offset: page << 12,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycsb_c_is_read_only() {
        let mut wl = KvsWorkload::new(KvsConfig::ycsb_c(4));
        for i in 0..20_000 {
            assert!(!wl.next_op((i % 4) as u16).kind.is_write());
        }
    }

    #[test]
    fn ycsb_a_is_half_writes() {
        let mut wl = KvsWorkload::new(KvsConfig::ycsb_a(4));
        let writes = (0..40_000)
            .filter(|i| wl.next_op((i % 4) as u16).kind.is_write())
            .count();
        let frac = writes as f64 / 40_000.0;
        assert!((frac - 0.5).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn ops_mostly_local_partition() {
        let mut wl = KvsWorkload::new(KvsConfig::ycsb_a(8));
        let local = (0..10_000).filter(|_| wl.next_op(3).region == 3).count();
        let frac = local as f64 / 10_000.0;
        assert!((frac - 0.95).abs() < 0.02, "local fraction {frac}");
    }

    #[test]
    fn cross_partition_never_self() {
        let mut wl = KvsWorkload::new(KvsConfig {
            locality: 0.0,
            ..KvsConfig::ycsb_a(4)
        });
        for _ in 0..5_000 {
            assert_ne!(wl.next_op(2).region, 2);
        }
    }

    #[test]
    fn single_partition_stays_local() {
        let mut wl = KvsWorkload::new(KvsConfig {
            locality: 0.0,
            n_partitions: 1,
            ..KvsConfig::ycsb_a(1)
        });
        assert_eq!(wl.next_op(0).region, 0);
    }

    #[test]
    fn fill_ops_matches_scalar_stream() {
        let cfg = KvsConfig::ycsb_a(4);
        let mut scalar = KvsWorkload::new(cfg);
        let mut batched = KvsWorkload::new(cfg);
        for (thread, n) in [(0u16, 64usize), (3, 1), (1, 200), (0, 8)] {
            let want: Vec<TraceOp> = (0..n).map(|_| scalar.next_op(thread)).collect();
            let mut got = Vec::new();
            batched.fill_ops(thread, n, &mut got);
            assert_eq!(got, want, "thread {thread} batch of {n}");
        }
    }

    #[test]
    fn footprint_is_thread_independent() {
        let a = KvsWorkload::new(KvsConfig::ycsb_a(1)).regions();
        let b = KvsWorkload::new(KvsConfig::ycsb_a(80)).regions();
        assert_eq!(a, b);
    }
}
