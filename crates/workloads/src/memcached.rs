//! Memcached under YCSB ("M_A" = workload A, 50 % reads / 50 % writes;
//! "M_C" = workload C, 100 % reads).
//!
//! The crucial modelled detail: memcached's *internal* bookkeeping writes.
//! GETs update the shared LRU lists and slab statistics, so even the
//! "read-only" YCSB-C drives a stream of writes into a small, hot, globally
//! shared metadata region (some bookkeeping lands in per-thread statistics
//! instead). Combined with zipfian key popularity, M_A and M_C have far
//! more sharers and shared writes than TF/GC — the paper measures >10×
//! their invalidations and flushes (Figure 6) and neither scales past one
//! compute blade (Figure 5 center).

use mind_core::system::AccessKind;
use mind_sim::rng::Zipfian;
use mind_sim::SimRng;

use crate::trace::{TraceOp, Workload};

/// Which YCSB mix drives the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// Workload A: 50 % reads, 50 % updates.
    A,
    /// Workload C: 100 % reads.
    C,
}

impl YcsbMix {
    /// Fraction of operations that are updates.
    pub fn update_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::C => 0.0,
        }
    }
}

/// Memcached workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct MemcachedConfig {
    /// Client threads.
    pub n_threads: u16,
    /// The YCSB mix (A or C).
    pub mix: YcsbMix,
    /// Value/slab storage, in pages.
    pub value_pages: u64,
    /// Hash-table bucket pages.
    pub bucket_pages: u64,
    /// Shared LRU/statistics metadata, in pages (small and hot).
    pub meta_pages: u64,
    /// Probability a client op updates the *shared* LRU metadata (the rest
    /// lands in per-thread statistics).
    pub meta_write_prob: f64,
    /// Zipfian skew of key popularity (YCSB default 0.99).
    pub zipf_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MemcachedConfig {
    /// Defaults for workload A.
    pub fn workload_a() -> Self {
        MemcachedConfig {
            n_threads: 8,
            mix: YcsbMix::A,
            value_pages: 16_384,
            bucket_pages: 2_048,
            meta_pages: 256,
            meta_write_prob: 0.4,
            zipf_theta: 0.99,
            seed: 13,
        }
    }

    /// Defaults for workload C.
    pub fn workload_c() -> Self {
        MemcachedConfig {
            mix: YcsbMix::C,
            ..Self::workload_a()
        }
    }
}

#[derive(Debug)]
struct ThreadState {
    rng: SimRng,
    /// Multi-access sequence: bucket read → value access → bookkeeping.
    phase: u8,
    current_value_page: u64,
    current_is_update: bool,
}

/// The memcached generator.
#[derive(Debug)]
pub struct MemcachedWorkload {
    cfg: MemcachedConfig,
    zipf: Zipfian,
    threads: Vec<ThreadState>,
}

impl MemcachedWorkload {
    /// Creates the generator.
    pub fn new(cfg: MemcachedConfig) -> Self {
        let mut root = SimRng::new(cfg.seed);
        MemcachedWorkload {
            zipf: Zipfian::new(cfg.value_pages, cfg.zipf_theta),
            threads: (0..cfg.n_threads)
                .map(|_| ThreadState {
                    rng: root.fork(),
                    phase: 0,
                    current_value_page: 0,
                    current_is_update: false,
                })
                .collect(),
            cfg,
        }
    }
}

impl Workload for MemcachedWorkload {
    fn name(&self) -> String {
        match self.cfg.mix {
            YcsbMix::A => "MA",
            YcsbMix::C => "MC",
        }
        .to_string()
    }

    fn regions(&self) -> Vec<u64> {
        // 0: values, 1: hash buckets, 2: shared LRU/stats metadata,
        // 3: per-thread statistics (one page per possible thread).
        vec![
            self.cfg.value_pages << 12,
            self.cfg.bucket_pages << 12,
            self.cfg.meta_pages << 12,
            64 << 12,
        ]
    }

    fn n_threads(&self) -> u16 {
        self.cfg.n_threads
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let st = &mut self.threads[thread as usize];
        match st.phase {
            0 => {
                // Start of a client op: pick the key, read its hash bucket.
                st.current_value_page = self.zipf.sample(&mut st.rng);
                st.current_is_update = st.rng.gen_bool(self.cfg.mix.update_fraction());
                st.phase = 1;
                let bucket = st.current_value_page % self.cfg.bucket_pages;
                TraceOp {
                    region: 1,
                    offset: bucket << 12,
                    kind: AccessKind::Read,
                }
            }
            1 => {
                // Value access: read for GET, write for SET.
                st.phase = 2;
                TraceOp {
                    region: 0,
                    offset: st.current_value_page << 12,
                    kind: if st.current_is_update {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                }
            }
            _ => {
                // Bookkeeping: usually the shared LRU/stats (a WRITE on GET
                // or SET — memcached moves items to the LRU head); the rest
                // bumps per-thread counters.
                st.phase = 0;
                if st.rng.gen_bool(self.cfg.meta_write_prob) {
                    let meta = st.rng.gen_below(self.cfg.meta_pages);
                    TraceOp {
                        region: 2,
                        offset: meta << 12,
                        kind: AccessKind::Write,
                    }
                } else {
                    TraceOp {
                        region: 3,
                        offset: (thread as u64 % 64) << 12,
                        kind: AccessKind::Write,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(cfg: MemcachedConfig, n: usize) -> Vec<TraceOp> {
        let mut wl = MemcachedWorkload::new(cfg);
        (0..n)
            .map(|i| wl.next_op((i % cfg.n_threads as usize) as u16))
            .collect()
    }

    #[test]
    fn workload_c_still_writes_shared_metadata() {
        let ops = collect(MemcachedConfig::workload_c(), 30_000);
        let shared_meta_writes = ops
            .iter()
            .filter(|o| o.region == 2 && o.kind.is_write())
            .count();
        let frac = shared_meta_writes as f64 / ops.len() as f64;
        // 0.4 shared-metadata write per 3-access client op.
        assert!((frac - 0.4 / 3.0).abs() < 0.02, "shared-write frac {frac}");
    }

    #[test]
    fn memcached_shared_writes_dwarf_tf_and_gc() {
        use crate::gc::{GcConfig, GcWorkload};
        let n = 100_000;
        let ops = collect(MemcachedConfig::workload_c(), n);
        let mc_writes = ops
            .iter()
            .filter(|o| o.region == 2 && o.kind.is_write())
            .count() as f64;
        let mut gc = GcWorkload::new(GcConfig::default());
        let gc_writes = (0..n)
            .map(|i| gc.next_op((i % 8) as u16))
            .filter(|o| o.kind.is_write())
            .count() as f64;
        assert!(
            mc_writes / gc_writes > 5.0,
            "MC/GC shared-write ratio = {:.1}",
            mc_writes / gc_writes
        );
    }

    #[test]
    fn workload_a_adds_value_writes() {
        let ops = collect(MemcachedConfig::workload_a(), 30_000);
        let value_writes = ops
            .iter()
            .filter(|o| o.region == 0 && o.kind.is_write())
            .count();
        let value_ops = ops.iter().filter(|o| o.region == 0).count();
        let frac = value_writes as f64 / value_ops as f64;
        assert!((frac - 0.5).abs() < 0.05, "SET fraction {frac}");
    }

    #[test]
    fn keys_are_zipfian_skewed() {
        let ops = collect(MemcachedConfig::workload_c(), 60_000);
        let value_pages: Vec<u64> = ops
            .iter()
            .filter(|o| o.region == 0)
            .map(|o| o.offset >> 12)
            .collect();
        let hot = value_pages.iter().filter(|&&p| p < 100).count();
        let frac = hot as f64 / value_pages.len() as f64;
        assert!(frac > 0.3, "hot-100 fraction {frac}");
    }

    #[test]
    fn client_op_expands_to_three_accesses() {
        let mut wl = MemcachedWorkload::new(MemcachedConfig::workload_a());
        let a = wl.next_op(0);
        let b = wl.next_op(0);
        let c = wl.next_op(0);
        assert_eq!(a.region, 1, "bucket read first");
        assert_eq!(b.region, 0, "value access second");
        assert!(c.region == 2 || c.region == 3, "bookkeeping third");
        assert!(c.kind.is_write());
    }

    #[test]
    fn per_thread_stats_do_not_collide() {
        let mut wl = MemcachedWorkload::new(MemcachedConfig::workload_c());
        let mut pages = std::collections::HashSet::new();
        for t in 0..8u16 {
            for _ in 0..30 {
                let op = wl.next_op(t);
                if op.region == 3 {
                    pages.insert((t, op.offset >> 12));
                }
            }
        }
        // Each thread writes only its own stats page.
        for t in 0..8u16 {
            let thread_pages: Vec<u64> = pages
                .iter()
                .filter(|&&(tt, _)| tt == t)
                .map(|&(_, p)| p)
                .collect();
            assert!(thread_pages.len() <= 1);
        }
    }
}
