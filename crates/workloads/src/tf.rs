//! TensorFlow / ResNet-50 on CIFAR-10 ("TF" in the paper's evaluation).
//!
//! Data-parallel training has a friendly sharing profile, which is why TF
//! scales best of the paper's workloads (~1.67× per compute-blade doubling,
//! §7.1): each thread streams sequentially over the *read-only* shared
//! weight tensors, works read-write in its own slice of the activation
//! pool, and only occasionally writes the small shared parameter region
//! (gradient application). Shared writes are rare and spatially clustered,
//! so MIND's regions stabilize quickly and invalidations stay low
//! (Figure 6).
//!
//! Accesses are generated at cache-line (64 B) granularity for the
//! sequential streams — matching a PIN-captured trace, where a page is
//! touched ~64 times during a scan and page-cache hit rates are high.

use mind_core::system::AccessKind;
use mind_sim::SimRng;

use crate::trace::{TraceOp, Workload};

/// Stride of sequential streams (one cache line).
pub const LINE: u64 = 64;

/// TF workload parameters. Region sizes are fixed totals, independent of
/// thread count (strong scaling: more threads divide the same work).
#[derive(Debug, Clone, Copy)]
pub struct TfConfig {
    /// Threads (training workers).
    pub n_threads: u16,
    /// Shared weight-tensor region, in pages (read-only streams).
    pub weight_pages: u64,
    /// Shared parameter region, in pages (rare gradient writes).
    pub param_pages: u64,
    /// Total activation pool, in pages, sliced evenly across threads.
    pub activation_pages: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TfConfig {
    fn default() -> Self {
        TfConfig {
            n_threads: 8,
            weight_pages: 16_384,     // 64 MB of weights.
            param_pages: 256,         // 1 MB of optimizer state.
            activation_pages: 32_768, // 128 MB activation pool.
            seed: 7,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ThreadState {
    weight_cursor: u64,
    activation_cursor: u64,
}

/// The TF generator.
#[derive(Debug)]
pub struct TfWorkload {
    cfg: TfConfig,
    rngs: Vec<SimRng>,
    threads: Vec<ThreadState>,
}

impl TfWorkload {
    /// Creates the generator.
    pub fn new(cfg: TfConfig) -> Self {
        let mut root = SimRng::new(cfg.seed);
        TfWorkload {
            rngs: (0..cfg.n_threads).map(|_| root.fork()).collect(),
            threads: vec![ThreadState::default(); cfg.n_threads as usize],
            cfg,
        }
    }
}

impl Workload for TfWorkload {
    fn name(&self) -> String {
        "TF".to_string()
    }

    fn regions(&self) -> Vec<u64> {
        // 0: weights, 1: params, 2: activation pool (sliced per thread).
        vec![
            self.cfg.weight_pages << 12,
            self.cfg.param_pages << 12,
            self.cfg.activation_pages << 12,
        ]
    }

    fn n_threads(&self) -> u16 {
        self.cfg.n_threads
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let rng = &mut self.rngs[thread as usize];
        let st = &mut self.threads[thread as usize];
        let dice = rng.gen_f64();
        if dice < 0.50 {
            // Forward/backward pass: sequential cache-line reads of the
            // shared weights.
            let bytes = self.cfg.weight_pages << 12;
            let offset = (st.weight_cursor * LINE) % bytes;
            st.weight_cursor += 1;
            TraceOp {
                region: 0,
                offset,
                kind: AccessKind::Read,
            }
        } else if dice < 0.995 {
            // Own slice of the activation pool: sequential, 60/40
            // read-write.
            let slice_pages = (self.cfg.activation_pages / self.cfg.n_threads as u64).max(1);
            let slice_bytes = slice_pages << 12;
            let base = (slice_pages << 12) * thread as u64;
            let offset = base + (st.activation_cursor * LINE) % slice_bytes;
            st.activation_cursor += 1;
            TraceOp {
                region: 2,
                offset,
                kind: if rng.gen_bool(0.6) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
            }
        } else {
            // Shared parameters: mostly reads; ~0.05% of all ops are shared
            // writes (gradient application) — PIN traces put TF's
            // invalidation rate around 10⁻⁴–10⁻³ per access (Figure 6).
            let page = rng.gen_below(self.cfg.param_pages);
            TraceOp {
                region: 1,
                offset: page << 12,
                kind: if rng.gen_bool(0.1) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_writes_are_rare() {
        let mut wl = TfWorkload::new(TfConfig::default());
        let n = 100_000;
        let mut shared_writes = 0;
        for i in 0..n {
            let op = wl.next_op((i % 8) as u16);
            if op.region <= 1 && op.kind.is_write() {
                shared_writes += 1;
            }
        }
        let frac = shared_writes as f64 / n as f64;
        assert!(frac < 0.002, "shared-write fraction {frac}");
        assert!(frac > 0.0001, "some gradient writes must occur");
    }

    #[test]
    fn weights_scanned_at_line_granularity() {
        let mut wl = TfWorkload::new(TfConfig::default());
        let mut last: Option<u64> = None;
        for _ in 0..10_000 {
            let op = wl.next_op(0);
            if op.region == 0 {
                if let Some(prev) = last {
                    let bytes = TfConfig::default().weight_pages << 12;
                    assert_eq!(op.offset, (prev + LINE) % bytes, "sequential stream");
                }
                last = Some(op.offset);
            }
        }
    }

    #[test]
    fn sequential_streams_have_high_page_locality() {
        // ~64 accesses per page implies ~1.6% page-boundary crossings.
        let mut wl = TfWorkload::new(TfConfig::default());
        let mut weight_accesses = 0u64;
        let mut page_changes = 0u64;
        let mut last_page = u64::MAX;
        for _ in 0..100_000 {
            let op = wl.next_op(0);
            if op.region == 0 {
                weight_accesses += 1;
                let page = op.offset >> 12;
                if page != last_page {
                    page_changes += 1;
                    last_page = page;
                }
            }
        }
        let rate = page_changes as f64 / weight_accesses as f64;
        assert!(rate < 0.05, "page-change rate {rate}");
    }

    #[test]
    fn activation_slices_are_disjoint_across_threads() {
        let cfg = TfConfig::default();
        let slice = (cfg.activation_pages / cfg.n_threads as u64) << 12;
        let mut wl = TfWorkload::new(cfg);
        for t in 0..cfg.n_threads {
            for _ in 0..1000 {
                let op = wl.next_op(t);
                if op.region == 2 {
                    let lo = slice * t as u64;
                    assert!((lo..lo + slice).contains(&op.offset));
                }
            }
        }
    }

    #[test]
    fn footprint_is_thread_independent() {
        let a = TfWorkload::new(TfConfig {
            n_threads: 1,
            ..Default::default()
        })
        .regions();
        let b = TfWorkload::new(TfConfig {
            n_threads: 80,
            ..Default::default()
        })
        .regions();
        assert_eq!(a, b, "strong scaling: fixed dataset");
    }
}
