//! Deterministic sharded simulation of partitioned scenarios.
//!
//! Big multi-tenant scenarios decompose into *partitions* — symmetric
//! tenant groups confined to disjoint blade slices (see
//! [`mind_core::shard`]). This module replays such scenarios two ways:
//!
//! - [`run_group`]: the **serialized reference** — every partition on one
//!   fused rack, driven straight through a single
//!   [`mind_sim::EventQueue`];
//! - [`run_sharded`]: the same partitions split across `shards`
//!   sub-clusters, each advanced through **conservative time windows** of
//!   [`ShardSpec::horizon`] — a shard executes no event past a horizon
//!   before observing it as a window boundary (recording its epoch mark
//!   there) — and streamed through [`StreamedMerge`] into one report in
//!   shard-index order, byte-identical to an in-memory
//!   [`crate::runner::merge_reports`] over the same per-shard reports.
//!
//! ## Multi-core, constant-memory execution
//!
//! Shards share nothing: a shard's advance through any horizon depends
//! only on its own state, and whether it has drained at a horizon is a
//! purely shard-local condition. [`run_sharded`] exploits both halves of
//! that independence. Scoped worker threads *claim* shard indices from a
//! shared cursor; each worker **builds its shard lazily, steps it through
//! the conservative horizons to completion, finalizes its report, and
//! streams the report into a running accumulator** ([`StreamedMerge`])
//! before claiming the next index. No barrier synchronizes horizons
//! across shards — the lockstep schedule earlier revisions ran is
//! semantically inert for share-nothing shards, so dropping it changes no
//! output byte — and at no point does more than one sub-cluster (plus a
//! bounded reorder buffer of finished reports) live per worker lane.
//! Peak memory is therefore O(lanes × one shard), not O(all shards):
//! the property that makes 10⁶-tenant scenarios affordable.
//!
//! The merge folds per-shard reports **in shard-index order, never
//! completion order**: [`StreamedMerge`] buffers any report that arrives
//! ahead of a lower-index shard and folds it the moment the gap closes,
//! so the merged report is byte-identical whatever the thread count or
//! completion schedule (proptested in `tests/streamed_merge.rs`). The
//! driver picks its thread count from the process-wide
//! [`mind_sim::threads`] budget (override with [`SHARD_THREADS_ENV`], or
//! call [`run_sharded_threads`] for an exact count), degrading to the
//! sequential single-lane path when the budget is spent — a scheduling
//! decision only, never a semantic one.
//!
//! ## Determinism contract
//!
//! `run_sharded(spec, 1, ..)` is byte-identical to `run_group(spec, ..)`:
//! windowing only pauses the pop loop (shard state cannot leak across the
//! horizon because shards share nothing), and a merge of one report is
//! the identity. For `shards > 1` the merged report is byte-identical to
//! the fused reference whenever the scenario is *confined*:
//!
//! 1. partitions are structurally symmetric (same thread count and region
//!    list shape), so [`MindConfig::partition`] gives every shard the
//!    per-partition resource share the fused rack gives it;
//! 2. each partition's threads run on its compute slice and its regions
//!    are placed with `mmap_in` on its memory slice — both enforced here —
//!    so caches and per-blade fabric links never carry another
//!    partition's traffic;
//! 3. no invalidations occur (read-only sharing, or writes only from a
//!    single blade): Bounded Splitting's epoch threshold sums counters
//!    over *all* regions, so any invalidation couples partitions through
//!    the global total;
//! 4. directory utilization stays at or below 1/2 (the epoch merge phase
//!    is gated on `utilization > 0.5`, again a global quantity).
//!
//! Under 1–4 every quantity feeding an op's latency is partition-local,
//! so per-op timings — and therefore the merged integer report — match
//! the fused run exactly. Scenarios that break the contract still run and
//! merge, but approximate the fused result instead of reproducing it.
//!
//! Structural violations of the contract (asymmetric partitions, slices
//! that do not fit, initial directory utilization past the ½ ceiling) are
//! rejected up front with a typed [`ShardError`] naming the invariant,
//! instead of aborting mid-replay.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::controller::Pid;
use mind_core::shard::{PartitionError, PartitionLayout};
use mind_core::system::{MemOp, MemorySystem, OpBatch};
use mind_obs::EventKind;
use mind_sim::stats::Metrics;
use mind_sim::{threads, EventQueue, SimTime};

use crate::runner::{
    finish_report, Accum, ClusterDriver, Concurrency, ReportMerger, RunConfig, RunReport,
};
use crate::trace::{TraceOp, Workload};

/// Environment variable overriding the shard-thread count [`run_sharded`]
/// uses (exact, like an explicit [`run_sharded_threads`] call). Unset,
/// the driver asks the process-wide [`mind_sim::threads`] budget for one
/// thread per shard and runs with whatever is granted. Parsed by
/// [`mind_sim::env::shard_threads`].
pub const SHARD_THREADS_ENV: &str = mind_sim::env::SHARD_THREADS_ENV;

/// Why a partitioned scenario cannot be (de)composed: each variant names
/// the confinement invariant that failed, so callers see *what* to fix
/// instead of a panic mid-setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The rack itself does not divide into symmetric slices (blade
    /// counts or switch-resource capacities uneven).
    Partition(PartitionError),
    /// `run.interleave` was set; interleaved thread placement is not
    /// partition-confined.
    InterleavedPlacement,
    /// A partition's thread count differs from the first partition's —
    /// partitions must be structurally symmetric.
    AsymmetricThreads {
        /// Global index of the offending partition.
        partition: u16,
        /// Its thread count.
        threads: u16,
        /// The thread count every partition must share.
        expected: u16,
    },
    /// `domain_per_thread` requires exactly one region per thread.
    RegionPerThread {
        /// Global index of the offending partition.
        partition: u16,
        /// Regions it exposes.
        regions: usize,
        /// Threads (= required regions) it runs.
        threads: u16,
    },
    /// A partition's threads need more compute blades than its slice has.
    ComputeSliceOverflow {
        /// Blades the partition's threads need under `threads_per_blade`.
        needed: u16,
        /// Blades its compute slice holds.
        available: u16,
    },
    /// A partition region does not fit its memory-blade slice.
    MemorySliceOverflow {
        /// Global index of the offending partition.
        partition: u16,
        /// Size of the region that failed to place, in bytes.
        region_bytes: u64,
    },
    /// The shard count does not evenly divide the partitions.
    UnevenShards {
        /// Partitions in the scenario.
        partitions: u16,
        /// Requested shard count.
        shards: u16,
    },
    /// The conservative window length is zero — shards would never
    /// advance.
    ZeroHorizon,
    /// Initial directory utilization exceeds the determinism contract's
    /// ½ ceiling (the epoch merge phase would engage, a global coupling).
    DirectoryOverUtilized {
        /// Initial directory population (at least one entry per mmap'd
        /// region materializes on first touch).
        entries: usize,
        /// The cluster's directory capacity.
        capacity: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ShardError::Partition(e) => write!(f, "{e}"),
            ShardError::InterleavedPlacement => {
                write!(f, "interleaved placement is not partition-confined")
            }
            ShardError::AsymmetricThreads { partition, threads, expected } => write!(
                f,
                "partition {partition} runs {threads} threads, expected {expected}: \
                 partitions must be symmetric in thread count"
            ),
            ShardError::RegionPerThread { partition, regions, threads } => write!(
                f,
                "partition {partition} exposes {regions} regions for {threads} threads: \
                 per-thread domains need exactly one region per thread"
            ),
            ShardError::ComputeSliceOverflow { needed, available } => write!(
                f,
                "partition threads need {needed} compute blades, slice has {available}"
            ),
            ShardError::MemorySliceOverflow { partition, region_bytes } => write!(
                f,
                "partition {partition} region of {region_bytes} bytes does not fit \
                 its memory-blade slice"
            ),
            ShardError::UnevenShards { partitions, shards } => write!(
                f,
                "{partitions} partitions do not divide into {shards} shards"
            ),
            ShardError::ZeroHorizon => write!(f, "conservative window must advance"),
            ShardError::DirectoryOverUtilized { entries, capacity } => write!(
                f,
                "initial directory utilization {entries}/{capacity} exceeds the \
                 determinism contract's 1/2 ceiling"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<PartitionError> for ShardError {
    fn from(e: PartitionError) -> Self {
        ShardError::Partition(e)
    }
}

/// A partitioned scenario: `partitions` symmetric tenant groups over a
/// fused rack `base`, replayable fused ([`run_group`]) or sharded
/// ([`run_sharded`]).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Scenario name carried into the merged report.
    pub name: String,
    /// The fused rack hosting all partitions.
    pub base: MindConfig,
    /// Number of partitions; must divide the rack per
    /// [`PartitionLayout`].
    pub partitions: u16,
    /// Per-thread replay parameters (shared by every partition).
    pub run: RunConfig,
    /// Conservative window length for [`run_sharded`]: shards advance in
    /// lockstep quanta of this much simulated time.
    pub horizon: SimTime,
    /// `false` (the default shape): one process — one protection domain —
    /// per partition. `true`: one process *per thread*, for multi-tenant
    /// populations where every tenant is its own protection domain (the
    /// `mind_service` isolation model); the partition workload must then
    /// expose exactly one region per thread, with thread `t` owning
    /// region `t`. Per-tenant domains never coalesce in the switch's
    /// protection TCAM, so fused admission cost grows with the *rack's*
    /// tenant count while each shard only pays for its own slice — the
    /// effect the large-scenario scaling point measures.
    pub domain_per_thread: bool,
}

/// Builds the workload of one partition, keyed by its *global* partition
/// index so a partition generates the identical op stream whichever shard
/// (or the fused rack) hosts it. `Sync` because worker lanes construct
/// their shards lazily and concurrently; a factory must derive a
/// partition's workload from the index alone (shared captures are fine,
/// per-call mutation is not — which is also what index-keyed determinism
/// already demanded).
pub type PartitionFactory<'a> = dyn Fn(u16) -> Box<dyn Workload> + Sync + 'a;

struct PartitionState {
    /// Protection domains: one entry (per-partition mode) or one per
    /// thread (per-thread mode, thread `t` runs in `pids[t]`).
    pids: Vec<Pid>,
    workload: Box<dyn Workload>,
    bases: Vec<u64>,
    compute_lo: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup,
    Measured,
    Done,
}

/// One group of partitions co-hosted on one cluster, advanced event by
/// event: the whole scenario (the fused reference) or one shard of it.
pub struct GroupRun {
    name: String,
    cluster: MindCluster,
    run_cfg: RunConfig,
    parts: Vec<PartitionState>,
    threads_per_partition: u16,
    domain_per_thread: bool,
    phase: Phase,
    queue: EventQueue<u32>,
    measured: EventQueue<u32>,
    /// Cluster mode ([`Concurrency::Cluster`], `window > 1`): one
    /// event-driven issue engine *per partition*, so the gates a
    /// partition's threads share — its slot pool, its blades' NICs, its
    /// region serialization — are identical whether the partition runs
    /// fused or sharded (partition-local arbitration is what the
    /// confinement contract already demands). Empty in turnwise mode.
    drivers: Vec<ClusterDriver>,
    warmup_left: Vec<u64>,
    remaining: Vec<u64>,
    warmup_end: SimTime,
    baseline: Option<Metrics>,
    acc: Accum,
    end_clock: SimTime,
    batch: OpBatch,
    ops_buf: Vec<TraceOp>,
}

impl GroupRun {
    /// Assembles a cluster of `cfg` hosting the global partitions
    /// `first..first + partitions`: per partition, one process, threads
    /// pinned to its compute slice, regions `mmap_in`-confined to its
    /// memory slice.
    ///
    /// # Errors
    ///
    /// Returns the [`ShardError`] naming the violated invariant if the
    /// partitions are not symmetric, do not fit their compute or memory
    /// slices, `run.interleave` is set (interleaved thread placement is
    /// not partition-confined), `domain_per_thread` is set and a
    /// partition does not expose exactly one region per thread, or the
    /// initial directory utilization exceeds the contract's ½ ceiling.
    pub fn new(
        name: String,
        cfg: MindConfig,
        first: u16,
        partitions: u16,
        run: RunConfig,
        domain_per_thread: bool,
        factory: &PartitionFactory,
    ) -> Result<Self, ShardError> {
        if run.interleave {
            return Err(ShardError::InterleavedPlacement);
        }
        let layout = PartitionLayout::try_new(&cfg, partitions)?;
        let dir_capacity = cfg.dir_capacity;
        let mut cluster = MindCluster::new(cfg);
        let mut parts = Vec::with_capacity(partitions as usize);
        let mut threads_per_partition = None;
        let mut total_regions = 0usize;
        for lp in 0..partitions {
            let workload = factory(first + lp);
            let nt = workload.n_threads();
            let expected = *threads_per_partition.get_or_insert(nt);
            if nt != expected {
                return Err(ShardError::AsymmetricThreads {
                    partition: first + lp,
                    threads: nt,
                    expected,
                });
            }
            let regions = workload.regions();
            let pids: Vec<Pid> = if domain_per_thread {
                if regions.len() != nt as usize {
                    return Err(ShardError::RegionPerThread {
                        partition: first + lp,
                        regions: regions.len(),
                        threads: nt,
                    });
                }
                (0..nt)
                    .map(|_| cluster.exec().expect("exec cannot fail"))
                    .collect()
            } else {
                vec![cluster.exec().expect("exec cannot fail")]
            };
            let slice = layout.memory_slice(lp);
            total_regions += regions.len();
            let mut bases = Vec::with_capacity(regions.len());
            for (r, len) in regions.into_iter().enumerate() {
                let pid = pids[if domain_per_thread { r } else { 0 }];
                let base = cluster.mmap_in(pid, len, slice.clone()).map_err(|_| {
                    ShardError::MemorySliceOverflow {
                        partition: first + lp,
                        region_bytes: len,
                    }
                })?;
                bases.push(base);
            }
            parts.push(PartitionState {
                pids,
                workload,
                bases,
                compute_lo: layout.compute_slice(lp).start,
            });
        }
        let tpp = threads_per_partition.expect("at least one partition");
        let blades_needed = tpp.div_ceil(run.threads_per_blade);
        if blades_needed > layout.compute_per_partition {
            return Err(ShardError::ComputeSliceOverflow {
                needed: blades_needed,
                available: layout.compute_per_partition,
            });
        }
        // Contract condition 4, checked where it is cheap and actionable:
        // the initial region population must leave the epoch merge phase
        // gated (it engages above ½ utilization, a globally-coupled
        // quantity). Directory entries materialize on first touch — one
        // per mmap'd region at minimum — so a directory too small to hold
        // the region population at ≤ ½ utilization is over-committed from
        // the start, and that is the misconfiguration signal worth naming.
        let entries = total_regions.max(cluster.directory_entries());
        if entries * 2 > dir_capacity {
            return Err(ShardError::DirectoryOverUtilized {
                entries,
                capacity: dir_capacity,
            });
        }

        let total = partitions as u32 * tpp as u32;
        let mut queue = EventQueue::new();
        for gt in 0..total {
            queue.schedule(SimTime::ZERO, gt);
        }
        let warmup = run.warmup_ops_per_thread;
        let cluster_mode = run.concurrency == Concurrency::Cluster && run.window > 1;
        let drivers: Vec<ClusterDriver> = if cluster_mode {
            (0..partitions)
                .map(|_| {
                    let eng = cluster
                        .cluster_engine(run.window, tpp as u32)
                        .expect("MindCluster has an issue/complete datapath");
                    ClusterDriver::new(eng, tpp as u32, run)
                })
                .collect()
        } else {
            Vec::new()
        };
        let (phase, queue, measured, baseline) = if cluster_mode {
            // Cluster mode schedules through the per-partition drivers;
            // the group-level phase machine still sequences warmup →
            // baseline snapshot → measured (warmup is trivially drained
            // when there is none).
            (Phase::Warmup, EventQueue::new(), EventQueue::new(), None)
        } else if warmup > 0 {
            (Phase::Warmup, queue, EventQueue::new(), None)
        } else {
            // No warmup: the seeded queue is the measured queue and the
            // baseline snapshot is the post-setup state, exactly as in
            // `runner::run`.
            let baseline = cluster.metrics_snapshot();
            (Phase::Measured, EventQueue::new(), queue, Some(baseline))
        };
        Ok(GroupRun {
            name,
            run_cfg: run,
            parts,
            threads_per_partition: tpp,
            domain_per_thread,
            phase,
            queue,
            measured,
            drivers,
            warmup_left: vec![warmup; total as usize],
            remaining: vec![run.ops_per_thread; total as usize],
            warmup_end: SimTime::ZERO,
            baseline,
            acc: Accum::with_trace(run.trace),
            end_clock: SimTime::ZERO,
            batch: OpBatch::chained(run.think_time).with_window(run.window),
            ops_buf: Vec::new(),
            cluster,
        })
    }

    /// Issues one scheduling turn for global thread `gt` at `clock`;
    /// returns the thread's clock after its last completion + think time.
    fn turn(&mut self, clock: SimTime, gt: u32, n: u64) -> SimTime {
        let lp = (gt / self.threads_per_partition as u32) as usize;
        let t = (gt % self.threads_per_partition as u32) as u16;
        let part = &mut self.parts[lp];
        let blade = part.compute_lo + t / self.run_cfg.threads_per_blade;
        let pdid = Some(part.pids[if self.domain_per_thread { t as usize } else { 0 }]);
        self.ops_buf.clear();
        part.workload.fill_ops(t, n as usize, &mut self.ops_buf);
        self.batch.clear();
        for op in &self.ops_buf {
            self.batch.push(MemOp {
                at: SimTime::ZERO,
                blade,
                pdid,
                vaddr: part.bases[op.region as usize] + op.offset,
                kind: op.kind,
            });
        }
        self.cluster.run_batch(clock, &mut self.batch);
        for (op, result) in self.batch.ops().iter().zip(self.batch.results()) {
            if let Err(e) = result {
                panic!("sharded access failed at {:#x}: {e}", op.vaddr);
            }
        }
        let turn_done = (0..self.batch.len())
            .map(|i| self.batch.completion(i))
            .max()
            .expect("turns are non-empty");
        turn_done + self.run_cfg.think_time
    }

    /// Executes every event at or before `horizon`, in timestamp order
    /// (ties by schedule order). Returns `true` once the group has no
    /// work left. Within a phase, pops never go backwards in time; the
    /// warmup→measured transition is a barrier exactly as in
    /// [`crate::runner::run`].
    pub fn advance_until(&mut self, horizon: SimTime) -> bool {
        if !self.drivers.is_empty() {
            return self.advance_cluster_until(horizon);
        }
        let batch_ops = self.run_cfg.batch_ops.max(1);
        loop {
            match self.phase {
                Phase::Warmup => {
                    while let Some(at) = self.queue.peek_time() {
                        if at > horizon {
                            return false;
                        }
                        let ev = self.queue.pop().expect("peeked event exists");
                        let gt = ev.event;
                        let n = batch_ops.min(self.warmup_left[gt as usize]);
                        let next = self.turn(ev.at, gt, n);
                        self.warmup_end = self.warmup_end.max(next);
                        self.warmup_left[gt as usize] -= n;
                        if self.warmup_left[gt as usize] > 0 {
                            self.queue.schedule(next, gt);
                        } else {
                            self.measured.schedule(next, gt);
                        }
                    }
                    // Warmup drained: snapshot the baseline and switch.
                    self.baseline = Some(self.cluster.metrics_snapshot());
                    self.end_clock = self.warmup_end;
                    self.phase = Phase::Measured;
                }
                Phase::Measured => {
                    while let Some(at) = self.measured.peek_time() {
                        if at > horizon {
                            return false;
                        }
                        let ev = self.measured.pop().expect("peeked event exists");
                        let gt = ev.event;
                        let n = batch_ops.min(self.remaining[gt as usize]);
                        let next = self.turn(ev.at, gt, n);
                        self.acc.record_batch(&self.batch);
                        self.end_clock = self.end_clock.max(next);
                        self.remaining[gt as usize] -= n;
                        if self.remaining[gt as usize] > 0 {
                            self.measured.schedule(next, gt);
                        }
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done => return true,
            }
        }
    }

    /// The cluster-mode phase machine: pump every partition's engine
    /// driver to the horizon; when *all* drivers drain their warmup,
    /// snapshot the group baseline and seed the measured phase —
    /// the same warmup barrier as the turnwise path, group-wide.
    fn advance_cluster_until(&mut self, horizon: SimTime) -> bool {
        loop {
            match self.phase {
                Phase::Warmup => {
                    let mut all = true;
                    for lp in 0..self.drivers.len() {
                        let mut fill = part_fill(
                            &mut self.parts[lp],
                            &mut self.ops_buf,
                            self.run_cfg,
                            self.domain_per_thread,
                        );
                        all &= self.drivers[lp].advance_warmup(
                            &mut self.cluster,
                            horizon,
                            &mut fill,
                        );
                    }
                    if !all {
                        return false;
                    }
                    self.warmup_end = self
                        .drivers
                        .iter()
                        .map(|d| d.warmup_end)
                        .fold(SimTime::ZERO, SimTime::max);
                    self.baseline = Some(self.cluster.metrics_snapshot());
                    self.end_clock = self.warmup_end;
                    for d in &mut self.drivers {
                        d.start_measured();
                    }
                    self.phase = Phase::Measured;
                }
                Phase::Measured => {
                    let mut all = true;
                    for lp in 0..self.drivers.len() {
                        let mut fill = part_fill(
                            &mut self.parts[lp],
                            &mut self.ops_buf,
                            self.run_cfg,
                            self.domain_per_thread,
                        );
                        all &= self.drivers[lp].advance_measured(
                            &mut self.cluster,
                            horizon,
                            &mut fill,
                            &mut self.acc,
                        );
                    }
                    if !all {
                        return false;
                    }
                    self.end_clock = self
                        .drivers
                        .iter()
                        .map(|d| d.end_clock)
                        .fold(self.end_clock, SimTime::max);
                    self.phase = Phase::Done;
                }
                Phase::Done => return true,
            }
        }
    }

    /// Whether every thread has finished its measured ops.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Records a [`mind_obs::TraceBuf::record_full`]-level shard-epoch
    /// mark: shard `shard` stepped its conservative window to `horizon`.
    /// On the control lane (one past this group's last blade); epoch
    /// marks depend on the shard count and horizon length, so they are
    /// outside the cross-cell byte-identity contract.
    fn mark_epoch(&mut self, shard: u32, horizon: SimTime) {
        let lane = self.cluster.n_compute() as u32;
        self.cluster.trace().record_full(
            horizon,
            lane,
            EventKind::ShardEpoch,
            SimTime::ZERO,
            shard as u64,
            horizon.as_nanos(),
        );
    }

    /// Finalizes this group's report (measured window only). The trace,
    /// if any, still carries this group's *local* lane indices — sharded
    /// drivers rebase it onto global blades before merging.
    pub fn finish(mut self) -> RunReport {
        assert!(self.is_done(), "finish before the group completed");
        let trace = self.cluster.take_trace();
        let metrics = self.cluster.metrics_snapshot();
        let window_metrics = metrics.diff(self.baseline.as_ref().expect("baseline snapshotted"));
        let mut report = finish_report(
            self.name,
            self.warmup_end,
            self.end_clock.max(self.warmup_end),
            self.acc,
            metrics,
            window_metrics,
        );
        report.trace = trace;
        report
    }
}

/// Builds the op-generation closure a partition's cluster driver pulls
/// from: source `src` is the partition-local thread index, mapped to its
/// blade and protection domain exactly as [`GroupRun::turn`] maps global
/// threads. Free-standing so the borrow of one partition's state splits
/// cleanly from the driver and cluster borrows.
fn part_fill<'a>(
    part: &'a mut PartitionState,
    ops_buf: &'a mut Vec<TraceOp>,
    run_cfg: RunConfig,
    domain_per_thread: bool,
) -> impl FnMut(u32, usize, &mut Vec<MemOp>) + 'a {
    move |src, n, out| {
        let t = src as u16;
        let blade = part.compute_lo + t / run_cfg.threads_per_blade;
        let pdid = Some(part.pids[if domain_per_thread { t as usize } else { 0 }]);
        ops_buf.clear();
        part.workload.fill_ops(t, n, ops_buf);
        for op in ops_buf.iter() {
            out.push(MemOp {
                at: SimTime::ZERO,
                blade,
                pdid,
                vaddr: part.bases[op.region as usize] + op.offset,
                kind: op.kind,
            });
        }
    }
}

/// The serialized reference: every partition fused on one rack, driven
/// straight through in a single pass.
///
/// # Errors
///
/// Returns the [`ShardError`] naming the violated confinement invariant
/// (see [`GroupRun::new`]).
pub fn run_group(spec: &ShardSpec, factory: &PartitionFactory) -> Result<RunReport, ShardError> {
    let mut group = GroupRun::new(
        spec.name.clone(),
        spec.base,
        0,
        spec.partitions,
        spec.run,
        spec.domain_per_thread,
        factory,
    )?;
    let done = group.advance_until(SimTime::MAX);
    debug_assert!(done, "an unbounded horizon drains the group");
    Ok(group.finish())
}

/// Replays the scenario as `shards` independent sub-clusters advanced in
/// conservative windows of `spec.horizon` — in parallel on OS threads
/// when the process-wide thread budget has headroom — then merges the
/// per-shard reports in shard-index order. See the module docs for when
/// the result is byte-identical to [`run_group`]; it is *always*
/// byte-identical across thread counts.
///
/// The thread count is [`SHARD_THREADS_ENV`] when set, otherwise one
/// thread per shard capped by what [`mind_sim::threads::budget`] has left
/// (an engine already saturating the machine degrades this to the
/// sequential path). For an explicit count use [`run_sharded_threads`].
///
/// # Errors
///
/// Returns the [`ShardError`] naming the violated invariant: an uneven
/// shard split, a zero horizon, an asymmetric rack partition, or any
/// confinement failure from [`GroupRun::new`].
pub fn run_sharded(
    spec: &ShardSpec,
    shards: u16,
    factory: &PartitionFactory,
) -> Result<RunReport, ShardError> {
    match mind_sim::env::shard_threads() {
        Some(n) => run_sharded_threads(spec, shards, n, factory),
        None => {
            let grant = threads::budget().reserve((shards as usize).saturating_sub(1));
            run_sharded_inner(spec, shards, grant.lanes(), factory)
        }
    }
}

/// [`run_sharded`] with an explicit thread count (clamped to the shard
/// count; 1 runs the sequential reference path). The count is honoured
/// verbatim — it is *claimed* from the process-wide budget rather than
/// negotiated, so concurrent polite consumers back off instead.
///
/// # Errors
///
/// As [`run_sharded`].
pub fn run_sharded_threads(
    spec: &ShardSpec,
    shards: u16,
    threads_wanted: usize,
    factory: &PartitionFactory,
) -> Result<RunReport, ShardError> {
    let lanes = threads_wanted.max(1).min(shards.max(1) as usize);
    let _claim = threads::budget().claim(lanes - 1);
    run_sharded_inner(spec, shards, lanes, factory)
}

/// The shard-index-order streaming merge: per-shard reports are folded
/// into a running [`ReportMerger`] the moment every lower-index shard has
/// been folded, whatever order they *arrive* in. Reports that complete
/// ahead of a lower-index shard wait in a reorder buffer bounded by the
/// number of concurrently-running lanes — never by the shard count — so
/// merging `n` shards holds one accumulator plus O(lanes) buffered
/// reports instead of all `n`.
///
/// Fold order is the whole point: integer, histogram, and timeseries
/// folds are order-independent by construction, but trace merge extends
/// event vectors, so only an index-order fold reproduces the in-memory
/// [`crate::runner::merge_reports`] bytes. The reorder buffer makes the
/// fold order a function of shard *indices* alone; completion order,
/// thread count, and OS scheduling cannot reach it (proptested in
/// `tests/streamed_merge.rs`).
pub struct StreamedMerge {
    merger: ReportMerger,
    /// Reports that arrived ahead of a lower-index shard, keyed by shard.
    pending: BTreeMap<usize, RunReport>,
    /// The next shard index the merger will fold.
    next: usize,
    /// Total shards this merge expects.
    total: usize,
}

impl StreamedMerge {
    /// An empty merge expecting `total` shards for the report named
    /// `name`.
    pub fn new(name: impl Into<String>, total: usize) -> Self {
        StreamedMerge {
            merger: ReportMerger::new(name),
            pending: BTreeMap::new(),
            next: 0,
            total,
        }
    }

    /// Offers shard `shard`'s finished report: folds it immediately if
    /// every lower-index shard is already folded (then drains any
    /// now-contiguous buffered successors), otherwise buffers it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or was already offered.
    pub fn offer(&mut self, shard: usize, report: RunReport) {
        assert!(shard < self.total, "shard {shard} out of range {}", self.total);
        assert!(
            shard >= self.next && !self.pending.contains_key(&shard),
            "shard {shard} offered twice"
        );
        if shard != self.next {
            self.pending.insert(shard, report);
            return;
        }
        self.merger.fold(report);
        self.next += 1;
        while let Some(r) = self.pending.remove(&self.next) {
            self.merger.fold(r);
            self.next += 1;
        }
    }

    /// Shards folded into the accumulator so far (buffered ones excluded).
    pub fn folded(&self) -> usize {
        self.merger.folded()
    }

    /// Reports currently waiting in the reorder buffer.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Finishes the merge into the fused report.
    ///
    /// # Panics
    ///
    /// Panics unless every expected shard was offered.
    pub fn finish(self) -> RunReport {
        assert_eq!(
            self.merger.folded(),
            self.total,
            "streamed merge finished before every shard was offered"
        );
        self.merger.finish()
    }
}

/// Builds shard `s` of the spec, runs it through its conservative
/// horizons to completion, and finalizes its report with trace lanes
/// rebased onto the fused rack's global blade indices (shard `s` owns
/// blades starting at `s × sub.n_compute`, so the merged trace is
/// grouping-invariant).
///
/// Horizon stepping is shard-local: whether this shard drains at a
/// horizon — and the `ShardEpoch` mark it records when it does not —
/// depends only on its own state, so stepping it alone produces the
/// identical event sequence the old cluster-wide lockstep did.
fn run_one_shard(
    spec: &ShardSpec,
    sub: MindConfig,
    per_shard: u16,
    s: u16,
    factory: &PartitionFactory,
) -> Result<RunReport, ShardError> {
    let mut group = {
        let _t = mind_obs::profile::scope("shard.build");
        GroupRun::new(
            format!("{}/shard{s}", spec.name),
            sub,
            s * per_shard,
            per_shard,
            spec.run,
            spec.domain_per_thread,
            factory,
        )?
    };
    let mut horizon = spec.horizon;
    loop {
        let _t = mind_obs::profile::scope("shard.advance");
        if group.advance_until(horizon) {
            break;
        }
        group.mark_epoch(s as u32, horizon);
        horizon += spec.horizon;
    }
    let mut report = group.finish();
    if let Some(t) = &mut report.trace {
        t.rebase_lanes(s as u32 * sub.n_compute as u32);
    }
    Ok(report)
}

/// The shard driver behind both public entry points: `lanes` worker
/// threads claim shard indices from a shared cursor, each building its
/// shard lazily, running it to completion, and streaming the finished
/// report into a [`StreamedMerge`] — so peak memory is O(lanes) live
/// sub-clusters, never O(shards), and no `Vec<RunReport>` ever
/// materializes.
///
/// Workers share no simulation state whatsoever — each [`GroupRun`] is
/// built, run, and freed by exactly one worker — so preemption and
/// completion order cannot influence any simulated quantity, and the
/// index-ordered fold keeps the merged bytes thread-count-invariant.
/// On a construction error the lowest failing shard index wins (shard
/// construction is deterministic per index, so the reported error is
/// too) and workers stop claiming.
fn run_sharded_inner(
    spec: &ShardSpec,
    shards: u16,
    lanes: usize,
    factory: &PartitionFactory,
) -> Result<RunReport, ShardError> {
    if shards == 0 || !spec.partitions.is_multiple_of(shards) {
        return Err(ShardError::UnevenShards {
            partitions: spec.partitions,
            shards,
        });
    }
    if spec.horizon == SimTime::ZERO {
        return Err(ShardError::ZeroHorizon);
    }
    let sub = spec.base.try_partition(shards)?;
    let per_shard = spec.partitions / shards;
    let lanes = lanes.clamp(1, shards as usize);

    let merge = Mutex::new(StreamedMerge::new(spec.name.clone(), shards as usize));
    let cursor = AtomicUsize::new(0);
    let failed: Mutex<Option<(u16, ShardError)>> = Mutex::new(None);
    let run_lane = || loop {
        if failed.lock().expect("no panic holds the error slot").is_some() {
            break;
        }
        let s = cursor.fetch_add(1, Ordering::Relaxed);
        if s >= shards as usize {
            break;
        }
        match run_one_shard(spec, sub, per_shard, s as u16, factory) {
            Ok(report) => {
                let _t = mind_obs::profile::scope("shard.merge");
                merge
                    .lock()
                    .expect("no panic holds the streamed merge")
                    .offer(s, report);
            }
            Err(e) => {
                let mut slot = failed.lock().expect("no panic holds the error slot");
                if slot.is_none_or(|(lowest, _)| (s as u16) < lowest) {
                    *slot = Some((s as u16, e));
                }
                break;
            }
        }
    };
    if lanes == 1 {
        run_lane();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..lanes {
                scope.spawn(run_lane);
            }
        });
    }

    if let Some((_, e)) = failed.into_inner().expect("workers joined") {
        return Err(e);
    }
    Ok(merge
        .into_inner()
        .expect("workers joined")
        .finish())
}

// The Send audit, enforced at compile time: a shard's whole execution
// state — sub-cluster, event queues, partition workloads, RNGs — must be
// movable to its worker thread. `Workload: Send` (the trait's supertrait)
// closes the only open edge; everything else is plain owned data.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<MindCluster>();
    assert_send::<GroupRun>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use mind_core::system::AccessKind;
    use mind_sim::SimRng;

    /// A single-threaded tenant touching its own pages; writes stay on
    /// one blade, so the confinement contract holds.
    struct Tenant {
        pages: u64,
        rng: SimRng,
    }

    impl Workload for Tenant {
        fn name(&self) -> String {
            "tenant".to_string()
        }
        fn regions(&self) -> Vec<u64> {
            vec![self.pages << 12]
        }
        fn n_threads(&self) -> u16 {
            1
        }
        fn next_op(&mut self, _thread: u16) -> TraceOp {
            TraceOp {
                region: 0,
                offset: self.rng.gen_below(self.pages) << 12,
                kind: if self.rng.gen_bool(0.3) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }
        }
    }

    fn spec(partitions: u16, horizon_us: u64) -> ShardSpec {
        ShardSpec {
            name: "shard-test".to_string(),
            base: MindConfig {
                n_compute: partitions,
                n_memory: partitions,
                cache_pages: 512,
                blade_span: 1 << 26,
                memory_blade_bytes: 1 << 26,
                dir_capacity: 4096,
                rule_capacity: 4096,
                ..MindConfig::default()
            },
            partitions,
            run: RunConfig {
                ops_per_thread: 200,
                warmup_ops_per_thread: 40,
                ..Default::default()
            },
            horizon: SimTime::from_micros(horizon_us),
            domain_per_thread: false,
        }
    }

    fn factory(p: u16) -> Box<dyn Workload> {
        Box::new(Tenant {
            pages: 32,
            rng: SimRng::new(1000 + p as u64),
        })
    }

    fn key(r: &RunReport) -> (SimTime, SimTime, u64, u64, u64, u64, u128, u128, u64) {
        (
            r.runtime,
            r.warmup_end,
            r.total_ops,
            r.remote_ops,
            r.invalidations,
            r.flushed_pages,
            r.sum_network_ns,
            r.sum_remote_lat_ns,
            r.latency.quantile(0.999),
        )
    }

    #[test]
    fn one_shard_matches_serialized_reference_exactly() {
        let s = spec(4, 50);
        let fused = run_group(&s, &factory).expect("confined scenario");
        let sharded = run_sharded(&s, 1, &factory).expect("confined scenario");
        assert_eq!(key(&fused), key(&sharded));
        assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        assert_eq!(fused.metrics, sharded.metrics);
        assert_eq!(fused.window_metrics, sharded.window_metrics);
    }

    #[test]
    fn sharded_partitions_reproduce_the_fused_run() {
        let s = spec(4, 50);
        let fused = run_group(&s, &factory).expect("confined scenario");
        assert_eq!(fused.invalidations, 0, "scenario must be confined");
        for shards in [2u16, 4] {
            let sharded = run_sharded(&s, shards, &factory).expect("confined scenario");
            assert_eq!(key(&fused), key(&sharded), "shards = {shards}");
            assert_eq!(fused.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(fused.window_metrics, sharded.window_metrics);
            assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        }
    }

    #[test]
    fn per_thread_domains_reproduce_the_fused_run() {
        // Same scenario, but every tenant in its own protection domain
        // (the multi-tenant isolation shape). Pid values differ between
        // the fused and sharded runs; nothing timing-visible does.
        let mut s = spec(4, 50);
        s.domain_per_thread = true;
        let fused = run_group(&s, &factory).expect("confined scenario");
        assert_eq!(fused.invalidations, 0, "scenario must be confined");
        for shards in [2u16, 4] {
            let sharded = run_sharded(&s, shards, &factory).expect("confined scenario");
            assert_eq!(key(&fused), key(&sharded), "shards = {shards}");
            assert_eq!(fused.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(fused.window_metrics, sharded.window_metrics);
            assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        }
    }

    #[test]
    fn thread_count_never_changes_the_result() {
        // The multi-core contract: byte-identical reports across thread
        // counts, including counts that do not divide the shard count and
        // counts past it (clamped).
        let s = spec(4, 50);
        let reference = run_sharded_threads(&s, 4, 1, &factory).expect("confined scenario");
        for threads in [2usize, 3, 4, 16] {
            let got = run_sharded_threads(&s, 4, threads, &factory).expect("confined scenario");
            assert_eq!(key(&reference), key(&got), "threads = {threads}");
            assert_eq!(reference.metrics, got.metrics, "threads = {threads}");
            assert_eq!(reference.window_metrics, got.window_metrics);
            assert_eq!(reference.mops.to_bits(), got.mops.to_bits());
        }
    }

    #[test]
    fn cluster_mode_sharded_partitions_reproduce_the_fused_run() {
        // The engine arbitrates per partition, so confined scenarios keep
        // the fused ≡ sharded contract in cluster mode too.
        let mut s = spec(4, 50);
        s.run = s
            .run
            .with_batch_ops(8)
            .with_window(4)
            .with_concurrency(crate::runner::Concurrency::Cluster);
        let fused = run_group(&s, &factory).expect("confined scenario");
        assert_eq!(fused.invalidations, 0, "scenario must be confined");
        assert!(fused.total_ops > 0);
        for shards in [2u16, 4] {
            let sharded = run_sharded(&s, shards, &factory).expect("confined scenario");
            assert_eq!(key(&fused), key(&sharded), "shards = {shards}");
            assert_eq!(fused.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(fused.window_metrics, sharded.window_metrics);
            assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        }
    }

    #[test]
    fn cluster_mode_thread_count_never_changes_the_result() {
        let mut s = spec(4, 50);
        s.run = s
            .run
            .with_batch_ops(8)
            .with_window(4)
            .with_concurrency(crate::runner::Concurrency::Cluster);
        let reference = run_sharded_threads(&s, 4, 1, &factory).expect("confined scenario");
        for threads in [2usize, 4] {
            let got = run_sharded_threads(&s, 4, threads, &factory).expect("confined scenario");
            assert_eq!(key(&reference), key(&got), "threads = {threads}");
            assert_eq!(reference.metrics, got.metrics, "threads = {threads}");
            assert_eq!(reference.mops.to_bits(), got.mops.to_bits());
        }
    }

    #[test]
    fn cluster_mode_horizon_length_never_changes_the_result() {
        let mut s = spec(2, 1000);
        s.run = s
            .run
            .with_batch_ops(8)
            .with_window(4)
            .with_concurrency(crate::runner::Concurrency::Cluster);
        let reference = run_sharded(&s, 2, &factory).expect("confined scenario");
        for horizon_us in [1u64, 333] {
            let mut alt = spec(2, horizon_us);
            alt.run = s.run;
            alt.name = s.name.clone();
            let got = run_sharded(&alt, 2, &factory).expect("confined scenario");
            assert_eq!(key(&reference), key(&got), "horizon {horizon_us}us");
            assert_eq!(reference.metrics, got.metrics);
        }
    }

    #[test]
    fn per_thread_domains_require_region_per_thread() {
        struct TwoRegions;
        impl Workload for TwoRegions {
            fn name(&self) -> String {
                "two-regions".to_string()
            }
            fn regions(&self) -> Vec<u64> {
                vec![1 << 16, 1 << 16]
            }
            fn n_threads(&self) -> u16 {
                1
            }
            fn next_op(&mut self, _thread: u16) -> TraceOp {
                TraceOp {
                    region: 0,
                    offset: 0,
                    kind: AccessKind::Read,
                }
            }
        }
        let mut s = spec(2, 50);
        s.domain_per_thread = true;
        let err = run_group(&s, &|_| Box::new(TwoRegions)).unwrap_err();
        assert_eq!(
            err,
            ShardError::RegionPerThread {
                partition: 0,
                regions: 2,
                threads: 1
            }
        );
        assert!(err.to_string().contains("one region per thread"), "{err}");
    }

    #[test]
    fn horizon_length_never_changes_the_result() {
        let s = spec(2, 1000);
        let reference = run_sharded(&s, 2, &factory).expect("confined scenario");
        for horizon_us in [1u64, 7, 333, 1_000_000] {
            let mut alt = spec(2, horizon_us);
            alt.name = s.name.clone();
            let got = run_sharded(&alt, 2, &factory).expect("confined scenario");
            assert_eq!(key(&reference), key(&got), "horizon {horizon_us}us");
            assert_eq!(reference.metrics, got.metrics);
        }
    }

    #[test]
    fn interleaved_placement_rejected() {
        let mut s = spec(2, 50);
        s.run.interleave = true;
        let err = run_group(&s, &factory).unwrap_err();
        assert_eq!(err, ShardError::InterleavedPlacement);
        assert!(err.to_string().contains("not partition-confined"), "{err}");
    }

    #[test]
    fn uneven_shard_split_rejected() {
        let s = spec(4, 50);
        let err = run_sharded(&s, 3, &factory).unwrap_err();
        assert_eq!(
            err,
            ShardError::UnevenShards {
                partitions: 4,
                shards: 3
            }
        );
        assert!(err.to_string().contains("do not divide"), "{err}");
    }

    #[test]
    fn zero_horizon_rejected() {
        let mut s = spec(2, 50);
        s.horizon = SimTime::ZERO;
        assert_eq!(run_sharded(&s, 2, &factory).unwrap_err(), ShardError::ZeroHorizon);
    }

    #[test]
    fn asymmetric_rack_surfaces_partition_error() {
        let mut s = spec(4, 50);
        s.base.n_compute = 3;
        let err = run_sharded(&s, 2, &factory).unwrap_err();
        assert!(
            matches!(err, ShardError::Partition(PartitionError::UnevenCompute { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn over_utilized_directory_rejected() {
        // One tenant spanning many pages against a directory too small to
        // hold the initial regions at ≤ ½ utilization.
        let mut s = spec(2, 50);
        s.base.dir_capacity = 2;
        s.base.rule_capacity = 2;
        let err = run_group(&s, &factory).unwrap_err();
        assert!(
            matches!(err, ShardError::DirectoryOverUtilized { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("1/2 ceiling"), "{err}");
    }
}
