//! Deterministic sharded simulation of partitioned scenarios.
//!
//! Big multi-tenant scenarios decompose into *partitions* — symmetric
//! tenant groups confined to disjoint blade slices (see
//! [`mind_core::shard`]). This module replays such scenarios two ways:
//!
//! - [`run_group`]: the **serialized reference** — every partition on one
//!   fused rack, driven straight through a single
//!   [`mind_sim::EventQueue`];
//! - [`run_sharded`]: the same partitions split across `shards`
//!   sub-clusters, each advanced through **conservative time windows** of
//!   [`ShardSpec::horizon`] — no shard executes an event past the current
//!   horizon until every shard has caught up to it — and merged with
//!   [`merge_reports`] into one report.
//!
//! ## Determinism contract
//!
//! `run_sharded(spec, 1, ..)` is byte-identical to `run_group(spec, ..)`:
//! windowing only pauses the pop loop (shard state cannot leak across the
//! horizon because shards share nothing), and a merge of one report is
//! the identity. For `shards > 1` the merged report is byte-identical to
//! the fused reference whenever the scenario is *confined*:
//!
//! 1. partitions are structurally symmetric (same thread count and region
//!    list shape), so [`MindConfig::partition`] gives every shard the
//!    per-partition resource share the fused rack gives it;
//! 2. each partition's threads run on its compute slice and its regions
//!    are placed with `mmap_in` on its memory slice — both enforced here —
//!    so caches and per-blade fabric links never carry another
//!    partition's traffic;
//! 3. no invalidations occur (read-only sharing, or writes only from a
//!    single blade): Bounded Splitting's epoch threshold sums counters
//!    over *all* regions, so any invalidation couples partitions through
//!    the global total;
//! 4. directory utilization stays at or below 1/2 (the epoch merge phase
//!    is gated on `utilization > 0.5`, again a global quantity).
//!
//! Under 1–4 every quantity feeding an op's latency is partition-local,
//! so per-op timings — and therefore the merged integer report — match
//! the fused run exactly. Scenarios that break the contract still run and
//! merge, but approximate the fused result instead of reproducing it.

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::controller::Pid;
use mind_core::shard::PartitionLayout;
use mind_core::system::{MemOp, OpBatch};
use mind_sim::stats::Metrics;
use mind_sim::{EventQueue, SimTime};

use crate::runner::{finish_report, merge_reports, Accum, RunConfig, RunReport};
use crate::trace::{TraceOp, Workload};

/// A partitioned scenario: `partitions` symmetric tenant groups over a
/// fused rack `base`, replayable fused ([`run_group`]) or sharded
/// ([`run_sharded`]).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Scenario name carried into the merged report.
    pub name: String,
    /// The fused rack hosting all partitions.
    pub base: MindConfig,
    /// Number of partitions; must divide the rack per
    /// [`PartitionLayout`].
    pub partitions: u16,
    /// Per-thread replay parameters (shared by every partition).
    pub run: RunConfig,
    /// Conservative window length for [`run_sharded`]: shards advance in
    /// lockstep quanta of this much simulated time.
    pub horizon: SimTime,
    /// `false` (the default shape): one process — one protection domain —
    /// per partition. `true`: one process *per thread*, for multi-tenant
    /// populations where every tenant is its own protection domain (the
    /// `mind_service` isolation model); the partition workload must then
    /// expose exactly one region per thread, with thread `t` owning
    /// region `t`. Per-tenant domains never coalesce in the switch's
    /// protection TCAM, so fused admission cost grows with the *rack's*
    /// tenant count while each shard only pays for its own slice — the
    /// effect the large-scenario scaling point measures.
    pub domain_per_thread: bool,
}

/// Builds the workload of one partition, keyed by its *global* partition
/// index so a partition generates the identical op stream whichever shard
/// (or the fused rack) hosts it.
pub type PartitionFactory<'a> = dyn Fn(u16) -> Box<dyn Workload> + 'a;

struct PartitionState {
    /// Protection domains: one entry (per-partition mode) or one per
    /// thread (per-thread mode, thread `t` runs in `pids[t]`).
    pids: Vec<Pid>,
    workload: Box<dyn Workload>,
    bases: Vec<u64>,
    compute_lo: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup,
    Measured,
    Done,
}

/// One group of partitions co-hosted on one cluster, advanced event by
/// event: the whole scenario (the fused reference) or one shard of it.
pub struct GroupRun {
    name: String,
    cluster: MindCluster,
    run_cfg: RunConfig,
    parts: Vec<PartitionState>,
    threads_per_partition: u16,
    domain_per_thread: bool,
    phase: Phase,
    queue: EventQueue<u32>,
    measured: EventQueue<u32>,
    warmup_left: Vec<u64>,
    remaining: Vec<u64>,
    warmup_end: SimTime,
    baseline: Option<Metrics>,
    acc: Accum,
    end_clock: SimTime,
    batch: OpBatch,
    ops_buf: Vec<TraceOp>,
}

impl GroupRun {
    /// Assembles a cluster of `cfg` hosting the global partitions
    /// `first..first + partitions`: per partition, one process, threads
    /// pinned to its compute slice, regions `mmap_in`-confined to its
    /// memory slice.
    ///
    /// # Panics
    ///
    /// Panics if the partitions are not symmetric, do not fit their
    /// slices, `run.interleave` is set (interleaved thread placement is
    /// not partition-confined), or `domain_per_thread` is set and a
    /// partition does not expose exactly one region per thread.
    pub fn new(
        name: String,
        cfg: MindConfig,
        first: u16,
        partitions: u16,
        run: RunConfig,
        domain_per_thread: bool,
        factory: &PartitionFactory,
    ) -> Self {
        assert!(!run.interleave, "interleaved placement is not partition-confined");
        let layout = PartitionLayout::new(&cfg, partitions);
        let mut cluster = MindCluster::new(cfg);
        let mut parts = Vec::with_capacity(partitions as usize);
        let mut threads_per_partition = None;
        for lp in 0..partitions {
            let workload = factory(first + lp);
            let nt = workload.n_threads();
            assert_eq!(
                *threads_per_partition.get_or_insert(nt),
                nt,
                "partitions must be symmetric in thread count"
            );
            let regions = workload.regions();
            let pids: Vec<Pid> = if domain_per_thread {
                assert_eq!(
                    regions.len(),
                    nt as usize,
                    "per-thread domains need one region per thread"
                );
                (0..nt)
                    .map(|_| cluster.exec().expect("exec cannot fail"))
                    .collect()
            } else {
                vec![cluster.exec().expect("exec cannot fail")]
            };
            let slice = layout.memory_slice(lp);
            let bases: Vec<u64> = regions
                .into_iter()
                .enumerate()
                .map(|(r, len)| {
                    let pid = pids[if domain_per_thread { r } else { 0 }];
                    cluster
                        .mmap_in(pid, len, slice.clone())
                        .expect("partition regions fit its memory-blade slice")
                })
                .collect();
            parts.push(PartitionState {
                pids,
                workload,
                bases,
                compute_lo: layout.compute_slice(lp).start,
            });
        }
        let tpp = threads_per_partition.expect("at least one partition");
        assert!(
            tpp.div_ceil(run.threads_per_blade) <= layout.compute_per_partition,
            "partition threads need {} compute blades, slice has {}",
            tpp.div_ceil(run.threads_per_blade),
            layout.compute_per_partition
        );

        let total = partitions as u32 * tpp as u32;
        let mut queue = EventQueue::new();
        for gt in 0..total {
            queue.schedule(SimTime::ZERO, gt);
        }
        let warmup = run.warmup_ops_per_thread;
        let (phase, queue, measured, baseline) = if warmup > 0 {
            (Phase::Warmup, queue, EventQueue::new(), None)
        } else {
            // No warmup: the seeded queue is the measured queue and the
            // baseline snapshot is the post-setup state, exactly as in
            // `runner::run`.
            let baseline = cluster.metrics_snapshot();
            (Phase::Measured, EventQueue::new(), queue, Some(baseline))
        };
        GroupRun {
            name,
            run_cfg: run,
            parts,
            threads_per_partition: tpp,
            domain_per_thread,
            phase,
            queue,
            measured,
            warmup_left: vec![warmup; total as usize],
            remaining: vec![run.ops_per_thread; total as usize],
            warmup_end: SimTime::ZERO,
            baseline,
            acc: Accum::new(),
            end_clock: SimTime::ZERO,
            batch: OpBatch::chained(run.think_time).with_window(run.window),
            ops_buf: Vec::new(),
            cluster,
        }
    }

    /// Issues one scheduling turn for global thread `gt` at `clock`;
    /// returns the thread's clock after its last completion + think time.
    fn turn(&mut self, clock: SimTime, gt: u32, n: u64) -> SimTime {
        let lp = (gt / self.threads_per_partition as u32) as usize;
        let t = (gt % self.threads_per_partition as u32) as u16;
        let part = &mut self.parts[lp];
        let blade = part.compute_lo + t / self.run_cfg.threads_per_blade;
        let pdid = Some(part.pids[if self.domain_per_thread { t as usize } else { 0 }]);
        self.ops_buf.clear();
        part.workload.fill_ops(t, n as usize, &mut self.ops_buf);
        self.batch.clear();
        for op in &self.ops_buf {
            self.batch.push(MemOp {
                at: SimTime::ZERO,
                blade,
                pdid,
                vaddr: part.bases[op.region as usize] + op.offset,
                kind: op.kind,
            });
        }
        self.cluster.run_batch(clock, &mut self.batch);
        for (op, result) in self.batch.ops().iter().zip(self.batch.results()) {
            if let Err(e) = result {
                panic!("sharded access failed at {:#x}: {e}", op.vaddr);
            }
        }
        let turn_done = (0..self.batch.len())
            .map(|i| self.batch.completion(i))
            .max()
            .expect("turns are non-empty");
        turn_done + self.run_cfg.think_time
    }

    /// Executes every event at or before `horizon`, in timestamp order
    /// (ties by schedule order). Returns `true` once the group has no
    /// work left. Within a phase, pops never go backwards in time; the
    /// warmup→measured transition is a barrier exactly as in
    /// [`crate::runner::run`].
    pub fn advance_until(&mut self, horizon: SimTime) -> bool {
        let batch_ops = self.run_cfg.batch_ops.max(1);
        loop {
            match self.phase {
                Phase::Warmup => {
                    while let Some(at) = self.queue.peek_time() {
                        if at > horizon {
                            return false;
                        }
                        let ev = self.queue.pop().expect("peeked event exists");
                        let gt = ev.event;
                        let n = batch_ops.min(self.warmup_left[gt as usize]);
                        let next = self.turn(ev.at, gt, n);
                        self.warmup_end = self.warmup_end.max(next);
                        self.warmup_left[gt as usize] -= n;
                        if self.warmup_left[gt as usize] > 0 {
                            self.queue.schedule(next, gt);
                        } else {
                            self.measured.schedule(next, gt);
                        }
                    }
                    // Warmup drained: snapshot the baseline and switch.
                    self.baseline = Some(self.cluster.metrics_snapshot());
                    self.end_clock = self.warmup_end;
                    self.phase = Phase::Measured;
                }
                Phase::Measured => {
                    while let Some(at) = self.measured.peek_time() {
                        if at > horizon {
                            return false;
                        }
                        let ev = self.measured.pop().expect("peeked event exists");
                        let gt = ev.event;
                        let n = batch_ops.min(self.remaining[gt as usize]);
                        let next = self.turn(ev.at, gt, n);
                        self.acc.record_batch(&self.batch);
                        self.end_clock = self.end_clock.max(next);
                        self.remaining[gt as usize] -= n;
                        if self.remaining[gt as usize] > 0 {
                            self.measured.schedule(next, gt);
                        }
                    }
                    self.phase = Phase::Done;
                }
                Phase::Done => return true,
            }
        }
    }

    /// Whether every thread has finished its measured ops.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Finalizes this group's report (measured window only).
    pub fn finish(self) -> RunReport {
        assert!(self.is_done(), "finish before the group completed");
        let metrics = self.cluster.metrics_snapshot();
        let window_metrics = metrics.diff(self.baseline.as_ref().expect("baseline snapshotted"));
        finish_report(
            self.name,
            self.warmup_end,
            self.end_clock.max(self.warmup_end),
            self.acc,
            metrics,
            window_metrics,
        )
    }
}

/// The serialized reference: every partition fused on one rack, driven
/// straight through in a single pass.
pub fn run_group(spec: &ShardSpec, factory: &PartitionFactory) -> RunReport {
    let mut group = GroupRun::new(
        spec.name.clone(),
        spec.base,
        0,
        spec.partitions,
        spec.run,
        spec.domain_per_thread,
        factory,
    );
    let done = group.advance_until(SimTime::MAX);
    debug_assert!(done, "an unbounded horizon drains the group");
    group.finish()
}

/// Replays the scenario as `shards` independent sub-clusters advanced in
/// conservative windows of `spec.horizon`, then merges the per-shard
/// reports. See the module docs for when the result is byte-identical to
/// [`run_group`].
///
/// # Panics
///
/// Panics if `shards` does not divide `spec.partitions` (or the rack's
/// resources, per [`MindConfig::partition`]), or `spec.horizon` is zero.
pub fn run_sharded(spec: &ShardSpec, shards: u16, factory: &PartitionFactory) -> RunReport {
    assert!(shards >= 1, "at least one shard");
    assert_eq!(
        spec.partitions % shards,
        0,
        "{} partitions do not divide into {shards} shards",
        spec.partitions
    );
    assert!(spec.horizon > SimTime::ZERO, "conservative window must advance");
    let sub = spec.base.partition(shards);
    let per_shard = spec.partitions / shards;
    let mut groups: Vec<GroupRun> = (0..shards)
        .map(|s| {
            GroupRun::new(
                format!("{}/shard{s}", spec.name),
                sub,
                s * per_shard,
                per_shard,
                spec.run,
                spec.domain_per_thread,
                factory,
            )
        })
        .collect();
    let mut horizon = spec.horizon;
    loop {
        let mut all_done = true;
        for g in groups.iter_mut() {
            all_done &= g.advance_until(horizon);
        }
        if all_done {
            break;
        }
        horizon += spec.horizon;
    }
    let reports: Vec<RunReport> = groups.into_iter().map(GroupRun::finish).collect();
    merge_reports(spec.name.clone(), &reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_core::system::AccessKind;
    use mind_sim::SimRng;

    /// A single-threaded tenant touching its own pages; writes stay on
    /// one blade, so the confinement contract holds.
    struct Tenant {
        pages: u64,
        rng: SimRng,
    }

    impl Workload for Tenant {
        fn name(&self) -> String {
            "tenant".to_string()
        }
        fn regions(&self) -> Vec<u64> {
            vec![self.pages << 12]
        }
        fn n_threads(&self) -> u16 {
            1
        }
        fn next_op(&mut self, _thread: u16) -> TraceOp {
            TraceOp {
                region: 0,
                offset: self.rng.gen_below(self.pages) << 12,
                kind: if self.rng.gen_bool(0.3) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }
        }
    }

    fn spec(partitions: u16, horizon_us: u64) -> ShardSpec {
        ShardSpec {
            name: "shard-test".to_string(),
            base: MindConfig {
                n_compute: partitions,
                n_memory: partitions,
                cache_pages: 512,
                blade_span: 1 << 26,
                memory_blade_bytes: 1 << 26,
                dir_capacity: 4096,
                rule_capacity: 4096,
                ..MindConfig::default()
            },
            partitions,
            run: RunConfig {
                ops_per_thread: 200,
                warmup_ops_per_thread: 40,
                ..Default::default()
            },
            horizon: SimTime::from_micros(horizon_us),
            domain_per_thread: false,
        }
    }

    fn factory(p: u16) -> Box<dyn Workload> {
        Box::new(Tenant {
            pages: 32,
            rng: SimRng::new(1000 + p as u64),
        })
    }

    fn key(r: &RunReport) -> (SimTime, SimTime, u64, u64, u64, u64, u128, u128, u64) {
        (
            r.runtime,
            r.warmup_end,
            r.total_ops,
            r.remote_ops,
            r.invalidations,
            r.flushed_pages,
            r.sum_network_ns,
            r.sum_remote_lat_ns,
            r.latency.quantile(0.999),
        )
    }

    #[test]
    fn one_shard_matches_serialized_reference_exactly() {
        let s = spec(4, 50);
        let fused = run_group(&s, &factory);
        let sharded = run_sharded(&s, 1, &factory);
        assert_eq!(key(&fused), key(&sharded));
        assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        assert_eq!(fused.metrics, sharded.metrics);
        assert_eq!(fused.window_metrics, sharded.window_metrics);
    }

    #[test]
    fn sharded_partitions_reproduce_the_fused_run() {
        let s = spec(4, 50);
        let fused = run_group(&s, &factory);
        assert_eq!(fused.invalidations, 0, "scenario must be confined");
        for shards in [2u16, 4] {
            let sharded = run_sharded(&s, shards, &factory);
            assert_eq!(key(&fused), key(&sharded), "shards = {shards}");
            assert_eq!(fused.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(fused.window_metrics, sharded.window_metrics);
            assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        }
    }

    #[test]
    fn per_thread_domains_reproduce_the_fused_run() {
        // Same scenario, but every tenant in its own protection domain
        // (the multi-tenant isolation shape). Pid values differ between
        // the fused and sharded runs; nothing timing-visible does.
        let mut s = spec(4, 50);
        s.domain_per_thread = true;
        let fused = run_group(&s, &factory);
        assert_eq!(fused.invalidations, 0, "scenario must be confined");
        for shards in [2u16, 4] {
            let sharded = run_sharded(&s, shards, &factory);
            assert_eq!(key(&fused), key(&sharded), "shards = {shards}");
            assert_eq!(fused.metrics, sharded.metrics, "shards = {shards}");
            assert_eq!(fused.window_metrics, sharded.window_metrics);
            assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "one region per thread")]
    fn per_thread_domains_require_region_per_thread() {
        struct TwoRegions;
        impl Workload for TwoRegions {
            fn name(&self) -> String {
                "two-regions".to_string()
            }
            fn regions(&self) -> Vec<u64> {
                vec![1 << 16, 1 << 16]
            }
            fn n_threads(&self) -> u16 {
                1
            }
            fn next_op(&mut self, _thread: u16) -> TraceOp {
                TraceOp {
                    region: 0,
                    offset: 0,
                    kind: AccessKind::Read,
                }
            }
        }
        let mut s = spec(2, 50);
        s.domain_per_thread = true;
        run_group(&s, &|_| Box::new(TwoRegions));
    }

    #[test]
    fn horizon_length_never_changes_the_result() {
        let s = spec(2, 1000);
        let reference = run_sharded(&s, 2, &factory);
        for horizon_us in [1u64, 7, 333, 1_000_000] {
            let mut alt = spec(2, horizon_us);
            alt.name = s.name.clone();
            let got = run_sharded(&alt, 2, &factory);
            assert_eq!(key(&reference), key(&got), "horizon {horizon_us}us");
            assert_eq!(reference.metrics, got.metrics);
        }
    }

    #[test]
    #[should_panic(expected = "not partition-confined")]
    fn interleaved_placement_rejected() {
        let mut s = spec(2, 50);
        s.run.interleave = true;
        run_group(&s, &factory);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn uneven_shard_split_rejected() {
        let s = spec(4, 50);
        run_sharded(&s, 3, &factory);
    }
}
