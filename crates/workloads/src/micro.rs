//! The §7.2 microbenchmark: uniform random accesses over a large working
//! set, swept over *read ratio* (fraction of loads) and *sharing ratio*
//! (fraction of accesses that target a region shared by all threads).
//!
//! The paper uses a 400 k-page working set with uniform random access;
//! Figure 7 (center) plots 4 KB IOPS over the sweep and Figure 7 (right)
//! the latency breakdown at sharing ratio 1.

use mind_core::system::AccessKind;
use mind_sim::SimRng;

use crate::trace::{TraceOp, Workload};

/// Microbenchmark parameters.
#[derive(Debug, Clone, Copy)]
pub struct MicroConfig {
    /// Threads issuing accesses.
    pub n_threads: u16,
    /// Fraction of accesses that are reads.
    pub read_ratio: f64,
    /// Fraction of accesses that target the shared region.
    pub sharing_ratio: f64,
    /// Shared region size in pages (400 k in the paper).
    pub shared_pages: u64,
    /// Private region size per thread, in pages.
    pub private_pages: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            n_threads: 8,
            read_ratio: 0.5,
            sharing_ratio: 0.5,
            shared_pages: 400_000,
            private_pages: 50_000,
            seed: 42,
        }
    }
}

/// The microbenchmark generator.
#[derive(Debug)]
pub struct MicroWorkload {
    cfg: MicroConfig,
    rngs: Vec<SimRng>,
}

impl MicroWorkload {
    /// Creates the generator.
    pub fn new(cfg: MicroConfig) -> Self {
        let mut root = SimRng::new(cfg.seed);
        MicroWorkload {
            rngs: (0..cfg.n_threads).map(|_| root.fork()).collect(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MicroConfig {
        &self.cfg
    }
}

impl Workload for MicroWorkload {
    fn name(&self) -> String {
        format!(
            "micro(r={},s={})",
            self.cfg.read_ratio, self.cfg.sharing_ratio
        )
    }

    fn regions(&self) -> Vec<u64> {
        // Region 0: shared; regions 1..=n: per-thread private.
        let mut r = vec![self.cfg.shared_pages << 12];
        r.extend((0..self.cfg.n_threads).map(|_| self.cfg.private_pages << 12));
        r
    }

    fn n_threads(&self) -> u16 {
        self.cfg.n_threads
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let rng = &mut self.rngs[thread as usize];
        let shared = rng.gen_bool(self.cfg.sharing_ratio);
        let (region, pages) = if shared {
            (0u16, self.cfg.shared_pages)
        } else {
            (1 + thread, self.cfg.private_pages)
        };
        let page = rng.gen_below(pages);
        let kind = if rng.gen_bool(self.cfg.read_ratio) {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        TraceOp {
            region,
            offset: page << 12,
            kind,
        }
    }

    fn fill_ops(&mut self, thread: u16, n: usize, out: &mut Vec<TraceOp>) {
        // Batched generation: one RNG borrow and config read for the whole
        // run of ops. Stream-identical to `n` scalar `next_op` calls.
        let cfg = self.cfg;
        let private_region = 1 + thread;
        let rng = &mut self.rngs[thread as usize];
        out.reserve(n);
        for _ in 0..n {
            let (region, pages) = if rng.gen_bool(cfg.sharing_ratio) {
                (0u16, cfg.shared_pages)
            } else {
                (private_region, cfg.private_pages)
            };
            let page = rng.gen_below(pages);
            let kind = if rng.gen_bool(cfg.read_ratio) {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            out.push(TraceOp {
                region,
                offset: page << 12,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops(cfg: MicroConfig, n: usize) -> Vec<TraceOp> {
        let mut wl = MicroWorkload::new(cfg);
        (0..n)
            .map(|i| wl.next_op((i % cfg.n_threads as usize) as u16))
            .collect()
    }

    #[test]
    fn read_ratio_respected() {
        let ops = sample_ops(
            MicroConfig {
                read_ratio: 0.75,
                ..Default::default()
            },
            40_000,
        );
        let reads = ops.iter().filter(|o| !o.kind.is_write()).count();
        let frac = reads as f64 / ops.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn sharing_ratio_respected() {
        let ops = sample_ops(
            MicroConfig {
                sharing_ratio: 0.25,
                ..Default::default()
            },
            40_000,
        );
        let shared = ops.iter().filter(|o| o.region == 0).count();
        let frac = shared as f64 / ops.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "shared fraction {frac}");
    }

    #[test]
    fn offsets_stay_in_bounds() {
        let cfg = MicroConfig {
            shared_pages: 100,
            private_pages: 10,
            ..Default::default()
        };
        let mut wl = MicroWorkload::new(cfg);
        let regions = wl.regions();
        for i in 0..10_000 {
            let op = wl.next_op((i % 8) as u16);
            assert!(op.offset < regions[op.region as usize]);
        }
    }

    #[test]
    fn private_regions_are_per_thread() {
        let mut wl = MicroWorkload::new(MicroConfig {
            sharing_ratio: 0.0,
            n_threads: 4,
            ..Default::default()
        });
        for t in 0..4u16 {
            for _ in 0..100 {
                assert_eq!(wl.next_op(t).region, 1 + t);
            }
        }
    }

    #[test]
    fn fill_ops_matches_scalar_stream() {
        let cfg = MicroConfig::default();
        let mut scalar = MicroWorkload::new(cfg);
        let mut batched = MicroWorkload::new(cfg);
        // Interleave threads and batch sizes: the batched stream must be
        // exactly the concatenation of the scalar per-thread streams.
        for (thread, n) in [(0u16, 1usize), (1, 64), (0, 7), (2, 256), (1, 3)] {
            let want: Vec<TraceOp> = (0..n).map(|_| scalar.next_op(thread)).collect();
            let mut got = Vec::new();
            batched.fill_ops(thread, n, &mut got);
            assert_eq!(got, want, "thread {thread} batch of {n}");
        }
    }

    #[test]
    fn deterministic_per_thread_streams() {
        let mk = |order: &[u16]| {
            let mut wl = MicroWorkload::new(MicroConfig::default());
            let mut t0_ops = Vec::new();
            for &t in order {
                let op = wl.next_op(t);
                if t == 0 {
                    t0_ops.push(op);
                }
            }
            t0_ops
        };
        // Thread 0's stream is identical regardless of interleaving.
        let a = mk(&[0, 0, 0, 0]);
        let b = mk(&[0, 1, 2, 0, 3, 0, 1, 0]);
        assert_eq!(a, b);
    }
}
