//! GraphChi / PageRank on the Twitter graph ("GC" in the paper).
//!
//! Graph traversal incurs random, often contentious access to shared data:
//! threads stream their shard of the (shared, read-only) adjacency
//! structure and read/update the globally shared rank vector of neighbour
//! vertices with poor locality. GC writes ~2.5× more shared data than TF
//! (§7.1), producing significantly more M-state transitions and
//! invalidations — the reason its scaling peaks at 2 compute blades and
//! declines after (Figure 5 center, Figure 6).

use mind_core::system::AccessKind;
use mind_sim::SimRng;

use crate::tf::LINE;
use crate::trace::{TraceOp, Workload};

/// GC workload parameters. Region sizes are fixed totals (strong scaling).
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Threads (graph shards processed in parallel).
    pub n_threads: u16,
    /// Shared adjacency-structure region, in pages.
    pub graph_pages: u64,
    /// Shared rank-vector region, in pages (contended read-write).
    pub rank_pages: u64,
    /// Fraction of ops that update a neighbour's rank (shared writes);
    /// ~2.5× TF's shared-write fraction.
    pub rank_write_fraction: f64,
    /// Skew toward "celebrity" vertices: fraction of rank accesses hitting
    /// the hot head of the vector.
    pub hot_fraction: f64,
    /// Pages in the hot head.
    pub hot_pages: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            n_threads: 8,
            graph_pages: 24_576, // 96 MB adjacency lists.
            rank_pages: 8_192,   // 32 MB of ranks.
            rank_write_fraction: 0.0025,
            hot_fraction: 0.5,
            hot_pages: 1_024,
            seed: 11,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ThreadState {
    scan_cursor: u64,
}

/// The GC generator.
#[derive(Debug)]
pub struct GcWorkload {
    cfg: GcConfig,
    rngs: Vec<SimRng>,
    threads: Vec<ThreadState>,
}

impl GcWorkload {
    /// Creates the generator.
    pub fn new(cfg: GcConfig) -> Self {
        let mut root = SimRng::new(cfg.seed);
        GcWorkload {
            rngs: (0..cfg.n_threads).map(|_| root.fork()).collect(),
            threads: vec![ThreadState::default(); cfg.n_threads as usize],
            cfg,
        }
    }

    fn rank_page(cfg: &GcConfig, rng: &mut SimRng) -> u64 {
        if rng.gen_bool(cfg.hot_fraction) {
            rng.gen_below(cfg.hot_pages)
        } else {
            rng.gen_below(cfg.rank_pages)
        }
    }
}

impl Workload for GcWorkload {
    fn name(&self) -> String {
        "GC".to_string()
    }

    fn regions(&self) -> Vec<u64> {
        vec![self.cfg.graph_pages << 12, self.cfg.rank_pages << 12]
    }

    fn n_threads(&self) -> u16 {
        self.cfg.n_threads
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let rng = &mut self.rngs[thread as usize];
        let st = &mut self.threads[thread as usize];
        let dice = rng.gen_f64();
        let w = self.cfg.rank_write_fraction;
        if dice < 0.75 {
            // Edge scan: cache-line sequential within the thread's shard,
            // with occasional random jumps (GraphChi's sliding shards).
            let shard_pages = (self.cfg.graph_pages / self.cfg.n_threads as u64).max(1);
            let shard_bytes = shard_pages << 12;
            let base = shard_bytes * thread as u64;
            let offset = if rng.gen_bool(0.95) {
                let o = base + (st.scan_cursor * LINE) % shard_bytes;
                st.scan_cursor += 1;
                o
            } else {
                rng.gen_below(self.cfg.graph_pages << 12) & !(LINE - 1)
            };
            TraceOp {
                region: 0,
                offset,
                kind: AccessKind::Read,
            }
        } else if dice < 1.0 - w {
            // Random neighbour-rank read: poor locality, shared.
            let page = Self::rank_page(&self.cfg, rng);
            TraceOp {
                region: 1,
                offset: page << 12,
                kind: AccessKind::Read,
            }
        } else {
            // Rank update: the contended shared write.
            let page = Self::rank_page(&self.cfg, rng);
            TraceOp {
                region: 1,
                offset: page << 12,
                kind: AccessKind::Write,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tf::{TfConfig, TfWorkload};

    #[test]
    fn writes_shared_data_more_than_tf() {
        let n = 200_000;
        let mut gc = GcWorkload::new(GcConfig::default());
        let gc_writes = (0..n)
            .map(|i| gc.next_op((i % 8) as u16))
            .filter(|o| o.kind.is_write())
            .count() as f64;
        let mut tf = TfWorkload::new(TfConfig::default());
        let tf_writes = (0..n)
            .map(|i| tf.next_op((i % 8) as u16))
            .filter(|o| o.region <= 1 && o.kind.is_write())
            .count() as f64;
        let ratio = gc_writes / tf_writes.max(1.0);
        // Paper §7.1 quotes GC writing ~2.5× more *data* to shared pages
        // than TF. The generators are calibrated against Figure 6's
        // per-access invalidation rates, which puts the shared-write count
        // ratio in the same few-× band.
        assert!(
            (2.0..10.0).contains(&ratio),
            "GC/TF shared-write ratio = {ratio:.2}"
        );
    }

    #[test]
    fn rank_accesses_are_contended_across_threads() {
        let mut gc = GcWorkload::new(GcConfig::default());
        let mut hot_hits = [0usize; 2];
        for t in 0..2u16 {
            for _ in 0..10_000 {
                let op = gc.next_op(t);
                if op.region == 1 && (op.offset >> 12) < GcConfig::default().hot_pages {
                    hot_hits[t as usize] += 1;
                }
            }
        }
        // Both threads touch the same hot rank pages.
        assert!(hot_hits[0] > 300 && hot_hits[1] > 300, "{hot_hits:?}");
    }

    #[test]
    fn graph_scan_has_high_page_locality() {
        let mut gc = GcWorkload::new(GcConfig::default());
        let mut scans = 0u64;
        let mut changes = 0u64;
        let mut last = u64::MAX;
        for _ in 0..100_000 {
            let op = gc.next_op(0);
            if op.region == 0 {
                scans += 1;
                let page = op.offset >> 12;
                if page != last {
                    changes += 1;
                    last = page;
                }
            }
        }
        let rate = changes as f64 / scans as f64;
        assert!(rate < 0.15, "page-change rate {rate}");
    }

    #[test]
    fn offsets_in_bounds() {
        let mut gc = GcWorkload::new(GcConfig::default());
        let regions = gc.regions();
        for i in 0..50_000 {
            let op = gc.next_op((i % 8) as u16);
            assert!(op.offset < regions[op.region as usize]);
        }
    }

    #[test]
    fn footprint_is_thread_independent() {
        let a = GcWorkload::new(GcConfig {
            n_threads: 1,
            ..Default::default()
        })
        .regions();
        let b = GcWorkload::new(GcConfig {
            n_threads: 80,
            ..Default::default()
        })
        .regions();
        assert_eq!(a, b);
    }
}
