//! Trace representation shared by all workloads.

use mind_core::system::AccessKind;

/// One memory operation in a workload trace, addressed relative to a
/// workload region (the runner resolves regions to system-assigned bases so
/// every compared system replays identical addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Index into the workload's region table.
    pub region: u16,
    /// Byte offset within the region.
    pub offset: u64,
    /// LOAD or STORE.
    pub kind: AccessKind,
}

/// A deterministic workload generator.
///
/// Generators produce each thread's next operation on demand; all
/// randomness derives from per-thread forks of a seed RNG, so the operation
/// stream of a thread is independent of global interleaving — the property
/// that makes cross-system comparisons exact.
///
/// `Send` is a supertrait so a whole replay — generator included — can be
/// moved onto a worker thread: the multi-core sharded executor advances
/// each shard's sub-cluster (and the partition workloads it owns) on its
/// own OS thread. Generators are plain owned state (forked RNGs, cursors,
/// configs), so this costs implementors nothing.
pub trait Workload: Send {
    /// Name for reports ("TF", "GC", "MA", "MC", ...). Owned so
    /// parameterized workloads can carry their sweep parameters (e.g.
    /// `micro(r=0.5,s=1)`) into the report instead of a shared static label.
    fn name(&self) -> String;

    /// Region sizes in bytes, allocated once by the runner before replay.
    fn regions(&self) -> Vec<u64>;

    /// Number of threads the workload drives.
    fn n_threads(&self) -> u16;

    /// The next operation for `thread`.
    fn next_op(&mut self, thread: u16) -> TraceOp;

    /// Appends `thread`'s next `n` operations to `out` — the batched form
    /// the op-batch runner issues through.
    ///
    /// The default implementation loops [`Workload::next_op`]; overrides
    /// may hoist per-op work (RNG borrows, config reads) out of the loop
    /// but **must** produce the exact op stream of `n` scalar calls —
    /// batch size must never change what a thread executes.
    fn fill_ops(&mut self, thread: u16, n: usize, out: &mut Vec<TraceOp>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_op(thread));
        }
    }
}

/// Convenience: byte offset of a page index.
pub fn page_offset(page_index: u64) -> u64 {
    page_index << 12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_offset_shifts() {
        assert_eq!(page_offset(0), 0);
        assert_eq!(page_offset(3), 0x3000);
    }

    #[test]
    fn trace_op_holds_fields() {
        let op = TraceOp {
            region: 2,
            offset: 0x1234,
            kind: AccessKind::Write,
        };
        assert_eq!(op.region, 2);
        assert!(op.kind.is_write());
    }
}
