//! Deterministic structured event tracing.
//!
//! Events are stamped with the *virtual* clock ([`SimTime`]), carry a
//! stable [`EventKind`] id, and live on a *lane* (a global compute-blade
//! index, or the control lane past the last blade). Because every field
//! of a [`TraceEvent`] is a simulated quantity — and simulated quantities
//! are byte-identical across thread and shard counts by the workspace's
//! replay contract — the *multiset* of recorded events is
//! grouping-invariant. [`TraceData::canonicalize`] turns that multiset
//! into a canonical sequence (a total-order sort over the full event
//! tuple), which is what makes the rendered Chrome trace byte-identical
//! across every `(shards × threads)` execution cell.
//!
//! Two things are deliberately **excluded** from events: virtual
//! addresses and protection-domain ids. Both are assigned relative to a
//! shard's local slice (`mmap_in`), so they differ between a fused and a
//! sharded replay of the same scenario; recording them would silently
//! break cross-cell identity. Lanes are recorded shard-locally and
//! rebased to global blade indices at merge time
//! ([`TraceData::rebase_lanes`]).

use mind_sim::env::TraceLevel;
use mind_sim::SimTime;

/// Default per-system event capacity (a safety valve, not a budget):
/// recording stops — with an exact drop count — rather than exhaust
/// memory on a pathological run. Traces with `dropped > 0` lose the
/// cross-cell identity guarantee (which events overflow depends on
/// recording order); the determinism tests assert zero drops.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// How a system decides whether to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Resolve from `MIND_TRACE` at system construction (the default, so
    /// benches and binaries pick up the environment); see
    /// [`mind_sim::env::trace_level`].
    #[default]
    Env,
    /// Tracing off regardless of the environment.
    Off,
    /// The grouping-invariant event set, regardless of the environment.
    On,
    /// Everything, including shard-execution marks that depend on the
    /// shard count (outside the byte-identity contract).
    Full,
}

impl TraceMode {
    /// The effective level this mode resolves to.
    pub fn resolve(self) -> TraceLevel {
        match self {
            TraceMode::Env => mind_sim::env::trace_level(),
            TraceMode::Off => TraceLevel::Off,
            TraceMode::On => TraceLevel::On,
            TraceMode::Full => TraceLevel::Full,
        }
    }
}

/// Tracing configuration, embedded in system configs (`MindConfig`) and
/// run configs so explicit settings override the environment in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether (and how much) to trace.
    pub mode: TraceMode,
    /// Maximum events retained per system ([`DEFAULT_CAPACITY`]).
    pub capacity: usize,
    /// Virtual bucket width for windowed telemetry
    /// ([`crate::timeseries::WindowSeries`]).
    pub interval: SimTime,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: TraceMode::Env,
            capacity: DEFAULT_CAPACITY,
            interval: SimTime::from_millis(1),
        }
    }
}

impl TraceConfig {
    /// A config pinned to a mode (tests; `Env` keeps the other defaults).
    pub fn with_mode(mode: TraceMode) -> Self {
        TraceConfig {
            mode,
            ..Default::default()
        }
    }

    /// The effective level.
    pub fn level(&self) -> TraceLevel {
        self.mode.resolve()
    }

    /// Whether any tracing is active.
    pub fn enabled(&self) -> bool {
        self.level().enabled()
    }
}

/// Stable event ids. The discriminant is the wire id: renumbering an
/// existing kind is a breaking change to recorded traces (add new kinds
/// at the end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// One access through `CoherenceEngine::issue`; spans the access's
    /// full latency. Args: `remote` (0/1), `invalidations`.
    Issue = 0,
    /// A directory state-machine transition admitted at the switch.
    /// Args: invalidation `requests`, `flushed` pages.
    DirTransition = 1,
    /// A protection-TCAM lookup that matched no permitting entry (the
    /// access was denied). Args: `write` (0/1).
    TcamMiss = 2,
    /// An invalidation round; spans admit-to-last-ACK. Args: `requests`,
    /// `false_inv`.
    Invalidation = 3,
    /// A cache-bypass access (no directory slot available). Args:
    /// `write` (0/1).
    Bypass = 4,
    /// An op admitted into the in-flight window. Args: `in_flight`
    /// occupancy after admission.
    WindowAdmit = 5,
    /// An issue stalled on a full window or a busy region; spans the
    /// wait. Args: `in_flight` occupancy at stall.
    WindowStall = 6,
    /// One service dispatch quantum. Args: `grants` issued, requests
    /// left `queued`.
    Dispatch = 7,
    /// A tenant admitted. Args: QoS `class`.
    TenantAdmit = 8,
    /// A tenant rejected by admission control. Args: QoS `class`.
    TenantReject = 9,
    /// A tenant departed. Args: QoS `class`.
    TenantDepart = 10,
    /// A request rejected at the queue bound. Args: QoS `class`.
    RequestReject = 11,
    /// A shard conservative-horizon step ([`TraceLevel::Full`] only —
    /// inherently shard-count-dependent). Args: `shard` index,
    /// `horizon_ns`.
    ShardEpoch = 12,
    /// An issue stalled on its blade's RNIC queue being at depth (the
    /// cluster engine's per-NIC bandwidth gate); spans the wait, on the
    /// stalled thread's lane. Args: `depth` (the configured queue depth
    /// it hit), `in_flight` (the blade's in-flight count at the stall).
    /// The blade is identified by the lane, which shard merging rebases;
    /// args deliberately carry no shard-local indices so sharded traces
    /// stay byte-identical to fused ones.
    NicStall = 13,
}

impl EventKind {
    /// The event's stable name (the Chrome-trace `name` field).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Issue => "issue",
            EventKind::DirTransition => "dir_transition",
            EventKind::TcamMiss => "tcam_miss",
            EventKind::Invalidation => "invalidation",
            EventKind::Bypass => "bypass",
            EventKind::WindowAdmit => "window_admit",
            EventKind::WindowStall => "window_stall",
            EventKind::Dispatch => "dispatch",
            EventKind::TenantAdmit => "tenant_admit",
            EventKind::TenantReject => "tenant_reject",
            EventKind::TenantDepart => "tenant_depart",
            EventKind::RequestReject => "request_reject",
            EventKind::ShardEpoch => "shard_epoch",
            EventKind::NicStall => "nic_stall",
        }
    }

    /// Names of the two argument slots (the second may be empty: the
    /// renderer then omits it).
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Issue => ("remote", "invalidations"),
            EventKind::DirTransition => ("requests", "flushed"),
            EventKind::TcamMiss => ("write", ""),
            EventKind::Invalidation => ("requests", "false_inv"),
            EventKind::Bypass => ("write", ""),
            EventKind::WindowAdmit => ("in_flight", ""),
            EventKind::WindowStall => ("in_flight", ""),
            EventKind::Dispatch => ("grants", "queued"),
            EventKind::TenantAdmit
            | EventKind::TenantReject
            | EventKind::TenantDepart
            | EventKind::RequestReject => ("class", ""),
            EventKind::ShardEpoch => ("shard", "horizon_ns"),
            EventKind::NicStall => ("depth", "in_flight"),
        }
    }

    /// Whether the event spans a duration (Chrome `ph: "X"`) rather than
    /// marking an instant (`ph: "i"`).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::Issue
                | EventKind::Invalidation
                | EventKind::WindowStall
                | EventKind::NicStall
        )
    }
}

/// One trace event. Field order matters: the derived [`Ord`] over
/// `(ts, lane, kind, dur, a0, a1)` is the canonical trace order — a total
/// order over the full tuple, so any two *equal* events are
/// interchangeable and the sorted sequence depends only on the event
/// multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub ts: SimTime,
    /// Global compute-blade index, or the control lane (one past the
    /// last blade) for service/shard events.
    pub lane: u32,
    /// Stable event id.
    pub kind: EventKind,
    /// Virtual duration (zero for instant events).
    pub dur: SimTime,
    /// First argument (meaning per [`EventKind::arg_names`]).
    pub a0: u64,
    /// Second argument.
    pub a1: u64,
}

impl TraceEvent {
    /// Renders the event as one Chrome-trace-event JSON object (no
    /// trailing separator). `pid` is the scenario's index in its suite.
    /// Timestamps render in microseconds with nanosecond precision,
    /// formatted by hand so output is byte-stable.
    pub fn render_chrome(&self, pid: usize, out: &mut String) {
        use std::fmt::Write;
        let (n0, n1) = self.kind.arg_names();
        out.push_str("{\"name\":\"");
        out.push_str(self.kind.name());
        let _ = write!(out, "\",\"pid\":{pid},\"tid\":{}", self.lane);
        let _ = write!(out, ",\"ts\":{}", Micros(self.ts));
        if self.kind.is_span() {
            let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", Micros(self.dur));
        } else {
            out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
        }
        let _ = write!(out, ",\"args\":{{\"{n0}\":{}", self.a0);
        if !n1.is_empty() {
            let _ = write!(out, ",\"{n1}\":{}", self.a1);
        }
        out.push_str("}}");
    }
}

/// A [`SimTime`] rendered as decimal microseconds with full nanosecond
/// precision (`12.345`), the Chrome-trace time unit.
struct Micros(SimTime);

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ns = self.0.as_nanos();
        write!(f, "{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// The per-system event sink. Owned by the traced system (one per shard
/// sub-cluster in a sharded run), so recording is single-threaded and
/// lock-free; buffers are extracted with [`TraceBuf::take`] and merged
/// shard-by-shard.
#[derive(Debug, Default)]
pub struct TraceBuf {
    level: TraceLevel,
    capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceBuf {
    /// A sink for the given config (empty and branch-only when the
    /// resolved level is [`TraceLevel::Off`]).
    pub fn new(cfg: TraceConfig) -> Self {
        let level = cfg.level();
        TraceBuf {
            level,
            capacity: cfg.capacity,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// A permanently disabled sink.
    pub fn disabled() -> Self {
        TraceBuf::default()
    }

    /// Whether this sink records anything. The hot-path gate: call sites
    /// with non-trivial argument computation should branch on this.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// The sink's resolved level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records one event (no-op when disabled; counted-drop when full).
    #[inline]
    pub fn record(
        &mut self,
        ts: SimTime,
        lane: u32,
        kind: EventKind,
        dur: SimTime,
        a0: u64,
        a1: u64,
    ) {
        if self.level == TraceLevel::Off {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent {
            ts,
            lane,
            kind,
            dur,
            a0,
            a1,
        });
    }

    /// Records an event only at [`TraceLevel::Full`] (execution-shape
    /// marks outside the byte-identity contract).
    #[inline]
    pub fn record_full(
        &mut self,
        ts: SimTime,
        lane: u32,
        kind: EventKind,
        dur: SimTime,
        a0: u64,
        a1: u64,
    ) {
        if self.level == TraceLevel::Full {
            self.record(ts, lane, kind, dur, a0, a1);
        }
    }

    /// Extracts the recorded events, leaving the sink empty but live.
    /// `None` when the sink is disabled (so reports omit trace sections
    /// entirely rather than carrying empty ones).
    pub fn take(&mut self) -> Option<TraceData> {
        if self.level == TraceLevel::Off {
            return None;
        }
        Some(TraceData {
            events: std::mem::take(&mut self.events),
            dropped: std::mem::take(&mut self.dropped),
        })
    }
}

/// An extracted trace: the unit reports carry, merge, and render.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// The events (canonical order only after [`TraceData::canonicalize`]).
    pub events: Vec<TraceEvent>,
    /// Events lost to the capacity valve (0 in any trace the determinism
    /// contract covers).
    pub dropped: u64,
}

impl TraceData {
    /// Shifts every lane by `offset`: maps a shard sub-cluster's local
    /// blade indices onto the fused cluster's global ones (shard `s`
    /// passes `s × blades_per_shard`).
    pub fn rebase_lanes(&mut self, offset: u32) {
        if offset == 0 {
            return;
        }
        for e in &mut self.events {
            e.lane += offset;
        }
    }

    /// Absorbs another trace (merge before canonicalizing).
    pub fn merge(&mut self, other: TraceData) {
        if self.events.is_empty() {
            self.events = other.events;
        } else {
            self.events.extend(other.events);
        }
        self.dropped += other.dropped;
    }

    /// Sorts events into the canonical order: a total-order sort over the
    /// full `(ts, lane, kind, dur, args)` tuple. Unstable sort is sound
    /// here precisely because the order is total — equal events are
    /// bytewise interchangeable.
    pub fn canonicalize(&mut self) {
        self.events.sort_unstable();
    }

    /// Renders the canonicalized trace as Chrome-trace-event JSON
    /// objects, one string per event, appended to `out`.
    pub fn render_chrome(&self, pid: usize, out: &mut Vec<String>) {
        for e in &self.events {
            let mut s = String::with_capacity(96);
            e.render_chrome(pid, &mut s);
            out.push(s);
        }
    }
}

/// A Chrome-trace metadata record naming a process lane (`pid` →
/// scenario name). Rendered here so all trace JSON shares one escaper.
pub fn chrome_process_name(pid: usize, name: &str) -> String {
    let mut out = String::with_capacity(64 + name.len());
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
    use std::fmt::Write;
    let _ = write!(out, "{pid}");
    out.push_str(",\"args\":{\"name\":\"");
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push_str("\"}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut buf = TraceBuf::new(TraceConfig::with_mode(TraceMode::Off));
        assert!(!buf.enabled());
        buf.record(ns(1), 0, EventKind::Issue, ns(5), 1, 0);
        assert!(buf.is_empty());
        assert!(buf.take().is_none(), "disabled sinks yield no trace");
    }

    #[test]
    fn capacity_drops_newest_and_counts() {
        let cfg = TraceConfig {
            mode: TraceMode::On,
            capacity: 2,
            ..Default::default()
        };
        let mut buf = TraceBuf::new(cfg);
        for i in 0..5 {
            buf.record(ns(i), 0, EventKind::Issue, ns(1), 0, 0);
        }
        let data = buf.take().expect("enabled");
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.dropped, 3);
        assert_eq!(data.events[0].ts, ns(0), "oldest kept");
    }

    #[test]
    fn full_events_gate_on_level() {
        let mut on = TraceBuf::new(TraceConfig::with_mode(TraceMode::On));
        on.record_full(ns(1), 0, EventKind::ShardEpoch, SimTime::ZERO, 0, 0);
        assert!(on.is_empty(), "shard marks excluded at level On");
        let mut full = TraceBuf::new(TraceConfig::with_mode(TraceMode::Full));
        full.record_full(ns(1), 0, EventKind::ShardEpoch, SimTime::ZERO, 0, 0);
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn canonical_order_is_grouping_invariant() {
        // The same multiset of events, arriving in two different
        // recording orders (as two shard groupings would produce),
        // canonicalizes to identical sequences.
        let e = |t: u64, lane: u32, a0: u64| TraceEvent {
            ts: ns(t),
            lane,
            kind: EventKind::Issue,
            dur: ns(3),
            a0,
            a1: 0,
        };
        let mut a = TraceData {
            events: vec![e(5, 1, 0), e(2, 0, 1), e(5, 0, 9), e(2, 0, 1)],
            dropped: 0,
        };
        let mut b = TraceData {
            events: vec![e(2, 0, 1), e(5, 0, 9)],
            dropped: 0,
        };
        b.merge(TraceData {
            events: vec![e(2, 0, 1), e(5, 1, 0)],
            dropped: 0,
        });
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
    }

    #[test]
    fn rebase_shifts_lanes() {
        let mut d = TraceData {
            events: vec![TraceEvent {
                ts: ns(1),
                lane: 2,
                kind: EventKind::Issue,
                dur: ns(1),
                a0: 0,
                a1: 0,
            }],
            dropped: 0,
        };
        d.rebase_lanes(8);
        assert_eq!(d.events[0].lane, 10);
    }

    #[test]
    fn chrome_rendering_is_byte_stable() {
        let span = TraceEvent {
            ts: ns(12_345),
            lane: 3,
            kind: EventKind::Issue,
            dur: ns(9_000),
            a0: 1,
            a1: 2,
        };
        let mut s = String::new();
        span.render_chrome(7, &mut s);
        assert_eq!(
            s,
            "{\"name\":\"issue\",\"pid\":7,\"tid\":3,\"ts\":12.345,\
             \"ph\":\"X\",\"dur\":9.000,\"args\":{\"remote\":1,\"invalidations\":2}}"
        );
        let instant = TraceEvent {
            ts: ns(42),
            lane: 0,
            kind: EventKind::TcamMiss,
            dur: SimTime::ZERO,
            a0: 1,
            a1: 0,
        };
        let mut s = String::new();
        instant.render_chrome(0, &mut s);
        assert_eq!(
            s,
            "{\"name\":\"tcam_miss\",\"pid\":0,\"tid\":0,\"ts\":0.042,\
             \"ph\":\"i\",\"s\":\"t\",\"args\":{\"write\":1}}"
        );
    }

    #[test]
    fn process_names_escape_json() {
        let meta = chrome_process_name(1, "suite/\"q\"\\x");
        assert_eq!(
            meta,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
             \"args\":{\"name\":\"suite/\\\"q\\\"\\\\x\"}}"
        );
    }
}
