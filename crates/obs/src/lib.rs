//! Deterministic observability for the MIND simulation.
//!
//! Three pillars, all subordinate to the repo's correctness contract
//! (byte-identical replay across thread and shard counts):
//!
//! - [`trace`] — structured event tracing with virtual-time timestamps
//!   and stable event ids. The default event set is *grouping-invariant*:
//!   the same events, in the same canonical order, whatever
//!   `MIND_THREADS`/`MIND_SHARD_THREADS`/shard-count cell executed the
//!   run — so a rendered `TRACE_*.json` is itself a replay artifact, not
//!   just a debugging aid (and a substrate for protocol-conformance
//!   checking, ROADMAP item 5).
//! - [`timeseries`] — windowed counters and latency histograms over the
//!   virtual clock (per-interval MOPS, fault rate, invalidation stalls,
//!   p99), additive under merge and therefore identical across execution
//!   cells. Rendered as the `timeseries` section of BENCH JSON.
//! - [`profile`] — wall-clock stage timers (host time, *not* virtual
//!   time) plus the [`mem`] lanes (peak RSS, allocation counters).
//!   Inherently nondeterministic, so they are reported on stderr only
//!   and never enter BENCH or trace output.
//!
//! Everything is gated by [`TraceConfig`] / the `MIND_TRACE` and
//! `MIND_PROFILE` environment knobs ([`mind_sim::env`]); the disabled
//! paths reduce to a branch on a cached flag.

pub mod mem;
pub mod profile;
pub mod timeseries;
pub mod trace;

/// Count every allocation in every workspace binary (see [`mem`]): the
/// delta costs two relaxed atomic adds per allocation, bounded in CI by
/// the `obs_overhead` gate alongside the rest of the always-on surface.
#[global_allocator]
static COUNTING_ALLOC: mem::CountingAlloc = mem::CountingAlloc;

pub use mind_sim::env::TraceLevel;
pub use timeseries::{SeriesBucket, WindowSeries};
pub use trace::{
    chrome_process_name, EventKind, TraceBuf, TraceConfig, TraceData, TraceEvent, TraceMode,
};
