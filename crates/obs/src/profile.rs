//! Wall-clock self-profiling.
//!
//! Unlike everything else in this crate, these timers measure *host*
//! time: harness-engine scenario walls, shard-worker utilization, barrier
//! wait share, merge time. Host time is inherently nondeterministic, so
//! profiling output is reported on stderr only and never enters BENCH
//! JSON or trace files — it exists to make perf-gate regressions
//! diagnosable, not to be replayed.
//!
//! Gated by `MIND_PROFILE` ([`mind_sim::env::profile_enabled`]); the
//! disabled path is a cached-boolean branch. Stages accumulate into a
//! process-wide registry under `&'static str` keys — static so a sample
//! costs a map probe, never a key allocation: stage timers sit inside
//! per-epoch shard loops, and an allocation per sample would show up in
//! the very allocation counters ([`crate::mem`]) this module reports.
//! Reported and cleared by [`report_stderr`], which also appends the
//! memory lanes (peak RSS, allocation counters) from [`crate::mem`].

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Whether profiling is active this process.
#[inline]
pub fn enabled() -> bool {
    mind_sim::env::profile_enabled()
}

#[derive(Debug, Default, Clone, Copy)]
struct Stat {
    count: u64,
    total: Duration,
}

static REGISTRY: Mutex<BTreeMap<&'static str, Stat>> = Mutex::new(BTreeMap::new());

/// Adds one sample of wall time under `key` (no-op when disabled).
pub fn record(key: &'static str, wall: Duration) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap();
    let stat = reg.entry(key).or_default();
    stat.count += 1;
    stat.total += wall;
}

/// Starts a scoped stage timer: the elapsed wall time is recorded under
/// `key` when the guard drops. `None` (no timer, no clock read) when
/// profiling is disabled.
pub fn scope(key: &'static str) -> Option<ScopeTimer> {
    if !enabled() {
        return None;
    }
    Some(ScopeTimer {
        key,
        start: Instant::now(),
    })
}

/// A live stage timer from [`scope`].
#[derive(Debug)]
pub struct ScopeTimer {
    key: &'static str,
    start: Instant,
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        record(self.key, self.start.elapsed());
    }
}

/// Drains the registry: every `(key, samples, total wall)` accumulated
/// since the last drain, in key order.
pub fn take() -> Vec<(&'static str, u64, Duration)> {
    let mut reg = REGISTRY.lock().unwrap();
    std::mem::take(&mut *reg)
        .into_iter()
        .map(|(k, s)| (k, s.count, s.total))
        .collect()
}

/// Prints the accumulated stage table plus the process memory lanes
/// (peak RSS, allocation counters — see [`crate::mem`]) to stderr, and
/// clears the stage table. No-op when profiling is disabled. Stderr
/// only: host time and host memory are nondeterministic and must never
/// enter BENCH JSON or trace files.
pub fn report_stderr(header: &str) {
    if !enabled() {
        return;
    }
    let stages = take();
    if !stages.is_empty() {
        eprintln!("profile [{header}]:");
        for (key, count, total) in stages {
            eprintln!(
                "  {key:<28} {count:>8} x  {:>12.3} ms total  {:>10.3} us/sample",
                total.as_secs_f64() * 1e3,
                total.as_secs_f64() * 1e6 / count.max(1) as f64,
            );
        }
    }
    let (allocs, alloc_bytes) = crate::mem::alloc_counts();
    let peak = crate::mem::peak_rss_bytes();
    let rss = crate::mem::current_rss_bytes();
    eprintln!(
        "memory [{header}]: peak_rss={} rss={} allocs={allocs} alloc_bytes={:.1} MiB",
        peak.map_or("n/a".to_string(), |b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64)),
        rss.map_or("n/a".to_string(), |b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64)),
        alloc_bytes as f64 / (1 << 20) as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiling_is_inert() {
        // The test environment does not set MIND_PROFILE, so the cached
        // switch is off: recording and scoping do nothing.
        if enabled() {
            return; // Driven with MIND_PROFILE set: skip.
        }
        record("test.stage", Duration::from_millis(1));
        assert!(scope("test.scope").is_none());
        assert!(take().is_empty());
    }
}
