//! Process memory accounting for `MIND_PROFILE`.
//!
//! Two complementary lanes, both host-side and therefore — like the
//! wall-clock timers in [`crate::profile`] — reported on stderr only,
//! never in BENCH JSON or trace files:
//!
//! - **Allocation counters**: a [`CountingAlloc`] global allocator wraps
//!   the system allocator with two relaxed atomic counters (allocation
//!   count and requested bytes). Always on — the cost is two uncontended
//!   atomic adds per allocation, invisible next to the allocation itself
//!   and covered by the `obs_overhead` gate — so hot-path allocation
//!   regressions (a scratch buffer that stopped being reused, a string
//!   key materialized per sample) show up as count deltas in CI logs.
//! - **Peak RSS**: `VmHWM` from `/proc/self/status`, resettable via
//!   `/proc/self/clear_refs` so a scenario can measure its own
//!   high-water mark. Linux-only; elsewhere the probes return `None` /
//!   `false` and callers skip the lane.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// The system allocator behind two relaxed counters; installed as the
/// process global allocator by this crate so every binary in the
/// workspace reports allocation deltas for free.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System` unchanged; the counters are
// plain relaxed atomics with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow-in-place still pressures the allocator; count it, and
        // charge only the growth so byte totals stay an upper bound on
        // traffic rather than double-counting the moved prefix.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocations and requested bytes since process start (monotone; take
/// deltas around a region of interest).
pub fn alloc_counts() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// Reads one `kB`-suffixed field from `/proc/self/status`, in bytes.
#[cfg(target_os = "linux")]
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The process's peak resident set size (`VmHWM`) in bytes, since start
/// or the last [`reset_peak_rss`]. `None` off Linux or if `/proc` is
/// unreadable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmHWM:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// The process's current resident set size (`VmRSS`) in bytes. `None`
/// off Linux or if `/proc` is unreadable.
pub fn current_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        proc_status_bytes("VmRSS:")
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Resets the kernel's peak-RSS watermark to the current RSS (writes `5`
/// to `/proc/self/clear_refs`), so a subsequent [`peak_rss_bytes`] reads
/// the high-water mark of just the region in between. Returns whether
/// the reset took effect; callers skip RSS lanes when it did not.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", b"5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_counters_are_monotone_and_see_allocations() {
        let (a0, b0) = alloc_counts();
        let v: Vec<u8> = Vec::with_capacity(64 * 1024);
        let (a1, b1) = alloc_counts();
        assert!(a1 > a0, "an allocation must bump the count");
        assert!(b1 >= b0 + 64 * 1024, "bytes must cover the request");
        drop(v);
        let (a2, b2) = alloc_counts();
        assert!(a2 >= a1 && b2 >= b1, "counters never go backwards");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_and_resets() {
        let peak = peak_rss_bytes().expect("/proc/self/status is readable on Linux");
        assert!(peak > 0);
        let rss = current_rss_bytes().expect("/proc/self/status is readable on Linux");
        assert!(rss > 0);
        if reset_peak_rss() {
            let after = peak_rss_bytes().expect("still readable");
            // The watermark collapses to (about) the current RSS; it can
            // only have grown again by our own activity since the reset.
            assert!(after <= peak);
        }
    }
}
