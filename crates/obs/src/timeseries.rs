//! Windowed telemetry over the virtual clock.
//!
//! A [`WindowSeries`] buckets per-operation observations into fixed-width
//! virtual-time intervals: each bucket carries counters (ops, remote
//! accesses, invalidations, invalidation-stall nanoseconds) and a latency
//! histogram, so a report can show MOPS, fault rate, and p99 *over* a run
//! instead of one end-of-run aggregate. Bucketing is by the operation's
//! virtual completion time, which is identical across thread and shard
//! counts — and buckets merge additively — so a merged series is
//! byte-identical across every execution cell, same contract as the rest
//! of the BENCH output.

use mind_sim::stats::Histogram;
use mind_sim::SimTime;

/// One virtual-time bucket's telemetry.
#[derive(Debug, Clone, Default)]
pub struct SeriesBucket {
    /// Operations completing in this interval.
    pub ops: u64,
    /// Of those, remote accesses (page faults through the switch).
    pub remote: u64,
    /// Invalidation requests issued by those operations.
    pub invalidations: u64,
    /// Nanoseconds those operations spent stalled on invalidation
    /// queueing + TLB shootdown (the "directory busy" share).
    pub stall_ns: u64,
    /// Nanoseconds issues in this interval waited on a full RNIC queue
    /// (the cluster engine's per-NIC bandwidth gate; 0 outside cluster
    /// mode or at unbounded depth). Bucketed by the *issue* time of the
    /// stalled op — a simulated quantity, so additive and cell-invariant
    /// like every other field.
    pub nic_stall_ns: u64,
    /// Latency histogram of those operations (nanoseconds).
    pub lat: Histogram,
}

impl SeriesBucket {
    fn merge(&mut self, other: &SeriesBucket) {
        self.ops += other.ops;
        self.remote += other.remote;
        self.invalidations += other.invalidations;
        self.stall_ns += other.stall_ns;
        self.nic_stall_ns += other.nic_stall_ns;
        self.lat.merge(&other.lat);
    }
}

/// A fixed-interval telemetry series over the virtual clock.
#[derive(Debug, Clone)]
pub struct WindowSeries {
    interval: SimTime,
    buckets: Vec<SeriesBucket>,
}

impl WindowSeries {
    /// An empty series with the given bucket width (clamped to ≥ 1 ns).
    pub fn new(interval: SimTime) -> Self {
        let interval = interval.max(SimTime::from_nanos(1));
        WindowSeries {
            interval,
            buckets: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// The buckets, in time order (bucket `i` covers
    /// `[i·interval, (i+1)·interval)`).
    pub fn buckets(&self) -> &[SeriesBucket] {
        &self.buckets
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.ops == 0)
    }

    /// Total operations across all buckets.
    pub fn total_ops(&self) -> u64 {
        self.buckets.iter().map(|b| b.ops).sum()
    }

    fn bucket_mut(&mut self, at: SimTime) -> &mut SeriesBucket {
        let idx = (at.as_nanos() / self.interval.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize_with(idx + 1, SeriesBucket::default);
        }
        &mut self.buckets[idx]
    }

    /// Records one completed operation at virtual completion time `at`.
    pub fn record(
        &mut self,
        at: SimTime,
        latency_ns: u64,
        remote: bool,
        invalidations: u32,
        stall_ns: u64,
    ) {
        let b = self.bucket_mut(at);
        b.ops += 1;
        b.remote += remote as u64;
        b.invalidations += invalidations as u64;
        b.stall_ns += stall_ns;
        b.lat.record(latency_ns);
    }

    /// Records nanoseconds an issue waited on its blade's RNIC queue, at
    /// the virtual time the stalled op issued. Kept separate from
    /// [`record`](Self::record) so NIC pressure lands in the bucket where
    /// the queue was full, not where the op eventually completed.
    pub fn record_nic_stall(&mut self, at: SimTime, stall_ns: u64) {
        self.bucket_mut(at).nic_stall_ns += stall_ns;
    }

    /// Merges another series bucket-wise (additive, so merge order never
    /// matters).
    ///
    /// # Panics
    ///
    /// Panics when intervals differ — merging series with different
    /// bucket widths is a configuration bug, not a recoverable state.
    pub fn merge(&mut self, other: &WindowSeries) {
        assert_eq!(
            self.interval, other.interval,
            "cannot merge series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets
                .resize_with(other.buckets.len(), SeriesBucket::default);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn records_bucket_by_completion_time() {
        let mut s = WindowSeries::new(ns(100));
        s.record(ns(10), 5, false, 0, 0);
        s.record(ns(99), 7, true, 2, 30);
        s.record(ns(250), 9, true, 0, 0);
        assert_eq!(s.buckets().len(), 3);
        assert_eq!(s.buckets()[0].ops, 2);
        assert_eq!(s.buckets()[0].remote, 1);
        assert_eq!(s.buckets()[0].invalidations, 2);
        assert_eq!(s.buckets()[0].stall_ns, 30);
        assert_eq!(s.buckets()[1].ops, 0, "empty gap bucket materialized");
        assert_eq!(s.buckets()[2].ops, 1);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn nic_stalls_bucket_by_issue_time_without_counting_ops() {
        let mut s = WindowSeries::new(ns(100));
        s.record_nic_stall(ns(10), 25);
        s.record_nic_stall(ns(40), 5);
        s.record_nic_stall(ns(250), 7);
        assert_eq!(s.buckets()[0].nic_stall_ns, 30);
        assert_eq!(s.buckets()[2].nic_stall_ns, 7);
        assert_eq!(s.total_ops(), 0, "stalls are not completions");
    }

    #[test]
    fn merge_is_additive_and_order_free() {
        let mut a = WindowSeries::new(ns(100));
        a.record(ns(10), 5, true, 1, 2);
        a.record_nic_stall(ns(15), 11);
        let mut b = WindowSeries::new(ns(100));
        b.record(ns(150), 8, false, 0, 0);
        b.record(ns(20), 6, true, 3, 4);
        b.record_nic_stall(ns(30), 4);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        assert_eq!(ab.buckets().len(), ba.buckets().len());
        for (x, y) in ab.buckets().iter().zip(ba.buckets()) {
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.remote, y.remote);
            assert_eq!(x.invalidations, y.invalidations);
            assert_eq!(x.stall_ns, y.stall_ns);
            assert_eq!(x.nic_stall_ns, y.nic_stall_ns);
            assert_eq!(x.lat.count(), y.lat.count());
            assert_eq!(x.lat.quantile(0.99), y.lat.quantile(0.99));
        }
        assert_eq!(ab.buckets()[0].ops, 2);
        assert_eq!(ab.buckets()[1].ops, 1);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merging_mismatched_intervals_panics() {
        let mut a = WindowSeries::new(ns(100));
        let b = WindowSeries::new(ns(200));
        a.merge(&b);
    }

    #[test]
    fn zero_interval_clamps() {
        let s = WindowSeries::new(SimTime::ZERO);
        assert_eq!(s.interval(), ns(1));
    }
}
