//! The passive memory blade.
//!
//! MIND memory blades store pages and serve one-sided RDMA reads/writes with
//! *no CPU involvement* (paper §6.2): after registering its physical memory
//! with the NIC at boot, all requests are handled by the NIC. The model here
//! is therefore just a bounded page store with traffic counters — any
//! latency is charged by the fabric and the NIC service constant.

use mind_sim::hash::FastMap;

use crate::page::{PageData, PAGE_SHIFT};

/// Error: physical page index beyond the blade's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// The offending physical page index.
    pub ppage: u64,
    /// The blade's capacity in pages.
    pub capacity_pages: u64,
}

impl std::fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "physical page {} out of range (capacity {} pages)",
            self.ppage, self.capacity_pages
        )
    }
}

impl std::error::Error for OutOfRange {}

/// A memory blade: a sparse store of physical pages.
#[derive(Debug, Clone)]
pub struct MemoryBlade {
    capacity_pages: u64,
    pages: FastMap<u64, PageData>,
    reads: u64,
    writes: u64,
}

impl MemoryBlade {
    /// Creates a blade with `capacity_bytes` of memory.
    pub fn new(capacity_bytes: u64) -> Self {
        MemoryBlade {
            capacity_pages: capacity_bytes >> PAGE_SHIFT,
            pages: FastMap::default(),
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    fn check(&self, ppage: u64) -> Result<(), OutOfRange> {
        if ppage < self.capacity_pages {
            Ok(())
        } else {
            Err(OutOfRange {
                ppage,
                capacity_pages: self.capacity_pages,
            })
        }
    }

    /// Serves a one-sided RDMA read of physical page `ppage`.
    ///
    /// Never-written pages read as zeros (fresh DRAM in the model).
    pub fn read_page(&mut self, ppage: u64) -> Result<PageData, OutOfRange> {
        self.check(ppage)?;
        self.reads += 1;
        Ok(self.pages.get(&ppage).cloned().unwrap_or_default())
    }

    /// Serves a read without carrying data (pure-simulation fast path).
    pub fn read_page_nodata(&mut self, ppage: u64) -> Result<(), OutOfRange> {
        self.check(ppage)?;
        self.reads += 1;
        Ok(())
    }

    /// Serves a one-sided RDMA write (flush / eviction write-back).
    pub fn write_page(&mut self, ppage: u64, data: PageData) -> Result<(), OutOfRange> {
        self.check(ppage)?;
        self.writes += 1;
        self.pages.insert(ppage, data);
        Ok(())
    }

    /// Serves a write without data (pure-simulation fast path).
    pub fn write_page_nodata(&mut self, ppage: u64) -> Result<(), OutOfRange> {
        self.check(ppage)?;
        self.writes += 1;
        Ok(())
    }

    /// Distinct pages ever written (sparse occupancy).
    pub fn pages_populated(&self) -> usize {
        self.pages.len()
    }

    /// RDMA reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// RDMA writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pages_read_zero() {
        let mut mb = MemoryBlade::new(1 << 20); // 256 pages.
        let page = mb.read_page(5).unwrap();
        assert!(page.bytes().iter().all(|&b| b == 0));
        assert_eq!(mb.reads(), 1);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut mb = MemoryBlade::new(1 << 20);
        let mut data = PageData::zeroed();
        data.write(0, b"persisted");
        mb.write_page(7, data).unwrap();
        let back = mb.read_page(7).unwrap();
        let mut buf = [0u8; 9];
        back.read(0, &mut buf);
        assert_eq!(&buf, b"persisted");
        assert_eq!(mb.pages_populated(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut mb = MemoryBlade::new(2 << PAGE_SHIFT); // 2 pages.
        assert!(mb.read_page(1).is_ok());
        let err = mb.read_page(2).unwrap_err();
        assert_eq!(err.ppage, 2);
        assert_eq!(err.capacity_pages, 2);
        assert!(mb.write_page(9, PageData::zeroed()).is_err());
    }

    #[test]
    fn nodata_paths_count_traffic() {
        let mut mb = MemoryBlade::new(1 << 20);
        mb.read_page_nodata(0).unwrap();
        mb.write_page_nodata(0).unwrap();
        assert_eq!(mb.reads(), 1);
        assert_eq!(mb.writes(), 1);
        assert_eq!(mb.pages_populated(), 0, "nodata writes store nothing");
    }
}
