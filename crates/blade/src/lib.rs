//! Compute- and memory-blade models.
//!
//! Under MIND's partial-disaggregation model (paper §2, §6.1) compute blades
//! keep a few GB of local DRAM as a *cache* over the disaggregated memory
//! pool, managed by a page-fault-driven kernel module; memory blades are
//! passive page stores served entirely by one-sided RDMA with no CPU
//! involvement (§6.2).
//!
//! This crate provides:
//! - [`page`]: the 4 KB page unit and page-data container;
//! - [`pagetable`]: the blade-local VA→PA map (frames + PTEs) that backs the
//!   cache, with TLB-shootdown accounting on unmap/downgrade;
//! - [`cache`]: the LRU DRAM cache, tracking writable/dirty pages per region
//!   so invalidations can flush exactly the dirty pages (§6.1);
//! - [`invalidation`]: the per-blade invalidation-handler queue whose delay
//!   shows up as "Inv (queue)" in Figure 7 (right);
//! - [`membld`]: the passive memory blade.

pub mod cache;
pub mod invalidation;
pub mod membld;
pub mod page;
pub mod pagetable;

pub use cache::{CacheLookup, DramCache, InvalidationOutcome, TaggedLookup};
pub use invalidation::InvalidationQueue;
pub use membld::MemoryBlade;
pub use page::{page_base, page_index, PageData, PAGE_SHIFT, PAGE_SIZE};
pub use pagetable::{PageTable, Pte};
