//! The 4 KB page: MIND's unit of memory access and data movement.
//!
//! Cache *accesses* and data movement between blades happen at page
//! granularity, while the coherence directory tracks coarser, dynamically
//! sized regions (paper §4.3.1) — so the page constants here are used by
//! every layer above.

/// log2 of the page size.
pub const PAGE_SHIFT: u8 = 12;

/// Page size in bytes (4 KB, as in the paper and prior work).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Rounds `addr` down to its page base.
pub const fn page_base(addr: u64) -> u64 {
    addr & !(PAGE_SIZE - 1)
}

/// The page number containing `addr`.
pub const fn page_index(addr: u64) -> u64 {
    addr >> PAGE_SHIFT
}

/// Rounds `len` up to a whole number of pages.
pub const fn pages_for(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE)
}

/// Owned contents of one page.
///
/// Heap-allocated and cloned only on actual data movement; simulation-only
/// runs skip page data entirely (the cache stores `Option<PageData>`).
#[derive(Clone, PartialEq, Eq)]
pub struct PageData(Box<[u8; PAGE_SIZE as usize]>);

impl PageData {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        PageData(Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Builds a page from a byte slice (zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than a page.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= PAGE_SIZE as usize,
            "more than a page of data"
        );
        let mut p = Self::zeroed();
        p.0[..bytes.len()].copy_from_slice(bytes);
        p
    }

    /// Read access to the page bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE as usize] {
        &self.0
    }

    /// Write access to the page bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE as usize] {
        &mut self.0
    }

    /// Reads `buf.len()` bytes at `offset` within the page.
    ///
    /// # Panics
    ///
    /// Panics if the read would cross the page boundary.
    pub fn read(&self, offset: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&self.0[offset..offset + buf.len()]);
    }

    /// Writes `buf` at `offset` within the page.
    ///
    /// # Panics
    ///
    /// Panics if the write would cross the page boundary.
    pub fn write(&mut self, offset: usize, buf: &[u8]) {
        self.0[offset..offset + buf.len()].copy_from_slice(buf);
    }
}

impl std::fmt::Debug for PageData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.0.iter().filter(|&&b| b != 0).count();
        write!(f, "PageData({nonzero} nonzero bytes)")
    }
}

impl Default for PageData {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_base(0x1234), 0x1000);
        assert_eq!(page_base(0x1000), 0x1000);
        assert_eq!(page_index(0x3FFF), 3);
        assert_eq!(page_index(0x4000), 4);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(0), 0);
    }

    #[test]
    fn page_data_read_write_roundtrip() {
        let mut p = PageData::zeroed();
        p.write(100, b"hello");
        let mut buf = [0u8; 5];
        p.read(100, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn from_bytes_pads_with_zeros() {
        let p = PageData::from_bytes(b"abc");
        assert_eq!(&p.bytes()[..3], b"abc");
        assert!(p.bytes()[3..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic]
    fn cross_page_read_panics() {
        let p = PageData::zeroed();
        let mut buf = [0u8; 8];
        p.read(PAGE_SIZE as usize - 4, &mut buf);
    }

    #[test]
    fn debug_counts_nonzero() {
        let mut p = PageData::zeroed();
        p.write(0, &[1, 2, 3]);
        assert_eq!(format!("{p:?}"), "PageData(3 nonzero bytes)");
    }
}
