//! The compute blade's local DRAM cache.
//!
//! LOAD/STOREs from user threads are served from this cache; a miss (or a
//! store to a read-only cached page) triggers a page fault and the in-network
//! coherence protocol (paper §3.2). The cache is virtually addressed, tracks
//! writable/dirty pages, evicts LRU pages when full (writing dirty victims
//! back to memory blades), and — on receiving an invalidation for a region —
//! flushes all dirty pages in the region and unmaps the rest (§6.1).

use std::collections::BTreeSet;

use crate::page::{PageData, PAGE_SIZE};
use crate::pagetable::PageTable;

/// Result of probing the cache for an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Present with sufficient permission; served at DRAM latency.
    Hit,
    /// Not present; page fault fetches the page remotely.
    Miss,
    /// Present but read-only and the access is a store; page fault triggers
    /// a coherence upgrade (S→M) without re-fetching data.
    NeedUpgrade,
}

/// [`CacheLookup`] with the hit frame and its owner tag, so callers that
/// track per-page ownership (the per-domain local page tables of MIND's
/// coherence engine) read and update it in O(1) through the frame slab
/// instead of a second page-keyed map lookup per access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaggedLookup {
    /// Present with sufficient permission.
    Hit {
        /// Frame holding the page (for [`DramCache::set_frame_tag`]).
        frame: u32,
        /// The frame's owner tag (0 until first set).
        tag: u64,
    },
    /// Not present.
    Miss,
    /// Present read-only, store requested.
    NeedUpgrade,
}

/// A page evicted to make room, to be written back if dirty.
#[derive(Debug, Clone)]
pub struct Evicted {
    /// Page-aligned virtual address.
    pub page: u64,
    /// Whether the page was dirty (must be flushed to its memory blade).
    pub dirty: bool,
    /// Page contents, if data is being carried.
    pub data: Option<PageData>,
}

/// Result of applying an invalidation to the cache.
#[derive(Debug, Clone, Default)]
pub struct InvalidationOutcome {
    /// Dirty pages flushed back to memory blades (page address + data).
    pub flushed: Vec<(u64, Option<PageData>)>,
    /// Pages whose mapping was removed (excluding permission downgrades).
    pub unmapped: u32,
    /// Pages downgraded from writable to read-only (M→S).
    pub downgraded: u32,
}

impl InvalidationOutcome {
    /// Resets the outcome for reuse, keeping the `flushed` allocation.
    pub fn clear(&mut self) {
        self.flushed.clear();
        self.unmapped = 0;
        self.downgraded = 0;
    }
}

/// Sentinel for "no frame" in the intrusive LRU list.
const NO_FRAME: u32 = u32::MAX;

/// Per-frame metadata: the cached page occupying a local DRAM frame plus
/// its links in the intrusive LRU list. Keeping this in a frame-indexed
/// slab (instead of page-keyed maps) makes the hit path a single page-
/// table lookup followed by O(1) pointer updates — the dominant cost of
/// the access hot path before this layout.
#[derive(Debug, Clone)]
struct Frame {
    page: u64,
    dirty: bool,
    /// Opaque owner tag (e.g. the protection domain the page is mapped
    /// for); 0 until set, wiped on eviction/unmap with the frame.
    tag: u64,
    data: Option<PageData>,
    /// Toward the LRU end.
    prev: u32,
    /// Toward the MRU end.
    next: u32,
}

impl Frame {
    fn vacant() -> Self {
        Frame {
            page: 0,
            dirty: false,
            tag: 0,
            data: None,
            prev: NO_FRAME,
            next: NO_FRAME,
        }
    }
}

/// The LRU DRAM page cache.
///
/// Layout: the page table maps page → frame id; `frames` holds per-frame
/// state indexed by frame id (grown lazily as frames are first used); the
/// frames form an intrusive doubly-linked LRU list (`lru_head` = next
/// victim, `lru_tail` = most recently used). `resident` mirrors the
/// resident page set in address order for region-range invalidations.
/// Eviction order is exactly least-recently-touched, as before the slab
/// layout.
#[derive(Debug, Clone)]
pub struct DramCache {
    pt: PageTable,
    frames: Vec<Frame>,
    resident: BTreeSet<u64>,
    /// Reusable page-list buffer for region scans (no per-invalidation
    /// allocation on the coherence hot path).
    scan_scratch: Vec<u64>,
    lru_head: u32,
    lru_tail: u32,
    hits: u64,
    misses: u64,
    upgrades: u64,
    evictions: u64,
    dirty_evictions: u64,
    flushed_pages: u64,
}

impl DramCache {
    /// Creates a cache with room for `capacity_pages` pages.
    pub fn new(capacity_pages: u32) -> Self {
        DramCache {
            pt: PageTable::new(capacity_pages),
            frames: Vec::new(),
            resident: BTreeSet::new(),
            scan_scratch: Vec::new(),
            lru_head: NO_FRAME,
            lru_tail: NO_FRAME,
            hits: 0,
            misses: 0,
            upgrades: 0,
            evictions: 0,
            dirty_evictions: 0,
            flushed_pages: 0,
        }
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u32 {
        self.pt.n_frames()
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Detaches frame `f` from the LRU list.
    fn unlink(&mut self, f: u32) {
        let Frame { prev, next, .. } = self.frames[f as usize];
        if prev == NO_FRAME {
            self.lru_head = next;
        } else {
            self.frames[prev as usize].next = next;
        }
        if next == NO_FRAME {
            self.lru_tail = prev;
        } else {
            self.frames[next as usize].prev = prev;
        }
    }

    /// Appends frame `f` at the MRU end of the LRU list.
    fn push_mru(&mut self, f: u32) {
        let tail = self.lru_tail;
        {
            let frame = &mut self.frames[f as usize];
            frame.prev = tail;
            frame.next = NO_FRAME;
        }
        if tail == NO_FRAME {
            self.lru_head = f;
        } else {
            self.frames[tail as usize].next = f;
        }
        self.lru_tail = f;
    }

    fn touch(&mut self, f: u32) {
        if self.lru_tail != f {
            self.unlink(f);
            self.push_mru(f);
        }
    }

    /// Probes the cache for an access to `page` (page-aligned VA).
    ///
    /// On a [`CacheLookup::Hit`] with `is_write`, marks the page dirty.
    /// Updates LRU recency on hits.
    pub fn access(&mut self, page: u64, is_write: bool) -> CacheLookup {
        debug_assert_eq!(page % PAGE_SIZE, 0, "page-aligned address expected");
        match self.pt.lookup(page) {
            None => {
                self.misses += 1;
                CacheLookup::Miss
            }
            Some(pte) if is_write && !pte.writable => {
                self.upgrades += 1;
                CacheLookup::NeedUpgrade
            }
            Some(pte) => {
                self.hits += 1;
                if is_write {
                    self.frames[pte.frame as usize].dirty = true;
                }
                self.touch(pte.frame);
                CacheLookup::Hit
            }
        }
    }

    /// [`DramCache::access`] that also returns the hit frame's id and
    /// owner tag (one page-table lookup for probe + ownership together).
    pub fn access_tagged(&mut self, page: u64, is_write: bool) -> TaggedLookup {
        debug_assert_eq!(page % PAGE_SIZE, 0, "page-aligned address expected");
        match self.pt.lookup(page) {
            None => {
                self.misses += 1;
                TaggedLookup::Miss
            }
            Some(pte) if is_write && !pte.writable => {
                self.upgrades += 1;
                TaggedLookup::NeedUpgrade
            }
            Some(pte) => {
                self.hits += 1;
                let frame = &mut self.frames[pte.frame as usize];
                if is_write {
                    frame.dirty = true;
                }
                let tag = frame.tag;
                self.touch(pte.frame);
                TaggedLookup::Hit {
                    frame: pte.frame,
                    tag,
                }
            }
        }
    }

    /// Sets the owner tag of a frame returned by
    /// [`DramCache::access_tagged`].
    pub fn set_frame_tag(&mut self, frame: u32, tag: u64) {
        self.frames[frame as usize].tag = tag;
    }

    /// Sets the owner tag of a resident page (fault-insert path).
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn set_page_tag(&mut self, page: u64, tag: u64) {
        let pte = self.pt.lookup(page).expect("tagging a resident page");
        self.frames[pte.frame as usize].tag = tag;
    }

    /// The owner tag of a resident page (0 until set).
    pub fn page_tag(&self, page: u64) -> Option<u64> {
        let pte = self.pt.lookup(page)?;
        Some(self.frames[pte.frame as usize].tag)
    }

    /// Inserts a fetched page, evicting the LRU victim if the cache is full.
    /// Returns the eviction (if any) so the caller can write back dirty data.
    ///
    /// Under MSI a page is only fetched writable on a write fault, so a
    /// writable insert is immediately dirtied by the faulting store; use
    /// [`DramCache::insert_with`] for MESI's clean-but-writable Exclusive
    /// grants.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident.
    pub fn insert(&mut self, page: u64, writable: bool, data: Option<PageData>) -> Option<Evicted> {
        self.insert_with(page, writable, writable, data)
    }

    /// Inserts a page with explicit permission and dirty flags.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident.
    pub fn insert_with(
        &mut self,
        page: u64,
        writable: bool,
        dirty: bool,
        data: Option<PageData>,
    ) -> Option<Evicted> {
        let evicted = if self.pt.free_frames() == 0 {
            Some(self.evict_lru().expect("full cache has a victim"))
        } else {
            None
        };
        let pte = self
            .pt
            .map(page, writable)
            .expect("frame freed by eviction");
        let f = pte.frame as usize;
        if f >= self.frames.len() {
            // Fresh frame ids are handed out in ascending order, so the
            // slab grows by exactly one slot at a time.
            debug_assert_eq!(f, self.frames.len());
            self.frames.push(Frame::vacant());
        }
        self.frames[f] = Frame {
            page,
            dirty,
            tag: 0,
            data,
            prev: NO_FRAME,
            next: NO_FRAME,
        };
        self.push_mru(pte.frame);
        self.resident.insert(page);
        evicted
    }

    /// Downgrades every writable page in the region to read-only while
    /// *keeping dirty pages dirty and unflushed* — the MOESI M→O
    /// transition, where the old owner retains the only up-to-date copy
    /// and serves it cache-to-cache (paper §8). Dirty data eventually
    /// reaches memory via eviction write-back or a later full
    /// invalidation.
    pub fn downgrade_region_keep_dirty(
        &mut self,
        region_base: u64,
        size_log2: u8,
    ) -> InvalidationOutcome {
        let mut out = InvalidationOutcome::default();
        self.downgrade_region_keep_dirty_into(region_base, size_log2, &mut out);
        out
    }

    /// [`DramCache::downgrade_region_keep_dirty`] writing into a reusable
    /// outcome buffer (cleared first) instead of allocating one.
    pub fn downgrade_region_keep_dirty_into(
        &mut self,
        region_base: u64,
        size_log2: u8,
        out: &mut InvalidationOutcome,
    ) {
        out.clear();
        let end = region_base.saturating_add(1u64 << size_log2);
        let mut pages = std::mem::take(&mut self.scan_scratch);
        pages.clear();
        pages.extend(self.resident.range(region_base..end).copied());
        for &page in &pages {
            let pte = self.pt.lookup(page).expect("resident page mapped");
            if pte.writable {
                self.pt.downgrade(page);
                out.downgraded += 1;
            }
        }
        self.scan_scratch = pages;
    }

    fn evict_lru(&mut self) -> Option<Evicted> {
        let f = self.lru_head;
        if f == NO_FRAME {
            return None;
        }
        self.unlink(f);
        let frame = std::mem::replace(&mut self.frames[f as usize], Frame::vacant());
        self.resident.remove(&frame.page);
        self.pt.unmap(frame.page);
        self.evictions += 1;
        if frame.dirty {
            self.dirty_evictions += 1;
        }
        Some(Evicted {
            page: frame.page,
            dirty: frame.dirty,
            data: frame.data,
        })
    }

    /// Grants write permission to a cached page after an S→M upgrade and
    /// marks it dirty.
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn grant_write(&mut self, page: u64) {
        let pte = self.pt.upgrade(page).expect("upgrading resident page");
        self.frames[pte.frame as usize].dirty = true;
        self.touch(pte.frame);
    }

    /// Applies an invalidation to every cached page in
    /// `[region_base, region_base + 2^size_log2)`.
    ///
    /// Dirty pages are flushed (returned with their data). With
    /// `downgrade_to_shared`, writable pages become read-only but stay
    /// resident (M→S); otherwise all pages in the region are unmapped.
    pub fn invalidate_region(
        &mut self,
        region_base: u64,
        size_log2: u8,
        downgrade_to_shared: bool,
    ) -> InvalidationOutcome {
        let mut out = InvalidationOutcome::default();
        self.invalidate_region_into(region_base, size_log2, downgrade_to_shared, &mut out);
        out
    }

    /// [`DramCache::invalidate_region`] writing into a reusable outcome
    /// buffer (cleared first) instead of allocating one.
    pub fn invalidate_region_into(
        &mut self,
        region_base: u64,
        size_log2: u8,
        downgrade_to_shared: bool,
        out: &mut InvalidationOutcome,
    ) {
        out.clear();
        let end = region_base.saturating_add(1u64 << size_log2);
        let mut pages = std::mem::take(&mut self.scan_scratch);
        pages.clear();
        pages.extend(self.resident.range(region_base..end).copied());
        for &page in &pages {
            let pte = self.pt.lookup(page).expect("resident page mapped");
            let f = pte.frame;
            let frame = &mut self.frames[f as usize];
            if frame.dirty {
                out.flushed.push((page, frame.data.clone()));
                frame.dirty = false;
                self.flushed_pages += 1;
            }
            if downgrade_to_shared {
                if pte.writable {
                    self.pt.downgrade(page);
                    out.downgraded += 1;
                }
            } else {
                self.unlink(f);
                self.frames[f as usize] = Frame::vacant();
                self.resident.remove(&page);
                self.pt.unmap(page);
                out.unmapped += 1;
            }
        }
        self.scan_scratch = pages;
    }

    /// Number of resident pages within a region (used by tests and the
    /// false-invalidation accounting in the coherence layer).
    pub fn resident_in_region(&self, region_base: u64, size_log2: u8) -> usize {
        let end = region_base.saturating_add(1u64 << size_log2);
        self.resident.range(region_base..end).count()
    }

    /// Number of *dirty* resident pages within a region.
    pub fn dirty_in_region(&self, region_base: u64, size_log2: u8) -> usize {
        let end = region_base.saturating_add(1u64 << size_log2);
        self.resident
            .range(region_base..end)
            .filter(|&&p| {
                let pte = self.pt.lookup(p).expect("resident page mapped");
                self.frames[pte.frame as usize].dirty
            })
            .count()
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: u64) -> bool {
        self.pt.lookup(page).is_some()
    }

    /// Whether `page` is resident and writable.
    pub fn is_writable(&self, page: u64) -> bool {
        self.pt.lookup(page).is_some_and(|pte| pte.writable)
    }

    /// Clones the full contents of a resident page (cache-to-cache supply).
    pub fn page_data(&self, page: u64) -> Option<PageData> {
        let pte = self.pt.lookup(page)?;
        self.frames[pte.frame as usize].data.clone()
    }

    /// Reads bytes from a resident page.
    pub fn read_data(&self, page: u64, offset: usize, buf: &mut [u8]) -> bool {
        let Some(pte) = self.pt.lookup(page) else {
            return false;
        };
        match self.frames[pte.frame as usize].data.as_ref() {
            Some(data) => {
                data.read(offset, buf);
                true
            }
            None => false,
        }
    }

    /// Writes bytes into a resident page (caller must hold write permission).
    pub fn write_data(&mut self, page: u64, offset: usize, buf: &[u8]) -> bool {
        let Some(pte) = self.pt.lookup(page) else {
            return false;
        };
        let frame = &mut self.frames[pte.frame as usize];
        match frame.data.as_mut() {
            Some(data) => {
                data.write(offset, buf);
                frame.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Cache hits served.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses (page faults that fetch remotely).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Write-upgrade faults (S→M on a resident page).
    pub fn upgrades(&self) -> u64 {
        self.upgrades
    }

    /// Evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions that required a dirty write-back.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    /// Pages flushed by invalidations.
    pub fn flushed_pages(&self) -> u64 {
        self.flushed_pages
    }

    /// TLB shootdowns incurred (from unmaps/downgrades).
    pub fn tlb_shootdowns(&self) -> u64 {
        self.pt.tlb_shootdowns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_tags_track_ownership_and_reset_on_eviction() {
        let mut c = DramCache::new(1);
        c.insert(0x1000, false, None);
        assert_eq!(c.page_tag(0x1000), Some(0), "untagged at insert");
        c.set_page_tag(0x1000, 7);
        match c.access_tagged(0x1000, false) {
            TaggedLookup::Hit { frame, tag } => {
                assert_eq!(tag, 7);
                c.set_frame_tag(frame, 9);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.page_tag(0x1000), Some(9));
        // Eviction recycles the frame with a clean tag.
        c.insert(0x2000, false, None);
        assert_eq!(c.page_tag(0x1000), None, "evicted");
        assert_eq!(c.page_tag(0x2000), Some(0), "fresh frame untagged");
        // Tagged probe mirrors the plain probe's misses and upgrades.
        assert_eq!(c.access_tagged(0x3000, false), TaggedLookup::Miss);
        assert_eq!(c.access_tagged(0x2000, true), TaggedLookup::NeedUpgrade);
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = DramCache::new(4);
        assert_eq!(c.access(0x1000, false), CacheLookup::Miss);
        c.insert(0x1000, false, None);
        assert_eq!(c.access(0x1000, false), CacheLookup::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn store_to_read_only_page_needs_upgrade() {
        let mut c = DramCache::new(4);
        c.insert(0x1000, false, None);
        assert_eq!(c.access(0x1000, true), CacheLookup::NeedUpgrade);
        c.grant_write(0x1000);
        assert_eq!(c.access(0x1000, true), CacheLookup::Hit);
        assert!(c.is_writable(0x1000));
        assert_eq!(c.upgrades(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = DramCache::new(2);
        c.insert(0x1000, false, None);
        c.insert(0x2000, false, None);
        // Touch 0x1000 so 0x2000 becomes LRU.
        c.access(0x1000, false);
        let evicted = c.insert(0x3000, false, None).expect("cache full");
        assert_eq!(evicted.page, 0x2000);
        assert!(!evicted.dirty);
        assert!(c.contains(0x1000) && c.contains(0x3000));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = DramCache::new(1);
        c.insert(0x1000, true, None);
        c.access(0x1000, true); // Mark dirty.
        let evicted = c.insert(0x2000, false, None).unwrap();
        assert!(evicted.dirty);
        assert_eq!(c.dirty_evictions(), 1);
    }

    #[test]
    fn invalidate_region_flushes_dirty_and_unmaps_all() {
        let mut c = DramCache::new(8);
        // Region [0x0, 0x4000): 4 pages; cache 3 of them, 2 dirty.
        c.insert(0x0000, true, None);
        c.insert(0x1000, true, None);
        c.insert(0x2000, false, None);
        c.access(0x0000, true);
        c.access(0x1000, true);
        // Outside the region.
        c.insert(0x8000, true, None);
        c.access(0x8000, true);

        let out = c.invalidate_region(0x0, 14, false);
        assert_eq!(out.flushed.len(), 2);
        assert_eq!(out.unmapped, 3);
        assert_eq!(out.downgraded, 0);
        assert!(!c.contains(0x0000) && !c.contains(0x1000) && !c.contains(0x2000));
        assert!(c.contains(0x8000), "outside region untouched");
        assert_eq!(c.flushed_pages(), 2);
    }

    #[test]
    fn downgrade_invalidation_keeps_pages_read_only() {
        let mut c = DramCache::new(4);
        c.insert(0x1000, true, None);
        c.access(0x1000, true);
        let out = c.invalidate_region(0x0, 14, true);
        assert_eq!(out.flushed.len(), 1, "dirty page flushed");
        assert_eq!(out.downgraded, 1);
        assert_eq!(out.unmapped, 0);
        assert!(c.contains(0x1000), "page stays resident");
        assert!(!c.is_writable(0x1000));
        // A subsequent read hits; a write needs an upgrade.
        assert_eq!(c.access(0x1000, false), CacheLookup::Hit);
        assert_eq!(c.access(0x1000, true), CacheLookup::NeedUpgrade);
    }

    #[test]
    fn invalidation_is_flush_once() {
        let mut c = DramCache::new(4);
        c.insert(0x1000, true, None);
        c.access(0x1000, true);
        let first = c.invalidate_region(0x0, 20, true);
        assert_eq!(first.flushed.len(), 1);
        // Second invalidation: page is clean now, nothing to flush.
        let second = c.invalidate_region(0x0, 20, true);
        assert!(second.flushed.is_empty());
    }

    #[test]
    fn region_residency_counts() {
        let mut c = DramCache::new(8);
        c.insert(0x0000, true, None);
        c.insert(0x1000, false, None);
        c.insert(0x4000, false, None);
        c.access(0x0000, true);
        // A 16 KB region at 0 covers [0x0, 0x4000): pages 0x0000 and 0x1000.
        assert_eq!(c.resident_in_region(0x0, 14), 2);
        assert_eq!(c.dirty_in_region(0x0, 14), 1);
        assert_eq!(c.resident_in_region(0x0, 12), 1);
        // A 32 KB region additionally covers 0x4000.
        assert_eq!(c.resident_in_region(0x0, 15), 3);
    }

    #[test]
    fn data_read_write_roundtrip() {
        let mut c = DramCache::new(2);
        c.insert(0x1000, true, Some(PageData::zeroed()));
        assert!(c.write_data(0x1000, 16, b"mind"));
        let mut buf = [0u8; 4];
        assert!(c.read_data(0x1000, 16, &mut buf));
        assert_eq!(&buf, b"mind");
        // Pages without data refuse data ops.
        c.insert(0x2000, true, None);
        assert!(!c.read_data(0x2000, 0, &mut buf));
        assert!(!c.write_data(0x2000, 0, b"x"));
        assert!(!c.read_data(0x9000, 0, &mut buf), "non-resident");
    }

    #[test]
    fn flushed_data_travels_with_invalidation() {
        let mut c = DramCache::new(2);
        c.insert(0x1000, true, Some(PageData::zeroed()));
        c.write_data(0x1000, 0, b"dirty!");
        let out = c.invalidate_region(0x1000, 12, false);
        let (page, data) = &out.flushed[0];
        assert_eq!(*page, 0x1000);
        let mut buf = [0u8; 6];
        data.as_ref().unwrap().read(0, &mut buf);
        assert_eq!(&buf, b"dirty!");
    }

    #[test]
    fn tlb_shootdowns_surface_from_pagetable() {
        let mut c = DramCache::new(4);
        c.insert(0x1000, true, None);
        c.insert(0x2000, false, None);
        c.invalidate_region(0x0, 16, false);
        assert_eq!(c.tlb_shootdowns(), 2);
    }

    #[test]
    fn eviction_then_reinsert_same_page() {
        let mut c = DramCache::new(1);
        c.insert(0x1000, false, None);
        c.insert(0x2000, false, None); // Evicts 0x1000.
        assert_eq!(c.access(0x1000, false), CacheLookup::Miss);
        c.insert(0x1000, false, None); // Evicts 0x2000.
        assert_eq!(c.access(0x1000, false), CacheLookup::Hit);
        assert_eq!(c.resident_pages(), 1);
    }
}
