//! Blade-local page table: MIND virtual addresses → local DRAM frames.
//!
//! Although applications see only the global virtual address space, each
//! compute blade maintains a local page-based virtual memory to translate
//! MIND virtual addresses to physical addresses of cached pages in local
//! DRAM (paper Figure 2, footnote 2). Unmapping or downgrading a PTE on
//! invalidation forces a synchronous TLB shootdown — one of the two extra
//! overhead sources in Figure 7 (right).

use mind_sim::hash::FastMap;

/// A page-table entry: the local frame plus permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Index of the local DRAM frame holding the page.
    pub frame: u32,
    /// Whether the mapping permits stores.
    pub writable: bool,
}

/// The blade-local page table with a bounded frame pool.
#[derive(Debug, Clone)]
pub struct PageTable {
    ptes: FastMap<u64, Pte>,
    free_frames: Vec<u32>,
    n_frames: u32,
    tlb_shootdowns: u64,
}

impl PageTable {
    /// Creates a page table over `n_frames` local DRAM frames.
    pub fn new(n_frames: u32) -> Self {
        PageTable {
            ptes: FastMap::default(),
            free_frames: (0..n_frames).rev().collect(),
            n_frames,
            tlb_shootdowns: 0,
        }
    }

    /// Total local frames.
    pub fn n_frames(&self) -> u32 {
        self.n_frames
    }

    /// Frames not currently mapped.
    pub fn free_frames(&self) -> usize {
        self.free_frames.len()
    }

    /// Mapped pages.
    pub fn mapped(&self) -> usize {
        self.ptes.len()
    }

    /// Looks up the PTE for `page` (a page-aligned virtual address).
    pub fn lookup(&self, page: u64) -> Option<Pte> {
        self.ptes.get(&page).copied()
    }

    /// Maps `page` into a free frame with the given permission.
    ///
    /// Returns `None` if no frames are free (the caller must evict first).
    ///
    /// # Panics
    ///
    /// Panics if `page` is already mapped.
    pub fn map(&mut self, page: u64, writable: bool) -> Option<Pte> {
        assert!(
            !self.ptes.contains_key(&page),
            "page {page:#x} already mapped"
        );
        let frame = self.free_frames.pop()?;
        let pte = Pte { frame, writable };
        self.ptes.insert(page, pte);
        Some(pte)
    }

    /// Unmaps `page`, freeing its frame; counts a TLB shootdown.
    pub fn unmap(&mut self, page: u64) -> Option<Pte> {
        let pte = self.ptes.remove(&page)?;
        self.free_frames.push(pte.frame);
        self.tlb_shootdowns += 1;
        Some(pte)
    }

    /// Downgrades `page` to read-only (M→S invalidation); counts a TLB
    /// shootdown if the permission actually changed.
    pub fn downgrade(&mut self, page: u64) -> Option<Pte> {
        let pte = self.ptes.get_mut(&page)?;
        if pte.writable {
            pte.writable = false;
            self.tlb_shootdowns += 1;
        }
        Some(*pte)
    }

    /// Upgrades `page` to writable (after the coherence protocol granted M).
    pub fn upgrade(&mut self, page: u64) -> Option<Pte> {
        let pte = self.ptes.get_mut(&page)?;
        pte.writable = true;
        Some(*pte)
    }

    /// TLB shootdowns performed so far.
    pub fn tlb_shootdowns(&self) -> u64 {
        self.tlb_shootdowns
    }

    /// Iterates mapped pages (unspecified order).
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.ptes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap_roundtrip() {
        let mut pt = PageTable::new(2);
        let pte = pt.map(0x1000, true).unwrap();
        assert_eq!(pt.lookup(0x1000), Some(pte));
        assert!(pte.writable);
        assert_eq!(pt.mapped(), 1);
        assert_eq!(pt.unmap(0x1000).unwrap().frame, pte.frame);
        assert_eq!(pt.lookup(0x1000), None);
        assert_eq!(pt.free_frames(), 2);
    }

    #[test]
    fn frame_pool_exhaustion() {
        let mut pt = PageTable::new(2);
        assert!(pt.map(0x1000, false).is_some());
        assert!(pt.map(0x2000, false).is_some());
        assert!(pt.map(0x3000, false).is_none(), "no frames left");
        pt.unmap(0x1000);
        assert!(pt.map(0x3000, false).is_some(), "freed frame reused");
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new(2);
        pt.map(0x1000, false);
        pt.map(0x1000, true);
    }

    #[test]
    fn downgrade_counts_shootdown_once() {
        let mut pt = PageTable::new(1);
        pt.map(0x1000, true);
        assert_eq!(pt.tlb_shootdowns(), 0);
        pt.downgrade(0x1000);
        assert_eq!(pt.tlb_shootdowns(), 1);
        assert!(!pt.lookup(0x1000).unwrap().writable);
        // Downgrading an already read-only page is free (no PTE change).
        pt.downgrade(0x1000);
        assert_eq!(pt.tlb_shootdowns(), 1);
    }

    #[test]
    fn unmap_counts_shootdown() {
        let mut pt = PageTable::new(1);
        pt.map(0x1000, false);
        pt.unmap(0x1000);
        assert_eq!(pt.tlb_shootdowns(), 1);
        assert!(pt.unmap(0x2000).is_none(), "unmapped page is a no-op");
        assert_eq!(pt.tlb_shootdowns(), 1);
    }

    #[test]
    fn upgrade_sets_writable() {
        let mut pt = PageTable::new(1);
        pt.map(0x1000, false);
        pt.upgrade(0x1000);
        assert!(pt.lookup(0x1000).unwrap().writable);
        assert!(pt.upgrade(0x9000).is_none());
    }

    #[test]
    fn distinct_frames_assigned() {
        let mut pt = PageTable::new(3);
        let a = pt.map(0x1000, false).unwrap().frame;
        let b = pt.map(0x2000, false).unwrap().frame;
        let c = pt.map(0x3000, false).unwrap().frame;
        let mut frames = vec![a, b, c];
        frames.sort_unstable();
        frames.dedup();
        assert_eq!(frames.len(), 3);
    }
}
