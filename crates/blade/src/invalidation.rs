//! Per-blade invalidation-handler queue.
//!
//! Invalidation requests arriving at a compute blade are serviced by a
//! kernel handler one at a time; under contention they queue, and that
//! queueing delay is a major latency component at high blade counts and low
//! read ratios — the "Inv (queue)" bars of Figure 7 (right).

use mind_sim::SimTime;

/// Outcome of enqueueing one invalidation for service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedService {
    /// When service began (>= arrival).
    pub start: SimTime,
    /// When the handler finished (invalidation ACK can be sent).
    pub done: SimTime,
    /// Time spent waiting behind earlier invalidations.
    pub queue_delay: SimTime,
}

/// FIFO single-server queue for the blade's invalidation handler.
#[derive(Debug, Clone)]
pub struct InvalidationQueue {
    busy_until: SimTime,
    processed: u64,
    total_queue_delay: SimTime,
    max_queue_delay: SimTime,
}

impl InvalidationQueue {
    /// Creates an idle queue.
    pub fn new() -> Self {
        InvalidationQueue {
            busy_until: SimTime::ZERO,
            processed: 0,
            total_queue_delay: SimTime::ZERO,
            max_queue_delay: SimTime::ZERO,
        }
    }

    /// Enqueues an invalidation arriving at `arrival` with the given
    /// service time (handler work + any TLB shootdowns + dirty flush DMA).
    ///
    /// Service order is **enqueue order**, not arrival-time order: the
    /// handler's `busy_until` only ever moves forward, so an invalidation
    /// enqueued after another is served after it even when its arrival
    /// timestamp is *earlier*. That regressed-arrival case is real under
    /// the issue/complete datapath — an overlapped batch can trigger an
    /// invalidation round whose multicast lands at a timestamp before a
    /// previously processed round's — and FIFO-by-enqueue keeps the queue
    /// deterministic and consistent with the switch's program order.
    pub fn enqueue(&mut self, arrival: SimTime, service: SimTime) -> QueuedService {
        let start = arrival.max(self.busy_until);
        let done = start + service;
        self.busy_until = done;
        let queue_delay = start - arrival;
        self.processed += 1;
        self.total_queue_delay += queue_delay;
        self.max_queue_delay = self.max_queue_delay.max(queue_delay);
        QueuedService {
            start,
            done,
            queue_delay,
        }
    }

    /// Invalidations processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Mean queueing delay across processed invalidations.
    pub fn mean_queue_delay(&self) -> SimTime {
        if self.processed == 0 {
            SimTime::ZERO
        } else {
            self.total_queue_delay / self.processed
        }
    }

    /// Worst-case queueing delay observed.
    pub fn max_queue_delay(&self) -> SimTime {
        self.max_queue_delay
    }

    /// When the handler next goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

impl Default for InvalidationQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_serves_immediately() {
        let mut q = InvalidationQueue::new();
        let s = q.enqueue(SimTime::from_micros(5), SimTime::from_micros(1));
        assert_eq!(s.start, SimTime::from_micros(5));
        assert_eq!(s.done, SimTime::from_micros(6));
        assert_eq!(s.queue_delay, SimTime::ZERO);
    }

    #[test]
    fn concurrent_arrivals_queue_fifo() {
        let mut q = InvalidationQueue::new();
        let a = q.enqueue(SimTime::ZERO, SimTime::from_micros(2));
        let b = q.enqueue(SimTime::ZERO, SimTime::from_micros(2));
        let c = q.enqueue(SimTime::ZERO, SimTime::from_micros(2));
        assert_eq!(a.queue_delay, SimTime::ZERO);
        assert_eq!(b.queue_delay, SimTime::from_micros(2));
        assert_eq!(c.queue_delay, SimTime::from_micros(4));
        assert_eq!(q.processed(), 3);
        assert_eq!(q.mean_queue_delay(), SimTime::from_micros(2));
        assert_eq!(q.max_queue_delay(), SimTime::from_micros(4));
    }

    #[test]
    fn late_arrival_after_drain_no_delay() {
        let mut q = InvalidationQueue::new();
        q.enqueue(SimTime::ZERO, SimTime::from_micros(3));
        let s = q.enqueue(SimTime::from_micros(10), SimTime::from_micros(1));
        assert_eq!(s.queue_delay, SimTime::ZERO);
        assert_eq!(s.done, SimTime::from_micros(11));
    }

    /// The overlap contract: arrival timestamps may regress (a later
    /// enqueue from an overlapped batch can carry an earlier arrival),
    /// but service stays FIFO in enqueue order and time never runs
    /// backwards at the handler.
    #[test]
    fn regressed_arrival_still_serves_fifo() {
        let mut q = InvalidationQueue::new();
        let first = q.enqueue(SimTime::from_micros(10), SimTime::from_micros(2));
        // Enqueued second, "arrives" earlier: waits behind the first.
        let second = q.enqueue(SimTime::from_micros(4), SimTime::from_micros(1));
        assert_eq!(first.start, SimTime::from_micros(10));
        assert_eq!(second.start, first.done, "FIFO by enqueue order");
        assert_eq!(second.queue_delay, SimTime::from_micros(8));
        assert_eq!(q.busy_until(), SimTime::from_micros(13));
        assert_eq!(q.max_queue_delay(), SimTime::from_micros(8));
    }

    #[test]
    fn empty_queue_stats() {
        let q = InvalidationQueue::new();
        assert_eq!(q.mean_queue_delay(), SimTime::ZERO);
        assert_eq!(q.busy_until(), SimTime::ZERO);
    }
}
