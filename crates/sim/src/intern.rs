//! Tiny process-wide string interner for label-like strings.
//!
//! Population-scale scenarios build millions of per-tenant structures;
//! any `String` label carried per tenant (or formatted per call on a hot
//! path) multiplies into real RSS. [`intern`] collapses such labels to
//! `&'static str`: the first caller of a given text leaks one copy, every
//! later caller gets the same pointer back. Intended for *small, bounded*
//! label vocabularies — access-pattern names, workload kinds, metric
//! keys — where the leak is a handful of strings for the process
//! lifetime; never intern unbounded user data.

use std::collections::BTreeSet;
use std::sync::Mutex;

static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// The canonical `&'static str` for `text`: returns the existing interned
/// copy if one exists, otherwise leaks exactly one copy and returns it.
/// Deterministic (no addresses or ordering leak into behavior) and
/// thread-safe.
pub fn intern(text: &str) -> &'static str {
    let mut pool = POOL.lock().expect("interner lock");
    if let Some(hit) = pool.get(text) {
        return hit;
    }
    let leaked: &'static str = Box::leak(text.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = intern("zipf0.99-test");
        let b = intern("zipf0.99-test");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "same text must return the same pointer");
        let c = intern("scan-test");
        assert_ne!(a, c);
    }
}
